#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over the tree using the compile
# database from the default preset. Exits 0 with a notice when clang-tidy
# is not installed so developer machines without LLVM aren't blocked;
# CI installs clang-tidy and treats findings as failures.
#
# Usage: tools/lint.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

# Project-invariant checker first: it needs only python3, so unlike
# clang-tidy it never skips. Self-test (the checker checks itself), then
# the tree.
echo "lint.sh: gridse_check self-test..." >&2
python3 "${repo_root}/tools/gridse_check.py" --self-test \
  --root "${repo_root}"
echo "lint.sh: gridse_check over the tree..." >&2
python3 "${repo_root}/tools/gridse_check.py" \
  --root "${repo_root}" --build-dir "${build_dir}"

tidy_bin=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    tidy_bin="${candidate}"
    break
  fi
done

if [[ -z "${tidy_bin}" ]]; then
  echo "lint.sh: clang-tidy not found on PATH; skipping lint pass." >&2
  echo "lint.sh: install clang-tidy (or rely on CI) to run the checks." >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint.sh: no compile database at ${build_dir}; configuring..." >&2
  cmake -S "${repo_root}" -B "${build_dir}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# All translation units under the linted directories that appear in the
# compile database (generated/third-party code is excluded by construction).
mapfile -t sources < <(
  python3 - "${build_dir}/compile_commands.json" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    path = entry["file"]
    if any(f"/{d}/" in path for d in ("src", "tests", "bench", "tools")):
        print(path)
EOF
)

if [[ "${#sources[@]}" -eq 0 ]]; then
  echo "lint.sh: compile database lists no lintable sources." >&2
  exit 1
fi

echo "lint.sh: ${tidy_bin} over ${#sources[@]} translation units..." >&2
status=0
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "${tidy_bin}" -p "${build_dir}" -quiet \
    "${repo_root}/src/.*" "${repo_root}/tests/.*" \
    "${repo_root}/bench/.*" "${repo_root}/tools/.*" || status=$?
else
  "${tidy_bin}" -p "${build_dir}" --quiet "${sources[@]}" || status=$?
fi

if [[ "${status}" -ne 0 ]]; then
  echo "lint.sh: clang-tidy reported findings (exit ${status})." >&2
  exit "${status}"
fi
echo "lint.sh: clean." >&2
