#!/usr/bin/env bash
# CI benchmark smoke: run the curated benchmark subset against a release
# build, capture the observability report of a full DSE run, merge
# everything into BENCH_ci.json at the repo root, and gate the
# deterministic solver/traffic metrics against the committed baseline
# (BENCH_baseline.json).
#
# Usage: tools/bench_smoke.sh [build-dir] [out-dir]
#
# The curated subset mirrors the paper's evaluation:
#   bench_table3_local_overhead   — local DSE overhead rows (Table III)
#   bench_table4_network_overhead — networked overhead rows (Table IV)
#   bench_pcg_solvers             — PCG/LDLt solver ablation (§IV-C), the
#                                   only google-benchmark binary here, so
#                                   the only one that emits benchmark JSON
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-release}"
out_dir="${2:-${repo_root}/bench-out}"
mkdir -p "${out_dir}"

echo "bench_smoke: Table III local overhead..." >&2
"${build_dir}/bench/bench_table3_local_overhead" \
  | tee "${out_dir}/table3_local_overhead.txt"

echo "bench_smoke: Table IV network overhead..." >&2
"${build_dir}/bench/bench_table4_network_overhead" \
  | tee "${out_dir}/table4_network_overhead.txt"

echo "bench_smoke: PCG solver ablation (benchmark JSON)..." >&2
"${build_dir}/bench/bench_pcg_solvers" \
  --benchmark_out="${out_dir}/pcg_benchmarks.json" \
  --benchmark_out_format=json

echo "bench_smoke: DSE observability report (ieee118)..." >&2
"${build_dir}/tools/gridse_report" --case ieee118 --cycles 3 \
  --out "${out_dir}/obs_report.json"

python3 "${repo_root}/tools/bench_gate.py" \
  --benchmarks "${out_dir}/pcg_benchmarks.json" \
  --obs-report "${out_dir}/obs_report.json" \
  --baseline "${repo_root}/BENCH_baseline.json" \
  --out "${repo_root}/BENCH_ci.json"
