#!/usr/bin/env bash
# CI benchmark smoke: run the curated benchmark subset against a release
# build, capture the observability report of a full DSE run, merge
# everything into BENCH_ci.json at the repo root, and gate the
# deterministic solver/traffic metrics against the committed baseline
# (BENCH_baseline.json).
#
# Usage: tools/bench_smoke.sh [build-dir] [out-dir]
#
# Extra bench_gate.py flags (e.g. --allow-seed to re-seed the baseline)
# can be passed via the BENCH_GATE_FLAGS environment variable.
#
# The curated subset mirrors the paper's evaluation:
#   bench_table3_local_overhead   — local DSE overhead rows (Table III)
#   bench_table4_network_overhead — networked overhead rows (Table IV)
#   bench_pcg_solvers             — PCG/LDLt solver ablation (§IV-C),
#                                   emits benchmark JSON
#   bench_batched_solve           — sequential vs batched Step-1 sweep,
#                                   emits benchmark JSON
#   bench_telemetry_overhead      — per-cycle telemetry sampler cost
#                                   (<1% cycle budget), emits benchmark JSON
#   bench_partitioner_scaling     — mapping ablation + hierarchical scale
#                                   tiers (10k/30k/100k buses); emits the
#                                   gridse-partition-report/1 JSON merged
#                                   into BENCH_ci.json as informational
#                                   partition.<tier>.* keys
#
# After gating, a markdown diff of BENCH_ci.json vs the baseline is
# rendered to ${out_dir}/bench_diff.md for the CI step summary.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-release}"
out_dir="${2:-${repo_root}/bench-out}"
mkdir -p "${out_dir}"

echo "bench_smoke: Table III local overhead..." >&2
"${build_dir}/bench/bench_table3_local_overhead" \
  | tee "${out_dir}/table3_local_overhead.txt"

echo "bench_smoke: Table IV network overhead..." >&2
"${build_dir}/bench/bench_table4_network_overhead" \
  | tee "${out_dir}/table4_network_overhead.txt"

echo "bench_smoke: PCG solver ablation (benchmark JSON)..." >&2
"${build_dir}/bench/bench_pcg_solvers" \
  --benchmark_out="${out_dir}/pcg_benchmarks.json" \
  --benchmark_out_format=json

echo "bench_smoke: batched Step-1 sweep (benchmark JSON)..." >&2
"${build_dir}/bench/bench_batched_solve" \
  --benchmark_out="${out_dir}/batched_benchmarks.json" \
  --benchmark_out_format=json

echo "bench_smoke: telemetry sampler overhead (benchmark JSON)..." >&2
"${build_dir}/bench/bench_telemetry_overhead" \
  --benchmark_out="${out_dir}/telemetry_benchmarks.json" \
  --benchmark_out_format=json

echo "bench_smoke: partitioner scale tiers (partition report JSON)..." >&2
"${build_dir}/bench/bench_partitioner_scaling" \
  "${out_dir}/partition_report.json" \
  | tee "${out_dir}/partitioner_scaling.txt"

echo "bench_smoke: DSE observability report (ieee118)..." >&2
"${build_dir}/tools/gridse_report" --case ieee118 --cycles 3 \
  --out "${out_dir}/obs_report.json" \
  --trace-dir "${out_dir}/trace" \
  --telemetry-dir "${out_dir}/telemetry"

# Per-cycle telemetry: analyze the time-series into a markdown report for
# the CI step summary. A GRIDSE_OBS=OFF build writes no series; skip.
if [ -f "${out_dir}/telemetry/timeseries.jsonl" ]; then
  echo "bench_smoke: analyzing telemetry time-series..." >&2
  "${build_dir}/tools/gridse_stats" "${out_dir}/telemetry" \
    --out "${out_dir}/telemetry_report.md"
  timeseries_flag=(--timeseries "${out_dir}/telemetry/timeseries.jsonl")
else
  echo "bench_smoke: no telemetry series (GRIDSE_OBS=OFF build?); skipping" >&2
  timeseries_flag=()
fi

# Merge the per-rank distributed-trace files into a Perfetto-loadable
# trace.json and fail on a malformed document. A GRIDSE_OBS=OFF build
# writes no trace files; skip the merge rather than fail.
if compgen -G "${out_dir}/trace/trace_rank_*.jsonl" > /dev/null; then
  echo "bench_smoke: merging distributed trace..." >&2
  "${build_dir}/tools/gridse_trace" --out "${out_dir}/trace.json" \
    "${out_dir}"/trace/trace_rank_*.jsonl \
    | tee "${out_dir}/trace_summary.txt"
  "${build_dir}/tools/gridse_trace" --validate "${out_dir}/trace.json"
else
  echo "bench_smoke: no trace files (GRIDSE_OBS=OFF build?); skipping merge" >&2
fi

# BENCH_GATE_FLAGS is intentionally unquoted word-splitting below.
# shellcheck disable=SC2086
python3 "${repo_root}/tools/bench_gate.py" \
  --benchmarks "${out_dir}/pcg_benchmarks.json" \
               "${out_dir}/batched_benchmarks.json" \
               "${out_dir}/telemetry_benchmarks.json" \
  --obs-report "${out_dir}/obs_report.json" \
  --partition-report "${out_dir}/partition_report.json" \
  ${timeseries_flag[@]+"${timeseries_flag[@]}"} \
  --baseline "${repo_root}/BENCH_baseline.json" \
  --out "${repo_root}/BENCH_ci.json" \
  ${BENCH_GATE_FLAGS:-}

# Render the current-vs-baseline markdown table for the CI step summary.
# Runs after the gate so a regression still fails the job first; when the
# gate just seeded the baseline, the diff is all-zero deltas, which is fine.
python3 "${repo_root}/tools/bench_gate.py" --diff \
  --baseline "${repo_root}/BENCH_baseline.json" \
  --current "${repo_root}/BENCH_ci.json" \
  --out-md "${out_dir}/bench_diff.md"
