// gridse_cli — command-line front end for the GridSE library.
//
//   gridse_cli info <case>
//   gridse_cli se <case> [--noise X] [--seed N] [--solver pcg|ldlt|dense]
//                        [--precond none|jacobi|ssor|ic0]
//   gridse_cli dse <builtin-case> [--clusters K] [--transport T] [--cycles N]
//   gridse_cli contingency <case> [--margin M]
//   gridse_cli partition <builtin-case> [--clusters K]
//
// <case> is a case-file path or a builtin name: ieee14, ieee118, wecc37.
// dse/partition need the builtin cases (they carry a decomposition).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "apps/contingency.hpp"
#include "core/architecture.hpp"
#include "estimation/bad_data.hpp"
#include "grid/dc_powerflow.hpp"
#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "io/case_format.hpp"
#include "io/decomp_format.hpp"
#include "io/matpower.hpp"
#include "io/synthetic.hpp"
#include "util/strings.hpp"

namespace {

using namespace gridse;

struct Args {
  std::string command;
  std::string target;
  std::map<std::string, std::string> options;
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  if (argc >= 3 && argv[2][0] != '-') args.target = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0 && i + 1 < argc) {
      args.options[key.substr(2)] = argv[++i];
    }
  }
  return args;
}

double opt_double(const Args& a, const std::string& key, double fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end() ? fallback : std::stod(it->second);
}

int opt_int(const Args& a, const std::string& key, int fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end() ? fallback : std::stoi(it->second);
}

std::string opt_str(const Args& a, const std::string& key,
                    const std::string& fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end() ? fallback : it->second;
}

/// Resolve a builtin generated case (with decomposition), if the name is one.
std::optional<io::GeneratedCase> builtin_generated(const std::string& name,
                                                   std::uint64_t seed) {
  if (name == "ieee118") return io::ieee118_dse(seed == 0 ? 2012 : seed);
  if (name == "wecc37") return io::wecc37(seed == 0 ? 37 : seed);
  return std::nullopt;
}

/// Resolve any case (builtin, MATPOWER .m file, or GridSE case file).
io::Case resolve_case(const std::string& name, std::uint64_t seed) {
  if (name == "ieee14") return io::ieee14();
  if (const auto gen = builtin_generated(name, seed)) return gen->kase;
  if (name.size() > 2 && name.rfind(".m") == name.size() - 2) {
    return io::load_matpower_file(name);
  }
  return io::load_case_file(name);
}

int cmd_info(const Args& args) {
  const io::Case c = resolve_case(args.target, 0);
  std::printf("case %s: %d buses, %zu branches, base %g MVA\n",
              c.name.c_str(), c.network.num_buses(), c.network.num_branches(),
              c.base_mva);
  int pv = 0;
  int pq = 0;
  double load = 0.0;
  double gen = 0.0;
  for (const grid::Bus& b : c.network.buses()) {
    if (b.type == grid::BusType::kPV) ++pv;
    if (b.type == grid::BusType::kPQ) ++pq;
    load += b.p_load;
    gen += b.p_gen;
  }
  std::printf("  bus types: 1 slack, %d PV, %d PQ\n", pv, pq);
  std::printf("  total load %.1f MW, scheduled generation %.1f MW\n",
              load * c.base_mva, gen * c.base_mva);
  const grid::PowerFlowResult pf = grid::solve_power_flow(c.network);
  std::printf("  power flow: %s in %d iterations\n",
              pf.converged ? "converged" : "DID NOT CONVERGE", pf.iterations);
  return pf.converged ? 0 : 1;
}

int cmd_se(const Args& args) {
  const io::Case c = resolve_case(args.target, 0);
  const grid::PowerFlowResult pf = grid::solve_power_flow(c.network);
  grid::MeasurementPlan plan;
  plan.noise_level = opt_double(args, "noise", 1.0);
  grid::MeasurementGenerator gen(c.network, plan);
  Rng rng(static_cast<std::uint64_t>(opt_int(args, "seed", 1)));
  const grid::MeasurementSet meas = gen.generate(pf.state, rng);

  estimation::WlsOptions opts;
  const std::string solver = opt_str(args, "solver", "pcg");
  opts.solver = solver == "ldlt"    ? estimation::LinearSolver::kLdlt
                : solver == "dense" ? estimation::LinearSolver::kDense
                                    : estimation::LinearSolver::kPcg;
  opts.preconditioner =
      sparse::parse_preconditioner(opt_str(args, "precond", "ic0"));

  const estimation::WlsEstimator estimator(c.network, opts);
  const estimation::WlsResult result = estimator.estimate(meas);
  std::printf("WLS (%s): %s, %d iterations (%d inner), J = %.2f\n",
              solver.c_str(), result.converged ? "converged" : "FAILED",
              result.iterations, result.inner_iterations, result.objective);
  std::printf("max |V| error %.3e pu, max angle error %.3e rad vs truth\n",
              grid::max_vm_error(result.state, pf.state),
              grid::max_angle_error(result.state, pf.state));
  const estimation::ChiSquareTest chi = estimation::chi_square_test(
      result, estimator.model().state_index().size());
  std::printf("chi-square: %.1f vs %.1f -> %s\n", chi.objective, chi.threshold,
              chi.suspect_bad_data ? "bad data suspected" : "clean");
  return result.converged ? 0 : 1;
}

int cmd_dse(const Args& args) {
  auto generated = builtin_generated(args.target, 0);
  if (!generated) {
    // A file case works too when a decomposition file accompanies it.
    const std::string decomp_path = opt_str(args, "decomp", "");
    if (decomp_path.empty()) {
      std::fprintf(stderr, "dse needs a builtin decomposed case (ieee118, "
                           "wecc37) or --decomp <file> with a case file\n");
      return 2;
    }
    io::GeneratedCase from_file;
    from_file.kase = io::load_case_file(args.target);
    from_file.subsystem_of_bus =
        io::load_decomposition_file(decomp_path, from_file.kase.network);
    generated = std::move(from_file);
  }
  core::SystemConfig config;
  config.mapping.num_clusters = opt_int(args, "clusters", 3);
  const std::string transport = opt_str(args, "transport", "inproc");
  config.transport = transport == "tcp"      ? core::Transport::kTcp
                     : transport == "medici" ? core::Transport::kMedici
                     : transport == "direct" ? core::Transport::kMediciDirect
                                             : core::Transport::kInproc;
  config.dse.step2_rounds = opt_int(args, "rounds", 1);
  core::DseSystem system(*generated, config);
  const int cycles = opt_int(args, "cycles", 1);
  for (int i = 0; i < cycles; ++i) {
    const core::CycleReport rep = system.run_cycle(i * 30.0);
    std::printf("cycle %d: %s | imbalance %.3f | %zu bytes | %.1f ms | "
                "max |V| err %.2e\n",
                i + 1, rep.dse.all_converged ? "converged" : "FAILED",
                rep.map_step1.partition.load_imbalance, rep.dse.bytes_sent,
                rep.dse.total_seconds * 1e3, rep.max_vm_error);
  }
  return 0;
}

int cmd_contingency(const Args& args) {
  io::Case c = resolve_case(args.target, 0);
  grid::assign_ratings_from_base_case(c.network,
                                      opt_double(args, "margin", 1.3), 0.1);
  const apps::ContingencyReport report = apps::screen_all_branches(c.network);
  std::printf("N-1 screening of %zu branch outages: %d insecure "
              "(%d islanding)\n",
              report.outcomes.size(), report.insecure_cases,
              report.islanding_cases);
  for (const apps::ContingencyOutcome& o : report.outcomes) {
    if (!o.secure() && !o.islanding) {
      std::printf("  outage %zu -> %zu overload(s), worst %.0f%%\n",
                  o.outaged_branch, o.overloaded_branches.size(),
                  o.worst_loading * 100.0);
    }
  }
  return 0;
}

int cmd_partition(const Args& args) {
  const auto generated = builtin_generated(args.target, 0);
  if (!generated) {
    std::fprintf(stderr, "partition needs a builtin decomposed case "
                         "(ieee118, wecc37)\n");
    return 2;
  }
  decomp::Decomposition d =
      decomp::decompose(generated->kase.network, generated->subsystem_of_bus);
  decomp::analyze_sensitivity(generated->kase.network, d, {});
  mapping::MappingOptions opts;
  opts.num_clusters = opt_int(args, "clusters", 3);
  const mapping::ClusterMapper mapper(d, opts);
  const mapping::MappingResult r = mapper.map_before_step1(0.0);
  std::printf("%d subsystems onto %d clusters: imbalance %.3f, cut %.1f\n",
              d.num_subsystems(), opts.num_clusters,
              r.partition.load_imbalance, r.partition.edge_cut);
  for (graph::PartId k = 0; k < opts.num_clusters; ++k) {
    std::printf("  cluster %d:", k);
    for (int s = 0; s < d.num_subsystems(); ++s) {
      if (r.partition.assignment[static_cast<std::size_t>(s)] == k) {
        std::printf(" %d", s + 1);
      }
    }
    std::printf("\n");
  }
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: gridse_cli <command> <case> [options]\n"
      "  commands: info | se | dse | contingency | partition\n"
      "  cases: ieee14 | ieee118 | wecc37 | <path to case file>\n"
      "  se options:   --noise X --seed N --solver pcg|ldlt|dense "
      "--precond none|jacobi|ssor|ic0\n"
      "  dse options:  --clusters K --transport inproc|tcp|medici|direct "
      "--cycles N --rounds R\n"
      "  contingency:  --margin M\n"
      "  partition:    --clusters K\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.command == "info") return cmd_info(args);
    if (args.command == "se") return cmd_se(args);
    if (args.command == "dse") return cmd_dse(args);
    if (args.command == "contingency") return cmd_contingency(args);
    if (args.command == "partition") return cmd_partition(args);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
