#!/usr/bin/env python3
"""Merge bench-smoke outputs into BENCH_ci.json and gate regressions.

Inputs: one or more google-benchmark JSON files (bench_pcg_solvers,
bench_batched_solve, ...) and the obs_report.json published by
gridse_report. Output: one merged document (schema "gridse-bench-ci/1")
with two metric classes:

* "enforced" — deterministic given the seeded inputs: solver iteration
  counts, lane counts, and exchange byte counts. Any benchmark counter
  whose name ends in "_iters", "_bytes", or "_lanes" (or is exactly
  "lanes") is promoted to this class automatically. A growth beyond
  --tolerance (default 25%) over the committed BENCH_baseline.json fails
  the job; these moving means the algorithm changed, not that the runner
  was busy.
* "advisory" — wall-clock numbers. Republished for trend dashboards but
  never gated: shared CI runners are too noisy for time-based gates.
* "informational" — resilience counters (exchange.retries,
  exchange.degraded_subsystems, exchange.corrupt_frames) and recovery
  counters (recovery.remaps, recovery.rejoins, recovery.checkpoint_bytes),
  and topology counters/gauges (topology.events_applied,
  topology.repartitions, topology.masked_measurements,
  topology.anchors_added, topology.islands, topology.partition_score).
  Published so a run that limped through on retries, degraded subsystems,
  a remap epoch, or a topology-event repartition is visible in the merged
  document, but never gated and never required in the baseline: a healthy
  bench run legitimately reports zeros.

An optional --timeseries FILE (the gridse-timeseries/1 JSONL written by
the telemetry sampler, docs/OBSERVABILITY.md) adds per-cycle health to
the informational class: total slo.cycle_deadline_missed across cycles,
total exchange.retries, the cycle count, and the per-cycle Gauss-Newton
iteration spread (max minus min of each cycle's iteration delta — 0
means every cycle solved in identically many iterations, the
deterministic steady state).

`--diff --baseline FILE --current FILE [--out-md FILE]` renders the
enforced and advisory metrics of two merged documents side by side as a
GitHub-flavored markdown table (value, reference, % delta) — used by CI
to publish a BENCH_ci-vs-baseline summary into $GITHUB_STEP_SUMMARY. The
diff never gates; it is a rendering of what the gate saw.

A second, independent mode validates chaos health reports instead of
gating benchmarks: `--validate-chaos-report FILE...` checks each JSON
produced by the chaos suites (tests/fault/) against the expected shape —
including the optional "recovery" object written by the recovery chaos
test and the optional "topology"/"replay" pair written by the topology
chaos test — and exits 2 on the first malformed document.

A missing or unreadable BENCH_baseline.json is an error (exit 3), not a
silent pass: a gate that cannot find its reference must say so. Pass
--allow-seed to (re)generate a baseline instead — the merged output is
then copied verbatim as the new reference. A baseline that shares no
enforced metric keys with the current output also fails (exit 4): such a
gate would compare nothing while appearing green.

Exit codes: 0 ok, 1 regression, 2 bad usage/inputs, 3 baseline missing
or unreadable, 4 no overlapping enforced metrics.
"""
import argparse
import json
import shutil
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


#: Benchmark counters promoted from advisory to enforced: anything ending
#: in one of these suffixes (or named exactly "lanes") is deterministic
#: given the seeded inputs, so drift means an algorithm change.
ENFORCED_COUNTER_SUFFIXES = ("_iters", "_bytes", "_lanes")
ENFORCED_COUNTER_NAMES = ("lanes",)


def is_enforced_counter(key):
    return key.endswith(ENFORCED_COUNTER_SUFFIXES) or key in ENFORCED_COUNTER_NAMES


def timeseries_info(path):
    """Informational keys from a gridse-timeseries/1 JSONL series."""
    slo_missed = 0
    retries = 0
    iteration_deltas = []
    cycles = 0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("schema") is not None:
                if record["schema"] != "gridse-timeseries/1":
                    raise ValueError(
                        f"{path}: schema {record['schema']!r}, expected "
                        "'gridse-timeseries/1'")
                continue
            if record.get("kind") != "cycle":
                continue  # interval samples overlap the cycle deltas
            cycles += 1
            counters = record.get("counters", {})
            slo_missed += counters.get("slo.cycle_deadline_missed", 0)
            retries += counters.get("exchange.retries", 0)
            gn = record.get("histograms", {}).get(
                "wls.gauss_newton_iterations")
            if gn:
                iteration_deltas.append(gn.get("sum", 0))
    spread = (max(iteration_deltas) - min(iteration_deltas)
              if iteration_deltas else 0)
    return {
        "timeseries.cycles": cycles,
        "timeseries.slo.cycle_deadline_missed": slo_missed,
        "timeseries.exchange.retries": retries,
        "timeseries.gn_iterations.spread": spread,
    }


def partition_report_info(path):
    """Informational keys from a gridse-partition-report/1 document.

    Partition wall time and cut are published per tier (partition.<tier>.*)
    but never gated: time is runner-dependent and cut legitimately moves
    when the partitioner's objective or the generator's topology evolves.
    A non-deterministic tier is the exception — that is a hard error here,
    mirroring the bench binary's own exit code.
    """
    doc = load(path)
    if doc.get("schema") != "gridse-partition-report/1":
        raise ValueError(
            f"{path}: schema {doc.get('schema')!r}, expected "
            "'gridse-partition-report/1'")
    info = {}
    for tier in doc.get("tiers", []):
        name = tier["tier"]
        info[f"partition.{name}.time_ms"] = tier["time_ms"]
        info[f"partition.{name}.cut"] = tier["cut"]
        info[f"partition.{name}.boundary_buses"] = tier["boundary_buses"]
        info[f"partition.{name}.boundary_coupling"] = tier["boundary_coupling"]
        info[f"partition.{name}.speedup"] = tier["speedup"]
        if not tier.get("deterministic", True):
            raise ValueError(f"{path}: tier {name} is not thread-count "
                             "deterministic")
    return info


def merge(bench_docs, report):
    """Build the BENCH_ci.json document from the bench JSONs + obs report."""
    doc = {
        "schema": "gridse-bench-ci/1",
        "case": report.get("case"),
        "transport": report.get("transport"),
        "cycles": report.get("cycles", 1),
        "benchmarks": {},
        "enforced": {},
        "advisory": {},
        "informational": {},
    }

    for bench in bench_docs:
        for b in bench.get("benchmarks", []):
            name = b["name"]
            if b.get("run_type") == "aggregate":
                continue
            entry = {
                "real_time": b.get("real_time"),
                "cpu_time": b.get("cpu_time"),
                "time_unit": b.get("time_unit"),
            }
            for key, value in b.items():
                if is_enforced_counter(key):
                    entry[key] = value
                    doc["enforced"][f"bench.{name}.{key}"] = value
            doc["benchmarks"][name] = entry
            doc["advisory"][
                f"bench.{name}.real_time_{b.get('time_unit', 'ns')}"
            ] = b.get("real_time")

    metrics = report.get("metrics", {})
    cycles = max(1, doc["cycles"])

    for hist_name in ("wls.pcg.iterations", "wls.gauss_newton_iterations"):
        hist = metrics.get("histograms", {}).get(hist_name)
        if hist and hist.get("count"):
            doc["enforced"][f"obs.{hist_name}.mean"] = hist["sum"] / hist["count"]
            doc["enforced"][f"obs.{hist_name}.max"] = hist["max"]

    for counter in ("dse.pseudo.bytes", "dse.combine.bytes", "dse.pseudo.messages",
                    "dse.combine.messages", "dse.redistribute.bytes",
                    "exchange.boundary_bytes"):
        value = metrics.get("counters", {}).get(counter)
        if value is not None:
            doc["enforced"][f"obs.{counter}.per_cycle"] = value / cycles

    # Resilience counters: a bench run that survived on retries or finished
    # degraded still produces numbers, so these are surfaced — but they are
    # run-environment noise, not algorithm change, hence never gated.
    for counter in ("exchange.retries", "exchange.degraded_subsystems",
                    "exchange.corrupt_frames", "recovery.remaps",
                    "recovery.rejoins", "recovery.checkpoint_bytes",
                    "topology.events_applied", "topology.repartitions",
                    "topology.masked_measurements", "topology.anchors_added"):
        doc["informational"][f"obs.{counter}"] = (
            metrics.get("counters", {}).get(counter, 0))

    # Topology gauges: the island count of the last cycle is a health
    # indicator (1 means the system returned to a single energized
    # component), never a regression signal.
    for gauge in ("topology.islands", "topology.partition_score"):
        value = metrics.get("gauges", {}).get(gauge)
        if value is not None:
            doc["informational"][f"obs.{gauge}"] = value

    for span_name, span in metrics.get("spans", {}).items():
        doc["advisory"][f"obs.span.{span_name}.total_seconds"] = span[
            "total_seconds"
        ]

    for row in report.get("cycle_rows", []):
        if row.get("cycle") == 1:
            for key in ("step1_seconds", "exchange_seconds", "step2_seconds",
                        "combine_seconds", "total_seconds"):
                doc["advisory"][f"obs.cycle1.{key}"] = row.get(key)
            doc["enforced"]["obs.cycle1.bytes_sent"] = row.get("bytes_sent")

    return doc


def gate(doc, baseline, tolerance):
    """Compare enforced metrics against the baseline; return failure lines."""
    failures = []
    base = baseline.get("enforced", {})
    for key, current in sorted(doc["enforced"].items()):
        if key not in base:
            print(f"bench_gate: new enforced metric (no baseline): {key}")
            continue
        reference = base[key]
        if reference <= 0:
            continue
        growth = (current - reference) / reference
        marker = "FAIL" if growth > tolerance else "ok"
        print(f"bench_gate: [{marker}] {key}: {reference:g} -> {current:g} "
              f"({growth:+.1%})")
        if growth > tolerance:
            failures.append(
                f"{key} regressed {growth:+.1%} ({reference:g} -> {current:g}),"
                f" tolerance {tolerance:.0%}"
            )
    for key in sorted(base):
        if key not in doc["enforced"]:
            failures.append(f"enforced metric disappeared from outputs: {key}")
    return failures


def _fmt(value):
    """Render one metric value for the diff table."""
    if value is None:
        return "—"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return f"{value:g}"


def _delta(current, reference):
    """Render the percent delta column, dash when undefined."""
    if current is None or reference is None or reference == 0:
        return "—"
    return f"{(current - reference) / reference:+.1%}"


def render_diff(baseline, current):
    """Render two merged documents as a markdown comparison table."""
    lines = ["# Bench gate: current vs baseline", ""]
    for klass, gated in (("enforced", True), ("advisory", False)):
        base = baseline.get(klass, {})
        cur = current.get(klass, {})
        keys = sorted(set(base) | set(cur))
        if not keys:
            continue
        title = "Enforced (gated)" if gated else "Advisory (not gated)"
        lines.append(f"## {title}")
        lines.append("")
        lines.append("| metric | baseline | current | delta |")
        lines.append("|---|---:|---:|---:|")
        for key in keys:
            lines.append(
                f"| `{key}` | {_fmt(base.get(key))} | {_fmt(cur.get(key))} "
                f"| {_delta(cur.get(key), base.get(key))} |")
        lines.append("")
    return "\n".join(lines) + "\n"


def run_diff(args):
    """--diff mode: render the markdown table; never gates, exit 0/2 only."""
    missing = [name for name, value in (("--baseline", args.baseline),
                                        ("--current", args.current))
               if not value]
    if missing:
        print(f"bench_gate: ERROR: --diff requires {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        baseline = load(args.baseline)
        current = load(args.current)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: ERROR: --diff inputs unreadable ({e})",
              file=sys.stderr)
        return 2
    table = render_diff(baseline, current)
    if args.out_md:
        with open(args.out_md, "w") as f:
            f.write(table)
        print(f"bench_gate: wrote {args.out_md}")
    else:
        sys.stdout.write(table)
    return 0


#: Chaos health-report shape: field -> required type(s). Hand-rolled on
#: purpose — CI runners carry no jsonschema package, and the shape is small
#: enough that an explicit table is clearer than a schema document.
CHAOS_REQUIRED = {
    "test": str,
    "injected": (int, float),
    "retries": (int, float),
    "seconds": (int, float),
    "all_converged": bool,
    "degraded": list,
    "unresponsive_ranks": list,
    "injections": list,
}
CHAOS_DEGRADED_REQUIRED = {
    "subsystem": (int, float),
    "missing_neighbors": list,
    "missing_redistribution": bool,
}
CHAOS_RECOVERY_REQUIRED = {
    "remaps": (int, float),
    "rejoins": (int, float),
    "checkpoint_bytes": (int, float),
}
CHAOS_TOPOLOGY_REQUIRED = {
    "events_applied": (int, float),
    "repartitions": (int, float),
    "islands": (int, float),
}


def _type_ok(value, types):
    """isinstance with JSON semantics: bool never passes as a number."""
    if types is bool:
        return isinstance(value, bool)
    if isinstance(value, bool):
        return False
    return isinstance(value, types)


def chaos_report_errors(doc):
    """Validate one chaos health report; return a list of problem strings."""
    errors = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    for field, types in CHAOS_REQUIRED.items():
        if field not in doc:
            errors.append(f"missing required field '{field}'")
        elif not _type_ok(doc[field], types):
            errors.append(f"field '{field}' has type "
                          f"{type(doc[field]).__name__}")
    for i, entry in enumerate(doc.get("degraded", [])):
        if not isinstance(entry, dict):
            errors.append(f"degraded[{i}] is not an object")
            continue
        for field, types in CHAOS_DEGRADED_REQUIRED.items():
            if field not in entry:
                errors.append(f"degraded[{i}] missing '{field}'")
            elif not _type_ok(entry[field], types):
                errors.append(f"degraded[{i}].{field} has type "
                              f"{type(entry[field]).__name__}")
        for j, n in enumerate(entry.get("missing_neighbors", [])):
            if not _type_ok(n, (int, float)):
                errors.append(f"degraded[{i}].missing_neighbors[{j}] "
                              f"is not a number")
    for i, r in enumerate(doc.get("unresponsive_ranks", [])):
        if not _type_ok(r, (int, float)):
            errors.append(f"unresponsive_ranks[{i}] is not a number")
    recovery = doc.get("recovery")
    if recovery is not None:
        if not isinstance(recovery, dict):
            errors.append("'recovery' is not an object")
        else:
            for field, types in CHAOS_RECOVERY_REQUIRED.items():
                if field not in recovery:
                    errors.append(f"recovery missing '{field}'")
                elif not _type_ok(recovery[field], types):
                    errors.append(f"recovery.{field} has type "
                                  f"{type(recovery[field]).__name__}")
    topology = doc.get("topology")
    if topology is not None:
        if not isinstance(topology, dict):
            errors.append("'topology' is not an object")
        else:
            for field, types in CHAOS_TOPOLOGY_REQUIRED.items():
                if field not in topology:
                    errors.append(f"topology missing '{field}'")
                elif not _type_ok(topology[field], types):
                    errors.append(f"topology.{field} has type "
                                  f"{type(topology[field]).__name__}")
        # A report carrying topology events should also carry the replay
        # log (the bit-identical determinism witness published as a CI
        # artifact).
        if "replay" in doc and not isinstance(doc["replay"], list):
            errors.append("'replay' is not an array")
    return errors


def validate_chaos_reports(paths):
    """Validate every report; return 0 when all pass, 2 on the first error."""
    if not paths:
        print("bench_gate: ERROR: --validate-chaos-report got no files",
              file=sys.stderr)
        return 2
    for path in paths:
        try:
            doc = load(path)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_gate: ERROR: {path}: unreadable ({e})",
                  file=sys.stderr)
            return 2
        errors = chaos_report_errors(doc)
        if errors:
            for err in errors:
                print(f"bench_gate: ERROR: {path}: {err}", file=sys.stderr)
            return 2
        recovery = doc.get("recovery", {})
        suffix = (f" recovery(remaps={recovery.get('remaps')},"
                  f" rejoins={recovery.get('rejoins')},"
                  f" checkpoint_bytes={recovery.get('checkpoint_bytes')})"
                  if recovery else "")
        topology = doc.get("topology", {})
        if topology:
            suffix += (f" topology(events={topology.get('events_applied')},"
                       f" repartitions={topology.get('repartitions')},"
                       f" islands={topology.get('islands')})")
        print(f"bench_gate: [ok] {path}: test={doc['test']} "
              f"injected={doc['injected']:g} degraded={len(doc['degraded'])}"
              f"{suffix}")
    print(f"bench_gate: {len(paths)} chaos report(s) valid.")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--validate-chaos-report", nargs="+", metavar="FILE",
                        help="validate chaos health reports instead of "
                             "gating benchmarks; exits 2 on the first "
                             "malformed document")
    parser.add_argument("--diff", action="store_true",
                        help="render a markdown comparison of two merged "
                             "documents (--baseline vs --current) instead "
                             "of gating")
    parser.add_argument("--current",
                        help="merged BENCH_ci.json to diff against the "
                             "baseline (only with --diff)")
    parser.add_argument("--out-md",
                        help="write the --diff markdown table here instead "
                             "of stdout")
    parser.add_argument("--benchmarks", nargs="+", metavar="FILE",
                        help="google-benchmark JSON file(s), e.g. from "
                             "bench_pcg_solvers and bench_batched_solve")
    parser.add_argument("--obs-report",
                        help="obs_report.json from gridse_report")
    parser.add_argument("--timeseries",
                        help="optional gridse-timeseries/1 JSONL from the "
                             "telemetry sampler; adds per-cycle SLO/retry/"
                             "iteration-stability informational keys")
    parser.add_argument("--partition-report",
                        help="optional gridse-partition-report/1 JSON from "
                             "bench_partitioner_scaling; adds per-tier "
                             "partition.<tier>.time_ms/.cut informational "
                             "keys (errors if any tier was "
                             "non-deterministic)")
    parser.add_argument("--baseline",
                        help="committed BENCH_baseline.json")
    parser.add_argument("--out",
                        help="merged BENCH_ci.json to write")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional growth of enforced metrics")
    parser.add_argument("--allow-seed", action="store_true",
                        help="seed a missing baseline from this run's output "
                             "instead of failing with exit code 3")
    args = parser.parse_args()

    if args.validate_chaos_report is not None:
        return validate_chaos_reports(args.validate_chaos_report)
    if args.diff:
        return run_diff(args)
    missing = [name for name, value in
               (("--benchmarks", args.benchmarks),
                ("--obs-report", args.obs_report),
                ("--baseline", args.baseline),
                ("--out", args.out)) if not value]
    if missing:
        parser.error(f"the following arguments are required: "
                     f"{', '.join(missing)}")

    doc = merge([load(path) for path in args.benchmarks],
                load(args.obs_report))
    if args.timeseries:
        try:
            doc["informational"].update(timeseries_info(args.timeseries))
        except (OSError, json.JSONDecodeError, ValueError) as e:
            print(f"bench_gate: ERROR: --timeseries {args.timeseries}: {e}",
                  file=sys.stderr)
            return 2
    if args.partition_report:
        try:
            doc["informational"].update(
                partition_report_info(args.partition_report))
        except (OSError, json.JSONDecodeError, ValueError, KeyError) as e:
            print(f"bench_gate: ERROR: --partition-report "
                  f"{args.partition_report}: {e}", file=sys.stderr)
            return 2
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_gate: wrote {args.out} "
          f"({len(doc['enforced'])} enforced, {len(doc['advisory'])} advisory, "
          f"{len(doc['informational'])} informational)")
    for key, value in sorted(doc["informational"].items()):
        print(f"bench_gate: [info] {key} = {value:g} (not gated)")

    try:
        baseline = load(args.baseline)
    except (FileNotFoundError, json.JSONDecodeError, OSError) as e:
        if args.allow_seed:
            shutil.copyfile(args.out, args.baseline)
            print(f"bench_gate: no usable baseline; seeded {args.baseline}")
            return 0
        print(f"bench_gate: ERROR: baseline {args.baseline} is missing or "
              f"unreadable ({e}); the gate cannot run. Re-seed it with "
              f"--allow-seed if this is intentional.", file=sys.stderr)
        return 3

    overlap = set(doc["enforced"]) & set(baseline.get("enforced", {}))
    if not overlap:
        print(f"bench_gate: ERROR: no enforced metric keys overlap between "
              f"{args.baseline} and this run's output; the gate would "
              f"compare nothing. Re-seed the baseline with --allow-seed.",
              file=sys.stderr)
        return 4

    failures = gate(doc, baseline, args.tolerance)
    if failures:
        for line in failures:
            print(f"bench_gate: FAIL: {line}", file=sys.stderr)
        return 1
    print("bench_gate: all enforced metrics within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
