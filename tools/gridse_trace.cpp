// Trace collector CLI (docs/OBSERVABILITY.md, "Distributed tracing").
//
// Merge mode:     gridse_trace --out trace.json trace_rank_0.jsonl ...
//   Merges per-rank trace files into one Chrome/Perfetto trace document
//   (load it at https://ui.perfetto.dev), validates the result, and prints
//   the critical-path summary to stdout.
// Validate mode:  gridse_trace --validate trace.json
//   Structural check of an existing merged document; exits nonzero and
//   lists the problems when the trace is malformed.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace/collector.hpp"
#include "util/error.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitInvalidTrace = 1;
constexpr int kExitUsage = 2;

void print_usage(std::ostream& os) {
  os << "usage: gridse_trace --out <trace.json> <trace_rank_*.jsonl>...\n"
     << "       gridse_trace --validate <trace.json>\n";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw gridse::InvalidInput("cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int run_validate(const std::string& path) {
  const std::string text = read_file(path);
  const std::vector<std::string> problems =
      gridse::obs::trace::validate_chrome_trace(text);
  if (!problems.empty()) {
    std::cerr << path << ": invalid trace (" << problems.size()
              << " problem(s)):\n";
    for (const std::string& p : problems) {
      std::cerr << "  - " << p << "\n";
    }
    return kExitInvalidTrace;
  }
  std::cout << path << ": OK\n";
  return kExitOk;
}

int run_merge(const std::string& out_path,
              const std::vector<std::string>& inputs) {
  std::vector<gridse::obs::trace::RankTrace> ranks;
  ranks.reserve(inputs.size());
  for (const std::string& path : inputs) {
    ranks.push_back(gridse::obs::trace::load_rank_trace(path));
  }
  const std::string merged = gridse::obs::trace::merge_to_chrome_json(ranks);
  const std::vector<std::string> problems =
      gridse::obs::trace::validate_chrome_trace(merged);
  if (!problems.empty()) {
    std::cerr << "merged trace failed validation:\n";
    for (const std::string& p : problems) {
      std::cerr << "  - " << p << "\n";
    }
    return kExitInvalidTrace;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw gridse::InvalidInput("cannot write " + out_path);
  }
  out << merged;
  out.close();
  std::cout << "wrote " << out_path << " (" << merged.size() << " bytes, "
            << ranks.size() << " rank file(s))\n\n";
  std::cout << gridse::obs::trace::critical_path_summary(ranks);
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 2 && args[0] == "--validate") {
      return run_validate(args[1]);
    }
    if (args.size() >= 3 && args[0] == "--out") {
      return run_merge(args[1],
                       std::vector<std::string>(args.begin() + 2, args.end()));
    }
    print_usage(std::cerr);
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "gridse_trace: " << e.what() << "\n";
    return kExitUsage;
  }
}
