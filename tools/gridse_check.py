#!/usr/bin/env python3
"""gridse_check: project-invariant checker for the gridse tree.

Compile-commands-driven lint for invariants that neither the compiler nor
clang-tidy enforces, because they are *project* conventions:

  naked-mutex      std::mutex / std::lock_guard / std::unique_lock /
                   std::scoped_lock outside src/analysis/.  The rest of the
                   tree must use analysis::Mutex + analysis::LockGuard so
                   every lock is named, participates in lock-order (deadlock)
                   detection under GRIDSE_DEBUG_SYNC, and carries the Clang
                   Thread Safety capability annotations.
  raw-getenv       getenv() outside src/runtime/resilience.*.  Environment
                   access goes through runtime::env_value() so configuration
                   reads are greppable in one place and testable.
  fault-hook       transport primitives (send_all / recv_all / recv_some /
                   ::send / ::recv / ::connect) in src/runtime or src/medici
                   files that contain no FAULT_POINT / FAULT_DROP hook, plus
                   a manifest of known fault sites that must keep existing.
                   New transport code must be chaos-testable.
  locked-requires  *_locked() function declarations without a
                   GRIDSE_REQUIRES(...) annotation.  The _locked suffix is
                   the project contract for "caller holds the lock"; the
                   annotation makes Clang enforce it.
  guarded-field    field declarations whose same-line comment says
                   "guarded by" / "protected by" without a
                   GRIDSE_GUARDED_BY(...) annotation.  Prose invariants rot;
                   annotated ones are compiler-checked.
  metric-name      metric registrations in src/ (OBS_COUNTER_ADD /
                   OBS_GAUGE_SET / OBS_HISTOGRAM_OBSERVE / OBS_COUNTS_OBSERVE
                   / OBS_SPAN and registry .counter()/.gauge()/.histogram())
                   whose literal name does not follow the
                   `subsystem.noun[_unit]` grammar: lowercase snake-case
                   segments joined by dots, at least two segments.  Dynamic
                   names are tolerated when the literal prefix ends in `.`
                   (e.g. "medici.endpoint.bytes.to." + key).  Registering the
                   same literal name under two different instrument kinds in
                   one file is also flagged — the registry would race the
                   types at runtime.  Tests are exempt (toy names).

Suppressions (tools/gridse_check_suppressions.txt by default):
  each non-comment line is `<rule> <path-glob> [reason...]`; a finding whose
  rule matches and whose repo-relative path fnmatches the glob is reported as
  suppressed instead of failing the run.  Unused suppressions are warnings.
Inline escape hatch: a line containing `gridse-check: allow(<rule>)` in a
  comment suppresses that rule on that line (use sparingly; prefer fixing).

Self-test (--self-test): runs every rule over the marker-annotated corpus in
  tests/analysis/check_corpus/ and verifies each rule both fires where a
  `(EXPECT: <rule>)` marker says it must and is suppressed where an
  `(EXPECT-SUPPRESSED: <rule>)` marker plus the corpus suppression file says
  it must, with zero stray findings.  Registered in ctest as
  gridse_check_selftest.

Exit status: 0 clean (or all findings suppressed), 1 findings, 2 usage/IO.
"""

from __future__ import annotations

import argparse
import contextlib
import fnmatch
import json
import os
import re
import sys
from dataclasses import dataclass
from pathlib import Path

RULES = (
    "naked-mutex",
    "raw-getenv",
    "fault-hook",
    "locked-requires",
    "guarded-field",
    "metric-name",
)

# Directories scanned in a tree run, relative to the repo root.
SCAN_DIRS = ("src", "tests", "bench", "tools", "examples")
# The corpus deliberately violates every rule; never scan it as tree code.
EXCLUDE_PARTS = ("tests/analysis/check_corpus",)
SOURCE_SUFFIXES = (".cpp", ".hpp", ".cc", ".h")

# Known fault-injection sites: site name -> file that must keep its hook.
# Deleting a hook (or renaming a site without updating the chaos plans and
# this manifest) breaks every recorded fault plan silently; fail loudly here.
REQUIRED_FAULT_SITES = {
    "tcp.send": "src/runtime/tcp_comm.cpp",
    "socket.send": "src/runtime/socket.cpp",
    "socket.recv": "src/runtime/socket.cpp",
    "socket.connect": "src/runtime/socket.cpp",
    "mailbox.deliver": "src/runtime/mailbox.cpp",
    "wire.read": "src/medici/wire.cpp",
    "wire.write": "src/medici/wire.cpp",
    "relay.forward": "src/medici/router.cpp",
    "client.send": "src/medici/mw_client.cpp",
    "topology.apply": "src/fault/topology_replay.cpp",
}

NAKED_MUTEX_RE = re.compile(
    r"std\s*::\s*(?:mutex|recursive_mutex|timed_mutex|shared_mutex)\b"
    r"|std\s*::\s*(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
RAW_GETENV_RE = re.compile(r"\b(?:std\s*::\s*)?(?:secure_)?getenv\s*\(")
# Invocations only: `obj.send_all(...)` / `ptr->recv_some(...)` / POSIX
# `::send(...)`.  Plain declarations (socket.hpp) are not transport sites.
TRANSPORT_PRIMITIVE_RE = re.compile(
    r"(?:\.|->)\s*(?:send_all|recv_all|recv_some|sendto|recvfrom)\s*\("
    r"|::\s*(?:send|recv|connect|sendto|recvfrom)\s*\("
)
FAULT_HOOK_RE = re.compile(r"\bFAULT_(?:POINT|DROP)\s*\(")
# A *_locked declaration: something type-ish before the name, then `(`.
# Qualified names (Foo::bar_locked) are out-of-line definitions whose
# annotation lives on the in-class declaration, so they are exempt.
LOCKED_DECL_RE = re.compile(
    r"^\s*(?:\[\[\s*nodiscard\s*\]\]\s*)?"
    r"(?:(?:static|inline|constexpr|virtual|explicit|friend)\s+)*"
    r"[A-Za-z_][\w:<>,*&\s]*?[\s&*]((?:\w+\s*::\s*)?)(\w+_locked)\s*\("
)
GUARDED_COMMENT_RE = re.compile(r"(?://|/\*).*(?:guarded|protected)\s+by",
                                re.IGNORECASE)
GUARDED_ANNOT_RE = re.compile(r"\bGRIDSE_(?:PT_)?GUARDED_BY\s*\(")
# Metric registration sites.  The literal lives in the raw line (string
# literals are blanked in the stripped code), so the site token is matched
# against code and the name extracted from raw.
METRIC_SITE_RE = re.compile(
    r"\b(?:OBS_(?P<macro>COUNTER_ADD|GAUGE_SET|HISTOGRAM_OBSERVE|"
    r"COUNTS_OBSERVE|SPAN)"
    r"|(?:\.|->)\s*(?P<method>counter|gauge|histogram))"
    r"\s*\(\s*\"(?P<name>[^\"]*)\"(?P<plus>\s*\+)?"
)
# subsystem.noun[_unit]: >= 2 dot-separated lowercase snake segments.
METRIC_NAME_RE = re.compile(r"[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+")
# Dynamic-name prefix: grammar-clean segments, ending at a segment boundary.
METRIC_PREFIX_RE = re.compile(r"(?:[a-z][a-z0-9_]*\.)+")
METRIC_KIND = {
    "COUNTER_ADD": "counter", "GAUGE_SET": "gauge",
    "HISTOGRAM_OBSERVE": "histogram", "COUNTS_OBSERVE": "histogram",
    "SPAN": "span",
    "counter": "counter", "gauge": "gauge", "histogram": "histogram",
}

ALLOW_RE = re.compile(r"gridse-check:\s*allow\(\s*([\w-]+)\s*\)")
EXPECT_RE = re.compile(r"EXPECT(-SUPPRESSED)?:\s*([\w-]+)")
CHECK_PATH_RE = re.compile(r"//\s*CHECK-PATH:\s*(\S+)")


@dataclass(frozen=True)
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str


def strip_code_line(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Remove comments and string/char literals; return (code, still_in_block)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        ch = line[i]
        two = line[i : i + 2]
        if two == "//":
            break
        if two == "/*":
            in_block_comment = True
            i += 2
            continue
        if ch in "\"'":
            quote = ch
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(" ")  # keep column content neutral
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


def code_lines(lines: list[str]) -> list[str]:
    stripped = []
    in_block = False
    for raw in lines:
        code, in_block = strip_code_line(raw, in_block)
        stripped.append(code)
    return stripped


def statement_tail(code: list[str], start: int, limit: int = 8) -> str:
    """Join code lines from `start` until a `;` or `{` terminator (inclusive)."""
    parts = []
    for j in range(start, min(start + limit, len(code))):
        parts.append(code[j])
        if ";" in code[j] or "{" in code[j]:
            break
    return " ".join(parts)


def check_file(rel: str, raw_lines: list[str]) -> list[Finding]:
    """Run every rule over one file. `rel` uses forward slashes."""
    findings: list[Finding] = []
    code = code_lines(raw_lines)
    in_analysis = rel.startswith("src/analysis/")
    is_resilience = rel in ("src/runtime/resilience.cpp",
                            "src/runtime/resilience.hpp")
    in_transport = rel.startswith(("src/runtime/", "src/medici/"))
    has_fault_hook = any(FAULT_HOOK_RE.search(c) for c in code)
    # metric-name applies to production code only; tests/bench register toy
    # names ("x", "lat") on purpose-built registries.
    in_metric_scope = rel.startswith("src/")
    metric_kinds: dict[str, tuple[str, int]] = {}

    for idx, line in enumerate(code):
        lineno = idx + 1
        raw = raw_lines[idx]

        if not in_analysis and NAKED_MUTEX_RE.search(line):
            findings.append(Finding(
                rel, lineno, "naked-mutex",
                "use analysis::Mutex / analysis::LockGuard (named, "
                "lock-order-checked, capability-annotated) instead of the "
                "std primitive; raw std::mutex is reserved for src/analysis/"))

        if not is_resilience and RAW_GETENV_RE.search(line):
            findings.append(Finding(
                rel, lineno, "raw-getenv",
                "read the environment through runtime::env_value() "
                "(src/runtime/resilience.hpp) instead of getenv()"))

        if in_transport and not has_fault_hook \
                and TRANSPORT_PRIMITIVE_RE.search(line):
            findings.append(Finding(
                rel, lineno, "fault-hook",
                "transport primitive in a file with no FAULT_POINT/"
                "FAULT_DROP hook; new transport paths must be "
                "chaos-testable (see src/fault/fault.hpp)"))

        m = LOCKED_DECL_RE.match(line)
        if m and not m.group(1):  # unqualified => declaration, not defn
            stmt = statement_tail(code, idx)
            if "GRIDSE_REQUIRES" not in stmt \
                    and "GRIDSE_NO_THREAD_SAFETY_ANALYSIS" not in stmt:
                findings.append(Finding(
                    rel, lineno, "locked-requires",
                    f"{m.group(2)}() follows the *_locked naming contract "
                    "but has no GRIDSE_REQUIRES(<mutex>) annotation"))

        if in_metric_scope:
            for m in METRIC_SITE_RE.finditer(raw):
                token = m.group("macro") or m.group("method")
                if token not in line:
                    continue  # the site itself is commented out
                name = m.group("name")
                kind = METRIC_KIND[token]
                if m.group("plus"):
                    if not METRIC_PREFIX_RE.fullmatch(name):
                        findings.append(Finding(
                            rel, lineno, "metric-name",
                            f"dynamic metric prefix \"{name}\" must be "
                            "grammar-clean dot-terminated segments "
                            "(e.g. \"medici.endpoint.bytes.to.\")"))
                    continue
                if not METRIC_NAME_RE.fullmatch(name):
                    findings.append(Finding(
                        rel, lineno, "metric-name",
                        f"metric \"{name}\" violates the "
                        "subsystem.noun[_unit] grammar (lowercase "
                        "snake-case segments joined by dots, >= 2 "
                        "segments)"))
                    continue
                prev = metric_kinds.get(name)
                if prev is not None and prev[0] != kind:
                    findings.append(Finding(
                        rel, lineno, "metric-name",
                        f"metric \"{name}\" re-registered as a {kind}; "
                        f"already a {prev[0]} at line {prev[1]} — one "
                        "name, one instrument kind"))
                elif prev is None:
                    metric_kinds[name] = (kind, lineno)

        if GUARDED_COMMENT_RE.search(raw):
            stripped = line.strip()
            # Only field/statement lines: prose in pure-comment lines is fine.
            if stripped and ";" in stripped \
                    and not GUARDED_ANNOT_RE.search(statement_tail(code, idx)):
                findings.append(Finding(
                    rel, lineno, "guarded-field",
                    "comment claims a lock guards this declaration; state "
                    "it as GRIDSE_GUARDED_BY(<mutex>) so Clang enforces it"))

    # Drop findings the author explicitly allowed inline.
    kept = []
    for f in findings:
        allow = ALLOW_RE.search(raw_lines[f.line - 1])
        if allow and allow.group(1) == f.rule:
            continue
        kept.append(f)
    return kept


def check_fault_manifest(root: Path) -> list[Finding]:
    findings = []
    for site, rel in sorted(REQUIRED_FAULT_SITES.items()):
        path = root / rel
        if not path.is_file():
            findings.append(Finding(rel, 1, "fault-hook",
                                    f"file hosting fault site \"{site}\" "
                                    "is missing"))
            continue
        text = path.read_text(encoding="utf-8", errors="replace")
        if not re.search(r"FAULT_(?:POINT|DROP)\s*\(\s*\"" + re.escape(site)
                         + r"\"", text):
            findings.append(Finding(
                rel, 1, "fault-hook",
                f"required fault site \"{site}\" disappeared; recorded "
                "chaos plans reference it (update REQUIRED_FAULT_SITES in "
                "tools/gridse_check.py if the rename is deliberate)"))
    return findings


def load_suppressions(path: Path) -> list[tuple[str, str, str]]:
    """Return [(rule, glob, reason)]; tolerate a missing file."""
    entries = []
    if not path.is_file():
        return entries
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(),
                                 start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) < 2 or parts[0] not in RULES:
            print(f"{path}:{lineno}: malformed suppression: {raw!r}",
                  file=sys.stderr)
            sys.exit(2)
        entries.append((parts[0], parts[1],
                        parts[2] if len(parts) > 2 else ""))
    return entries


def split_suppressed(findings, suppressions):
    active, suppressed = [], []
    used = [False] * len(suppressions)
    for f in findings:
        hit = None
        for i, (rule, glob, _) in enumerate(suppressions):
            if rule == f.rule and fnmatch.fnmatch(f.path, glob):
                hit = i
                break
        if hit is None:
            active.append(f)
        else:
            used[hit] = True
            suppressed.append(f)
    unused = [s for s, u in zip(suppressions, used) if not u]
    return active, suppressed, unused


def enumerate_sources(root: Path, build_dir: Path | None) -> list[Path]:
    files: set[Path] = set()
    db = build_dir / "compile_commands.json" if build_dir else None
    if db and db.is_file():
        for entry in json.loads(db.read_text(encoding="utf-8")):
            p = Path(entry["file"])
            if not p.is_absolute():
                p = Path(entry["directory"]) / p
            try:
                rel = p.resolve().relative_to(root)
            except ValueError:
                continue
            if rel.parts and rel.parts[0] in SCAN_DIRS:
                files.add(root / rel)
    # Compile databases list only translation units; headers carry most of
    # the annotations, so always walk the scan dirs as well.
    for d in SCAN_DIRS:
        base = root / d
        if base.is_dir():
            for p in base.rglob("*"):
                if p.suffix in SOURCE_SUFFIXES and p.is_file():
                    files.add(p)
    out = []
    for p in sorted(files):
        rel = p.relative_to(root).as_posix()
        if any(rel.startswith(ex) for ex in EXCLUDE_PARTS):
            continue
        out.append(p)
    return out


def run_tree(root: Path, build_dir: Path | None, supp_path: Path,
             verbose: bool) -> int:
    sources = enumerate_sources(root, build_dir)
    if not sources:
        print(f"gridse_check: no sources found under {root}", file=sys.stderr)
        return 2
    findings: list[Finding] = []
    for path in sources:
        rel = path.relative_to(root).as_posix()
        lines = path.read_text(encoding="utf-8",
                               errors="replace").splitlines()
        findings.extend(check_file(rel, lines))
    findings.extend(check_fault_manifest(root))

    suppressions = load_suppressions(supp_path)
    active, suppressed, unused = split_suppressed(findings, suppressions)

    for f in active:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if verbose:
        for f in suppressed:
            print(f"{f.path}:{f.line}: [{f.rule}] suppressed "
                  f"(tools/{supp_path.name})")
    for rule, glob, _ in unused:
        print(f"gridse_check: warning: unused suppression: {rule} {glob}",
              file=sys.stderr)
    print(f"gridse_check: {len(sources)} files, {len(active)} finding(s), "
          f"{len(suppressed)} suppressed.", file=sys.stderr)
    return 1 if active else 0


@contextlib.contextmanager
def _patched_manifest(sites: dict[str, str]):
    """Temporarily swap REQUIRED_FAULT_SITES (self-test only)."""
    global REQUIRED_FAULT_SITES
    saved = REQUIRED_FAULT_SITES
    REQUIRED_FAULT_SITES = sites
    try:
        yield
    finally:
        REQUIRED_FAULT_SITES = saved


def run_self_test(root: Path) -> int:
    corpus = root / "tests" / "analysis" / "check_corpus"
    if not corpus.is_dir():
        print(f"gridse_check: corpus missing: {corpus}", file=sys.stderr)
        return 2
    suppressions = load_suppressions(corpus / "suppressions.txt")
    failures = []
    seen_expected: dict[str, int] = {r: 0 for r in RULES}
    for path in sorted(corpus.glob("*.cc")):
        lines = path.read_text(encoding="utf-8").splitlines()
        virtual = path.relative_to(root).as_posix()
        for line in lines:
            m = CHECK_PATH_RE.search(line)
            if m:
                virtual = m.group(1)
                break

        expect_active: dict[int, str] = {}
        expect_supp: dict[int, str] = {}
        for idx, line in enumerate(lines):
            m = EXPECT_RE.search(line)
            if m:
                (expect_supp if m.group(1) else expect_active)[idx + 1] = \
                    m.group(2)

        findings = check_file(virtual, lines)
        active, suppressed, _ = split_suppressed(findings, suppressions)
        got_active = {(f.line, f.rule) for f in active}
        got_supp = {(f.line, f.rule) for f in suppressed}

        for lineno, rule in expect_active.items():
            seen_expected[rule] += 1
            if (lineno, rule) not in got_active:
                failures.append(f"{path.name}:{lineno}: expected [{rule}] "
                                "to fire, it did not")
        for lineno, rule in expect_supp.items():
            seen_expected[rule] += 1
            if (lineno, rule) not in got_supp:
                failures.append(f"{path.name}:{lineno}: expected [{rule}] "
                                "to fire AND be suppressed, it was not")
        for lineno, rule in sorted(got_active):
            if expect_active.get(lineno) != rule:
                failures.append(f"{path.name}:{lineno}: stray [{rule}] "
                                "finding with no EXPECT marker")

    for rule, count in seen_expected.items():
        if count == 0:
            failures.append(f"corpus has no EXPECT coverage for [{rule}]")

    # The fault-site manifest is tree-level, not line-level, so the corpus
    # markers can't cover it; self-test it directly: the real tree must
    # satisfy every recorded site, and the rule must fire for a site whose
    # hosting file has vanished.
    for f in check_fault_manifest(root):
        failures.append(f"manifest: real tree violates required fault "
                        f"sites: {f.path}: {f.message}")
    ghost = dict(REQUIRED_FAULT_SITES)
    ghost["corpus.ghost"] = "src/runtime/does_not_exist.cpp"
    with _patched_manifest(ghost):
        fired = [f for f in check_fault_manifest(root)
                 if "corpus.ghost" in f.message]
    if not fired:
        failures.append("manifest: rule did not fire for a missing "
                        "fault-site file")
    for msg in failures:
        print(f"gridse_check self-test: FAIL: {msg}", file=sys.stderr)
    if failures:
        return 1
    print("gridse_check self-test: all corpus expectations met.",
          file=sys.stderr)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--build-dir", type=Path, default=None,
                        help="build dir with compile_commands.json "
                             "(default: <root>/build if present)")
    parser.add_argument("--suppressions", type=Path, default=None,
                        help="suppression file (default: "
                             "tools/gridse_check_suppressions.txt)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checker against the corpus in "
                             "tests/analysis/check_corpus/")
    parser.add_argument("--verbose", action="store_true",
                        help="also print suppressed findings")
    ns = parser.parse_args()

    root = ns.root.resolve()
    if ns.self_test:
        return run_self_test(root)
    build_dir = ns.build_dir or (root / "build")
    supp = ns.suppressions or (root / "tools" /
                               "gridse_check_suppressions.txt")
    return run_tree(root, build_dir if build_dir.is_dir() else None, supp,
                    ns.verbose)


if __name__ == "__main__":
    sys.exit(main())
