// gridse_stats — aggregate a gridse-timeseries/1 JSONL series (written by
// the telemetry sampler, docs/OBSERVABILITY.md) into per-cycle tables and
// flag anomalous cycles.
//
//   gridse_stats <timeseries.jsonl | telemetry-dir> [--out report.md]
//                [--mad-k K]
//
// The report is GitHub-flavoured markdown (append it to
// $GITHUB_STEP_SUMMARY in CI). A cycle is flagged when any of:
//   latency    — cycle total is a robust outlier (median ± K·MAD, K=5)
//   iterations — per-cycle Gauss-Newton iteration delta is a robust outlier
//   retries    — exchange.retries delta exceeds the typical cycle (burst)
//   degraded   — the combine ran without one or more subsystems
//   slo        — the configured cycle deadline was missed
//   remap      — cluster membership changed (participants or dead set)
//
// When given a directory the tool reads <dir>/timeseries.jsonl and also
// lists any flight-<cycle>.json post-mortems the flight recorder dropped.
// Exit codes: 0 = report written (anomalies are informational), 2 = bad
// usage or unreadable/invalid input.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/trace/json_mini.hpp"
#include "util/error.hpp"

namespace {

namespace fs = std::filesystem;
using gridse::obs::jsonm::Value;

/// One parsed "cycle" record (interval records are skipped: they overlap
/// the cycle deltas by design and would double-count).
struct CycleRow {
  std::int64_t cycle = -1;
  std::int64_t epoch = -1;
  std::size_t participants = 0;
  std::vector<std::int64_t> degraded;
  std::vector<std::int64_t> dead;
  double step1_ms = 0.0;
  double exchange_ms = 0.0;
  double step2_ms = 0.0;
  double combine_ms = 0.0;
  double total_ms = 0.0;
  double iterations = 0.0;  ///< Gauss-Newton iteration delta this cycle
  double retries = 0.0;     ///< exchange.retries delta this cycle
  bool slo_missed = false;
  std::vector<std::string> flags;  ///< anomaly labels, filled by analyze()
};

double number_at(const Value& obj, const char* key, double fallback = 0.0) {
  const Value* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::vector<std::int64_t> int_array_at(const Value& obj, const char* key) {
  std::vector<std::int64_t> out;
  const Value* v = obj.find(key);
  if (v != nullptr && v->is_array()) {
    for (const Value& item : v->array) {
      out.push_back(static_cast<std::int64_t>(item.number));
    }
  }
  return out;
}

/// Counter delta by name from the record's sparse "counters" object.
double counter_at(const Value& record, const std::string& name) {
  const Value* counters = record.find("counters");
  if (counters == nullptr) {
    return 0.0;
  }
  const Value* v = counters->find(name);
  return v != nullptr ? v->number : 0.0;
}

double median_of(std::vector<double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  return xs[mid];
}

/// Median absolute deviation — the robust spread estimate the outlier test
/// is built on. Not scaled to sigma; the K threshold absorbs the constant.
double mad_of(const std::vector<double>& xs, double median) {
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (const double x : xs) {
    dev.push_back(std::fabs(x - median));
  }
  return median_of(std::move(dev));
}

/// Robust outlier test: |x - median| > K·MAD. A degenerate spread (MAD = 0,
/// e.g. all-identical iteration counts) falls back to a relative band so a
/// single wild cycle in an otherwise flat series is still caught.
bool is_outlier(double x, double median, double mad, double k) {
  if (mad > 0.0) {
    return std::fabs(x - median) > k * mad;
  }
  return median > 0.0 && std::fabs(x - median) > 0.5 * median;
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", ms);
  return buf;
}

std::string join_ints(const std::vector<std::int64_t>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) {
      out += " ";
    }
    out += std::to_string(xs[i]);
  }
  return out.empty() ? "-" : out;
}

std::string join_flags(const std::vector<std::string>& flags) {
  std::string out;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += flags[i];
  }
  return out.empty() ? "-" : out;
}

/// Fill each row's anomaly flags from the whole series.
void analyze(std::vector<CycleRow>& rows, double k) {
  std::vector<double> totals;
  std::vector<double> iters;
  std::vector<double> retries;
  totals.reserve(rows.size());
  for (const CycleRow& r : rows) {
    totals.push_back(r.total_ms);
    iters.push_back(r.iterations);
    retries.push_back(r.retries);
  }
  const double total_med = median_of(totals);
  const double total_mad = mad_of(totals, total_med);
  const double iter_med = median_of(iters);
  const double iter_mad = mad_of(iters, iter_med);
  const double retry_med = median_of(retries);

  std::size_t prev_participants = rows.empty() ? 0 : rows[0].participants;
  std::vector<std::int64_t> prev_dead;
  for (CycleRow& r : rows) {
    if (is_outlier(r.total_ms, total_med, total_mad, k)) {
      r.flags.push_back("latency");
    }
    if (is_outlier(r.iterations, iter_med, iter_mad, k)) {
      r.flags.push_back("iterations");
    }
    // Retry burst: meaningfully above the typical cycle. With a quiet
    // baseline (median 0) any retry is a burst.
    if (r.retries > std::max(retry_med * 3.0, retry_med + 2.0) ||
        (retry_med == 0.0 && r.retries > 0.0)) {
      r.flags.push_back("retries");
    }
    if (!r.degraded.empty()) {
      r.flags.push_back("degraded");
    }
    if (r.slo_missed) {
      r.flags.push_back("slo");
    }
    // Membership *changes* only — a dead cluster that stays dead shows in
    // the table column but does not re-flag every following cycle.
    if (r.participants != prev_participants || r.dead != prev_dead) {
      r.flags.push_back("remap");
    }
    prev_participants = r.participants;
    prev_dead = r.dead;
  }
}

int run(int argc, char** argv) {
  std::string input;
  std::string out_path = "telemetry_report.md";
  double mad_k = 5.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--mad-k" && i + 1 < argc) {
      mad_k = std::stod(argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: gridse_stats <timeseries.jsonl | telemetry-dir> "
                   "[--out report.md] [--mad-k K]\n");
      return 2;
    } else {
      input = arg;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: gridse_stats <timeseries.jsonl | telemetry-dir> "
                 "[--out report.md] [--mad-k K]\n");
    return 2;
  }

  // Directory input: the sampler's layout. Pick up the series plus any
  // flight-recorder post-mortems next to it.
  std::vector<std::string> flights;
  fs::path series = input;
  if (fs::is_directory(series)) {
    for (const auto& entry : fs::directory_iterator(series)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("flight-", 0) == 0 &&
          entry.path().extension() == ".json") {
        flights.push_back(name);
      }
    }
    std::sort(flights.begin(), flights.end());
    series /= "timeseries.jsonl";
  }
  std::ifstream in(series);
  if (!in) {
    std::fprintf(stderr, "cannot read '%s'\n", series.string().c_str());
    return 2;
  }

  std::string schema = "?";
  std::size_t intervals = 0;
  std::vector<CycleRow> rows;
  std::map<std::string, double> counter_totals;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    Value record;
    try {
      record = gridse::obs::jsonm::parse(line);
    } catch (const gridse::Error& e) {
      std::fprintf(stderr, "%s:%zu: %s\n", series.string().c_str(), lineno,
                   e.what());
      return 2;
    }
    if (const Value* s = record.find("schema"); s != nullptr) {
      schema = s->text;  // header record
      continue;
    }
    const Value* kind = record.find("kind");
    if (kind == nullptr || kind->text == "interval") {
      intervals += kind != nullptr;
      continue;
    }
    CycleRow row;
    row.cycle = static_cast<std::int64_t>(number_at(record, "cycle", -1));
    row.epoch = static_cast<std::int64_t>(number_at(record, "epoch", -1));
    row.participants = int_array_at(record, "participants").size();
    row.degraded = int_array_at(record, "degraded_subsystems");
    row.dead = int_array_at(record, "dead_clusters");
    if (const Value* phases = record.find("phase_seconds");
        phases != nullptr) {
      row.step1_ms = number_at(*phases, "step1") * 1e3;
      row.exchange_ms = number_at(*phases, "exchange") * 1e3;
      row.step2_ms = number_at(*phases, "step2") * 1e3;
      row.combine_ms = number_at(*phases, "combine") * 1e3;
      row.total_ms = number_at(*phases, "total") * 1e3;
    }
    if (const Value* hists = record.find("histograms"); hists != nullptr) {
      if (const Value* gn = hists->find("wls.gauss_newton_iterations");
          gn != nullptr) {
        row.iterations = number_at(*gn, "sum");
      }
    }
    row.retries = counter_at(record, "exchange.retries");
    if (const Value* missed = record.find("slo_deadline_missed");
        missed != nullptr) {
      row.slo_missed = missed->boolean;
    }
    if (const Value* counters = record.find("counters"); counters != nullptr) {
      for (const auto& [name, delta] : counters->object) {
        counter_totals[name] += delta.number;
      }
    }
    rows.push_back(std::move(row));
  }
  if (schema != "gridse-timeseries/1") {
    std::fprintf(stderr, "'%s' is not a gridse-timeseries/1 file (schema %s)\n",
                 series.string().c_str(), schema.c_str());
    return 2;
  }
  analyze(rows, mad_k);

  std::size_t anomalous = 0;
  for (const CycleRow& r : rows) {
    anomalous += !r.flags.empty();
  }

  std::string md;
  md += "## Telemetry report\n\n";
  md += "- series: `" + series.string() + "` (" + schema + ")\n";
  md += "- cycles: " + std::to_string(rows.size());
  if (intervals > 0) {
    md += " (+" + std::to_string(intervals) + " wall-clock interval samples)";
  }
  md += "\n- anomalous cycles: " + std::to_string(anomalous) + "\n";
  md += "- slo.cycle_deadline_missed: " +
        std::to_string(static_cast<std::int64_t>(
            counter_totals["slo.cycle_deadline_missed"])) +
        "\n";
  if (!flights.empty()) {
    md += "- flight recordings:";
    for (const std::string& f : flights) {
      md += " `" + f + "`";
    }
    md += "\n";
  }
  md += "\n| cycle | epoch | parts | total ms | step1 | exchange | step2 | "
        "combine | GN iters | retries | degraded | dead | flags |\n";
  md += "|---|---|---|---|---|---|---|---|---|---|---|---|---|\n";
  for (const CycleRow& r : rows) {
    md += "| " + std::to_string(r.cycle);
    md += " | " + (r.epoch >= 0 ? std::to_string(r.epoch) : std::string("-"));
    md += " | " + std::to_string(r.participants);
    md += " | " + fmt_ms(r.total_ms);
    md += " | " + fmt_ms(r.step1_ms);
    md += " | " + fmt_ms(r.exchange_ms);
    md += " | " + fmt_ms(r.step2_ms);
    md += " | " + fmt_ms(r.combine_ms);
    md += " | " + std::to_string(static_cast<std::int64_t>(r.iterations));
    md += " | " + std::to_string(static_cast<std::int64_t>(r.retries));
    md += " | " + join_ints(r.degraded);
    md += " | " + join_ints(r.dead);
    md += " | " + join_flags(r.flags) + " |\n";
  }
  if (anomalous > 0) {
    md += "\n### Anomalous cycles\n\n";
    for (const CycleRow& r : rows) {
      if (r.flags.empty()) {
        continue;
      }
      md += "- cycle " + std::to_string(r.cycle) + ": " +
            join_flags(r.flags) + " (total " + fmt_ms(r.total_ms) + " ms, " +
            std::to_string(static_cast<std::int64_t>(r.iterations)) +
            " GN iterations, " +
            std::to_string(static_cast<std::int64_t>(r.retries)) +
            " retries)\n";
    }
  }

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", out_path.c_str());
    return 2;
  }
  out << md;
  std::printf("wrote %s (%zu cycles, %zu anomalous)\n", out_path.c_str(),
              rows.size(), anomalous);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
