// gridse_report — run a DSE case end to end and publish the observability
// report the paper's evaluation tables are read from.
//
//   gridse_report [--case ieee118|wecc37] [--clusters K] [--cycles N]
//                 [--transport inproc|tcp|medici|direct] [--rounds R]
//                 [--out obs_report.json] [--trace-dir DIR] [--table]
//                 [--telemetry-dir DIR] [--cycle-deadline-ms MS]
//                 [--recovery 0|1] [--kill-cluster C --kill-cycle N]
//
// The service-run flags drive a long-running estimation scenario: with
// --telemetry-dir every cycle appends a gridse-timeseries/1 record (and
// refreshes the live metrics.prom exposition); with --recovery plus
// --kill-cluster/--kill-cycle, cluster C is killed right before cycle N so
// the run exercises remap/degraded cycles and the flight recorder writes
// flight-N.json (analyze with gridse_stats).
//
// The report (schema "gridse-obs-report/1") carries two views of the same
// run: per-cycle phase timings and byte counts in the shape of the paper's
// Table III/IV rows, and the full metrics-registry snapshot (spans,
// counters, gauges, histograms) accumulated across all cycles. With
// --table the human-readable registry dump is also printed to stdout.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "io/synthetic.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace gridse;

struct Args {
  std::map<std::string, std::string> options;
  bool table = false;
  bool bad = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--table") {
      args.table = true;
    } else if (key.rfind("--", 0) == 0 && i + 1 < argc) {
      args.options[key.substr(2)] = argv[++i];
    } else {
      args.bad = true;
    }
  }
  return args;
}

int opt_int(const Args& a, const std::string& key, int fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end() ? fallback : std::stoi(it->second);
}

std::string opt_str(const Args& a, const std::string& key,
                    const std::string& fallback) {
  const auto it = a.options.find(key);
  return it == a.options.end() ? fallback : it->second;
}

std::string fmt_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: gridse_report [--case ieee118|wecc37] [--clusters K]\n"
      "                     [--cycles N] [--transport inproc|tcp|medici|"
      "direct]\n"
      "                     [--rounds R] [--out obs_report.json]\n"
      "                     [--trace-dir DIR] [--table]\n"
      "                     [--telemetry-dir DIR] [--cycle-deadline-ms MS]\n"
      "                     [--recovery 0|1] [--kill-cluster C "
      "--kill-cycle N]\n");
}

int run(const Args& args) {
  const std::string case_name = opt_str(args, "case", "ieee118");
  io::GeneratedCase generated;
  if (case_name == "ieee118") {
    generated = io::ieee118_dse(2012);
  } else if (case_name == "wecc37") {
    generated = io::wecc37(37);
  } else {
    std::fprintf(stderr, "unknown case '%s' (builtin decomposed cases only)\n",
                 case_name.c_str());
    return 2;
  }

  core::SystemConfig config;
  config.mapping.num_clusters = opt_int(args, "clusters", 3);
  const std::string transport = opt_str(args, "transport", "medici");
  config.transport = transport == "tcp"      ? core::Transport::kTcp
                     : transport == "medici" ? core::Transport::kMedici
                     : transport == "direct" ? core::Transport::kMediciDirect
                                             : core::Transport::kInproc;
  config.dse.step2_rounds = opt_int(args, "rounds", 1);
  const int cycles = opt_int(args, "cycles", 3);

  // Per-rank distributed-trace files land here when the system is torn
  // down; merge them with gridse_trace (docs/OBSERVABILITY.md).
  config.trace_dir = opt_str(args, "trace-dir", "");
  if (!config.trace_dir.empty() && !obs::kEnabled) {
    std::fprintf(stderr,
                 "note: built with GRIDSE_OBS=OFF; no trace files will be "
                 "written to '%s'\n",
                 config.trace_dir.c_str());
  }

  // Per-cycle telemetry + flight recorder (docs/OBSERVABILITY.md). The SLO
  // deadline flows through config.telemetry.slo into the driver.
  config.telemetry.dir = opt_str(args, "telemetry-dir", "");
  config.telemetry.slo.cycle_deadline =
      std::chrono::milliseconds(opt_int(args, "cycle-deadline-ms", 0));
  if (!config.telemetry.dir.empty() && !obs::kEnabled) {
    std::fprintf(stderr,
                 "note: built with GRIDSE_OBS=OFF; no telemetry will be "
                 "written to '%s'\n",
                 config.telemetry.dir.c_str());
  }

  // Recovery service scenario: kill cluster C right before cycle N (0-based
  // cycle index) so the heartbeat/remap machinery — and the telemetry
  // flight recorder — get exercised deterministically.
  const bool recovery = opt_int(args, "recovery", 0) != 0;
  const int kill_cluster = opt_int(args, "kill-cluster", -1);
  const int kill_cycle = opt_int(args, "kill-cycle", -1);
  if (recovery) {
    config.resilience.recovery.enabled = true;
    if (config.resilience.exchange_deadline.count() == 0) {
      config.resilience.exchange_deadline = std::chrono::milliseconds(2000);
    }
  }
  if (kill_cluster >= 0 && !recovery) {
    std::fprintf(stderr, "--kill-cluster requires --recovery 1\n");
    return 2;
  }

  // Drop anything a previous run in this process accumulated so the report
  // covers exactly the cycles below.
  obs::MetricsRegistry::global().reset();

  core::DseSystem system(std::move(generated), config);
  std::vector<core::CycleReport> reports;
  reports.reserve(static_cast<std::size_t>(cycles));
  bool all_converged = true;
  for (int i = 0; i < cycles; ++i) {
    if (kill_cluster >= 0 && i == kill_cycle) {
      std::printf("killing cluster %d before cycle %d\n", kill_cluster, i);
      system.kill_cluster(kill_cluster);
    }
    reports.push_back(system.run_cycle(i * 30.0));
    const core::CycleReport& rep = reports.back();
    all_converged = all_converged && rep.dse.all_converged;
    std::printf("cycle %d: %s | step1 %.1f ms | exchange %.1f ms | "
                "step2 %.1f ms | combine %.1f ms | %zu bytes\n",
                i + 1, rep.dse.all_converged ? "converged" : "FAILED",
                rep.dse.step1_seconds * 1e3, rep.dse.exchange_seconds * 1e3,
                rep.dse.step2_seconds * 1e3, rep.dse.combine_seconds * 1e3,
                rep.dse.bytes_sent);
  }

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"gridse-obs-report/1\",\n";
  json += "  \"case\": \"" + case_name + "\",\n";
  json += "  \"clusters\": " + std::to_string(config.mapping.num_clusters) +
          ",\n";
  json += "  \"transport\": \"" + transport + "\",\n";
  json += "  \"cycles\": " + std::to_string(cycles) + ",\n";
  json += "  \"step2_rounds\": " + std::to_string(config.dse.step2_rounds) +
          ",\n";
  json += std::string("  \"obs_enabled\": ") +
          (obs::kEnabled ? "true" : "false") + ",\n";
  json += std::string("  \"all_converged\": ") +
          (all_converged ? "true" : "false") + ",\n";
  json += "  \"cycle_rows\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const core::CycleReport& rep = reports[i];
    json += "    {\"cycle\": " + std::to_string(i + 1);
    json += std::string(", \"converged\": ") +
            (rep.dse.all_converged ? "true" : "false");
    json += ", \"step1_seconds\": " + fmt_double(rep.dse.step1_seconds);
    json += ", \"exchange_seconds\": " + fmt_double(rep.dse.exchange_seconds);
    json += ", \"step2_seconds\": " + fmt_double(rep.dse.step2_seconds);
    json += ", \"combine_seconds\": " + fmt_double(rep.dse.combine_seconds);
    json += ", \"total_seconds\": " + fmt_double(rep.dse.total_seconds);
    json += ", \"bytes_sent\": " + std::to_string(rep.dse.bytes_sent);
    json += ", \"max_vm_error\": " + fmt_double(rep.max_vm_error);
    json += ", \"max_angle_error\": " + fmt_double(rep.max_angle_error);
    json += i + 1 < reports.size() ? "},\n" : "}\n";
  }
  json += "  ],\n";
  json += "  \"metrics\": " +
          obs::snapshot_to_json(obs::MetricsRegistry::global().snapshot(),
                                /*indent=*/2) +
          "\n";
  json += "}\n";

  const std::string out_path = opt_str(args, "out", "obs_report.json");
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), json.size());

  if (args.table) {
    std::fputs(obs::MetricsRegistry::global().to_table().c_str(), stdout);
  }
  return all_converged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.bad) {
    usage();
    return 2;
  }
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
