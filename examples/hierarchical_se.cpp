// Hierarchical state estimation over the same architecture — the structure
// industry runs today (paper §I: balancing authorities feed a reliability
// coordinator) contrasted with the decentralized peer-to-peer DSE on the
// same measurement frame.
//
//   $ ./examples/hierarchical_se
#include <cstdio>

#include "analysis/debug_sync.hpp"
#include "core/dse_driver.hpp"
#include "core/hierarchical.hpp"
#include "decomp/sensitivity.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/synthetic.hpp"
#include "runtime/inproc_comm.hpp"
#include "util/rng.hpp"

int main() {
  using namespace gridse;

  const io::GeneratedCase generated = io::ieee118_dse();
  decomp::Decomposition d =
      decomp::decompose(generated.kase.network, generated.subsystem_of_bus);
  decomp::analyze_sensitivity(generated.kase.network, d, {});
  const grid::PowerFlowResult pf =
      grid::solve_power_flow(generated.kase.network);

  grid::MeasurementPlan plan;
  for (const decomp::Subsystem& s : d.subsystems) {
    plan.pmu_buses.push_back(s.buses.front());
  }
  grid::MeasurementGenerator gen(generated.kase.network, plan);
  Rng rng(17);
  const grid::MeasurementSet meas = gen.generate(pf.state, rng);
  const std::vector<graph::PartId> assignment{0, 0, 0, 1, 1, 1, 2, 2, 2};

  std::printf("IEEE 118-bus system, 9 subsystems on 3 clusters, one SCADA "
              "frame (%zu measurements)\n\n",
              meas.size());

  // --- hierarchical: balancing authorities -> reliability coordinator -------
  {
    core::HierarchicalDriver driver(generated.kase.network, d, {});
    runtime::InprocWorld world(3);
    analysis::Mutex mutex{"hierarchical_se::mutex"};
    core::HierarchicalResult result;
    world.run([&](runtime::Communicator& c) {
      core::HierarchicalResult r = driver.run(c, meas, assignment);
      if (c.rank() == 0) {
        analysis::LockGuard lock(mutex);
        result = std::move(r);
      }
    });
    std::printf("hierarchical (coordinator at rank 0):\n");
    std::printf("  local estimations: %.1f ms | coordination pass: %.1f ms\n",
                result.step1_seconds * 1e3, result.coordination_seconds * 1e3);
    std::printf("  bytes through the coordinator: %zu\n", result.bytes_sent);
    std::printf("  max |V| error: %.2e pu\n\n",
                grid::max_vm_error(result.state, pf.state));
  }

  // --- decentralized: peer-to-peer DSE ---------------------------------------
  {
    core::DseDriver driver(generated.kase.network, d, {});
    runtime::InprocWorld world(3);
    analysis::Mutex mutex{"hierarchical_se::mutex"};
    core::DseResult result;
    world.run([&](runtime::Communicator& c) {
      core::DseResult r = driver.run(c, meas, assignment);
      if (c.rank() == 0) {
        analysis::LockGuard lock(mutex);
        result = std::move(r);
      }
    });
    std::printf("decentralized DSE (no coordinator):\n");
    std::printf("  step1 %.1f ms | exchange %.1f ms | step2 %.1f ms\n",
                result.step1_seconds * 1e3, result.exchange_seconds * 1e3,
                result.step2_seconds * 1e3);
    std::printf("  peer-to-peer bytes: %zu\n", result.bytes_sent);
    std::printf("  max |V| error: %.2e pu\n\n",
                grid::max_vm_error(result.state, pf.state));
  }

  std::printf("The same architecture hosts both data-exchange structures "
              "(paper §IV-A): only the\nassignment of who talks to whom "
              "changes, not the estimators or the middleware.\n");
  return 0;
}
