// Mirrors Figures 6 and 7 of the paper: two state estimators on different
// "clusters" exchange boundary-bus solutions through MeDICi pipelines with
// TCP endpoints, using the MW_Client_Send / MW_Client_Recv pattern.
//
//   $ ./examples/middleware_pipeline
#include <cstdio>
#include <memory>
#include <thread>

#include "core/local_estimator.hpp"
#include "core/serialize.hpp"
#include "decomp/sensitivity.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/synthetic.hpp"
#include "medici/mw_client.hpp"
#include "medici/pipeline.hpp"
#include "util/rng.hpp"

namespace {

using namespace gridse;

/// A started one-way pipeline plus its resolved inbound endpoint.
struct Channel {
  std::unique_ptr<medici::MifPipeline> pipeline;
  medici::EndpointUrl inbound;
};

Channel make_channel(const medici::EndpointUrl& destination) {
  Channel ch;
  ch.pipeline = std::make_unique<medici::MifPipeline>();
  auto& conn = ch.pipeline->add_mif_connector(medici::EndpointProtocol::kTcp);
  conn.set_property("tcpProtocol", "EOFProtocol");
  auto& se = ch.pipeline->add_mif_component("SESocket");
  se.set_in_name_endpoint("tcp://127.0.0.1:0");
  se.set_out_hal_endpoint(destination.to_string());
  ch.pipeline->start();
  ch.inbound = se.inbound();
  return ch;
}

}  // namespace

int main() {
  // A 2-subsystem interconnection: each side runs its own local estimation.
  io::SyntheticSpec spec;
  spec.subsystem_sizes = {14, 14};
  spec.decomposition_edges = {{0, 1}};
  spec.seed = 7;
  const io::GeneratedCase generated = io::generate_synthetic(spec);
  decomp::Decomposition d =
      decomp::decompose(generated.kase.network, generated.subsystem_of_bus);
  decomp::analyze_sensitivity(generated.kase.network, d, {});

  const grid::PowerFlowResult pf =
      grid::solve_power_flow(generated.kase.network);
  grid::MeasurementPlan plan;
  plan.pmu_buses = {d.subsystems[0].buses.front(),
                    d.subsystems[1].buses.front()};
  grid::MeasurementGenerator gen(generated.kase.network, plan);
  Rng rng(3);
  const grid::MeasurementSet meas = gen.generate(pf.state, rng);

  // --- each estimator is identified by a URL (paper §IV-A) ------------------
  medici::MwClient nwiceb_se(0);   // estimator on "Nwiceb"
  medici::MwClient chinook_se(1);  // estimator on "Chinook"
  std::printf("estimator 0 URL: %s\n",
              nwiceb_se.endpoint().to_string().c_str());
  std::printf("estimator 1 URL: %s\n",
              chinook_se.endpoint().to_string().c_str());

  // --- Fig. 7: one pipeline per direction ------------------------------------
  const Channel to_chinook = make_channel(chinook_se.endpoint());
  const Channel to_nwiceb = make_channel(nwiceb_se.endpoint());
  std::printf("pipeline 0->1 inbound endpoint: %s\n",
              to_chinook.inbound.to_string().c_str());
  std::printf("pipeline 1->0 inbound endpoint: %s\n",
              to_nwiceb.inbound.to_string().c_str());

  // --- Fig. 6: per-estimator DSE with MW_Client_Send / MW_Client_Recv -------
  const auto run_side = [&](int side, medici::MwClient& client,
                            const medici::EndpointUrl& pipeline_inbound) {
    core::LocalEstimator estimator(generated.kase.network, d, side,
                                   core::LocalEstimatorOptions{});
    const core::LocalSolveInfo step1 = estimator.run_step1(meas);
    std::printf("[SE %d] DSE Step 1: %s, %zu measurements, %d iterations\n",
                side, step1.converged ? "converged" : "FAILED",
                step1.num_measurements, step1.gauss_newton_iterations);

    // MW_Client_Send(MeDICi, neighbor, step1_solution)
    const auto records = estimator.step1_boundary_states();
    client.send(pipeline_inbound, /*tag=*/1, core::encode_bus_states(records));

    // pseudo[neighbor] <- MW_Client_Recv(MeDICi, neighbor)
    const runtime::Message msg = client.recv(runtime::kAnySource, 1);
    const auto pseudo = core::decode_bus_states(msg.payload);
    std::printf("[SE %d] received %zu pseudo measurements from SE %d via "
                "MeDICi\n",
                side, pseudo.size(), msg.source);

    const core::LocalSolveInfo step2 = estimator.run_step2(meas, pseudo);
    std::printf("[SE %d] DSE Step 2: %s, %zu measurements (incl. pseudo)\n",
                side, step2.converged ? "converged" : "FAILED",
                step2.num_measurements);

    double max_err = 0.0;
    for (const core::BusStateRecord& rec : estimator.final_states()) {
      max_err = std::max(
          max_err,
          std::abs(rec.vm - pf.state.vm[static_cast<std::size_t>(rec.bus)]));
    }
    std::printf("[SE %d] final max |V| error on own buses: %.2e pu\n", side,
                max_err);
  };

  std::thread side0(
      [&] { run_side(0, nwiceb_se, to_chinook.inbound); });
  std::thread side1(
      [&] { run_side(1, chinook_se, to_nwiceb.inbound); });
  side0.join();
  side1.join();

  std::printf("relayed through MeDICi: %zu messages, %zu bytes (0->1); "
              "%zu messages, %zu bytes (1->0)\n",
              to_chinook.pipeline->stats().messages,
              to_chinook.pipeline->stats().bytes,
              to_nwiceb.pipeline->stats().messages,
              to_nwiceb.pipeline->stats().bytes);
  return 0;
}
