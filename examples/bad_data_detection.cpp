// Bad-data processing workflow on the IEEE 14-bus system: a gross error is
// injected into one telemetered flow, detected with the chi-square test,
// identified with the largest-normalized-residual method, removed, and the
// state re-estimated (Abur & Exposito, the paper's reference [19]).
//
//   $ ./examples/bad_data_detection
#include <cstdio>

#include "estimation/bad_data.hpp"
#include "estimation/observability.hpp"
#include "estimation/wls.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "util/rng.hpp"

int main() {
  using namespace gridse;

  const io::Case kase = io::ieee14();
  const grid::PowerFlowResult pf = grid::solve_power_flow(kase.network);
  grid::MeasurementGenerator gen(kase.network, {});
  Rng rng(9);
  grid::MeasurementSet scan = gen.generate(pf.state, rng);

  const estimation::WlsEstimator estimator(kase.network);

  // observability sanity check before estimating
  const estimation::ObservabilityReport obs = estimation::check_observability(
      estimator.model(), scan);
  std::printf("observability: %s (m=%d, n=%d, redundancy %.2f)\n",
              obs.observable ? "observable" : "NOT OBSERVABLE",
              obs.num_measurements, obs.num_states, obs.redundancy);

  // corrupt one measurement with a gross error (sensor failure)
  const std::size_t victim = 12;
  std::printf("\ninjecting gross error into measurement #%zu (%s at bus %d): "
              "%.4f -> %.4f\n",
              victim, grid::meas_type_name(scan.items[victim].type),
              kase.network.bus(scan.items[victim].bus).external_id,
              scan.items[victim].value, scan.items[victim].value + 0.6);
  scan.items[victim].value += 0.6;

  // detect
  const estimation::WlsResult suspect = estimator.estimate(scan);
  const estimation::ChiSquareTest chi = estimation::chi_square_test(
      suspect, estimator.model().state_index().size());
  std::printf("chi-square: J = %.1f vs threshold %.1f -> %s\n", chi.objective,
              chi.threshold,
              chi.suspect_bad_data ? "BAD DATA SUSPECTED" : "clean");

  // identify
  const estimation::BadDataHit hit =
      estimation::largest_normalized_residual(estimator, scan, suspect);
  std::printf("largest normalized residual: r_N = %.1f at measurement #%zu "
              "(%s)\n",
              hit.normalized_residual, hit.measurement_index,
              hit.measurement_index == victim ? "CORRECTLY IDENTIFIED"
                                              : "wrong measurement!");

  // remove and re-estimate
  const estimation::BadDataScrub scrub =
      estimation::detect_and_remove(estimator, scan);
  std::printf("scrubbed %zu measurement(s); re-estimated: %s\n",
              scrub.removed.size(),
              scrub.result.converged ? "converged" : "failed");
  std::printf("max |V| error: %.2e pu with bad data -> %.2e pu after "
              "scrubbing\n",
              grid::max_vm_error(suspect.state, pf.state),
              grid::max_vm_error(scrub.result.state, pf.state));
  return 0;
}
