// Real-time tracking: the DSE follows a moving operating point across a
// morning load ramp, one cycle per SCADA frame — the paper's operational
// setting ("State estimation needs to be run ... in real time to support
// timely data updates", §VI), with the weight model re-mapping subsystems
// as frame noise changes.
//
//   $ ./examples/timeseries_tracking [num_frames]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/architecture.hpp"

int main(int argc, char** argv) {
  using namespace gridse;
  const int frames = argc > 1 ? std::atoi(argv[1]) : 8;

  core::SystemConfig config;
  config.mapping.num_clusters = 3;
  // A morning ramp: system load rises 20% over the window, with a little
  // inter-frame wobble.
  config.load_profile = [](double t) {
    return 1.0 + 0.20 * (t / 1800.0) + 0.01 * std::sin(t / 40.0);
  };

  core::DseSystem system(io::ieee118_dse(), config);
  std::printf("frame |  t (s) | load  | noise x | imbal | moved | bytes | "
              "max |V| err | tracking\n");
  double prev_theta1 = 0.0;
  for (int f = 0; f < frames; ++f) {
    const double t = f * 210.0;  // one frame per SCADA refresh window
    const core::CycleReport rep = system.run_cycle(t);
    const double theta1 = system.true_state().theta[60];  // a mid-system bus
    std::printf("%5d | %6.0f | %.3f |  %.3f  | %.3f |   %zu   | %5zu |  "
                "%.2e  | bus-61 angle %+.4f rad (moved %+.4f)\n",
                f + 1, t, config.load_profile(t), rep.map_step1.noise_level,
                rep.map_step1.partition.load_imbalance,
                rep.redistribution.moves.size(), rep.dse.bytes_sent,
                rep.max_vm_error, theta1, theta1 - prev_theta1);
    prev_theta1 = theta1;
    if (!rep.dse.all_converged) {
      std::printf("frame %d DID NOT CONVERGE\n", f + 1);
      return 1;
    }
  }
  std::printf("\nThe estimator tracked a %0.f%% load ramp across %d frames "
              "with per-frame re-mapping.\n",
              20.0, frames);
  return 0;
}
