// The paper's headline scenario end-to-end: the IEEE-118-style system
// decomposed into 9 subsystems (Fig. 3), mapped onto the 3-cluster testbed
// with the Expression (1)-(5) weight model, and estimated with the two-step
// distributed algorithm over the middleware transport.
//
//   $ ./examples/dse_ieee118 [num_cycles]
#include <cstdio>
#include <cstdlib>

#include "core/architecture.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace gridse;
  const int cycles = argc > 1 ? std::atoi(argv[1]) : 3;

  core::SystemConfig config;
  config.mapping.num_clusters = 3;          // Nwiceb, Catamount, Chinook
  config.transport = core::Transport::kMedici;  // through pipeline relays

  core::DseSystem system(io::ieee118_dse(), config);
  const decomp::Decomposition& d = system.decomposition();
  std::printf("decomposition: %d subsystems, %zu tie lines, diameter %d\n",
              d.num_subsystems(), d.tie_lines.size(),
              d.decomposition_graph().diameter());
  for (const decomp::Subsystem& s : d.subsystems) {
    std::printf("  subsystem %d: %2zu buses (%zu boundary, %zu sensitive "
                "internal -> gs=%d)\n",
                s.id + 1, s.buses.size(), s.boundary_buses.size(),
                s.sensitive_internal.size(), s.gs());
  }

  const char* cluster_names[] = {"Nwiceb", "Catamount", "Chinook"};
  for (int cycle = 0; cycle < cycles; ++cycle) {
    const double t = cycle * 30.0;  // a new SCADA frame every 30 s
    const core::CycleReport rep = system.run_cycle(t);

    std::printf("\n--- cycle %d (t=%.0fs, noise x=%.2f) ---\n", cycle + 1, t,
                rep.map_step1.noise_level);
    std::printf("mapping before Step 1 (imbalance %.3f):",
                rep.map_step1.partition.load_imbalance);
    for (int s = 0; s < d.num_subsystems(); ++s) {
      std::printf(" %d->%s", s + 1,
                  cluster_names[rep.map_step1.partition
                                    .assignment[static_cast<std::size_t>(s)]]);
    }
    std::printf("\nremap before Step 2 (imbalance %.3f): %d subsystem(s) "
                "moved, %s redistributed\n",
                rep.map_step2.partition.load_imbalance,
                static_cast<int>(rep.redistribution.moves.size()),
                format_bytes(rep.redistribution.total_bytes()).c_str());
    std::printf("DSE: %s | step1 %.1f ms, exchange %.1f ms, step2 %.1f ms, "
                "combine %.1f ms | %zu bytes exchanged\n",
                rep.dse.all_converged ? "converged" : "NOT CONVERGED",
                rep.dse.step1_seconds * 1e3, rep.dse.exchange_seconds * 1e3,
                rep.dse.step2_seconds * 1e3, rep.dse.combine_seconds * 1e3,
                rep.dse.bytes_sent);
    std::printf("accuracy vs truth: max |V| err %.2e pu, max angle err "
                "%.2e rad\n",
                rep.max_vm_error, rep.max_angle_error);

    const estimation::WlsResult central = system.centralized_reference();
    std::printf("centralized reference: max |V| err %.2e pu (DSE/central "
                "ratio %.2f)\n",
                grid::max_vm_error(central.state, system.true_state()),
                rep.max_vm_error /
                    grid::max_vm_error(central.state, system.true_state()));
  }
  return 0;
}
