// Quickstart: load the IEEE 14-bus case, synthesize one SCADA scan from the
// power-flow solution, and run the centralized WLS state estimator — the
// minimal end-to-end use of the library.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "estimation/bad_data.hpp"
#include "estimation/wls.hpp"
#include "grid/meas_generator.hpp"
#include "grid/powerflow.hpp"
#include "io/case14.hpp"
#include "util/rng.hpp"

int main() {
  using namespace gridse;

  // 1. Load a network model (the standard IEEE 14-bus test case ships with
  //    the library; load_case_file() reads the same format from disk).
  const io::Case kase = io::ieee14();
  std::printf("loaded %s: %d buses, %zu branches\n", kase.name.c_str(),
              kase.network.num_buses(), kase.network.num_branches());

  // 2. Solve a power flow to obtain the "true" operating state that the
  //    field measurements are drawn from.
  const grid::PowerFlowResult pf = grid::solve_power_flow(kase.network);
  std::printf("power flow converged in %d iterations (max mismatch %.2e)\n",
              pf.iterations, pf.max_mismatch);

  // 3. Synthesize one measurement scan: branch flows, bus injections and
  //    voltage magnitudes, with realistic Gaussian noise.
  grid::MeasurementGenerator generator(kase.network, grid::MeasurementPlan{});
  Rng rng(42);
  const grid::MeasurementSet scan = generator.generate(pf.state, rng);
  std::printf("synthesized %zu measurements (%d states -> redundancy %.1f)\n",
              scan.size(), 2 * kase.network.num_buses() - 1,
              static_cast<double>(scan.size()) /
                  (2 * kase.network.num_buses() - 1));

  // 4. Estimate the state with weighted least squares. The default solver is
  //    the paper's preconditioned conjugate gradient (IC(0) preconditioner).
  const estimation::WlsEstimator estimator(kase.network);
  const estimation::WlsResult result = estimator.estimate(scan);
  std::printf("WLS converged: %s after %d Gauss-Newton iterations "
              "(%d inner PCG iterations), J(x) = %.2f\n",
              result.converged ? "yes" : "no", result.iterations,
              result.inner_iterations, result.objective);

  // 5. Check estimate quality against the known truth and the chi-square
  //    bad-data test.
  std::printf("max |V| error: %.2e pu, max angle error: %.2e rad\n",
              grid::max_vm_error(result.state, pf.state),
              grid::max_angle_error(result.state, pf.state));
  const estimation::ChiSquareTest chi = estimation::chi_square_test(
      result, estimator.model().state_index().size());
  std::printf("chi-square test: J = %.1f vs threshold %.1f -> %s\n",
              chi.objective, chi.threshold,
              chi.suspect_bad_data ? "bad data suspected" : "clean");

  std::printf("\n  bus |   |V| est |  |V| true | angle est (deg) | angle true\n");
  for (grid::BusIndex b = 0; b < kase.network.num_buses(); ++b) {
    std::printf("  %3d |  %8.4f | %9.4f | %15.3f | %10.3f\n",
                kase.network.bus(b).external_id,
                result.state.vm[static_cast<std::size_t>(b)],
                pf.state.vm[static_cast<std::size_t>(b)],
                result.state.theta[static_cast<std::size_t>(b)] * 57.29578,
                pf.state.theta[static_cast<std::size_t>(b)] * 57.29578);
  }
  return result.converged ? 0 : 1;
}
