// Contingency analysis fed by distributed state estimation — the paper's
// motivation in one program ("These are critical inputs for other power
// system operational tools, such as contingency analysis", §I): run one DSE
// cycle, then screen all N-1 branch outages on the estimated system state
// using the counter-based dynamic load balancing of reference [2].
//
//   $ ./examples/contingency_analysis
#include <cstdio>

#include "analysis/debug_sync.hpp"
#include "apps/balancer.hpp"
#include "apps/contingency.hpp"
#include "core/architecture.hpp"
#include "runtime/inproc_comm.hpp"

int main() {
  using namespace gridse;

  // --- 1. estimate the system state distributedly ---------------------------
  core::SystemConfig config;
  config.mapping.num_clusters = 3;
  core::DseSystem system(io::ieee118_dse(), config);
  const core::CycleReport cycle = system.run_cycle(0.0);
  std::printf("DSE cycle: %s, max |V| error %.2e pu (state feeds the "
              "contingency screen)\n",
              cycle.dse.all_converged ? "converged" : "FAILED",
              cycle.max_vm_error);

  // --- 2. rate the branches from the estimated operating point --------------
  io::GeneratedCase generated = io::ieee118_dse();
  grid::assign_ratings_from_base_case(generated.kase.network, 1.25, 0.1);
  const grid::Network& network = generated.kase.network;

  // --- 3. N-1 screening with counter-based dynamic balancing ----------------
  const int tasks = static_cast<int>(network.num_branches());
  analysis::Mutex mutex{"contingency_analysis::mutex"};
  apps::ContingencyReport report;
  runtime::InprocWorld world(4);  // 1 counter process + 3 workers
  world.run([&](runtime::Communicator& comm) {
    const apps::BalanceStats stats =
        apps::run_dynamic(comm, tasks, [&](int t) {
          apps::ContingencyOutcome outcome = apps::evaluate_contingency(
              network, static_cast<std::size_t>(t));
          analysis::LockGuard lock(mutex);
          report.add(std::move(outcome));
        });
    if (comm.rank() > 0) {
      std::printf("  worker %d screened %d contingencies (%.1f ms busy)\n",
                  comm.rank(), stats.tasks_executed,
                  stats.busy_seconds * 1e3);
    }
  });

  // --- 4. report -------------------------------------------------------------
  std::printf("\nN-1 screening of %d branch outages:\n", tasks);
  std::printf("  insecure cases: %d (of which islanding: %d)\n",
              report.insecure_cases, report.islanding_cases);
  int worst_branch = -1;
  double worst = 0.0;
  for (const apps::ContingencyOutcome& o : report.outcomes) {
    if (!o.islanding && o.worst_loading > worst) {
      worst = o.worst_loading;
      worst_branch = static_cast<int>(o.outaged_branch);
    }
    if (!o.secure() && !o.islanding) {
      std::printf("  OVERLOAD after outage of branch %zu: %zu branch(es) "
                  "above rating (worst %.0f%%)\n",
                  o.outaged_branch, o.overloaded_branches.size(),
                  o.worst_loading * 100.0);
    }
  }
  if (worst_branch >= 0) {
    std::printf("  most stressing non-islanding outage: branch %d "
                "(post-contingency loading %.0f%%)\n",
                worst_branch, worst * 100.0);
  }
  return 0;
}
