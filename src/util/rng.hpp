#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace gridse {

/// Deterministic random source used throughout the library. Every consumer
/// takes an explicit `Rng&` (or a seed) so runs are reproducible; nothing in
/// the library reads global entropy.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Zero-mean Gaussian sample with the given standard deviation.
  double gaussian(double stddev);

  /// Gaussian with explicit mean.
  double gaussian(double mean, double stddev);

  /// True with probability p.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child stream; used to give each subsystem or
  /// worker its own deterministic sequence.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gridse
