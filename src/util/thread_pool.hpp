#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "analysis/assert.hpp"
#include "analysis/debug_sync.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace gridse {

/// Fixed-size worker pool. Used by the simulated cluster runtime to model
/// the worker processors on each site (paper §IV-A: the data processor
/// "dispatches the inputs to multiple worker processors on each site").
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves with the task's result (or
  /// exception). Throws InternalError once shutdown() has begun — a task
  /// enqueued into a stopping pool would silently never run.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      analysis::LockGuard lock(mutex_);
      if (stopping_) {
        throw InternalError("ThreadPool::submit after shutdown began");
      }
      queue_.emplace(QueuedTask{[task] { (*task)(); }
#if GRIDSE_OBS
                                ,
                                std::chrono::steady_clock::now()
#endif
      });
    }
    cv_.notify_one();
    return result;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// Exceptions from tasks propagate out of this call (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Drain the queue and join all workers (idempotent; also run by the
  /// destructor). After this returns, submit() throws.
  void shutdown();

  [[nodiscard]] std::size_t size() const { return num_threads_; }

 private:
  /// A queued task plus (when observability is on) its enqueue time, so
  /// worker pickup can report queue wait — the "dispatch to worker
  /// processors" latency of the paper's data processor.
  struct QueuedTask {
    std::function<void()> fn;
#if GRIDSE_OBS
    std::chrono::steady_clock::time_point enqueued;
#endif
  };

  void worker_loop();

  std::size_t num_threads_;
  analysis::Mutex mutex_{"ThreadPool::mutex_"};
  analysis::ConditionVariable cv_;
  std::vector<std::thread> workers_ GRIDSE_GUARDED_BY(mutex_);
  std::queue<QueuedTask> queue_ GRIDSE_GUARDED_BY(mutex_);
  bool stopping_ GRIDSE_GUARDED_BY(mutex_) = false;
};

}  // namespace gridse
