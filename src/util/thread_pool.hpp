#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gridse {

/// Fixed-size worker pool. Used by the simulated cluster runtime to model
/// the worker processors on each site (paper §IV-A: the data processor
/// "dispatches the inputs to multiple worker processors on each site").
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves with the task's result (or
  /// exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// Exceptions from tasks propagate out of this call (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace gridse
