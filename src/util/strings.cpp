#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace gridse {

std::vector<std::string> split(std::string_view s, char sep, bool keep_empty) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      if (i > start || keep_empty) {
        out.emplace_back(s.substr(start, i - start));
      }
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string format_bytes(std::size_t bytes) {
  const double b = static_cast<double>(bytes);
  if (b >= 1024.0 * 1024.0 * 1024.0) {
    return strfmt("%.1f GB", b / (1024.0 * 1024.0 * 1024.0));
  }
  if (b >= 1024.0 * 1024.0) {
    return strfmt("%.0f MB", b / (1024.0 * 1024.0));
  }
  if (b >= 1024.0) {
    return strfmt("%.0f KB", b / 1024.0);
  }
  return strfmt("%zu B", bytes);
}

}  // namespace gridse
