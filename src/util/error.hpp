#pragma once

#include <stdexcept>
#include <string>

namespace gridse {

/// Base exception for all library errors. Every throwing API documents the
/// subclass it throws; catching `gridse::Error` catches everything the
/// library can raise.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input data (case files, message payloads, bad dimensions).
class InvalidInput : public Error {
 public:
  explicit InvalidInput(const std::string& what) : Error(what) {}
};

/// An iterative numerical procedure failed to converge within its budget.
class ConvergenceFailure : public Error {
 public:
  explicit ConvergenceFailure(const std::string& what) : Error(what) {}
};

/// A communication-layer failure (socket error, closed channel, bad frame).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// Internal invariant violation; indicates a library bug, not a user error.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw InternalError(std::string("check failed: ") + expr + " at " + file +
                      ":" + std::to_string(line) +
                      (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace gridse

/// Internal invariant check that stays on in release builds; throws
/// `gridse::InternalError` on failure.
#define GRIDSE_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::gridse::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                   \
  } while (false)

#define GRIDSE_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::gridse::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)
