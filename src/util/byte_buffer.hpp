#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace gridse {

/// Growable byte buffer with typed append; the writing half of the wire
/// format used by the runtime and middleware layers. Values are encoded
/// little-endian native (all communication stays on one host/architecture in
/// this prototype, mirroring the paper's homogeneous cluster testbed).
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve_bytes) { bytes_.reserve(reserve_bytes); }

  template <typename T>
  void write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter::write requires a trivially copyable type");
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }

  void write_string(const std::string& s) {
    write(static_cast<std::uint64_t>(s.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    bytes_.insert(bytes_.end(), p, p + s.size());
  }

  template <typename T>
  void write_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter::write_vector requires trivially copyable elements");
    write(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(T));
  }

  void write_raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

  /// Move the accumulated bytes out, leaving the writer empty.
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Reading half of the wire format. Throws `InvalidInput` on truncation so a
/// malformed frame can never silently yield garbage.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteReader::read requires a trivially copyable type");
    require(sizeof(T));
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string read_string() {
    const auto n = read<std::uint64_t>();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  template <typename T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteReader::read_vector requires trivially copyable elements");
    const auto n = read<std::uint64_t>();
    // Divide rather than multiply: a corrupted length prefix near 2^64 would
    // wrap n * sizeof(T) and slip past the bounds check (then feed a huge
    // allocation). Corrupt frames must always surface as InvalidInput.
    if (n > (size_ - pos_) / sizeof(T)) {
      throw InvalidInput("ByteReader: truncated frame (need " +
                         std::to_string(n) + " elements of size " +
                         std::to_string(sizeof(T)) + ", have " +
                         std::to_string(size_ - pos_) + " bytes)");
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n != 0) {  // empty vector: v.data() may be null, and memcpy(null,..) is UB
      std::memcpy(v.data(), data_ + pos_,
                  static_cast<std::size_t>(n) * sizeof(T));
    }
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return v;
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == size_; }

 private:
  void require(std::uint64_t n) const {
    if (n > size_ - pos_) {
      throw InvalidInput("ByteReader: truncated frame (need " +
                         std::to_string(n) + " bytes, have " +
                         std::to_string(size_ - pos_) + ")");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace gridse
