#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace gridse {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GRIDSE_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  GRIDSE_CHECK_MSG(cells.size() == headers_.size(),
                   "row arity does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << " | ";
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out << "-+-";
    out << std::string(widths[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace gridse
