#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace gridse::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped. Thread-safe.
void set_level(Level level);
Level level();

/// Emit one log line (already formatted) at `level`. Thread-safe; lines are
/// never interleaved. Output goes to stderr so stdout stays clean for
/// benchmark tables.
void write(Level level, const std::string& message);

namespace detail {

/// Stream-style log statement builder; emits on destruction.
class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { write(level_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace gridse::log

#define GRIDSE_LOG(lvl)                                     \
  if (::gridse::log::level() <= ::gridse::log::Level::lvl)  \
  ::gridse::log::detail::LineBuilder(::gridse::log::Level::lvl)

#define GRIDSE_DEBUG GRIDSE_LOG(kDebug)
#define GRIDSE_INFO GRIDSE_LOG(kInfo)
#define GRIDSE_WARN GRIDSE_LOG(kWarn)
#define GRIDSE_ERROR GRIDSE_LOG(kError)
