#pragma once

#include <chrono>

namespace gridse {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  using Clock = std::chrono::steady_clock;

  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch from zero.
  void reset() { start_ = Clock::now(); }

  /// Elapsed wall time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed wall time in milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  Clock::time_point start_;
};

}  // namespace gridse
