#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace gridse {

ThreadPool::ThreadPool(std::size_t num_threads) {
  GRIDSE_CHECK_MSG(num_threads > 0, "thread pool needs at least one worker");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) {
    f.get();
  }
}

}  // namespace gridse
