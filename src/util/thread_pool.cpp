#include "util/thread_pool.hpp"

#include <algorithm>

#if GRIDSE_OBS
#include "obs/trace/trace.hpp"
#endif

namespace gridse {

ThreadPool::ThreadPool(std::size_t num_threads) : num_threads_(num_threads) {
  GRIDSE_CHECK_MSG(num_threads > 0, "thread pool needs at least one worker");
  // workers_ is guarded: spawned workers may reach shutdown-era code (via a
  // task that destroys the pool) before this constructor finishes emplacing.
  analysis::LockGuard lock(mutex_);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
#if GRIDSE_OBS
    // Workers inherit the creating rank so their trace records land on the
    // owner's track (each site owns its worker processors, paper §IV-A).
    const int creator_rank = obs::trace::thread_rank();
    workers_.emplace_back([this, creator_rank] {
      obs::trace::set_thread_rank(creator_rank);
      worker_loop();
    });
#else
    workers_.emplace_back([this] { worker_loop(); });
#endif
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  std::vector<std::thread> workers;
  {
    analysis::LockGuard lock(mutex_);
    stopping_ = true;
    workers.swap(workers_);  // claim them: makes concurrent shutdowns safe
  }
  cv_.notify_all();
  for (auto& w : workers) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      analysis::UniqueLock lock(mutex_);
      cv_.wait(lock, [this] {
        GRIDSE_ASSERT_HELD(mutex_);
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
#if GRIDSE_OBS
    OBS_HISTOGRAM_OBSERVE(
        "runtime.pool.queue_seconds",
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      task.enqueued)
            .count());
#endif
    task.fn();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) {
    f.get();
  }
}

}  // namespace gridse
