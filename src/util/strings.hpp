#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gridse {

/// Split `s` on `sep`, dropping empty fields when `keep_empty` is false.
std::vector<std::string> split(std::string_view s, char sep,
                               bool keep_empty = false);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte count ("512 MB", "2.0 GB").
std::string format_bytes(std::size_t bytes);

}  // namespace gridse
