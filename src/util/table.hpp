#pragma once

#include <string>
#include <vector>

namespace gridse {

/// Minimal fixed-column text table used by the benchmark harness to print
/// paper-style tables (Table I–IV) with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with a header rule, e.g.
  ///   Data Size | Direct (s) | MeDICi (s)
  ///   ----------+------------+-----------
  ///   100MB     |   0.052    |   0.380
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (for EXPERIMENTS.md extraction).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gridse
