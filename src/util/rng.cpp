#include "util/rng.hpp"

namespace gridse {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::gaussian(double stddev) { return gaussian(0.0, stddev); }

double Rng::gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Rng Rng::fork() {
  // Mix the parent stream into a fresh seed; splitmix-style finalizer keeps
  // child streams decorrelated even for adjacent parent states.
  std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

}  // namespace gridse
