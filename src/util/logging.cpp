#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "analysis/debug_sync.hpp"

namespace gridse::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
analysis::Mutex g_write_mutex{"log::g_write_mutex"};

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lvl, const std::string& message) {
  if (lvl < level()) {
    return;
  }
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  analysis::LockGuard lock(g_write_mutex);
  std::fprintf(stderr, "[%10.4f] %s %s\n", secs, level_name(lvl),
               message.c_str());
}

}  // namespace gridse::log
