#include "core/plan_registry.hpp"

#include "obs/obs.hpp"

namespace gridse::core {

std::shared_ptr<estimation::SolverCache> PlanRegistry::cache_for(
    int subsystem) {
  analysis::LockGuard lock(mutex_);
  auto& slot = caches_[subsystem];
  if (slot == nullptr) {
    slot = std::make_shared<estimation::SolverCache>();
  }
  return slot;
}

void PlanRegistry::invalidate(int subsystem) {
  std::shared_ptr<estimation::SolverCache> cache;
  {
    analysis::LockGuard lock(mutex_);
    const auto it = caches_.find(subsystem);
    if (it == caches_.end()) {
      return;
    }
    cache = it->second;
    ++invalidations_;
  }
  OBS_COUNTER_ADD("solver.registry.invalidations", 1);
  cache->invalidate();
}

void PlanRegistry::invalidate_all() {
  std::vector<std::shared_ptr<estimation::SolverCache>> caches;
  {
    analysis::LockGuard lock(mutex_);
    caches.reserve(caches_.size());
    for (const auto& [s, cache] : caches_) {
      caches.push_back(cache);
    }
    invalidations_ += caches.size();
  }
  OBS_COUNTER_ADD("solver.registry.invalidations", caches.size());
  for (const auto& cache : caches) {
    cache->invalidate();
  }
}

PlanRegistry::Stats PlanRegistry::stats() const {
  Stats out;
  std::vector<std::shared_ptr<estimation::SolverCache>> caches;
  {
    analysis::LockGuard lock(mutex_);
    out.subsystems = caches_.size();
    out.invalidations = invalidations_;
    caches.reserve(caches_.size());
    for (const auto& [s, cache] : caches_) {
      caches.push_back(cache);
    }
  }
  for (const auto& cache : caches) {
    const estimation::SolverCache::Stats cs = cache->stats();
    out.cache.plan_hits += cs.plan_hits;
    out.cache.plan_misses += cs.plan_misses;
    out.cache.assembler_hits += cs.assembler_hits;
    out.cache.assembler_misses += cs.assembler_misses;
    out.cache.invalidations += cs.invalidations;
  }
  return out;
}

}  // namespace gridse::core
