#pragma once

#include <span>

#include "core/dse_driver.hpp"

namespace gridse::core {

/// Configuration of the hierarchical (coordinator-based) state estimation
/// mode — the industry-standard structure the paper contrasts with the
/// peer-to-peer DSE (§I: balancing authorities feed a reliability
/// coordinator).
struct HierarchicalOptions {
  LocalEstimatorOptions local;
  /// WLS settings for the coordinator's re-evaluation pass.
  estimation::WlsOptions coordinator_wls;
  /// Sigma assigned to subsystem solutions when the coordinator treats them
  /// as pseudo measurements.
  double solution_sigma_vm = 0.005;
  double solution_sigma_angle = 0.005;
  int workers_per_cluster = 3;
};

struct HierarchicalResult {
  grid::GridState state;  ///< coordinator solution, broadcast to all ranks
  bool all_converged = false;
  double step1_seconds = 0.0;
  double coordination_seconds = 0.0;
  double total_seconds = 0.0;
  std::size_t bytes_sent = 0;
};

/// Hierarchical state estimation over the same architecture: each cluster
/// runs its subsystems' local estimations, ships the solutions up to the
/// coordinator (rank 0), which re-evaluates system-wide using the subsystem
/// solutions as pseudo measurements plus the tie-line telemetry, then
/// broadcasts the result (paper Fig. 1, top layer).
class HierarchicalDriver {
 public:
  HierarchicalDriver(const grid::Network& network,
                     const decomp::Decomposition& decomposition,
                     HierarchicalOptions options);

  /// `assignment` maps each subsystem to its hosting rank; rank 0 is both a
  /// host and the coordinator.
  HierarchicalResult run(runtime::Communicator& comm,
                         const grid::MeasurementSet& global_measurements,
                         std::span<const graph::PartId> assignment) const;

 private:
  const grid::Network* network_;
  const decomp::Decomposition* decomposition_;
  HierarchicalOptions options_;
};

}  // namespace gridse::core
