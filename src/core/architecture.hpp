#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/dse_driver.hpp"
#include "core/hierarchical.hpp"
#include "core/supervisor.hpp"
#include "decomp/sensitivity.hpp"
#include "fault/topology_replay.hpp"
#include "grid/topology.hpp"
#include "io/synthetic.hpp"
#include "mapping/mapper.hpp"
#include "mapping/redistribution.hpp"
#include "runtime/resilience.hpp"

#if GRIDSE_OBS
namespace gridse::obs {
class TelemetrySampler;
}  // namespace gridse::obs
#endif

namespace gridse::core {

/// Which transport carries the estimator-to-estimator traffic.
enum class Transport {
  kInproc,        ///< in-process channels (fast, deterministic)
  kTcp,           ///< real loopback TCP sockets
  kMedici,        ///< TCP through MeDICi pipeline relays (paper's data path)
  kMediciDirect,  ///< MwClient direct TCP (paper's "w/o MeDICi" mode)
};

/// How the "true" operating state the measurements are drawn from is
/// produced. Full-Newton AC is exact but its per-frame cost is prohibitive
/// at the 10k+ bus scale tiers; kDcLinearized takes sparse DC angles plus
/// setpoint-anchored magnitudes with a small deterministic jitter. That
/// truth needn't satisfy AC power balance — measurements are h(x_true) +
/// noise either way, so the estimation problem stays well posed.
enum class TruthMode { kAcPowerFlow, kDcLinearized };

/// End-to-end configuration of the prototype system (paper Fig. 1).
struct SystemConfig {
  mapping::MappingOptions mapping;          ///< clusters, balance tolerance
  mapping::WeightModelParams weight_model;  ///< Expressions (1)–(5)
  decomp::SensitivityOptions sensitivity;   ///< preliminary-step analysis
  DseOptions dse;
  grid::MeasurementPlan plan;  ///< SCADA/PMU synthesis (PMUs auto-placed)
  TruthMode truth_mode = TruthMode::kAcPowerFlow;
  Transport transport = Transport::kInproc;
  /// Fault-handling knobs: send retry/backoff, barrier timeout, exchange
  /// deadline. Resolved against GRIDSE_BARRIER_TIMEOUT_MS and
  /// GRIDSE_EXCHANGE_DEADLINE_MS at construction (env wins); the resolved
  /// exchange deadline and degraded flag also seed dse.exchange_deadline /
  /// dse.degraded_step2 unless those were set explicitly.
  runtime::ResilienceConfig resilience;
  std::uint64_t seed = 1;
  /// Directory for per-rank distributed-trace files, flushed when the
  /// system is destroyed (see docs/OBSERVABILITY.md). Empty = take the
  /// GRIDSE_TRACE_DIR environment variable; both empty = no trace files.
  /// Ignored (no files, no overhead) when built with GRIDSE_OBS=OFF.
  std::string trace_dir;
  /// Per-cycle telemetry: time-series sampler, live exposition file, SLO
  /// thresholds, degradation flight recorder (docs/OBSERVABILITY.md).
  /// Resolved against GRIDSE_TELEMETRY_* / GRIDSE_CYCLE_DEADLINE_MS /
  /// GRIDSE_PHASE_BUDGET_*_MS at construction (env wins); the resolved SLO
  /// thresholds also seed dse.slo unless that was set explicitly. An empty
  /// directory (config and GRIDSE_TELEMETRY_DIR both unset) disables the
  /// sampler; so does a GRIDSE_OBS=OFF build (no files, no overhead).
  runtime::TelemetryConfig telemetry;
  /// Optional system-load multiplier per frame time (e.g. a diurnal curve).
  /// When set, each run_cycle re-solves the power flow at the scaled
  /// operating point, so the DSE tracks a moving state — the paper's
  /// real-time tracking setting. Null = static operating point.
  std::function<double(double time_sec)> load_profile;
  /// Topology-change replay + event-driven repartitioning (see
  /// docs/RESILIENCE.md, "Topology events & repartitioning"). Resolved
  /// against GRIDSE_TOPOLOGY_* at construction (env wins). A non-empty
  /// plan (inline JSON or a file path) enables replay, which requires
  /// truth_mode == kDcLinearized: the island-aware DC truth degrades
  /// gracefully where the AC Newton solve would go singular.
  runtime::TopologyConfig topology;
};

/// What the topology layer did in one cycle (all defaults when replay is
/// off and no manual events were applied).
struct TopologyCycleInfo {
  /// Replay events applied at the top of this cycle (dropped ones excluded).
  int events_applied = 0;
  /// Branches whose live status flipped this cycle (sorted, deduplicated).
  std::vector<std::size_t> changed_branches;
  /// Electrical islands after this cycle's events (0 = not evaluated).
  int num_islands = 0;
  /// Measurements dropped by the de-energization mask this cycle.
  std::size_t masked_measurements = 0;
  /// Pseudo measurements appended (dead-bus pins + angle anchors).
  std::size_t anchors_added = 0;
  /// Live expected-GN-iteration score of the decomposition (0 until a
  /// topology change makes the system re-score it).
  double partition_score = 0.0;
  /// True when this cycle re-partitioned the network (score exceeded
  /// threshold × baseline) — the decomposition object changed identity.
  bool repartitioned = false;
  /// Subsystem count after this cycle (repartitioning may change it).
  int num_subsystems = 0;
};

/// Everything one DSE cycle produced, from mapping to solution quality.
struct CycleReport {
  mapping::MappingResult map_step1;
  mapping::MappingResult map_step2;
  mapping::RedistributionPlan redistribution;
  DseResult dse;  ///< rank-0 view (state identical on all ranks)
  /// Accuracy vs the true operating state the measurements were drawn from.
  double max_vm_error = 0.0;
  double max_angle_error = 0.0;
  /// Cluster ids that hosted this cycle (index == comm rank). Without
  /// recovery: 0..num_clusters-1; after a cluster loss the survivors only.
  std::vector<int> participants;
  /// Subsystems whose previous-cycle cluster died and were migrated to a
  /// survivor before this cycle's mapping (recovery only).
  std::vector<int> migrated_subsystems;
  /// Topology replay facts for this cycle.
  TopologyCycleInfo topology;
};

/// Facade wiring the whole prototype together: decomposition + sensitivity
/// analysis (preliminary step), per-frame mapping via the weight model,
/// measurement synthesis, and the distributed run over the chosen
/// transport. One instance models one deployed system; call run_cycle once
/// per SCADA time frame.
class DseSystem {
 public:
  /// `generated` supplies the network and its ground-truth decomposition.
  /// PMU placement: if the config's plan has no explicit PMUs, one PMU is
  /// placed at the lowest-numbered bus of every subsystem (each local
  /// estimation needs a synchronized angle reference).
  DseSystem(io::GeneratedCase generated, SystemConfig config);

  /// Flushes the distributed trace (if a trace directory is configured).
  ~DseSystem();

  DseSystem(const DseSystem&) = delete;
  DseSystem& operator=(const DseSystem&) = delete;

  /// Execute one full cycle at time-frame anchor `time_sec`:
  /// power-flow truth → measurements → map (Step 1, repartitioned from the
  /// previous cycle) → DSE Step 1 → remap (Step 2) → exchange → Step 2 →
  /// combine. Deterministic given the config seed and cycle count.
  CycleReport run_cycle(double time_sec);

  /// The centralized reference on the same measurements as the last cycle.
  [[nodiscard]] estimation::WlsResult centralized_reference() const;

  /// Cross-cycle recovery controls (require resilience.recovery.enabled;
  /// they throw otherwise). kill_cluster simulates/records a confirmed
  /// cluster loss: the next run_cycle runs on the survivors with orphaned
  /// subsystems migrated. announce_rejoin folds a recovered cluster back in
  /// at the next remap epoch, warm-started from stored checkpoints.
  void kill_cluster(int cluster);
  void announce_rejoin(int cluster);
  [[nodiscard]] bool recovery_enabled() const { return supervisor_ != nullptr; }
  /// The recovery coordinator, or nullptr when recovery is disabled.
  [[nodiscard]] Supervisor* supervisor() { return supervisor_.get(); }
  [[nodiscard]] const Supervisor* supervisor() const {
    return supervisor_.get();
  }

  /// Topology replay controls. apply_topology_event pushes one switching
  /// event outside any replay plan (operator action); it requires
  /// truth_mode == kDcLinearized (throws InvalidInput otherwise) and takes
  /// effect from the next run_cycle. replay() is null without a plan.
  std::vector<std::size_t> apply_topology_event(
      const grid::TopologyEvent& event);
  [[nodiscard]] bool topology_active() const {
    return live_topology_ != nullptr;
  }
  [[nodiscard]] const grid::LiveTopology* live_topology() const {
    return live_topology_.get();
  }
  [[nodiscard]] const fault::TopologyReplayHarness* replay() const {
    return replay_.get();
  }
  /// The replay determinism witness: applied-event log as JSON ("[]"
  /// without a plan). Bit-identical across same-seed runs/thread counts.
  [[nodiscard]] std::string replay_log_json() const {
    return replay_ != nullptr ? replay_->log_to_json() : std::string("[]");
  }
  /// Event-driven repartitions executed so far (counted with or without a
  /// supervisor).
  [[nodiscard]] int topology_repartitions() const {
    return topology_repartitions_;
  }

  [[nodiscard]] const decomp::Decomposition& decomposition() const {
    return decomposition_;
  }
  [[nodiscard]] const grid::Network& network() const {
    return generated_.kase.network;
  }
  [[nodiscard]] const grid::GridState& true_state() const {
    return true_state_;
  }
  [[nodiscard]] const grid::MeasurementSet& last_measurements() const {
    return last_measurements_;
  }

 private:
  /// Re-score the live decomposition, repartition past the threshold (or
  /// selectively invalidate the touched subsystems' plans), and refresh the
  /// energization snapshot. Runs once per cycle while topology is active.
  void react_to_topology(CycleReport& report,
                         const grid::IslandReport& islands);
  /// Expected-GN-iteration score of `subsystem_of_bus` on the live
  /// coupling graph (out-of-service branches at epsilon weight).
  [[nodiscard]] double decomposition_score() const;
  /// Lazily create live_topology_ (and validate truth_mode).
  void ensure_live_topology();

  io::GeneratedCase generated_;
  SystemConfig config_;
  decomp::Decomposition decomposition_;
  grid::GridState true_state_;
  std::unique_ptr<grid::MeasurementGenerator> generator_;
  Rng rng_;
  grid::MeasurementSet last_measurements_;
  /// Previous Step-2 assignment in *cluster-id* space (stable across remap
  /// epochs; projected onto the participant set before each repartition).
  std::optional<std::vector<graph::PartId>> previous_assignment_;
  /// Present iff resilience.recovery.enabled.
  std::unique_ptr<Supervisor> supervisor_;
  /// Live switching state + incrementally patched Ybus; present once
  /// topology replay (or apply_topology_event) is in play.
  std::unique_ptr<grid::LiveTopology> live_topology_;
  /// Present iff config_.topology.plan resolved non-empty.
  std::unique_ptr<fault::TopologyReplayHarness> replay_;
  /// Last combined estimate — the warm prior for angle anchors and for the
  /// reseeded checkpoints after a repartition. Seeded with the true state
  /// before the first cycle.
  grid::GridState last_estimate_;
  /// Previous cycle's per-bus energization, to detect flips (a flip changes
  /// the bus's measurement pattern → its subsystem's plan is invalidated).
  std::vector<char> bus_energized_prev_;
  /// Branch flips from apply_topology_event, folded into the next cycle's
  /// changed-branch set (so manual events drive the same reaction path).
  std::vector<std::size_t> pending_manual_changes_;
  /// Expected-GN-iteration score captured at the last (re)partition; the
  /// repartition trigger compares live scores against this.
  double partition_baseline_score_ = 0.0;
  int topology_repartitions_ = 0;
  /// Atomic: the supervisor's alert sink stamps triggers with the current
  /// cycle from whatever thread an operator kill/rejoin lands on.
  std::atomic<std::int64_t> cycle_index_{0};
#if GRIDSE_OBS
  /// Present iff a telemetry directory is configured. Reset explicitly at
  /// the top of ~DseSystem: a pending flight flush must drain the trace
  /// buffer before the end-of-run trace flush does.
  std::unique_ptr<obs::TelemetrySampler> sampler_;
#endif
};

}  // namespace gridse::core
