#include "core/architecture.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <numeric>
#include <utility>

#include "analysis/debug_sync.hpp"
#include "decomp/bus_partition.hpp"
#include "graph/partitioner.hpp"
#include "grid/dc_powerflow.hpp"
#include "grid/powerflow.hpp"
#include "medici/medici_comm.hpp"
#include "obs/obs.hpp"
#if GRIDSE_OBS
#include "obs/telemetry.hpp"
#include "obs/trace/trace.hpp"
#endif
#include "runtime/inproc_comm.hpp"
#include "runtime/tcp_comm.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace gridse::core {
#if GRIDSE_OBS
namespace {

/// Where per-rank trace files go: the config wins, then GRIDSE_TRACE_DIR,
/// then nowhere (tracing stays in memory and is dropped).
std::string resolve_trace_dir(const std::string& configured) {
  if (!configured.empty()) {
    return configured;
  }
  return runtime::env_value("GRIDSE_TRACE_DIR").value_or(std::string());
}

}  // namespace
#endif

namespace {

/// Solve for the frame's true operating state per the configured mode. The
/// DC path is what makes the 10k+ tiers runnable end to end: angles from
/// the sparse B'θ = P solve, magnitudes anchored at the generator setpoints
/// with a small seed-deterministic jitter on load buses (re-derived
/// identically every frame, so only the angles track a moving load).
grid::GridState solve_truth_state(const grid::Network& network, TruthMode mode,
                                  std::uint64_t seed) {
  if (mode == TruthMode::kAcPowerFlow) {
    const grid::PowerFlowResult pf = grid::solve_power_flow(network);
    if (!pf.converged) {
      throw ConvergenceFailure("DseSystem: power flow for the true state did "
                               "not converge");
    }
    return pf.state;
  }
  const std::optional<grid::DcPowerFlow> dc =
      grid::solve_dc_power_flow(network);
  if (!dc) {
    throw ConvergenceFailure("DseSystem: DC power flow is singular");
  }
  grid::GridState state(network.num_buses());
  state.theta = dc->theta;
  Rng jitter(seed ^ 0xdc0ull);
  for (grid::BusIndex b = 0; b < network.num_buses(); ++b) {
    const grid::Bus& bus = network.bus(b);
    state.vm[static_cast<std::size_t>(b)] =
        bus.type == grid::BusType::kPQ ? 1.0 + jitter.uniform(-0.02, 0.02)
                                       : bus.v_setpoint;
  }
  return state;
}

/// Island-aware variant of the DC truth above: per-island references,
/// de-energized buses pinned to |V| = 0, θ = 0. The jitter stream draws for
/// every PQ bus regardless of energization, so restoring the base topology
/// returns the exact pre-event truth.
grid::GridState solve_truth_state_islands(const grid::Network& network,
                                          const grid::IslandReport& islands,
                                          std::uint64_t seed) {
  const grid::DcPowerFlow dc =
      grid::solve_dc_power_flow_islands(network, islands);
  grid::GridState state(network.num_buses());
  state.theta = dc.theta;
  Rng jitter(seed ^ 0xdc0ull);
  for (grid::BusIndex b = 0; b < network.num_buses(); ++b) {
    const grid::Bus& bus = network.bus(b);
    const double vm = bus.type == grid::BusType::kPQ
                          ? 1.0 + jitter.uniform(-0.02, 0.02)
                          : bus.v_setpoint;
    state.vm[static_cast<std::size_t>(b)] =
        islands.bus_energized(b) ? vm : 0.0;
  }
  return state;
}

/// Resolve the replay plan text: inline JSON when it starts with '{', else
/// the contents of the named file.
fault::TopologyReplayPlan load_replay_plan(const std::string& plan) {
  if (!plan.empty() && plan.front() == '{') {
    return fault::TopologyReplayPlan::parse(plan);
  }
  std::ifstream in(plan, std::ios::binary);
  if (!in) {
    throw InvalidInput("DseSystem: cannot open topology plan file \"" + plan +
                       "\"");
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  return fault::TopologyReplayPlan::parse(text);
}

}  // namespace

DseSystem::DseSystem(io::GeneratedCase generated, SystemConfig config)
    : generated_(std::move(generated)),
      config_(config),
      decomposition_(decomp::decompose(generated_.kase.network,
                                       generated_.subsystem_of_bus)),
      rng_(config.seed) {
  // Environment overrides win over the configured resilience values; the
  // resolved exchange deadline flows into the DSE options unless those were
  // already set to a nonzero deadline.
  config_.resilience = runtime::with_env_overrides(config_.resilience);
  if (config_.dse.exchange_deadline.count() == 0) {
    config_.dse.exchange_deadline = config_.resilience.exchange_deadline;
  }
  config_.dse.degraded_step2 =
      config_.dse.degraded_step2 && config_.resilience.degraded_step2;
  // Telemetry/SLO resolution mirrors the resilience pattern: env wins, and
  // the resolved SLO thresholds flow into the DSE options unless already
  // set explicitly there.
  config_.telemetry = runtime::with_env_overrides(config_.telemetry);
  if (!config_.dse.slo.any()) {
    config_.dse.slo = config_.telemetry.slo;
  }
  // A system-lifetime plan registry: symbolic solver plans survive across
  // cycles (each cycle's DseDriver is ephemeral). run_cycle invalidates the
  // entries of migrated subsystems on every remap epoch.
  if (config_.dse.plan_registry == nullptr) {
    config_.dse.plan_registry = std::make_shared<PlanRegistry>();
  }

  decomp::analyze_sensitivity(generated_.kase.network, decomposition_,
                              config_.sensitivity);

  if (config_.resilience.recovery.enabled) {
    supervisor_ = std::make_unique<Supervisor>(config_.mapping.num_clusters,
                                               config_.resilience.recovery);
  }

  true_state_ = solve_truth_state(generated_.kase.network, config_.truth_mode,
                                  config_.seed);
  last_estimate_ = true_state_;
  bus_energized_prev_.assign(
      static_cast<std::size_t>(generated_.kase.network.num_buses()), 1);

  // Topology replay: env wins over the configured plan/threshold, and a
  // resolved non-empty plan arms the harness for run_cycle.
  config_.topology = runtime::with_env_overrides(config_.topology);
  if (!config_.topology.plan.empty()) {
    ensure_live_topology();
    replay_ = std::make_unique<fault::TopologyReplayHarness>(
        load_replay_plan(config_.topology.plan));
  }

  if (config_.plan.pmu_buses.empty()) {
    for (const decomp::Subsystem& s : decomposition_.subsystems) {
      config_.plan.pmu_buses.push_back(
          *std::min_element(s.buses.begin(), s.buses.end()));
    }
  }
  generator_ = std::make_unique<grid::MeasurementGenerator>(
      generated_.kase.network, config_.plan);

#if GRIDSE_OBS
  if (!config_.telemetry.dir.empty()) {
    obs::TelemetryOptions topt;
    topt.dir = config_.telemetry.dir;
    topt.sample_period = config_.telemetry.sample_period;
    topt.flight_ring =
        static_cast<std::size_t>(std::max(config_.telemetry.flight_ring, 1));
    sampler_ = std::make_unique<obs::TelemetrySampler>(std::move(topt));
    if (supervisor_ != nullptr) {
      // Death/rejoin transitions arm the flight recorder; the flush itself
      // happens at the next cycle boundary so the triggering cycle's record
      // is in the ring (the sink runs outside the supervisor mutex).
      supervisor_->set_alert_sink([this](const char* kind, int cluster) {
        sampler_->note_trigger(kind, cluster,
                               cycle_index_.load(std::memory_order_relaxed));
      });
    }
  }
#endif
}

DseSystem::~DseSystem() {
#if GRIDSE_OBS
  // Destroy the sampler first: a pending flight flush must drain the trace
  // buffer into its post-mortem directory before the end-of-run flush does.
  sampler_.reset();
  const std::string dir = resolve_trace_dir(config_.trace_dir);
  if (dir.empty()) {
    return;
  }
  try {
    const obs::trace::FlushStats stats = obs::trace::write_trace_files(dir);
    if (!stats.files.empty()) {
      GRIDSE_INFO << "wrote " << stats.records << " trace records and "
                  << stats.events << " events to " << stats.files.size()
                  << " file(s) under " << dir;
    }
  } catch (const std::exception& e) {
    GRIDSE_WARN << "trace flush to " << dir << " failed: " << e.what();
  }
#endif
}

CycleReport DseSystem::run_cycle(double time_sec) {
  CycleReport report;
  report.topology.num_subsystems =
      static_cast<int>(decomposition_.subsystems.size());

  // --- topology replay (docs/RESILIENCE.md): apply this cycle's switching
  // batch, re-derive islands, then react — repartition past the threshold
  // or selectively invalidate the touched subsystems' solver plans.
  std::optional<grid::IslandReport> islands;
  if (live_topology_ != nullptr) {
    if (replay_ != nullptr) {
      OBS_SPAN("topology.apply_cycle");
      const std::size_t before = replay_->events_applied();
      report.topology.changed_branches = replay_->apply_cycle(
          cycle_index_.load(std::memory_order_relaxed), *live_topology_);
      report.topology.events_applied =
          static_cast<int>(replay_->events_applied() - before);
    }
    if (!pending_manual_changes_.empty()) {
      report.topology.changed_branches.insert(
          report.topology.changed_branches.end(),
          pending_manual_changes_.begin(), pending_manual_changes_.end());
      pending_manual_changes_.clear();
      std::sort(report.topology.changed_branches.begin(),
                report.topology.changed_branches.end());
      report.topology.changed_branches.erase(
          std::unique(report.topology.changed_branches.begin(),
                      report.topology.changed_branches.end()),
          report.topology.changed_branches.end());
    }
    if (!report.topology.changed_branches.empty()) {
      // The measurement generator caches its admittance matrix; adopt the
      // incrementally patched live values so generated injections reflect
      // the switching state (the pattern is switching-invariant).
      generator_->sync_ybus(live_topology_->ybus());
    }
    islands = live_topology_->islands();
    report.topology.num_islands = islands->num_islands;
    OBS_GAUGE_SET("topology.islands",
                  static_cast<double>(islands->num_islands));
    react_to_topology(report, *islands);
  }

  if (live_topology_ != nullptr) {
    // The switching state may have moved: re-solve the island-aware DC
    // truth every cycle (per-island references, dead buses at |V| = 0).
    if (config_.load_profile) {
      grid::Network scaled = generated_.kase.network;
      scaled.scale_loads(config_.load_profile(time_sec));
      true_state_ = solve_truth_state_islands(scaled, *islands, config_.seed);
    } else {
      true_state_ = solve_truth_state_islands(generated_.kase.network,
                                              *islands, config_.seed);
    }
  } else if (config_.load_profile) {
    // Track a moving operating point: re-solve the power flow at the
    // frame's load level. The measurement model itself is load-independent
    // (loads only shift the true state), so the same generator stays valid.
    const double factor = config_.load_profile(time_sec);
    grid::Network scaled = generated_.kase.network;
    scaled.scale_loads(factor);
    true_state_ = solve_truth_state(scaled, config_.truth_mode, config_.seed);
  }
  last_measurements_ = generator_->generate(true_state_, rng_, time_sec);
  if (live_topology_ != nullptr) {
    // De-energization mask + anchors: what enters the residual is only
    // live telemetry, and every estimation group keeps a nonsingular gain.
    grid::MaskedMeasurements masked = grid::mask_measurements(
        generated_.kase.network, *islands, last_measurements_);
    report.topology.masked_measurements = masked.total_masked();
    grid::AnchorOptions anchor_options;
    anchor_options.angle_sigma = config_.topology.anchor_angle_sigma;
    anchor_options.dead_sigma = config_.topology.dead_pin_sigma;
    report.topology.anchors_added = grid::append_anchor_measurements(
        generated_.kase.network, *islands, generated_.subsystem_of_bus,
        last_estimate_, masked.active, anchor_options);
    last_measurements_ = std::move(masked.active);
    OBS_COUNTER_ADD("topology.masked_measurements",
                    report.topology.masked_measurements);
    OBS_COUNTER_ADD("topology.anchors_added", report.topology.anchors_added);
  }

  // --- mapping (paper §IV-B): weights from the time frame -------------------
  // With recovery enabled the participant set may have shrunk (cluster
  // loss) or grown back (rejoin): the mapping then runs over the survivors
  // only, in compact rank space, while previous_assignment_ is kept in
  // cluster-id space so the repartition warm start survives remap epochs.
  std::vector<int> participants;
  if (supervisor_ != nullptr) {
    participants = supervisor_->begin_cycle();
  } else {
    participants.resize(
        static_cast<std::size_t>(config_.mapping.num_clusters));
    std::iota(participants.begin(), participants.end(), 0);
  }
  const int k = static_cast<int>(participants.size());
  report.participants = participants;

  mapping::MappingOptions map_options = config_.mapping;
  map_options.num_clusters = k;
  mapping::ClusterMapper mapper(decomposition_, map_options,
                                config_.weight_model);
  std::optional<std::vector<graph::PartId>> compact_prev;
  if (previous_assignment_) {
    if (supervisor_ != nullptr) {
      compact_prev = supervisor_->project_assignment(
          *previous_assignment_, participants, &report.migrated_subsystems);
      // A migrated subsystem solves on a different cluster from now on; its
      // cached symbolic plans belong to the lost host. Drop them so the new
      // host re-analyzes instead of carrying stale entries. (Fingerprint
      // checks already make stale reuse impossible; this frees the slots.)
      for (const int s : report.migrated_subsystems) {
        config_.dse.plan_registry->invalidate(s);
      }
    } else {
      compact_prev = *previous_assignment_;
    }
  }
  report.map_step1 = mapper.map_before_step1(
      time_sec, compact_prev ? &*compact_prev : nullptr);
  report.map_step2 =
      mapper.map_before_step2(time_sec, report.map_step1.partition.assignment);
  report.redistribution = mapping::plan_redistribution(
      decomposition_, report.map_step1.partition.assignment,
      report.map_step2.partition.assignment);
  {
    std::vector<graph::PartId> cluster_space =
        report.map_step2.partition.assignment;
    for (graph::PartId& c : cluster_space) {
      c = static_cast<graph::PartId>(
          participants[static_cast<std::size_t>(c)]);
    }
    previous_assignment_ = std::move(cluster_space);
  }

  // --- distributed run over the configured transport ------------------------
  DseDriver driver(generated_.kase.network, decomposition_, config_.dse);
  DseRecoveryContext rctx;
  if (supervisor_ != nullptr) {
    rctx.heartbeat.period = config_.resilience.recovery.heartbeat_period;
    rctx.heartbeat.timeout = config_.resilience.recovery.heartbeat_timeout;
    rctx.heartbeat.rounds = config_.resilience.recovery.heartbeat_rounds;
    rctx.cycle = cycle_index_;
    rctx.restore = supervisor_->plan_restore();
  }
  DseResult rank0_result;
  analysis::Mutex result_mutex{"DseSystem::result_mutex"};
  const auto body = [&](runtime::Communicator& comm) {
    DseResult r =
        driver.run(comm, last_measurements_,
                   report.map_step1.partition.assignment,
                   report.map_step2.partition.assignment,
                   supervisor_ != nullptr ? &rctx : nullptr);
    if (comm.rank() == 0) {
      analysis::LockGuard lock(result_mutex);
      rank0_result = std::move(r);
    }
  };
  switch (config_.transport) {
    case Transport::kInproc: {
      runtime::InprocWorld world(k);
      world.run(body);
      break;
    }
    case Transport::kTcp: {
      runtime::TcpWorld world(k, config_.resilience);
      world.run(body);
      break;
    }
    case Transport::kMedici: {
      medici::MediciWorld world(k, medici::TransportMode::kViaMiddleware,
                                medici::unshaped_model(),
                                medici::unshaped_model(),
                                config_.resilience);
      world.run(body);
      break;
    }
    case Transport::kMediciDirect: {
      medici::MediciWorld world(k, medici::TransportMode::kDirectTcp,
                                medici::medici_relay_model(),
                                medici::unshaped_model(),
                                config_.resilience);
      world.run(body);
      break;
    }
  }
  report.dse = std::move(rank0_result);
  if (supervisor_ != nullptr) {
    supervisor_->absorb(report.dse.recovery, participants);
  }
  report.max_vm_error = grid::max_vm_error(report.dse.state, true_state_);
  report.max_angle_error =
      grid::max_angle_error(report.dse.state, true_state_);
  if (report.dse.state.vm.size() ==
      static_cast<std::size_t>(generated_.kase.network.num_buses())) {
    last_estimate_ = report.dse.state;
  }
#if GRIDSE_OBS
  if (sampler_ != nullptr) {
    const std::int64_t this_cycle =
        cycle_index_.load(std::memory_order_relaxed);
    if (!report.migrated_subsystems.empty()) {
      sampler_->note_trigger("remap", -1, this_cycle);
    }
    if (report.dse.degraded_mode()) {
      sampler_->note_trigger("degraded_combine", -1, this_cycle);
    }
    obs::CycleStamp stamp;
    stamp.cycle = this_cycle;
    stamp.participants = report.participants;
    for (const DegradedStatus& d : report.dse.degraded) {
      stamp.degraded_subsystems.push_back(d.subsystem);
    }
    if (supervisor_ != nullptr) {
      stamp.epoch = supervisor_->epoch();
      const std::vector<runtime::RankState> states =
          supervisor_->cluster_states();
      for (std::size_t c = 0; c < states.size(); ++c) {
        if (states[c] == runtime::RankState::kDead) {
          stamp.dead_clusters.push_back(static_cast<int>(c));
        }
      }
    }
    stamp.step1_seconds = report.dse.step1_seconds;
    stamp.exchange_seconds = report.dse.exchange_seconds;
    stamp.step2_seconds = report.dse.step2_seconds;
    stamp.combine_seconds = report.dse.combine_seconds;
    stamp.total_seconds = report.dse.total_seconds;
    sampler_->on_cycle_end(stamp);
  }
#endif
  ++cycle_index_;
  return report;
}

double DseSystem::decomposition_score() const {
  const graph::WeightedGraph g =
      decomp::bus_coupling_graph(generated_.kase.network);
  std::vector<graph::PartId> assignment;
  assignment.reserve(generated_.subsystem_of_bus.size());
  for (const int s : generated_.subsystem_of_bus) {
    assignment.push_back(static_cast<graph::PartId>(s));
  }
  const auto m = static_cast<graph::PartId>(decomposition_.subsystems.size());
  return graph::evaluate_partition(g, std::move(assignment), m)
      .expected_gn_iterations;
}

void DseSystem::ensure_live_topology() {
  if (live_topology_ != nullptr) {
    return;
  }
  if (config_.truth_mode != TruthMode::kDcLinearized) {
    throw InvalidInput(
        "DseSystem: topology replay requires truth_mode == kDcLinearized — "
        "the island-aware DC truth degrades gracefully where the AC Newton "
        "solve goes singular");
  }
  live_topology_ =
      std::make_unique<grid::LiveTopology>(generated_.kase.network);
  partition_baseline_score_ = decomposition_score();
}

std::vector<std::size_t> DseSystem::apply_topology_event(
    const grid::TopologyEvent& event) {
  ensure_live_topology();
  std::vector<std::size_t> changed = live_topology_->apply(event);
  pending_manual_changes_.insert(pending_manual_changes_.end(),
                                 changed.begin(), changed.end());
  return changed;
}

void DseSystem::react_to_topology(CycleReport& report,
                                  const grid::IslandReport& islands) {
  const grid::Network& network = generated_.kase.network;
  const auto n = static_cast<std::size_t>(network.num_buses());
  const auto m = static_cast<int>(decomposition_.subsystems.size());
  // Subsystems whose WLS pattern changed this cycle: owners of a flipped
  // branch's endpoints, plus owners of buses whose energization flipped
  // (the mask/pin rows for those buses appear or disappear).
  std::vector<char> touched(static_cast<std::size_t>(m), 0);
  for (const std::size_t bi : report.topology.changed_branches) {
    const grid::Branch& br = network.branch(bi);
    touched[static_cast<std::size_t>(
        generated_.subsystem_of_bus[static_cast<std::size_t>(br.from)])] = 1;
    touched[static_cast<std::size_t>(
        generated_.subsystem_of_bus[static_cast<std::size_t>(br.to)])] = 1;
  }
  for (std::size_t b = 0; b < n; ++b) {
    const char live =
        islands.bus_energized(static_cast<grid::BusIndex>(b)) ? 1 : 0;
    if (live != bus_energized_prev_[b]) {
      touched[static_cast<std::size_t>(generated_.subsystem_of_bus[b])] = 1;
      bus_energized_prev_[b] = live;
    }
  }
  if (std::none_of(touched.begin(), touched.end(),
                   [](char t) { return t != 0; })) {
    return;  // quiet cycle: keep every cached plan, skip the re-score
  }

  const double score = decomposition_score();
  report.topology.partition_score = score;
  OBS_GAUGE_SET("topology.partition_score", score);
  const double threshold = config_.topology.repartition_threshold;
  if (threshold > 0.0 && partition_baseline_score_ > 0.0 &&
      score > threshold * partition_baseline_score_) {
    OBS_SPAN("topology.repartition");
    graph::PartitionOptions options;
    options.seed = config_.seed;
    options.objective = graph::PartitionObjective::kConvergenceAware;
    int k = m;
    if (config_.topology.k_min > 0 && config_.topology.k_max > 0) {
      // Sweep the subsystem count, but never below the cluster count:
      // mapping onto more clusters than subsystems is infeasible.
      const auto k_lo = static_cast<graph::PartId>(
          std::max(config_.topology.k_min, config_.mapping.num_clusters));
      const auto k_hi = static_cast<graph::PartId>(
          std::max(config_.topology.k_max, static_cast<int>(k_lo)));
      const graph::PartsChoice choice = graph::choose_parts(
          decomp::bus_coupling_graph(network), options, k_lo, k_hi);
      k = static_cast<int>(choice.k);
    }
    options.k = static_cast<graph::PartId>(k);
    std::vector<int> assignment = decomp::partition_buses(network, options);
    decomposition_ = decomp::decompose(network, assignment);
    generated_.subsystem_of_bus = std::move(assignment);
    decomp::analyze_sensitivity(network, decomposition_, config_.sensitivity);
    // Every subsystem id now means something new: cached solver plans and
    // the Step-2 warm-start assignment are all stale. (PMUs stay where the
    // original placement put them — they are physical devices — and the
    // anchor pass guarantees every new group still has an angle reference.)
    config_.dse.plan_registry->invalidate_all();
    previous_assignment_.reset();
    if (supervisor_ != nullptr) {
      // Reseed the checkpoint store in the new numbering: one synthetic
      // checkpoint per new subsystem, carrying the last combined estimate,
      // so the driver's restore phase warm-starts every estimator instead
      // of shipping checkpoints for subsystem ids that no longer exist.
      const std::int64_t this_cycle =
          cycle_index_.load(std::memory_order_relaxed);
      std::vector<EstimatorCheckpoint> seeds;
      for (std::size_t s = 0; s < decomposition_.subsystems.size(); ++s) {
        EstimatorCheckpoint ckpt;
        ckpt.subsystem = static_cast<std::int32_t>(s);
        ckpt.cycle = this_cycle;
        ckpt.reuse_gain = false;
        for (const grid::BusIndex b : decomposition_.subsystems[s].buses) {
          ckpt.step1_states.push_back(
              {static_cast<std::int32_t>(b),
               last_estimate_.theta[static_cast<std::size_t>(b)],
               last_estimate_.vm[static_cast<std::size_t>(b)]});
        }
        seeds.push_back(std::move(ckpt));
      }
      supervisor_->reseed_checkpoints(std::move(seeds));
    } else {
      OBS_COUNTER_ADD("topology.repartitions", 1);  // else counted there
    }
    ++topology_repartitions_;
    const double old_baseline = partition_baseline_score_;
    partition_baseline_score_ = decomposition_score();
    report.topology.partition_score = partition_baseline_score_;
    report.topology.repartitioned = true;
    report.topology.num_subsystems =
        static_cast<int>(decomposition_.subsystems.size());
    GRIDSE_INFO << "topology: repartitioned into "
                << decomposition_.subsystems.size() << " subsystems (score "
                << score << " > " << threshold << " x baseline "
                << old_baseline << ", now " << partition_baseline_score_
                << ")";
  } else {
    for (int s = 0; s < m; ++s) {
      if (touched[static_cast<std::size_t>(s)] != 0) {
        config_.dse.plan_registry->invalidate(s);
      }
    }
  }
}

void DseSystem::kill_cluster(int cluster) {
  GRIDSE_CHECK_MSG(supervisor_ != nullptr,
                   "kill_cluster requires resilience.recovery.enabled");
  supervisor_->kill_cluster(cluster);
}

void DseSystem::announce_rejoin(int cluster) {
  GRIDSE_CHECK_MSG(supervisor_ != nullptr,
                   "announce_rejoin requires resilience.recovery.enabled");
  supervisor_->announce_rejoin(cluster);
}

estimation::WlsResult DseSystem::centralized_reference() const {
  GRIDSE_CHECK_MSG(!last_measurements_.items.empty(),
                   "run_cycle must run before centralized_reference");
  return centralized_estimate(generated_.kase.network, last_measurements_,
                              config_.dse.local.wls);
}

}  // namespace gridse::core
