#include "core/architecture.hpp"

#include <cstdlib>
#include <mutex>

#include "grid/powerflow.hpp"
#include "medici/medici_comm.hpp"
#if GRIDSE_OBS
#include "obs/trace/trace.hpp"
#endif
#include "runtime/inproc_comm.hpp"
#include "runtime/tcp_comm.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace gridse::core {
#if GRIDSE_OBS
namespace {

/// Where per-rank trace files go: the config wins, then GRIDSE_TRACE_DIR,
/// then nowhere (tracing stays in memory and is dropped).
std::string resolve_trace_dir(const std::string& configured) {
  if (!configured.empty()) {
    return configured;
  }
  const char* env = std::getenv("GRIDSE_TRACE_DIR");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace
#endif

DseSystem::DseSystem(io::GeneratedCase generated, SystemConfig config)
    : generated_(std::move(generated)),
      config_(config),
      decomposition_(decomp::decompose(generated_.kase.network,
                                       generated_.subsystem_of_bus)),
      rng_(config.seed) {
  // Environment overrides win over the configured resilience values; the
  // resolved exchange deadline flows into the DSE options unless those were
  // already set to a nonzero deadline.
  config_.resilience = runtime::with_env_overrides(config_.resilience);
  if (config_.dse.exchange_deadline.count() == 0) {
    config_.dse.exchange_deadline = config_.resilience.exchange_deadline;
  }
  config_.dse.degraded_step2 =
      config_.dse.degraded_step2 && config_.resilience.degraded_step2;

  decomp::analyze_sensitivity(generated_.kase.network, decomposition_,
                              config_.sensitivity);

  const grid::PowerFlowResult pf =
      grid::solve_power_flow(generated_.kase.network);
  if (!pf.converged) {
    throw ConvergenceFailure("DseSystem: power flow for the true state did "
                             "not converge");
  }
  true_state_ = pf.state;

  if (config_.plan.pmu_buses.empty()) {
    for (const decomp::Subsystem& s : decomposition_.subsystems) {
      config_.plan.pmu_buses.push_back(
          *std::min_element(s.buses.begin(), s.buses.end()));
    }
  }
  generator_ = std::make_unique<grid::MeasurementGenerator>(
      generated_.kase.network, config_.plan);
}

DseSystem::~DseSystem() {
#if GRIDSE_OBS
  const std::string dir = resolve_trace_dir(config_.trace_dir);
  if (dir.empty()) {
    return;
  }
  try {
    const obs::trace::FlushStats stats = obs::trace::write_trace_files(dir);
    if (!stats.files.empty()) {
      GRIDSE_INFO << "wrote " << stats.records << " trace records and "
                  << stats.events << " events to " << stats.files.size()
                  << " file(s) under " << dir;
    }
  } catch (const std::exception& e) {
    GRIDSE_WARN << "trace flush to " << dir << " failed: " << e.what();
  }
#endif
}

CycleReport DseSystem::run_cycle(double time_sec) {
  CycleReport report;

  if (config_.load_profile) {
    // Track a moving operating point: re-solve the power flow at the
    // frame's load level. The measurement model itself is load-independent
    // (loads only shift the true state), so the same generator stays valid.
    const double factor = config_.load_profile(time_sec);
    grid::Network scaled = generated_.kase.network;
    scaled.scale_loads(factor);
    const grid::PowerFlowResult pf = grid::solve_power_flow(scaled);
    if (!pf.converged) {
      throw ConvergenceFailure(
          "DseSystem: power flow at load factor " + std::to_string(factor) +
          " did not converge");
    }
    true_state_ = pf.state;
  }
  last_measurements_ = generator_->generate(true_state_, rng_, time_sec);

  // --- mapping (paper §IV-B): weights from the time frame -------------------
  mapping::ClusterMapper mapper(decomposition_, config_.mapping,
                                config_.weight_model);
  report.map_step1 = mapper.map_before_step1(
      time_sec,
      previous_assignment_ ? &*previous_assignment_ : nullptr);
  report.map_step2 =
      mapper.map_before_step2(time_sec, report.map_step1.partition.assignment);
  report.redistribution = mapping::plan_redistribution(
      decomposition_, report.map_step1.partition.assignment,
      report.map_step2.partition.assignment);
  previous_assignment_ = report.map_step2.partition.assignment;

  // --- distributed run over the configured transport ------------------------
  const int k = config_.mapping.num_clusters;
  DseDriver driver(generated_.kase.network, decomposition_, config_.dse);
  DseResult rank0_result;
  std::mutex result_mutex;
  const auto body = [&](runtime::Communicator& comm) {
    DseResult r =
        driver.run(comm, last_measurements_,
                   report.map_step1.partition.assignment,
                   report.map_step2.partition.assignment);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      rank0_result = std::move(r);
    }
  };
  switch (config_.transport) {
    case Transport::kInproc: {
      runtime::InprocWorld world(k);
      world.run(body);
      break;
    }
    case Transport::kTcp: {
      runtime::TcpWorld world(k, config_.resilience);
      world.run(body);
      break;
    }
    case Transport::kMedici: {
      medici::MediciWorld world(k, medici::TransportMode::kViaMiddleware,
                                medici::unshaped_model(),
                                medici::unshaped_model(),
                                config_.resilience);
      world.run(body);
      break;
    }
    case Transport::kMediciDirect: {
      medici::MediciWorld world(k, medici::TransportMode::kDirectTcp,
                                medici::medici_relay_model(),
                                medici::unshaped_model(),
                                config_.resilience);
      world.run(body);
      break;
    }
  }
  report.dse = std::move(rank0_result);
  report.max_vm_error = grid::max_vm_error(report.dse.state, true_state_);
  report.max_angle_error =
      grid::max_angle_error(report.dse.state, true_state_);
  return report;
}

estimation::WlsResult DseSystem::centralized_reference() const {
  GRIDSE_CHECK_MSG(!last_measurements_.items.empty(),
                   "run_cycle must run before centralized_reference");
  return centralized_estimate(generated_.kase.network, last_measurements_,
                              config_.dse.local.wls);
}

}  // namespace gridse::core
