#include "core/local_estimator.hpp"

#include <algorithm>
#include <set>

#include "estimation/robust.hpp"
#include "grid/boundary.hpp"
#include "grid/meas_model.hpp"
#include "obs/obs.hpp"
#include "sparse/normal_equations.hpp"
#include "sparse/schur.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gridse::core {
namespace {

/// Dispatch one local solve through plain WLS or the Huber M-estimator,
/// per the options.
estimation::WlsResult solve_local(const grid::Network& network,
                                  grid::BusIndex reference,
                                  const LocalEstimatorOptions& options,
                                  const estimation::WlsOptions& wls_opts,
                                  const grid::MeasurementSet& set,
                                  const grid::GridState& initial) {
  if (!options.robust) {
    const estimation::WlsEstimator estimator(network, reference, wls_opts);
    return estimator.estimate(set, initial);
  }
  // HuberEstimator drives WLS internally; thread the reference bus through
  // by constructing on the same network/options.
  estimation::RobustOptions ropts;
  ropts.wls = wls_opts;
  ropts.gamma = options.huber_gamma;
  // The robust estimator's WlsEstimator uses the network slack by default;
  // subsystem models need the explicit reference, so run IRLS manually here.
  grid::MeasurementSet working = set;
  grid::GridState start = initial;
  estimation::WlsResult result;
  std::vector<double> influence(set.size(), 1.0);
  for (int iter = 0; iter < ropts.max_reweight_iterations; ++iter) {
    const estimation::WlsEstimator estimator(network, reference, wls_opts);
    result = estimator.estimate(working, start);
    double max_change = 0.0;
    for (std::size_t i = 0; i < set.size(); ++i) {
      const double sigma = set.items[i].sigma;
      const double std_res = std::abs(result.residuals[i]) / sigma;
      const double w = std_res <= ropts.gamma ? 1.0 : ropts.gamma / std_res;
      max_change = std::max(max_change, std::abs(w - influence[i]));
      influence[i] = w;
      working.items[i].sigma = sigma / std::sqrt(w);
    }
    start = result.state;
    if (max_change < ropts.weight_tolerance) {
      break;
    }
  }
  return result;
}

}  // namespace

LocalEstimator::LocalEstimator(const grid::Network& network,
                               const decomp::Decomposition& d, int subsystem,
                               LocalEstimatorOptions options)
    : network_(&network),
      decomposition_(&d),
      subsystem_(subsystem),
      options_(options),
      local_(decomp::extract_local(network, d, subsystem)),
      extended_(decomp::extract_extended(network, d, subsystem)) {}

LocalEstimator::Reference LocalEstimator::pick_reference(
    const decomp::SubsystemModel& model,
    const grid::MeasurementSet& local_set) const {
  // Global slack inside this subsystem anchors the reference at angle 0.
  const grid::BusIndex global_slack = network_->slack_bus();
  const auto it = model.local_of_global.find(global_slack);
  if (it != model.local_of_global.end() &&
      model.own[static_cast<std::size_t>(it->second)]) {
    return {it->second, 0.0};
  }
  // Otherwise the first PMU (kVAngle) measurement pins the local reference
  // to a globally synchronized angle — the role synchronized phasors play in
  // the decentralized DSE algorithm the paper builds on [5].
  for (const grid::Measurement& m : local_set.items) {
    if (m.type == grid::MeasType::kVAngle &&
        model.own[static_cast<std::size_t>(m.bus)]) {
      return {m.bus, m.value};
    }
  }
  throw InvalidInput(
      "subsystem " + std::to_string(subsystem_) +
      " has neither the slack bus nor a PMU angle measurement; its local "
      "state estimation cannot be referenced to the interconnection");
}

LocalSolveInfo LocalEstimator::run_step1(
    const grid::MeasurementSet& global_set) {
  Timer timer;
  const grid::MeasurementSet local_set = local_.filter(global_set, *network_);
  const Reference ref = pick_reference(local_, local_set);

  grid::GridState initial(local_.network.num_buses());
  const bool warm = warm_start_.has_value();
  if (warm) {
    // Cross-cycle warm restart: start Gauss-Newton from the restored
    // checkpoint. The reference angle is still pinned below so a checkpoint
    // taken against a drifted PMU reading cannot skew the reference.
    initial = *warm_start_;
    warm_start_.reset();
    initial.theta[static_cast<std::size_t>(ref.local_bus)] = ref.angle;
  } else {
    // Flat-start magnitudes, but seed every angle at the reference angle:
    // in a wide interconnection the subsystem's absolute angle can be far
    // from 0, and Gauss-Newton diverges when started that far out; the
    // intra-subsystem spread around the PMU angle is always small.
    for (double& th : initial.theta) {
      th = ref.angle;
    }
  }
  const estimation::WlsResult result = solve_local(
      local_.network, ref.local_bus, options_, options_.wls, local_set,
      initial);

  step1_state_ = result.state;
  step2_state_.reset();
  step1_prep_.reset();
  maybe_condense(local_set, ref);

  LocalSolveInfo info;
  info.warm_start = warm;
  info.converged = result.converged;
  info.gauss_newton_iterations = result.iterations;
  info.inner_iterations = result.inner_iterations;
  info.objective = result.objective;
  info.num_measurements = local_set.size();
  info.seconds = timer.seconds();
  return info;
}

const estimation::BatchedLaneProblem& LocalEstimator::prepare_step1(
    const grid::MeasurementSet& global_set) {
  GRIDSE_CHECK_MSG(!options_.robust,
                   "batched Step 1 is incompatible with the Huber estimator");
  step1_prep_.emplace();
  step1_prep_->local_set = local_.filter(global_set, *network_);
  step1_prep_->ref = pick_reference(local_, step1_prep_->local_set);
  const Reference& ref = step1_prep_->ref;

  grid::GridState initial(local_.network.num_buses());
  step1_prep_->warm = warm_start_.has_value();
  if (step1_prep_->warm) {
    initial = *warm_start_;
    warm_start_.reset();
    initial.theta[static_cast<std::size_t>(ref.local_bus)] = ref.angle;
  } else {
    for (double& th : initial.theta) {
      th = ref.angle;
    }
  }
  step1_prep_->lane.network = &local_.network;
  step1_prep_->lane.reference_bus = ref.local_bus;
  step1_prep_->lane.set = &step1_prep_->local_set;
  step1_prep_->lane.initial = std::move(initial);
  return step1_prep_->lane;
}

LocalSolveInfo LocalEstimator::commit_step1(
    const estimation::WlsResult& result, double seconds) {
  GRIDSE_CHECK_MSG(step1_prep_.has_value(),
                   "commit_step1 without prepare_step1");
  step1_state_ = result.state;
  step2_state_.reset();
  maybe_condense(step1_prep_->local_set, step1_prep_->ref);

  LocalSolveInfo info;
  info.warm_start = step1_prep_->warm;
  info.converged = result.converged;
  info.gauss_newton_iterations = result.iterations;
  info.inner_iterations = result.inner_iterations;
  info.objective = result.objective;
  info.num_measurements = step1_prep_->local_set.size();
  info.seconds = seconds;
  step1_prep_.reset();
  return info;
}

void LocalEstimator::maybe_condense(const grid::MeasurementSet& local_set,
                                    const Reference& ref) {
  condensed_.clear();
  if (!options_.condense_boundary) {
    return;
  }
  // Condense onto the boundary buses only: the interior — including the
  // sensitive-internal buses the uncondensed exchange ships explicitly — is
  // exactly what the Schur complement folds into the boundary block, so the
  // condensed export is strictly smaller than the plain one.
  const decomp::Subsystem& sub =
      decomposition_->subsystems[static_cast<std::size_t>(subsystem_)];
  const std::vector<grid::BusIndex>& global_buses = sub.boundary_buses;
  std::vector<grid::BusIndex> local_buses;
  local_buses.reserve(global_buses.size());
  for (const grid::BusIndex g : global_buses) {
    const auto it = local_.local_of_global.find(g);
    GRIDSE_CHECK(it != local_.local_of_global.end());
    local_buses.push_back(it->second);
  }

  const grid::StateIndex index(local_.network.num_buses(), ref.local_bus);
  const grid::BoundarySplit split =
      grid::split_boundary_states(index, local_buses);
  try {
    // Gain at the Step-1 solution; its Schur complement onto the boundary
    // block carries this subsystem's full information about the exported
    // states, and diag(S⁻¹) their marginal variances.
    const grid::MeasurementModel model(local_.network, index);
    const sparse::Csr jac = model.jacobian(local_set, *step1_state_);
    const sparse::Csr gain =
        sparse::normal_matrix(jac, local_set.weights());
    const sparse::SchurSystem sys =
        sparse::schur_condense(gain, {}, split.positions,
                               std::max(options_.wls.regularization, 1e-12));
    const std::vector<double> sigmas = sparse::schur_marginal_sigmas(sys);

    condensed_.resize(global_buses.size());
    for (std::size_t i = 0; i < global_buses.size(); ++i) {
      CondensedBoundaryRecord& rec = condensed_[i];
      rec.bus = global_buses[i];
      const auto l = static_cast<std::size_t>(local_buses[i]);
      rec.theta = step1_state_->theta[l];
      rec.vm = step1_state_->vm[l];
      const std::int32_t ts = split.theta_slot[i];
      // The reference angle is pinned exactly; export the floor so the
      // receiver treats it as a firm anchor rather than a default.
      rec.sigma_theta = ts >= 0 ? sigmas[static_cast<std::size_t>(ts)]
                                : options_.condense_sigma_floor;
      rec.sigma_vm =
          sigmas[static_cast<std::size_t>(split.vm_slot[i])];
    }
    OBS_COUNTER_ADD("exchange.condensed_exports", 1);
  } catch (const ConvergenceFailure&) {
    // Interior/Schur block not factorable (weakly observed corner): ship
    // default sigmas instead of failing the cycle.
    condensed_.clear();
    OBS_COUNTER_ADD("exchange.condense_fallbacks", 1);
  }
}

grid::GridState LocalEstimator::records_to_local_state(
    const std::vector<BusStateRecord>& records, const char* what) const {
  grid::GridState state(local_.network.num_buses());
  std::vector<bool> seen(static_cast<std::size_t>(local_.network.num_buses()),
                         false);
  for (const BusStateRecord& rec : records) {
    const auto it = local_.local_of_global.find(rec.bus);
    if (it == local_.local_of_global.end()) {
      throw InvalidInput(std::string(what) + ": record for bus " +
                         std::to_string(rec.bus) +
                         " which is not in subsystem " +
                         std::to_string(subsystem_));
    }
    state.theta[static_cast<std::size_t>(it->second)] = rec.theta;
    state.vm[static_cast<std::size_t>(it->second)] = rec.vm;
    seen[static_cast<std::size_t>(it->second)] = true;
  }
  for (const bool s : seen) {
    if (!s) {
      throw InvalidInput(std::string(what) + ": incomplete state for " +
                         "subsystem " + std::to_string(subsystem_));
    }
  }
  return state;
}

void LocalEstimator::adopt_step1(const std::vector<BusStateRecord>& records) {
  step1_state_ = records_to_local_state(records, "adopt_step1");
  step2_state_.reset();
  // An adopted solution arrives without its measurements, so no condensed
  // sigmas can be computed; exports fall back to default sigmas.
  condensed_.clear();
}

void LocalEstimator::set_warm_start(
    const std::vector<BusStateRecord>& records) {
  warm_start_ = records_to_local_state(records, "set_warm_start");
}

LocalSolveInfo LocalEstimator::run_step2(
    const grid::MeasurementSet& global_set,
    const std::vector<BusStateRecord>& neighbor_states,
    bool fill_missing_with_priors) {
  std::vector<CondensedBoundaryRecord> widened(neighbor_states.size());
  for (std::size_t i = 0; i < neighbor_states.size(); ++i) {
    widened[i].bus = neighbor_states[i].bus;
    widened[i].theta = neighbor_states[i].theta;
    widened[i].vm = neighbor_states[i].vm;
    // sigma_* stay -1: use the configured pseudo_sigma_* defaults.
  }
  return run_step2(global_set, widened, fill_missing_with_priors);
}

LocalSolveInfo LocalEstimator::run_step2(
    const grid::MeasurementSet& global_set,
    const std::vector<CondensedBoundaryRecord>& neighbor_states,
    bool fill_missing_with_priors) {
  GRIDSE_CHECK_MSG(step1_state_.has_value(), "run_step2 before run_step1");
  Timer timer;

  grid::MeasurementSet ext_set = extended_.filter(global_set, *network_);
  const Reference ref = pick_reference(extended_, ext_set);

  // Initial state: own buses from Step 1; remote buses flat, overwritten
  // below by the received neighbour solutions.
  grid::GridState initial(extended_.network.num_buses());
  for (grid::BusIndex l = 0; l < extended_.network.num_buses(); ++l) {
    const grid::BusIndex g = extended_.global_bus[static_cast<std::size_t>(l)];
    const auto own_it = local_.local_of_global.find(g);
    if (own_it != local_.local_of_global.end()) {
      initial.theta[static_cast<std::size_t>(l)] =
          step1_state_->theta[static_cast<std::size_t>(own_it->second)];
      initial.vm[static_cast<std::size_t>(l)] =
          step1_state_->vm[static_cast<std::size_t>(own_it->second)];
    }
  }

  // Neighbour solutions become pseudo measurements on the extended model
  // (paper §II Step 2), and seed the initial state of the remote buses.
  // Condensed records carry the exporter's marginal sigmas; clamp them so a
  // wildly over/under-confident export cannot distort the local solve.
  const auto pseudo_sigma = [&](double condensed, double fallback) {
    if (condensed <= 0.0) {
      return fallback;
    }
    return std::clamp(condensed, options_.condense_sigma_floor,
                      options_.condense_sigma_cap);
  };
  std::vector<bool> covered(
      static_cast<std::size_t>(extended_.network.num_buses()), false);
  for (const CondensedBoundaryRecord& rec : neighbor_states) {
    const auto it = extended_.local_of_global.find(rec.bus);
    if (it == extended_.local_of_global.end()) {
      continue;  // a neighbour bus outside this extended model
    }
    const grid::BusIndex l = it->second;
    if (extended_.own[static_cast<std::size_t>(l)]) {
      continue;  // own buses keep their own Step-1 estimate
    }
    ext_set.items.push_back({grid::MeasType::kVMag, l, -1, true, rec.vm,
                             pseudo_sigma(rec.sigma_vm,
                                          options_.pseudo_sigma_vm)});
    ext_set.items.push_back({grid::MeasType::kVAngle, l, -1, true, rec.theta,
                             pseudo_sigma(rec.sigma_theta,
                                          options_.pseudo_sigma_angle)});
    initial.theta[static_cast<std::size_t>(l)] = rec.theta;
    initial.vm[static_cast<std::size_t>(l)] = rec.vm;
    covered[static_cast<std::size_t>(l)] = true;
  }

  if (fill_missing_with_priors) {
    // Degraded mode: remote buses whose neighbour never reported would leave
    // the extended system unobservable. Anchor each of them with a
    // low-weight prior taken from the nearest own bus's Step-1 value
    // (multi-source BFS over the extended topology), falling back to a flat
    // profile for any bus not reachable from own territory.
    const auto n = static_cast<std::size_t>(extended_.network.num_buses());
    std::vector<std::vector<grid::BusIndex>> adjacent(n);
    for (const grid::Branch& br : extended_.network.branches()) {
      adjacent[static_cast<std::size_t>(br.from)].push_back(br.to);
      adjacent[static_cast<std::size_t>(br.to)].push_back(br.from);
    }
    std::vector<grid::BusIndex> anchor(n, -1);
    std::vector<grid::BusIndex> frontier;
    for (std::size_t l = 0; l < n; ++l) {
      if (extended_.own[l]) {
        anchor[l] = static_cast<grid::BusIndex>(l);
        frontier.push_back(static_cast<grid::BusIndex>(l));
      }
    }
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const grid::BusIndex u = frontier[head];
      for (const grid::BusIndex v : adjacent[static_cast<std::size_t>(u)]) {
        if (anchor[static_cast<std::size_t>(v)] >= 0) continue;
        anchor[static_cast<std::size_t>(v)] =
            anchor[static_cast<std::size_t>(u)];
        frontier.push_back(v);
      }
    }
    for (std::size_t l = 0; l < n; ++l) {
      if (extended_.own[l] || covered[l]) continue;
      const grid::BusIndex a = anchor[l];
      const double vm =
          a >= 0 ? initial.vm[static_cast<std::size_t>(a)] : 1.0;
      const double theta =
          a >= 0 ? initial.theta[static_cast<std::size_t>(a)] : ref.angle;
      ext_set.items.push_back({grid::MeasType::kVMag,
                               static_cast<grid::BusIndex>(l), -1, true, vm,
                               options_.degraded_prior_sigma_vm});
      ext_set.items.push_back({grid::MeasType::kVAngle,
                               static_cast<grid::BusIndex>(l), -1, true,
                               theta, options_.degraded_prior_sigma_angle});
      initial.theta[l] = theta;
      initial.vm[l] = vm;
    }
  }

  estimation::WlsOptions wls = options_.wls;
  wls.regularization = std::max(wls.regularization,
                                options_.step2_regularization);
  initial.theta[static_cast<std::size_t>(ref.local_bus)] = ref.angle;
  const estimation::WlsResult result = solve_local(
      extended_.network, ref.local_bus, options_, wls, ext_set, initial);

  step2_state_ = result.state;

  LocalSolveInfo info;
  info.converged = result.converged;
  info.gauss_newton_iterations = result.iterations;
  info.inner_iterations = result.inner_iterations;
  info.objective = result.objective;
  info.num_measurements = ext_set.size();
  info.seconds = timer.seconds();
  return info;
}

std::vector<BusStateRecord> LocalEstimator::step1_all_states() const {
  GRIDSE_CHECK_MSG(step1_state_.has_value(), "step1 has not run");
  std::vector<BusStateRecord> out;
  out.reserve(local_.global_bus.size());
  for (grid::BusIndex l = 0; l < local_.network.num_buses(); ++l) {
    out.push_back({local_.global_bus[static_cast<std::size_t>(l)],
                   step1_state_->theta[static_cast<std::size_t>(l)],
                   step1_state_->vm[static_cast<std::size_t>(l)]});
  }
  return out;
}

std::vector<BusStateRecord> LocalEstimator::step1_boundary_states() const {
  GRIDSE_CHECK_MSG(step1_state_.has_value(), "step1 has not run");
  const decomp::Subsystem& sub =
      decomposition_->subsystems[static_cast<std::size_t>(subsystem_)];
  std::vector<BusStateRecord> out;
  const auto add = [&](grid::BusIndex g) {
    const auto it = local_.local_of_global.find(g);
    GRIDSE_CHECK(it != local_.local_of_global.end());
    const grid::BusIndex l = it->second;
    out.push_back({g, step1_state_->theta[static_cast<std::size_t>(l)],
                   step1_state_->vm[static_cast<std::size_t>(l)]});
  };
  for (const grid::BusIndex g : sub.boundary_buses) add(g);
  for (const grid::BusIndex g : sub.sensitive_internal) add(g);
  return out;
}

std::vector<BusStateRecord> LocalEstimator::current_boundary_states() const {
  std::vector<BusStateRecord> out = step1_boundary_states();
  if (!step2_state_.has_value()) {
    return out;
  }
  for (BusStateRecord& rec : out) {
    const auto it = extended_.local_of_global.find(rec.bus);
    GRIDSE_CHECK(it != extended_.local_of_global.end());
    rec.theta = step2_state_->theta[static_cast<std::size_t>(it->second)];
    rec.vm = step2_state_->vm[static_cast<std::size_t>(it->second)];
  }
  return out;
}

std::vector<CondensedBoundaryRecord> LocalEstimator::condensed_boundary_states()
    const {
  const std::vector<BusStateRecord> base = current_boundary_states();
  // When condensation succeeded, export ONLY the boundary buses — the
  // leading condensed_.size() records of `base` (step1_boundary_states puts
  // boundary before sensitive-internal) — each with its Schur marginal
  // sigmas. The interior information those sigmas encode replaces the
  // explicit sensitive-internal records of the plain exchange. Step-2
  // refinement only updated theta/vm; the Step-1 sigmas remain this
  // subsystem's confidence.
  const std::size_t count =
      condensed_.empty() ? base.size() : condensed_.size();
  GRIDSE_CHECK(count <= base.size());
  std::vector<CondensedBoundaryRecord> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i].bus = base[i].bus;
    out[i].theta = base[i].theta;
    out[i].vm = base[i].vm;
    if (!condensed_.empty()) {
      GRIDSE_CHECK(condensed_[i].bus == out[i].bus);
      out[i].sigma_theta = condensed_[i].sigma_theta;
      out[i].sigma_vm = condensed_[i].sigma_vm;
    }
  }
  return out;
}

std::vector<BusStateRecord> LocalEstimator::final_states() const {
  GRIDSE_CHECK_MSG(step1_state_.has_value(), "step1 has not run");
  std::vector<BusStateRecord> out = step1_all_states();
  if (!step2_state_.has_value()) {
    return out;
  }
  const decomp::Subsystem& sub =
      decomposition_->subsystems[static_cast<std::size_t>(subsystem_)];
  std::set<grid::BusIndex> reeval(sub.boundary_buses.begin(),
                                  sub.boundary_buses.end());
  reeval.insert(sub.sensitive_internal.begin(), sub.sensitive_internal.end());
  for (BusStateRecord& rec : out) {
    if (reeval.count(rec.bus) == 0) continue;
    const auto it = extended_.local_of_global.find(rec.bus);
    GRIDSE_CHECK(it != extended_.local_of_global.end());
    rec.theta = step2_state_->theta[static_cast<std::size_t>(it->second)];
    rec.vm = step2_state_->vm[static_cast<std::size_t>(it->second)];
  }
  return out;
}

}  // namespace gridse::core
