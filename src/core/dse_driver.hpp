#pragma once

#include <chrono>
#include <map>
#include <span>

#include "core/local_estimator.hpp"
#include "core/plan_registry.hpp"
#include "decomp/decomposition.hpp"
#include "graph/partition.hpp"
#include "grid/meas_generator.hpp"
#include "runtime/communicator.hpp"
#include "runtime/recovery.hpp"
#include "runtime/resilience.hpp"

namespace gridse::core {

/// Configuration of one distributed state estimation run.
struct DseOptions {
  LocalEstimatorOptions local;
  /// Worker threads per cluster master for hosted-subsystem parallelism
  /// (paper Fig. 1: the data processor dispatches to worker processors).
  int workers_per_cluster = 3;
  /// Step-2 exchange/re-evaluation rounds. The paper notes the iteration
  /// count "can be up-bounded by the diameter of the power system
  /// decomposition" [10]; 1 reproduces the prototype's single round, larger
  /// values propagate boundary information further before the combine.
  int step2_rounds = 1;
  /// Actually ship the raw-measurement payload when a subsystem is
  /// re-mapped between Step 1 and Step 2 (costed, real bytes); disable to
  /// measure the algorithm without redistribution traffic.
  bool ship_redistribution = true;
  /// Upper bound on waiting for each exchange message (redistribution,
  /// Step-2 pseudo fan-in, final combine). 0 = wait forever (historical
  /// behavior: a lost peer hangs the cycle).
  std::chrono::milliseconds exchange_deadline{0};
  /// When a neighbour's pseudo measurements never arrive within the
  /// deadline, re-solve Step 2 with Step-1-derived low-weight priors and
  /// finish the cycle degraded instead of throwing. Only meaningful with a
  /// nonzero exchange_deadline.
  bool degraded_step2 = true;
  /// Solve this rank's hosted Step-1 subsystems in one lockstep batched
  /// LDLᵀ sweep (estimation::batched_estimate) instead of one estimator at
  /// a time. Falls back to the sequential path when local.robust is set
  /// (IRLS reweights per subsystem).
  bool batched_step1 = false;
  /// Ship Schur-condensed boundary records (solution + marginal sigmas) in
  /// the pseudo-measurement exchange instead of plain bus states, and let
  /// Step 2 weight each pseudo measurement by the exporter's confidence.
  /// Implies local.condense_boundary on the driver's estimators.
  bool condense_boundary = false;
  /// Cross-cycle symbolic-plan registry (per-subsystem solver caches). Null
  /// = a fresh registry per run(), which still shares plans across the
  /// Gauss-Newton iterations and both steps of that cycle. Long-lived
  /// callers (DseSystem) pass a persistent registry and invalidate migrated
  /// subsystems on remap.
  std::shared_ptr<PlanRegistry> plan_registry;
  /// Per-cycle SLO thresholds (cycle deadline + phase budgets). Checked on
  /// rank 0 after the cycle completes; violations emit `slo.*` counters and
  /// trace events but never change control flow. All-zero (the default)
  /// disables the checks; so does a GRIDSE_OBS=OFF build.
  runtime::SloConfig slo;
};

/// Per-cycle recovery context, supplied by the Supervisor when cross-cycle
/// recovery is enabled (nullptr = the historical, recovery-free cycle).
/// Shared read-only by every rank of the in-process world; in a multi-node
/// deployment its contents would be part of the assignment broadcast.
struct DseRecoveryContext {
  runtime::HeartbeatSettings heartbeat;
  /// Monotone cycle index stamped into collected checkpoints.
  std::int64_t cycle = 0;
  /// Subsystem → checkpoint to restore before Step 1. Rank 0 ships each
  /// checkpoint over the wire to the subsystem's Step-1 host, which
  /// warm-starts from it (orphan migration, rejoin, or plain cross-cycle
  /// tracking).
  std::map<int, EstimatorCheckpoint> restore;
  /// Gather fresh checkpoints onto rank 0 at the end of the cycle.
  bool collect_checkpoints = true;
};

/// Recovery outputs of one cycle (embedded in DseResult).
struct DseRecoveryResult {
  /// False when the cycle ran without a recovery context.
  bool enabled = false;
  /// The consensus membership view produced by the phase-0 heartbeat.
  runtime::MembershipView membership;
  /// Subsystems this rank warm-started from restored checkpoints.
  int warm_started = 0;
  /// Fresh end-of-cycle checkpoints (rank 0 only; one per subsystem that
  /// solved on a responsive rank).
  std::vector<EstimatorCheckpoint> checkpoints;
  /// Encoded bytes of the gathered checkpoints (rank 0 only).
  std::size_t checkpoint_bytes = 0;
};

/// Per-subsystem execution trace.
struct SubsystemTrace {
  int subsystem = 0;
  int step1_rank = 0;
  int step2_rank = 0;
  LocalSolveInfo step1;
  LocalSolveInfo step2;
};

/// Result of one DSE cycle, identical on every rank.
struct DseResult {
  grid::GridState state;  ///< combined system-wide estimate (final step)
  bool all_converged = false;
  /// Phase wall-clock seconds as seen by this rank.
  double step1_seconds = 0.0;
  double exchange_seconds = 0.0;
  double step2_seconds = 0.0;
  double combine_seconds = 0.0;
  double total_seconds = 0.0;
  /// Payload bytes this rank sent during the cycle.
  std::size_t bytes_sent = 0;
  /// Traces of the subsystems this rank hosted in Step 2.
  std::vector<SubsystemTrace> traces;
  /// Subsystems (cluster-wide, gathered through the combine) whose Step 2
  /// ran degraded; sorted by subsystem id. Empty on a healthy cycle.
  std::vector<DegradedStatus> degraded;
  /// Ranks whose combine payload never arrived within the deadline (their
  /// buses keep default values in `state`).
  std::vector<int> unresponsive_ranks;
  /// Cross-cycle recovery outputs (membership view, checkpoints); only
  /// populated when a DseRecoveryContext was passed to run().
  DseRecoveryResult recovery;
  /// True when any subsystem degraded or any rank went unresponsive.
  [[nodiscard]] bool degraded_mode() const {
    return !degraded.empty() || !unresponsive_ranks.empty();
  }
};

/// The distributed state estimation driver (paper §II algorithm + §IV-C
/// deployment): Step 1 locally per subsystem, peer-to-peer exchange of
/// boundary/sensitive solutions through the communicator, Step 2
/// re-evaluation, and an allgather-style final combine. Transport-agnostic:
/// run it over InprocWorld, TcpWorld, or MediciWorld communicators.
class DseDriver {
 public:
  /// `decomposition` must already carry sensitivity analysis results (or
  /// empty sensitive sets to exchange boundary buses only).
  DseDriver(const grid::Network& network,
            const decomp::Decomposition& decomposition, DseOptions options);

  /// Execute one DSE cycle on this rank. `step1_assignment` and
  /// `step2_assignment` map each subsystem to the rank (cluster) hosting it
  /// in the respective step — the output of the mapping method. Every rank
  /// passes the same assignment vectors and the same global measurement
  /// set; each rank only consumes the measurements of the subsystems it
  /// hosts (its own SCADA scope).
  DseResult run(runtime::Communicator& comm,
                const grid::MeasurementSet& global_measurements,
                std::span<const graph::PartId> step1_assignment,
                std::span<const graph::PartId> step2_assignment) const;

  /// Recovery-aware cycle: phase 0 probes membership (heartbeats), dead
  /// ranks are skipped without waiting out exchange deadlines, restore
  /// checkpoints warm-start Step 1, and fresh checkpoints are gathered on
  /// rank 0 after the combine. `recovery == nullptr` reproduces the plain
  /// run() exactly.
  DseResult run(runtime::Communicator& comm,
                const grid::MeasurementSet& global_measurements,
                std::span<const graph::PartId> step1_assignment,
                std::span<const graph::PartId> step2_assignment,
                const DseRecoveryContext* recovery) const;

  /// Convenience: same assignment for both steps.
  DseResult run(runtime::Communicator& comm,
                const grid::MeasurementSet& global_measurements,
                std::span<const graph::PartId> assignment) const;

  [[nodiscard]] const decomp::Decomposition& decomposition() const {
    return *decomposition_;
  }

 private:
  const grid::Network* network_;
  const decomp::Decomposition* decomposition_;
  DseOptions options_;
};

/// Centralized reference: one WLS over the whole interconnection (what the
/// distributed solution is compared against in the evaluation).
estimation::WlsResult centralized_estimate(
    const grid::Network& network, const grid::MeasurementSet& measurements,
    const estimation::WlsOptions& options);

}  // namespace gridse::core
