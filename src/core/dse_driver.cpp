#include "core/dse_driver.hpp"

#include <map>
#include <memory>
#include <set>

#include "obs/obs.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace gridse::core {
namespace {

/// Tag layout (all below the transports' reserved range).
constexpr int kPseudoTagBase = 16;
constexpr int kRedistTagBase = 1 << 18;
constexpr int kCombineTag = (1 << 18) + (1 << 17);

int pseudo_tag(int from_subsystem, int to_subsystem, int m) {
  return kPseudoTagBase + from_subsystem * m + to_subsystem;
}

int redist_tag(int subsystem) { return kRedistTagBase + subsystem; }

}  // namespace

DseDriver::DseDriver(const grid::Network& network,
                     const decomp::Decomposition& decomposition,
                     DseOptions options)
    : network_(&network),
      decomposition_(&decomposition),
      options_(options) {
  GRIDSE_CHECK_MSG(options.workers_per_cluster > 0,
                   "need at least one worker per cluster");
  const int m = decomposition.num_subsystems();
  GRIDSE_CHECK_MSG(kPseudoTagBase + m * m + m < kRedistTagBase,
                   "too many subsystems for the tag layout");
}

DseResult DseDriver::run(runtime::Communicator& comm,
                         const grid::MeasurementSet& global_measurements,
                         std::span<const graph::PartId> assignment) const {
  return run(comm, global_measurements, assignment, assignment);
}

DseResult DseDriver::run(runtime::Communicator& comm,
                         const grid::MeasurementSet& global_measurements,
                         std::span<const graph::PartId> step1_assignment,
                         std::span<const graph::PartId> step2_assignment) const {
  const int m = decomposition_->num_subsystems();
  const int rank = comm.rank();
  GRIDSE_CHECK(static_cast<int>(step1_assignment.size()) == m);
  GRIDSE_CHECK(static_cast<int>(step2_assignment.size()) == m);
  for (int s = 0; s < m; ++s) {
    GRIDSE_CHECK_MSG(step1_assignment[static_cast<std::size_t>(s)] >= 0 &&
                         step1_assignment[static_cast<std::size_t>(s)] <
                             comm.size() &&
                         step2_assignment[static_cast<std::size_t>(s)] >= 0 &&
                         step2_assignment[static_cast<std::size_t>(s)] <
                             comm.size(),
                     "assignment rank out of range");
  }

  const std::size_t bytes_before = comm.bytes_sent();
  OBS_SPAN("dse.run");
  Timer total_timer;
  DseResult result;

  std::vector<int> hosted1;
  std::vector<int> hosted2;
  for (int s = 0; s < m; ++s) {
    if (step1_assignment[static_cast<std::size_t>(s)] == rank) {
      hosted1.push_back(s);
    }
    if (step2_assignment[static_cast<std::size_t>(s)] == rank) {
      hosted2.push_back(s);
    }
  }

  // Build estimators for every subsystem this rank touches in either step.
  std::map<int, std::unique_ptr<LocalEstimator>> estimators;
  for (const int s : hosted1) {
    estimators.emplace(s, std::make_unique<LocalEstimator>(
                              *network_, *decomposition_, s, options_.local));
  }
  for (const int s : hosted2) {
    if (estimators.count(s) == 0) {
      estimators.emplace(s, std::make_unique<LocalEstimator>(
                                *network_, *decomposition_, s, options_.local));
    }
  }

  ThreadPool pool(static_cast<std::size_t>(options_.workers_per_cluster));

  // --- DSE Step 1 ------------------------------------------------------------
  Timer step1_timer;
  std::map<int, LocalSolveInfo> step1_info;
  {
    OBS_SPAN("dse.step1");
    std::mutex info_mutex;
    pool.parallel_for(hosted1.size(), [&](std::size_t i) {
      const int s = hosted1[i];
      const LocalSolveInfo info =
          estimators.at(s)->run_step1(global_measurements);
      OBS_HISTOGRAM_OBSERVE("dse.step1.subsystem_seconds", info.seconds);
      OBS_COUNTER_ADD("dse.step1.subsystems", 1);
      std::lock_guard<std::mutex> lock(info_mutex);
      step1_info[s] = info;
    });
    comm.barrier();
  }
  result.step1_seconds = step1_timer.seconds();

  // --- Re-mapping redistribution + pseudo-measurement exchange ---------------
  Timer exchange_timer;
  {
    OBS_SPAN("dse.exchange.redistribute");
    // Ship Step-1 solutions (plus the raw boundary/sensitive measurements
    // the new host will need) for subsystems that move clusters between
    // steps.
    for (const int s : hosted1) {
      const graph::PartId dest = step2_assignment[static_cast<std::size_t>(s)];
      if (dest == rank) continue;
      ByteWriter w;
      const auto states = estimators.at(s)->step1_all_states();
      w.write_vector(states);
      if (options_.ship_redistribution) {
        const grid::MeasurementSet local_set =
            estimators.at(s)->local_model().filter(global_measurements,
                                                   *network_);
        const auto meas_bytes = encode_measurements(local_set);
        w.write_vector(meas_bytes);
      } else {
        w.write_vector(std::vector<std::uint8_t>{});
      }
      auto payload = w.take();
      OBS_COUNTER_ADD("dse.redistribute.messages", 1);
      OBS_COUNTER_ADD("dse.redistribute.bytes", payload.size());
      comm.send(dest, redist_tag(s), std::move(payload));
    }
    for (const int s : hosted2) {
      const graph::PartId src = step1_assignment[static_cast<std::size_t>(s)];
      if (src == rank) continue;
      const runtime::Message msg = comm.recv(src, redist_tag(s));
      ByteReader r(msg.payload);
      const auto states = r.read_vector<BusStateRecord>();
      (void)r.read_vector<std::uint8_t>();  // raw measurements: costed payload
      estimators.at(s)->adopt_step1(states);
    }

    comm.barrier();
  }
  result.exchange_seconds = exchange_timer.seconds();

  // --- Step-2 exchange/re-evaluation rounds ----------------------------------
  // Round 0 ships the Step-1 boundary/sensitive solutions (the paper's
  // prototype); further rounds re-exchange the re-evaluated values, bounded
  // in usefulness by the decomposition diameter (§II).
  std::map<int, LocalSolveInfo> step2_info;
  for (int round = 0; round < std::max(1, options_.step2_rounds); ++round) {
    // Peer-to-peer pseudo measurements: the Step-2 owner of each subsystem
    // sends its boundary/sensitive solution to the Step-2 owners of all its
    // neighbours (Fig. 6: MW_Client_Send / MW_Client_Recv per neighbour).
    // Tags repeat across rounds: per-(source rank, tag) FIFO ordering keeps
    // the rounds from mixing.
    Timer round_exchange_timer;
    std::map<int, std::vector<BusStateRecord>> neighbor_records;
    {
      OBS_SPAN("dse.exchange.pseudo");
      for (const int s : hosted2) {
        const auto records = estimators.at(s)->current_boundary_states();
        const auto payload = encode_bus_states(records);
        for (const int t : decomposition_->neighbors_of(s)) {
          const graph::PartId dest =
              step2_assignment[static_cast<std::size_t>(t)];
          if (dest == rank) {
            auto& sink = neighbor_records[t];
            sink.insert(sink.end(), records.begin(), records.end());
          } else {
            OBS_COUNTER_ADD("dse.pseudo.messages", 1);
            OBS_COUNTER_ADD("dse.pseudo.bytes", payload.size());
            comm.send(dest, pseudo_tag(s, t, m), payload);
          }
        }
      }
      for (const int t : hosted2) {
#if GRIDSE_OBS
        // Step-2 fan-in wait: how long each subsystem blocks for its
        // neighbours' pseudo-measurements (the paper's exchange-phase
        // bottleneck). One global histogram plus a per-subsystem breakdown;
        // per-subsystem names are dynamic, so they resolve through the
        // registry map (this path already paid for a blocking recv).
        Timer fanin_timer;
        obs::Histogram& fanin_hist = obs::MetricsRegistry::global().histogram(
            "exchange.fanin_wait_seconds.subsystem." + std::to_string(t));
#endif
        for (const int s : decomposition_->neighbors_of(t)) {
          const graph::PartId src =
              step2_assignment[static_cast<std::size_t>(s)];
          if (src == rank) continue;  // already merged locally above
          const runtime::Message msg = comm.recv(src, pseudo_tag(s, t, m));
          const auto records = decode_bus_states(msg.payload);
          auto& sink = neighbor_records[t];
          sink.insert(sink.end(), records.begin(), records.end());
        }
#if GRIDSE_OBS
        const double fanin_wait = fanin_timer.seconds();
        OBS_HISTOGRAM_OBSERVE("exchange.fanin_wait_seconds", fanin_wait);
        fanin_hist.observe(fanin_wait);
#endif
      }
    }
    result.exchange_seconds += round_exchange_timer.seconds();

    Timer step2_timer;
    {
      OBS_SPAN("dse.step2");
      std::mutex info_mutex;
      pool.parallel_for(hosted2.size(), [&](std::size_t i) {
        const int s = hosted2[i];
        const LocalSolveInfo info = estimators.at(s)->run_step2(
            global_measurements, neighbor_records[s]);
        OBS_HISTOGRAM_OBSERVE("dse.step2.subsystem_seconds", info.seconds);
        OBS_COUNTER_ADD("dse.step2.subsystems", 1);
        std::lock_guard<std::mutex> lock(info_mutex);
        step2_info[s] = info;
      });
      comm.barrier();
    }
    result.step2_seconds += step2_timer.seconds();
  }

  // --- Final step: combine subsystem solutions --------------------------------
  Timer combine_timer;
  OBS_SPAN("dse.combine");
  bool local_ok = true;
  for (const auto& [s, info] : step1_info) local_ok &= info.converged;
  for (const auto& [s, info] : step2_info) local_ok &= info.converged;

  std::vector<BusStateRecord> my_records;
  for (const int s : hosted2) {
    const auto records = estimators.at(s)->final_states();
    my_records.insert(my_records.end(), records.begin(), records.end());
  }
  ByteWriter w;
  w.write(static_cast<std::uint8_t>(local_ok ? 1 : 0));
  w.write_vector(my_records);
  const auto combine_payload = w.take();
  for (int r = 0; r < comm.size(); ++r) {
    if (r == rank) continue;
    OBS_COUNTER_ADD("dse.combine.messages", 1);
    OBS_COUNTER_ADD("dse.combine.bytes", combine_payload.size());
    comm.send(r, kCombineTag, combine_payload);
  }
  result.state = grid::GridState(network_->num_buses());
  bool all_ok = local_ok;
  const auto apply_records = [&](const std::vector<BusStateRecord>& records) {
    for (const BusStateRecord& rec : records) {
      result.state.theta[static_cast<std::size_t>(rec.bus)] = rec.theta;
      result.state.vm[static_cast<std::size_t>(rec.bus)] = rec.vm;
    }
  };
  apply_records(my_records);
  for (int r = 0; r < comm.size(); ++r) {
    if (r == rank) continue;
    const runtime::Message msg = comm.recv(r, kCombineTag);
    ByteReader reader(msg.payload);
    all_ok &= reader.read<std::uint8_t>() != 0;
    apply_records(reader.read_vector<BusStateRecord>());
  }
  result.all_converged = all_ok;
  result.combine_seconds = combine_timer.seconds();
  result.total_seconds = total_timer.seconds();
  result.bytes_sent = comm.bytes_sent() - bytes_before;

  for (const int s : hosted2) {
    SubsystemTrace trace;
    trace.subsystem = s;
    trace.step1_rank = step1_assignment[static_cast<std::size_t>(s)];
    trace.step2_rank = step2_assignment[static_cast<std::size_t>(s)];
    if (step1_info.count(s) > 0) trace.step1 = step1_info[s];
    if (step2_info.count(s) > 0) trace.step2 = step2_info[s];
    result.traces.push_back(trace);
  }
  return result;
}

estimation::WlsResult centralized_estimate(
    const grid::Network& network, const grid::MeasurementSet& measurements,
    const estimation::WlsOptions& options) {
  estimation::WlsEstimator estimator(network, options);
  return estimator.estimate(measurements);
}

}  // namespace gridse::core
