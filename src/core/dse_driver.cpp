#include "core/dse_driver.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "obs/obs.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace gridse::core {
namespace {

/// Tag layout (all below the transports' reserved range).
constexpr int kPseudoTagBase = 16;
constexpr int kRedistTagBase = 1 << 18;
constexpr int kCombineTag = (1 << 18) + (1 << 17);

int pseudo_tag(int from_subsystem, int to_subsystem, int m) {
  return kPseudoTagBase + from_subsystem * m + to_subsystem;
}

int redist_tag(int subsystem) { return kRedistTagBase + subsystem; }

/// Wall-clock budget for one exchange phase. Disabled (0) reproduces the
/// historical blocking behavior.
class Deadline {
 public:
  explicit Deadline(std::chrono::milliseconds budget)
      : enabled_(budget.count() > 0),
        at_(std::chrono::steady_clock::now() + budget) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Time left, clamped at zero. A zero-remaining recv_for still performs a
  /// final mailbox scan, so a message that raced the deadline is picked up.
  [[nodiscard]] std::chrono::milliseconds remaining() const {
    return std::max(std::chrono::duration_cast<std::chrono::milliseconds>(
                        at_ - std::chrono::steady_clock::now()),
                    std::chrono::milliseconds{0});
  }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point at_;
};

/// Blocking recv without a deadline; bounded recv with one. nullopt means
/// the deadline expired with nothing matching delivered.
std::optional<runtime::Message> recv_within(runtime::Communicator& comm,
                                            const Deadline& deadline,
                                            int source, int tag) {
  if (!deadline.enabled()) {
    return comm.recv(source, tag);
  }
  return comm.recv_for(source, tag, deadline.remaining());
}

/// Plain bus states → condensed records with default (-1) sigmas.
std::vector<CondensedBoundaryRecord> widen_records(
    const std::vector<BusStateRecord>& in) {
  std::vector<CondensedBoundaryRecord> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i].bus = in[i].bus;
    out[i].theta = in[i].theta;
    out[i].vm = in[i].vm;
  }
  return out;
}

/// Condensed records → plain bus states (the uncondensed wire format).
std::vector<BusStateRecord> narrow_records(
    const std::vector<CondensedBoundaryRecord>& in) {
  std::vector<BusStateRecord> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = {in[i].bus, in[i].theta, in[i].vm};
  }
  return out;
}

#if GRIDSE_OBS
/// Per-cycle SLO verdicts (rank 0 only, so counter deltas are cycle-scoped,
/// not multiplied by the world size). Pure observation: emits `slo.*`
/// counters and trace events, never alters the cycle outcome.
void check_slo(const runtime::SloConfig& slo, const DseResult& result) {
  const auto over = [](double seconds, std::chrono::milliseconds budget) {
    return budget.count() > 0 &&
           seconds * 1000.0 > static_cast<double>(budget.count());
  };
  const auto check_phase = [&](const char* phase, double seconds,
                               std::chrono::milliseconds budget) {
    if (!over(seconds, budget)) {
      return;
    }
    OBS_COUNTER_ADD("slo.phase_budget_over", 1);
    OBS_EVENT("slo.phase_budget_over", OBS_ATTR("phase", phase),
              OBS_ATTR("seconds", seconds),
              OBS_ATTR("budget_ms", budget.count()));
  };
  check_phase("step1", result.step1_seconds, slo.step1_budget);
  check_phase("exchange", result.exchange_seconds, slo.exchange_budget);
  check_phase("step2", result.step2_seconds, slo.step2_budget);
  check_phase("combine", result.combine_seconds, slo.combine_budget);
  if (over(result.total_seconds, slo.cycle_deadline)) {
    OBS_COUNTER_ADD("slo.cycle_deadline_missed", 1);
    OBS_EVENT("slo.cycle_deadline_missed",
              OBS_ATTR("seconds", result.total_seconds),
              OBS_ATTR("deadline_ms", slo.cycle_deadline.count()));
  }
}
#endif

}  // namespace

DseDriver::DseDriver(const grid::Network& network,
                     const decomp::Decomposition& decomposition,
                     DseOptions options)
    : network_(&network),
      decomposition_(&decomposition),
      options_(options) {
  GRIDSE_CHECK_MSG(options.workers_per_cluster > 0,
                   "need at least one worker per cluster");
  const int m = decomposition.num_subsystems();
  GRIDSE_CHECK_MSG(kPseudoTagBase + m * m + m < kRedistTagBase,
                   "too many subsystems for the tag layout");
}

DseResult DseDriver::run(runtime::Communicator& comm,
                         const grid::MeasurementSet& global_measurements,
                         std::span<const graph::PartId> assignment) const {
  return run(comm, global_measurements, assignment, assignment, nullptr);
}

DseResult DseDriver::run(runtime::Communicator& comm,
                         const grid::MeasurementSet& global_measurements,
                         std::span<const graph::PartId> step1_assignment,
                         std::span<const graph::PartId> step2_assignment) const {
  return run(comm, global_measurements, step1_assignment, step2_assignment,
             nullptr);
}

DseResult DseDriver::run(runtime::Communicator& comm,
                         const grid::MeasurementSet& global_measurements,
                         std::span<const graph::PartId> step1_assignment,
                         std::span<const graph::PartId> step2_assignment,
                         const DseRecoveryContext* rctx) const {
  const int m = decomposition_->num_subsystems();
  const int rank = comm.rank();
  GRIDSE_CHECK(static_cast<int>(step1_assignment.size()) == m);
  GRIDSE_CHECK(static_cast<int>(step2_assignment.size()) == m);
  for (int s = 0; s < m; ++s) {
    GRIDSE_CHECK_MSG(step1_assignment[static_cast<std::size_t>(s)] >= 0 &&
                         step1_assignment[static_cast<std::size_t>(s)] <
                             comm.size() &&
                         step2_assignment[static_cast<std::size_t>(s)] >= 0 &&
                         step2_assignment[static_cast<std::size_t>(s)] <
                             comm.size(),
                     "assignment rank out of range");
  }

  const std::size_t bytes_before = comm.bytes_sent();
  OBS_SPAN("dse.run");
  Timer total_timer;
  DseResult result;

  std::vector<int> hosted1;
  std::vector<int> hosted2;
  for (int s = 0; s < m; ++s) {
    if (step1_assignment[static_cast<std::size_t>(s)] == rank) {
      hosted1.push_back(s);
    }
    if (step2_assignment[static_cast<std::size_t>(s)] == rank) {
      hosted2.push_back(s);
    }
  }

  // Build estimators for every subsystem this rank touches in either step.
  // Each subsystem's WLS runs against its registry SolverCache so symbolic
  // factorization work (ordering, etree, assembly scatter maps) is shared
  // across Gauss-Newton iterations, both steps, and — with a persistent
  // registry — across cycles.
  const std::shared_ptr<PlanRegistry> registry =
      options_.plan_registry != nullptr ? options_.plan_registry
                                        : std::make_shared<PlanRegistry>();
  const auto estimator_options = [&](int s) {
    LocalEstimatorOptions opts = options_.local;
    if (options_.condense_boundary) {
      opts.condense_boundary = true;
    }
    opts.wls.cache = registry->cache_for(s);
    return opts;
  };
  std::map<int, std::unique_ptr<LocalEstimator>> estimators;
  for (const int s : hosted1) {
    estimators.emplace(s, std::make_unique<LocalEstimator>(
                              *network_, *decomposition_, s,
                              estimator_options(s)));
  }
  for (const int s : hosted2) {
    if (estimators.count(s) == 0) {
      estimators.emplace(s, std::make_unique<LocalEstimator>(
                                *network_, *decomposition_, s,
                                estimator_options(s)));
    }
  }

  ThreadPool pool(static_cast<std::size_t>(options_.workers_per_cluster));

  // --- Phase 0: heartbeat membership + checkpoint restore (recovery only) ----
  // The shared membership view replaces per-exchange timeout discovery: every
  // later recv from a rank the view marks dead is skipped immediately instead
  // of waiting out its own deadline.
  runtime::MembershipView membership;  // empty: everyone presumed alive
  if (rctx != nullptr) {
    GRIDSE_CHECK_MSG(runtime::checkpoint_tag(m) < (1 << 20),
                     "too many subsystems for the checkpoint tag range");
    membership = runtime::probe_membership(comm, rctx->heartbeat);
    result.recovery.enabled = true;
    result.recovery.membership = membership;

    // Restore: rank 0 ships each planned checkpoint to the subsystem's
    // Step-1 host, which seeds its estimator's next run_step1. A missed or
    // corrupt checkpoint degrades to a cold start, never to a failed cycle.
    OBS_SPAN("dse.recovery.restore");
    const Deadline restore_deadline(
        std::max(rctx->heartbeat.timeout, std::chrono::milliseconds{1}));
    const auto warm_start = [&](int s, const EstimatorCheckpoint& ckpt) {
      try {
        estimators.at(s)->set_warm_start(ckpt.step1_states);
        ++result.recovery.warm_started;
        OBS_COUNTER_ADD("recovery.warm_starts", 1);
      } catch (const InvalidInput&) {
        // Checkpoint from a stale decomposition: cold-start instead.
        OBS_COUNTER_ADD("recovery.restore_missed", 1);
      }
    };
    if (rank == 0) {
      for (const auto& [s, ckpt] : rctx->restore) {
        if (s < 0 || s >= m) continue;
        const graph::PartId host =
            step1_assignment[static_cast<std::size_t>(s)];
        if (host == 0) {
          warm_start(s, ckpt);
        } else if (membership.alive(host)) {
          auto payload = encode_checkpoint(ckpt);
          OBS_COUNTER_ADD("recovery.restore_bytes", payload.size());
          comm.send(host, runtime::checkpoint_tag(s), std::move(payload));
        }
      }
    } else if (membership.alive(0) && membership.alive(rank)) {
      // (A rank the consensus marked dead gets no checkpoints shipped, so it
      // must not sit out the restore deadline waiting for them.)
      for (const auto& [s, ignored] : rctx->restore) {
        (void)ignored;
        if (s < 0 || s >= m) continue;
        if (step1_assignment[static_cast<std::size_t>(s)] != rank) continue;
        const auto msg = recv_within(comm, restore_deadline, 0,
                                     runtime::checkpoint_tag(s));
        if (!msg.has_value()) {
          OBS_COUNTER_ADD("recovery.restore_missed", 1);
          continue;
        }
        try {
          warm_start(s, decode_checkpoint(msg->payload));
        } catch (const InvalidInput&) {
          OBS_COUNTER_ADD("recovery.restore_missed", 1);
        }
      }
    }
  }
  const auto rank_dead = [&](int r) {
    return rctx != nullptr && !membership.alive(r);
  };

  // --- DSE Step 1 ------------------------------------------------------------
  Timer step1_timer;
  std::map<int, LocalSolveInfo> step1_info;
  {
    OBS_SPAN("dse.step1");
    if (options_.batched_step1 && !options_.local.robust &&
        !hosted1.empty()) {
      // Batched lockstep sweep: every hosted subsystem is one lane of a
      // single multi-subsystem Gauss-Newton; one numeric
      // factorization/solve pass per iteration over the packed lane arenas.
      Timer batch_timer;
      std::vector<estimation::BatchedLaneProblem> lanes;
      std::vector<std::shared_ptr<estimation::SolverCache>> caches;
      lanes.reserve(hosted1.size());
      caches.reserve(hosted1.size());
      for (const int s : hosted1) {
        lanes.push_back(estimators.at(s)->prepare_step1(global_measurements));
        caches.push_back(registry->cache_for(s));
      }
      const std::vector<estimation::WlsResult> results =
          estimation::batched_estimate(lanes, options_.local.wls, caches);
      const double per_lane_seconds =
          batch_timer.seconds() / static_cast<double>(hosted1.size());
      for (std::size_t i = 0; i < hosted1.size(); ++i) {
        const int s = hosted1[i];
        const LocalSolveInfo info =
            estimators.at(s)->commit_step1(results[i], per_lane_seconds);
        OBS_HISTOGRAM_OBSERVE("dse.step1.subsystem_seconds", info.seconds);
        OBS_COUNTER_ADD("dse.step1.subsystems", 1);
        step1_info[s] = info;
      }
    } else {
      analysis::Mutex info_mutex{"DseDriver::step1_info_mutex"};
      pool.parallel_for(hosted1.size(), [&](std::size_t i) {
        const int s = hosted1[i];
        const LocalSolveInfo info =
            estimators.at(s)->run_step1(global_measurements);
        OBS_HISTOGRAM_OBSERVE("dse.step1.subsystem_seconds", info.seconds);
        OBS_COUNTER_ADD("dse.step1.subsystems", 1);
        analysis::LockGuard lock(info_mutex);
        step1_info[s] = info;
      });
    }
    comm.barrier();
  }
  result.step1_seconds = step1_timer.seconds();

  // --- Re-mapping redistribution + pseudo-measurement exchange ---------------
  // Degradation bookkeeping for this rank's hosted Step-2 subsystems: a
  // subsystem whose redistribution payload never arrived cannot run Step 2
  // at all; a subsystem missing only neighbour pseudo-measurements re-solves
  // with low-weight priors.
  std::set<int> dead_subsystems;
  std::map<int, std::set<int>> missing_neighbors;
  Timer exchange_timer;
  {
    OBS_SPAN("dse.exchange.redistribute");
    const Deadline deadline(options_.exchange_deadline);
    // Ship Step-1 solutions (plus the raw boundary/sensitive measurements
    // the new host will need) for subsystems that move clusters between
    // steps.
    for (const int s : hosted1) {
      const graph::PartId dest = step2_assignment[static_cast<std::size_t>(s)];
      if (dest == rank) continue;
      ByteWriter w;
      const auto states = estimators.at(s)->step1_all_states();
      w.write_vector(states);
      if (options_.ship_redistribution) {
        const grid::MeasurementSet local_set =
            estimators.at(s)->local_model().filter(global_measurements,
                                                   *network_);
        const auto meas_bytes = encode_measurements(local_set);
        w.write_vector(meas_bytes);
      } else {
        w.write_vector(std::vector<std::uint8_t>{});
      }
      auto payload = w.take();
      OBS_COUNTER_ADD("dse.redistribute.messages", 1);
      OBS_COUNTER_ADD("dse.redistribute.bytes", payload.size());
      comm.send(dest, redist_tag(s), std::move(payload));
    }
    for (const int s : hosted2) {
      const graph::PartId src = step1_assignment[static_cast<std::size_t>(s)];
      if (src == rank) continue;
      if (rank_dead(src)) {
        // Membership fast path: no point waiting out the deadline for a rank
        // the phase-0 heartbeat already declared dead.
        dead_subsystems.insert(s);
        OBS_EVENT("exchange.redistribution_lost", OBS_ATTR("subsystem", s),
                  OBS_ATTR("from_rank", src), OBS_ATTR("reason", "rank_dead"));
        continue;
      }
      const auto msg = recv_within(comm, deadline, src, redist_tag(s));
      if (!msg.has_value()) {
        if (!options_.degraded_step2) {
          throw CommError("dse: redistribution for subsystem " +
                          std::to_string(s) + " missed the exchange deadline");
        }
        dead_subsystems.insert(s);
        OBS_EVENT("exchange.redistribution_lost", OBS_ATTR("subsystem", s),
                  OBS_ATTR("from_rank", src));
        continue;
      }
      try {
        ByteReader r(msg->payload);
        const auto states = r.read_vector<BusStateRecord>();
        (void)r.read_vector<std::uint8_t>();  // raw measurements: costed
        estimators.at(s)->adopt_step1(states);
      } catch (const InvalidInput&) {
        OBS_COUNTER_ADD("exchange.corrupt_frames", 1);
        if (!options_.degraded_step2) {
          throw;
        }
        dead_subsystems.insert(s);
        OBS_EVENT("exchange.redistribution_lost", OBS_ATTR("subsystem", s),
                  OBS_ATTR("from_rank", src), OBS_ATTR("reason", "corrupt"));
      }
    }

    comm.barrier();
  }
  result.exchange_seconds = exchange_timer.seconds();

  // --- Step-2 exchange/re-evaluation rounds ----------------------------------
  // Round 0 ships the Step-1 boundary/sensitive solutions (the paper's
  // prototype); further rounds re-exchange the re-evaluated values, bounded
  // in usefulness by the decomposition diameter (§II).
  std::map<int, LocalSolveInfo> step2_info;
  for (int round = 0; round < std::max(1, options_.step2_rounds); ++round) {
    // Peer-to-peer pseudo measurements: the Step-2 owner of each subsystem
    // sends its boundary/sensitive solution to the Step-2 owners of all its
    // neighbours (Fig. 6: MW_Client_Send / MW_Client_Recv per neighbour).
    // Tags repeat across rounds: per-(source rank, tag) FIFO ordering keeps
    // the rounds from mixing.
    Timer round_exchange_timer;
    const bool condense = options_.condense_boundary;
    std::map<int, std::vector<CondensedBoundaryRecord>> neighbor_records;
    for (const int t : hosted2) {
      neighbor_records[t];  // pre-create: the worker pool must never insert
    }
    {
      OBS_SPAN("dse.exchange.pseudo");
      const Deadline deadline(options_.exchange_deadline);
      for (const int s : hosted2) {
        if (dead_subsystems.count(s) > 0) continue;  // nothing to export
        const std::vector<CondensedBoundaryRecord> records =
            estimators.at(s)->condensed_boundary_states();
        // Condensed mode ships the records with their marginal sigmas; plain
        // mode keeps the historical BusStateRecord wire format.
        const std::vector<std::uint8_t> payload =
            condense ? encode_condensed_states(records)
                     : encode_bus_states(narrow_records(records));
        for (const int t : decomposition_->neighbors_of(s)) {
          const graph::PartId dest =
              step2_assignment[static_cast<std::size_t>(t)];
          if (dest == rank) {
            auto& sink = neighbor_records[t];
            sink.insert(sink.end(), records.begin(), records.end());
          } else {
            OBS_COUNTER_ADD("dse.pseudo.messages", 1);
            OBS_COUNTER_ADD("dse.pseudo.bytes", payload.size());
            OBS_COUNTER_ADD("exchange.boundary_bytes", payload.size());
            comm.send(dest, pseudo_tag(s, t, m), payload);
          }
        }
      }
      for (const int t : hosted2) {
        if (dead_subsystems.count(t) > 0) continue;  // will not run Step 2
#if GRIDSE_OBS
        // Step-2 fan-in wait: how long each subsystem blocks for its
        // neighbours' pseudo-measurements (the paper's exchange-phase
        // bottleneck). One global histogram plus a per-subsystem breakdown;
        // per-subsystem names are dynamic, so they resolve through the
        // registry map (this path already paid for a blocking recv).
        Timer fanin_timer;
        obs::Histogram& fanin_hist = obs::MetricsRegistry::global().histogram(
            "exchange.fanin_wait_seconds.subsystem." + std::to_string(t));
#endif
        for (const int s : decomposition_->neighbors_of(t)) {
          const graph::PartId src =
              step2_assignment[static_cast<std::size_t>(s)];
          if (src == rank) {
            // Merged locally above — unless the neighbour itself is dead on
            // this rank and exported nothing.
            if (dead_subsystems.count(s) > 0) {
              missing_neighbors[t].insert(s);
            }
            continue;
          }
          if (rank_dead(src)) {
            missing_neighbors[t].insert(s);
            OBS_EVENT("exchange.pseudo_lost", OBS_ATTR("subsystem", t),
                      OBS_ATTR("neighbor", s), OBS_ATTR("round", round),
                      OBS_ATTR("reason", "rank_dead"));
            continue;
          }
          const auto msg = recv_within(comm, deadline, src,
                                       pseudo_tag(s, t, m));
          if (!msg.has_value()) {
            if (!options_.degraded_step2) {
              throw CommError("dse: pseudo measurements from subsystem " +
                              std::to_string(s) + " for subsystem " +
                              std::to_string(t) +
                              " missed the exchange deadline");
            }
            missing_neighbors[t].insert(s);
            OBS_EVENT("exchange.pseudo_lost", OBS_ATTR("subsystem", t),
                      OBS_ATTR("neighbor", s), OBS_ATTR("round", round));
            continue;
          }
          try {
            const std::vector<CondensedBoundaryRecord> records =
                condense ? decode_condensed_states(msg->payload)
                         : widen_records(decode_bus_states(msg->payload));
            auto& sink = neighbor_records[t];
            sink.insert(sink.end(), records.begin(), records.end());
          } catch (const InvalidInput&) {
            OBS_COUNTER_ADD("exchange.corrupt_frames", 1);
            if (!options_.degraded_step2) {
              throw;
            }
            missing_neighbors[t].insert(s);
            OBS_EVENT("exchange.pseudo_lost", OBS_ATTR("subsystem", t),
                      OBS_ATTR("neighbor", s), OBS_ATTR("round", round),
                      OBS_ATTR("reason", "corrupt"));
          }
        }
#if GRIDSE_OBS
        const double fanin_wait = fanin_timer.seconds();
        OBS_HISTOGRAM_OBSERVE("exchange.fanin_wait_seconds", fanin_wait);
        fanin_hist.observe(fanin_wait);
#endif
      }
    }
    result.exchange_seconds += round_exchange_timer.seconds();

    Timer step2_timer;
    {
      OBS_SPAN("dse.step2");
      analysis::Mutex info_mutex{"DseDriver::step2_info_mutex"};
      pool.parallel_for(hosted2.size(), [&](std::size_t i) {
        const int s = hosted2[i];
        if (dead_subsystems.count(s) > 0) return;
        const bool degraded = missing_neighbors.count(s) > 0;
        const LocalSolveInfo info = estimators.at(s)->run_step2(
            global_measurements, neighbor_records.at(s),
            /*fill_missing_with_priors=*/degraded);
        OBS_HISTOGRAM_OBSERVE("dse.step2.subsystem_seconds", info.seconds);
        OBS_COUNTER_ADD("dse.step2.subsystems", 1);
        analysis::LockGuard lock(info_mutex);
        step2_info[s] = info;
      });
      comm.barrier();
    }
    result.step2_seconds += step2_timer.seconds();
  }

  // --- Final step: combine subsystem solutions --------------------------------
  Timer combine_timer;
  OBS_SPAN("dse.combine");
  bool local_ok = dead_subsystems.empty();
  for (const auto& [s, info] : step1_info) local_ok &= info.converged;
  for (const auto& [s, info] : step2_info) local_ok &= info.converged;

  // This rank's degradation report, shipped inside the combine payload so
  // every rank finishes with the cluster-wide health picture.
  std::vector<DegradedStatus> my_statuses;
  for (const int s : hosted2) {
    DegradedStatus st;
    st.subsystem = s;
    st.missing_redistribution = dead_subsystems.count(s) > 0;
    const auto missing_it = missing_neighbors.find(s);
    if (missing_it != missing_neighbors.end()) {
      st.missing_neighbors.assign(missing_it->second.begin(),
                                  missing_it->second.end());
    }
    if (st.missing_redistribution || !st.missing_neighbors.empty()) {
      my_statuses.push_back(std::move(st));
    }
  }
#if GRIDSE_OBS
  if (!my_statuses.empty()) {
    OBS_COUNTER_ADD("exchange.degraded_subsystems", my_statuses.size());
    for (const DegradedStatus& st : my_statuses) {
      OBS_EVENT("exchange.degraded", OBS_ATTR("subsystem", st.subsystem),
                OBS_ATTR("missing_neighbors",
                         static_cast<int>(st.missing_neighbors.size())),
                OBS_ATTR("missing_redistribution",
                         st.missing_redistribution ? 1 : 0));
    }
  }
#endif

  std::vector<BusStateRecord> my_records;
  for (const int s : hosted2) {
    if (dead_subsystems.count(s) > 0) continue;  // never solved
    const auto records = estimators.at(s)->final_states();
    my_records.insert(my_records.end(), records.begin(), records.end());
  }
  ByteWriter w;
  w.write(static_cast<std::uint8_t>(local_ok ? 1 : 0));
  w.write_vector(my_records);
  w.write_vector(encode_degraded(my_statuses));
  const auto combine_payload = w.take();
  for (int r = 0; r < comm.size(); ++r) {
    if (r == rank) continue;
    OBS_COUNTER_ADD("dse.combine.messages", 1);
    OBS_COUNTER_ADD("dse.combine.bytes", combine_payload.size());
    comm.send(r, kCombineTag, combine_payload);
  }
  result.state = grid::GridState(network_->num_buses());
  bool all_ok = local_ok;
  result.degraded = my_statuses;
  const auto apply_records = [&](const std::vector<BusStateRecord>& records) {
    for (const BusStateRecord& rec : records) {
      if (rec.bus < 0 || rec.bus >= network_->num_buses()) {
        throw InvalidInput("dse combine: bus index " +
                           std::to_string(rec.bus) + " out of range");
      }
      result.state.theta[static_cast<std::size_t>(rec.bus)] = rec.theta;
      result.state.vm[static_cast<std::size_t>(rec.bus)] = rec.vm;
    }
  };
  apply_records(my_records);
  const Deadline combine_deadline(options_.exchange_deadline);
  for (int r = 0; r < comm.size(); ++r) {
    if (r == rank) continue;
    if (rank_dead(r)) {
      result.unresponsive_ranks.push_back(r);
      all_ok = false;
      OBS_EVENT("exchange.unresponsive_rank", OBS_ATTR("rank", r),
                OBS_ATTR("reason", "rank_dead"));
      continue;
    }
    const auto msg = recv_within(comm, combine_deadline, r, kCombineTag);
    if (!msg.has_value()) {
      if (!options_.degraded_step2) {
        throw CommError("dse: combine payload from rank " +
                        std::to_string(r) + " missed the exchange deadline");
      }
      result.unresponsive_ranks.push_back(r);
      all_ok = false;
      OBS_EVENT("exchange.unresponsive_rank", OBS_ATTR("rank", r));
      continue;
    }
    try {
      ByteReader reader(msg->payload);
      const bool peer_ok = reader.read<std::uint8_t>() != 0;
      const auto records = reader.read_vector<BusStateRecord>();
      const auto peer_statuses =
          decode_degraded(reader.read_vector<std::uint8_t>());
      apply_records(records);
      all_ok &= peer_ok;
      result.degraded.insert(result.degraded.end(), peer_statuses.begin(),
                             peer_statuses.end());
    } catch (const InvalidInput&) {
      OBS_COUNTER_ADD("exchange.corrupt_frames", 1);
      if (!options_.degraded_step2) {
        throw;
      }
      result.unresponsive_ranks.push_back(r);
      all_ok = false;
      OBS_EVENT("exchange.unresponsive_rank", OBS_ATTR("rank", r),
                OBS_ATTR("reason", "corrupt"));
    }
  }
  std::sort(result.degraded.begin(), result.degraded.end(),
            [](const DegradedStatus& a, const DegradedStatus& b) {
              return a.subsystem < b.subsystem;
            });
  result.all_converged = all_ok;
  result.combine_seconds = combine_timer.seconds();

  // --- Checkpoint collect (recovery only) ------------------------------------
  // Every rank snapshots the subsystems it solved this cycle and ships them
  // to rank 0, where the Supervisor keeps the newest checkpoint per
  // subsystem. These are the warm-start seeds for the next cycle and the
  // migration payloads after a cluster loss.
  if (rctx != nullptr && rctx->collect_checkpoints) {
    OBS_SPAN("dse.recovery.collect");
    std::vector<std::vector<std::uint8_t>> encoded;
    for (const int s : hosted2) {
      if (dead_subsystems.count(s) > 0) continue;  // never solved
      EstimatorCheckpoint ckpt;
      ckpt.subsystem = s;
      ckpt.cycle = rctx->cycle;
      ckpt.reuse_gain = true;
      ckpt.step1_states = estimators.at(s)->final_states();
      ckpt.boundary_states = estimators.at(s)->current_boundary_states();
      encoded.push_back(encode_checkpoint(ckpt));
      if (rank == 0) {
        result.recovery.checkpoint_bytes += encoded.back().size();
        result.recovery.checkpoints.push_back(std::move(ckpt));
      }
    }
    if (rank != 0) {
      ByteWriter report;
      report.write(static_cast<std::uint64_t>(encoded.size()));
      for (const auto& bytes : encoded) {
        report.write_vector(bytes);
      }
      comm.send(0, runtime::kRecoveryReportTag, report.take());
    } else {
      const Deadline report_deadline(options_.exchange_deadline);
      for (int r = 1; r < comm.size(); ++r) {
        if (rank_dead(r)) continue;
        const auto msg =
            recv_within(comm, report_deadline, r, runtime::kRecoveryReportTag);
        if (!msg.has_value()) {
          OBS_EVENT("recovery.report_missed", OBS_ATTR("rank", r));
          continue;
        }
        try {
          ByteReader reader(msg->payload);
          const auto count = reader.read<std::uint64_t>();
          if (count > msg->payload.size()) {
            throw InvalidInput("recovery report: implausible count");
          }
          for (std::uint64_t i = 0; i < count; ++i) {
            const auto bytes = reader.read_vector<std::uint8_t>();
            result.recovery.checkpoints.push_back(decode_checkpoint(bytes));
            result.recovery.checkpoint_bytes += bytes.size();
          }
          if (!reader.at_end()) {
            throw InvalidInput("recovery report: trailing bytes");
          }
        } catch (const InvalidInput&) {
          OBS_COUNTER_ADD("exchange.corrupt_frames", 1);
          OBS_EVENT("recovery.report_missed", OBS_ATTR("rank", r),
                    OBS_ATTR("reason", "corrupt"));
        }
      }
      std::sort(result.recovery.checkpoints.begin(),
                result.recovery.checkpoints.end(),
                [](const EstimatorCheckpoint& a, const EstimatorCheckpoint& b) {
                  return a.subsystem < b.subsystem;
                });
      OBS_COUNTER_ADD("recovery.checkpoints",
                      result.recovery.checkpoints.size());
      OBS_COUNTER_ADD("recovery.checkpoint_bytes",
                      result.recovery.checkpoint_bytes);
    }
  }
  result.total_seconds = total_timer.seconds();
  result.bytes_sent = comm.bytes_sent() - bytes_before;
#if GRIDSE_OBS
  if (rank == 0 && options_.slo.any()) {
    check_slo(options_.slo, result);
  }
#endif

  for (const int s : hosted2) {
    SubsystemTrace trace;
    trace.subsystem = s;
    trace.step1_rank = step1_assignment[static_cast<std::size_t>(s)];
    trace.step2_rank = step2_assignment[static_cast<std::size_t>(s)];
    if (step1_info.count(s) > 0) trace.step1 = step1_info[s];
    if (step2_info.count(s) > 0) trace.step2 = step2_info[s];
    result.traces.push_back(trace);
  }
  return result;
}

estimation::WlsResult centralized_estimate(
    const grid::Network& network, const grid::MeasurementSet& measurements,
    const estimation::WlsOptions& options) {
  estimation::WlsEstimator estimator(network, options);
  return estimator.estimate(measurements);
}

}  // namespace gridse::core
