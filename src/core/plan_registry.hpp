#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "analysis/debug_sync.hpp"
#include "analysis/thread_annotations.hpp"
#include "estimation/solver_cache.hpp"

namespace gridse::core {

/// Per-subsystem SolverCaches that outlive the per-cycle DseDriver, so
/// symbolic factorization plans and gain assemblers persist across DSE
/// cycles. Owned by the long-lived DseSystem (or a test harness) and handed
/// to each cycle's driver through DseOptions::plan_registry.
///
/// Invalidation contract: `invalidate(s)` must be called whenever subsystem
/// s is re-mapped to a different cluster or its topology changes (the
/// Supervisor's migrated-subsystem list), `invalidate_all()` on a
/// decomposition change. A missed invalidation is still safe — the cached
/// plans are fingerprint-checked against the actual pattern — but the stale
/// entries would waste cache slots on a host that no longer solves them.
class PlanRegistry {
 public:
  struct Stats {
    std::uint64_t subsystems = 0;  ///< caches currently alive
    std::uint64_t invalidations = 0;
    estimation::SolverCache::Stats cache;  ///< aggregated over all caches
  };

  /// The cache for `subsystem`, created on first use. Never null.
  std::shared_ptr<estimation::SolverCache> cache_for(int subsystem);

  /// Drop one subsystem's cached plans (subsystem migrated / topology
  /// edited). No-op when the subsystem has no cache yet.
  void invalidate(int subsystem);

  /// Drop every subsystem's cached plans (decomposition change).
  void invalidate_all();

  [[nodiscard]] Stats stats() const;

 private:
  mutable analysis::Mutex mutex_{"core::PlanRegistry"};
  std::map<int, std::shared_ptr<estimation::SolverCache>> caches_
      GRIDSE_GUARDED_BY(mutex_);
  std::uint64_t invalidations_ GRIDSE_GUARDED_BY(mutex_) = 0;
};

}  // namespace gridse::core
