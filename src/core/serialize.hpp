#pragma once

#include <vector>

#include "grid/measurement.hpp"
#include "grid/state.hpp"
#include "util/byte_buffer.hpp"

namespace gridse::core {

/// One bus's solved state shipped between estimators (the paper's pseudo
/// measurements: "bus voltage, phase angle" of boundary and sensitive
/// internal buses). Global bus numbering.
struct BusStateRecord {
  std::int32_t bus = -1;
  double theta = 0.0;
  double vm = 0.0;
};
static_assert(std::is_trivially_copyable_v<BusStateRecord>);

/// Serialize/deserialize a batch of bus state records.
std::vector<std::uint8_t> encode_bus_states(
    const std::vector<BusStateRecord>& records);
std::vector<BusStateRecord> decode_bus_states(
    const std::vector<std::uint8_t>& bytes);

/// A boundary/sensitive bus's solved state with the marginal confidence of
/// the exporting subsystem's Schur-condensed boundary system:
/// sigma = sqrt(diag(S⁻¹)). The condensed pseudo-measurement exchange ships
/// these instead of plain BusStateRecords, so the receiver weights each
/// pseudo measurement by how well the exporter actually observed that bus.
/// Non-positive sigmas mean "no condensed confidence — use the configured
/// default pseudo sigma".
struct CondensedBoundaryRecord {
  std::int32_t bus = -1;
  double theta = 0.0;
  double vm = 0.0;
  double sigma_theta = -1.0;
  double sigma_vm = -1.0;
};
static_assert(std::is_trivially_copyable_v<CondensedBoundaryRecord>);

/// Serialize/deserialize a batch of condensed boundary records.
std::vector<std::uint8_t> encode_condensed_states(
    const std::vector<CondensedBoundaryRecord>& records);
std::vector<CondensedBoundaryRecord> decode_condensed_states(
    const std::vector<std::uint8_t>& bytes);

/// Health record of one subsystem whose Step 2 ran degraded: some neighbour
/// pseudo-measurements never arrived (re-solved with Step-1 priors), or its
/// re-mapping redistribution payload was lost (subsystem skipped entirely).
/// Shipped inside the combine payload so every rank ends the cycle with the
/// full degradation picture.
struct DegradedStatus {
  std::int32_t subsystem = -1;
  /// Neighbour subsystems whose pseudo measurements were missing/corrupt.
  std::vector<std::int32_t> missing_neighbors;
  /// True when the Step-1 solution never reached the Step-2 host.
  bool missing_redistribution = false;
};

/// Serialize/deserialize a batch of degradation records.
std::vector<std::uint8_t> encode_degraded(
    const std::vector<DegradedStatus>& statuses);
std::vector<DegradedStatus> decode_degraded(
    const std::vector<std::uint8_t>& bytes);

/// Warm-restart checkpoint of one subsystem's estimator, collected at the
/// end of every recovered cycle and stored by the supervisor: the Step-1
/// state vector (Step-2-refined where available), the boundary/sensitive
/// pseudo-measurement exports, and the gain-matrix reuse flag. A rank that
/// (re)hosts the subsystem warm-starts its next Step-1 solve from
/// `step1_states` instead of cold-starting from a flat profile.
struct EstimatorCheckpoint {
  std::int32_t subsystem = -1;
  /// Cycle index the checkpoint was taken at; the store keeps the newest.
  std::int64_t cycle = -1;
  /// The subsystem's topology was unchanged when the checkpoint was taken,
  /// so a restored solver may reuse its factorized gain matrix.
  bool reuse_gain = false;
  /// Per-bus solution over all own buses (global numbering).
  std::vector<BusStateRecord> step1_states;
  /// Boundary + sensitive-internal exports (the pseudo measurements the
  /// subsystem last shipped to its neighbours).
  std::vector<BusStateRecord> boundary_states;
};

/// Serialize/deserialize one estimator checkpoint.
std::vector<std::uint8_t> encode_checkpoint(const EstimatorCheckpoint& ckpt);
EstimatorCheckpoint decode_checkpoint(const std::vector<std::uint8_t>& bytes);

/// Serialize/deserialize a measurement set (for the Step-1→Step-2
/// raw-measurement redistribution when a subsystem is re-mapped).
std::vector<std::uint8_t> encode_measurements(const grid::MeasurementSet& set);
grid::MeasurementSet decode_measurements(const std::vector<std::uint8_t>& bytes);

/// Serialize/deserialize a full grid state.
std::vector<std::uint8_t> encode_state(const grid::GridState& state);
grid::GridState decode_state(const std::vector<std::uint8_t>& bytes);

}  // namespace gridse::core
