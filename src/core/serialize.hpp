#pragma once

#include <vector>

#include "grid/measurement.hpp"
#include "grid/state.hpp"
#include "util/byte_buffer.hpp"

namespace gridse::core {

/// One bus's solved state shipped between estimators (the paper's pseudo
/// measurements: "bus voltage, phase angle" of boundary and sensitive
/// internal buses). Global bus numbering.
struct BusStateRecord {
  std::int32_t bus = -1;
  double theta = 0.0;
  double vm = 0.0;
};
static_assert(std::is_trivially_copyable_v<BusStateRecord>);

/// Serialize/deserialize a batch of bus state records.
std::vector<std::uint8_t> encode_bus_states(
    const std::vector<BusStateRecord>& records);
std::vector<BusStateRecord> decode_bus_states(
    const std::vector<std::uint8_t>& bytes);

/// Health record of one subsystem whose Step 2 ran degraded: some neighbour
/// pseudo-measurements never arrived (re-solved with Step-1 priors), or its
/// re-mapping redistribution payload was lost (subsystem skipped entirely).
/// Shipped inside the combine payload so every rank ends the cycle with the
/// full degradation picture.
struct DegradedStatus {
  std::int32_t subsystem = -1;
  /// Neighbour subsystems whose pseudo measurements were missing/corrupt.
  std::vector<std::int32_t> missing_neighbors;
  /// True when the Step-1 solution never reached the Step-2 host.
  bool missing_redistribution = false;
};

/// Serialize/deserialize a batch of degradation records.
std::vector<std::uint8_t> encode_degraded(
    const std::vector<DegradedStatus>& statuses);
std::vector<DegradedStatus> decode_degraded(
    const std::vector<std::uint8_t>& bytes);

/// Serialize/deserialize a measurement set (for the Step-1→Step-2
/// raw-measurement redistribution when a subsystem is re-mapped).
std::vector<std::uint8_t> encode_measurements(const grid::MeasurementSet& set);
grid::MeasurementSet decode_measurements(const std::vector<std::uint8_t>& bytes);

/// Serialize/deserialize a full grid state.
std::vector<std::uint8_t> encode_state(const grid::GridState& state);
grid::GridState decode_state(const std::vector<std::uint8_t>& bytes);

}  // namespace gridse::core
