#pragma once

#include <vector>

#include "grid/measurement.hpp"
#include "grid/state.hpp"
#include "util/byte_buffer.hpp"

namespace gridse::core {

/// One bus's solved state shipped between estimators (the paper's pseudo
/// measurements: "bus voltage, phase angle" of boundary and sensitive
/// internal buses). Global bus numbering.
struct BusStateRecord {
  std::int32_t bus = -1;
  double theta = 0.0;
  double vm = 0.0;
};
static_assert(std::is_trivially_copyable_v<BusStateRecord>);

/// Serialize/deserialize a batch of bus state records.
std::vector<std::uint8_t> encode_bus_states(
    const std::vector<BusStateRecord>& records);
std::vector<BusStateRecord> decode_bus_states(
    const std::vector<std::uint8_t>& bytes);

/// Serialize/deserialize a measurement set (for the Step-1→Step-2
/// raw-measurement redistribution when a subsystem is re-mapped).
std::vector<std::uint8_t> encode_measurements(const grid::MeasurementSet& set);
grid::MeasurementSet decode_measurements(const std::vector<std::uint8_t>& bytes);

/// Serialize/deserialize a full grid state.
std::vector<std::uint8_t> encode_state(const grid::GridState& state);
grid::GridState decode_state(const std::vector<std::uint8_t>& bytes);

}  // namespace gridse::core
