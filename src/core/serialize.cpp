#include "core/serialize.hpp"

#include "util/error.hpp"

namespace gridse::core {

std::vector<std::uint8_t> encode_bus_states(
    const std::vector<BusStateRecord>& records) {
  ByteWriter w(16 + records.size() * sizeof(BusStateRecord));
  w.write_vector(records);
  return w.take();
}

std::vector<BusStateRecord> decode_bus_states(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  auto records = r.read_vector<BusStateRecord>();
  if (!r.at_end()) {
    throw InvalidInput("decode_bus_states: trailing bytes in frame");
  }
  return records;
}

std::vector<std::uint8_t> encode_condensed_states(
    const std::vector<CondensedBoundaryRecord>& records) {
  ByteWriter w(16 + records.size() * sizeof(CondensedBoundaryRecord));
  w.write_vector(records);
  return w.take();
}

std::vector<CondensedBoundaryRecord> decode_condensed_states(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  auto records = r.read_vector<CondensedBoundaryRecord>();
  if (!r.at_end()) {
    throw InvalidInput("decode_condensed_states: trailing bytes in frame");
  }
  return records;
}

std::vector<std::uint8_t> encode_degraded(
    const std::vector<DegradedStatus>& statuses) {
  ByteWriter w(16 + statuses.size() * 32);
  w.write(static_cast<std::uint64_t>(statuses.size()));
  for (const DegradedStatus& st : statuses) {
    w.write(st.subsystem);
    w.write(static_cast<std::uint8_t>(st.missing_redistribution ? 1 : 0));
    w.write_vector(st.missing_neighbors);
  }
  return w.take();
}

std::vector<DegradedStatus> decode_degraded(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const auto count = r.read<std::uint64_t>();
  if (count > bytes.size()) {  // each status needs well over one byte
    throw InvalidInput("decode_degraded: implausible status count");
  }
  std::vector<DegradedStatus> statuses(count);
  for (DegradedStatus& st : statuses) {
    st.subsystem = r.read<std::int32_t>();
    st.missing_redistribution = r.read<std::uint8_t>() != 0;
    st.missing_neighbors = r.read_vector<std::int32_t>();
  }
  if (!r.at_end()) {
    throw InvalidInput("decode_degraded: trailing bytes in frame");
  }
  return statuses;
}

std::vector<std::uint8_t> encode_checkpoint(const EstimatorCheckpoint& ckpt) {
  ByteWriter w(48 + (ckpt.step1_states.size() + ckpt.boundary_states.size()) *
                        sizeof(BusStateRecord));
  w.write(ckpt.subsystem);
  w.write(ckpt.cycle);
  w.write(static_cast<std::uint8_t>(ckpt.reuse_gain ? 1 : 0));
  w.write_vector(ckpt.step1_states);
  w.write_vector(ckpt.boundary_states);
  return w.take();
}

EstimatorCheckpoint decode_checkpoint(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  EstimatorCheckpoint ckpt;
  ckpt.subsystem = r.read<std::int32_t>();
  ckpt.cycle = r.read<std::int64_t>();
  ckpt.reuse_gain = r.read<std::uint8_t>() != 0;
  ckpt.step1_states = r.read_vector<BusStateRecord>();
  ckpt.boundary_states = r.read_vector<BusStateRecord>();
  if (!r.at_end()) {
    throw InvalidInput("decode_checkpoint: trailing bytes in frame");
  }
  return ckpt;
}

namespace {

/// Wire image of one measurement (kept independent of the in-memory layout
/// so struct padding/reordering can never corrupt frames).
struct MeasurementWire {
  std::uint8_t type;
  std::uint8_t at_from_side;
  std::int32_t bus;
  std::int32_t branch;
  double value;
  double sigma;
};
static_assert(std::is_trivially_copyable_v<MeasurementWire>);

}  // namespace

std::vector<std::uint8_t> encode_measurements(const grid::MeasurementSet& set) {
  ByteWriter w(32 + set.items.size() * sizeof(MeasurementWire));
  w.write(set.timestamp);
  std::vector<MeasurementWire> wire(set.items.size());
  for (std::size_t i = 0; i < set.items.size(); ++i) {
    const grid::Measurement& m = set.items[i];
    wire[i] = {static_cast<std::uint8_t>(m.type),
               static_cast<std::uint8_t>(m.at_from_side ? 1 : 0), m.bus,
               m.branch, m.value, m.sigma};
  }
  w.write_vector(wire);
  return w.take();
}

grid::MeasurementSet decode_measurements(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  grid::MeasurementSet set;
  set.timestamp = r.read<double>();
  const auto wire = r.read_vector<MeasurementWire>();
  if (!r.at_end()) {
    throw InvalidInput("decode_measurements: trailing bytes in frame");
  }
  set.items.reserve(wire.size());
  for (const MeasurementWire& m : wire) {
    if (m.type > static_cast<std::uint8_t>(grid::MeasType::kVAngle)) {
      throw InvalidInput("decode_measurements: unknown measurement type " +
                         std::to_string(m.type));
    }
    set.items.push_back({static_cast<grid::MeasType>(m.type), m.bus, m.branch,
                         m.at_from_side != 0, m.value, m.sigma});
  }
  return set;
}

std::vector<std::uint8_t> encode_state(const grid::GridState& state) {
  ByteWriter w(32 + state.theta.size() * 16);
  w.write_vector(state.theta);
  w.write_vector(state.vm);
  return w.take();
}

grid::GridState decode_state(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  grid::GridState state;
  state.theta = r.read_vector<double>();
  state.vm = r.read_vector<double>();
  if (!r.at_end() || state.theta.size() != state.vm.size()) {
    throw InvalidInput("decode_state: malformed state frame");
  }
  return state;
}

}  // namespace gridse::core
