#pragma once

#include <optional>

#include "core/serialize.hpp"
#include "decomp/subsystem_model.hpp"
#include "estimation/batched_wls.hpp"
#include "estimation/wls.hpp"

namespace gridse::core {

/// Per-subsystem estimation configuration (shared by the distributed and
/// hierarchical drivers).
struct LocalEstimatorOptions {
  estimation::WlsOptions wls;
  /// Standard deviations assigned to neighbour pseudo measurements in
  /// Step 2.
  double pseudo_sigma_vm = 0.01;
  double pseudo_sigma_angle = 0.01;
  /// Standard deviations of the low-weight priors substituted for missing
  /// neighbour pseudo measurements in degraded Step 2 (several times looser
  /// than pseudo_sigma_* so real data always dominates).
  double degraded_prior_sigma_vm = 0.05;
  double degraded_prior_sigma_angle = 0.05;
  /// Tikhonov regularization for the Step-2 extended system (remote corners
  /// of the extended model can be weakly observed).
  double step2_regularization = 1e-8;
  /// Use the Huber M-estimator (IRLS) for the local solves instead of plain
  /// WLS: gross errors in one subsystem's telemetry are then bounded before
  /// its solution is exported to neighbours as pseudo measurements.
  bool robust = false;
  /// Huber threshold in standard deviations (only with robust = true).
  double huber_gamma = 1.5;
  /// After Step 1, Schur-condense the gain matrix onto the boundary states
  /// and export ONLY boundary records, each carrying its marginal sigma
  /// sqrt(diag(S⁻¹)). The sensitive-internal records of the plain exchange
  /// are folded into those marginals, so the condensed payload is smaller
  /// AND neighbours weight each pseudo measurement by how well this
  /// subsystem actually observed it (instead of the flat pseudo_sigma_*
  /// defaults).
  bool condense_boundary = false;
  /// Clamp range for received condensed sigmas: the floor keeps an
  /// over-confident export from overriding real telemetry, the cap keeps a
  /// barely-observed export at least as anchoring as a degraded prior.
  double condense_sigma_floor = 1e-4;
  double condense_sigma_cap = 0.05;
};

/// Outcome of one subsystem step.
struct LocalSolveInfo {
  bool converged = false;
  int gauss_newton_iterations = 0;
  int inner_iterations = 0;
  double seconds = 0.0;
  double objective = 0.0;
  std::size_t num_measurements = 0;
  /// Step 1 started from a restored checkpoint instead of a flat profile.
  bool warm_start = false;
};

/// Runs DSE Step 1 and Step 2 for one subsystem. Owns the extracted local
/// and extended models; construct once per (decomposition, subsystem) and
/// reuse across time frames.
class LocalEstimator {
 public:
  LocalEstimator(const grid::Network& network, const decomp::Decomposition& d,
                 int subsystem, LocalEstimatorOptions options);

  /// DSE Step 1: estimate from this subsystem's own measurements (already
  /// filtered to the local model by the caller, or pass the global set and
  /// let this filter). The local angle reference is the global slack bus if
  /// the subsystem hosts it, else the bus of the first PMU (kVAngle)
  /// measurement; throws InvalidInput when neither exists.
  LocalSolveInfo run_step1(const grid::MeasurementSet& global_set);

  /// Batched Step-1 split, used by the driver's lockstep multi-subsystem
  /// sweep: prepare_step1 stages the lane problem (measurement filtering,
  /// reference pick, warm/flat initial — everything run_step1 does before
  /// solving; the one-shot warm start is consumed here). The caller solves
  /// the lane (estimation::batched_estimate) and hands the result to
  /// commit_step1, which finishes the run_step1 bookkeeping. The returned
  /// reference points into this estimator and is valid until the next
  /// prepare/run call. Not available with options.robust (IRLS reweights
  /// per subsystem).
  [[nodiscard]] const estimation::BatchedLaneProblem& prepare_step1(
      const grid::MeasurementSet& global_set);

  /// Install the batched solve of the lane staged by prepare_step1.
  /// `seconds` is the caller-attributed share of the batched solve time.
  LocalSolveInfo commit_step1(const estimation::WlsResult& result,
                              double seconds);

  /// Seed the next run_step1 with a restored checkpoint (cross-cycle
  /// warm restart): `records` must cover every bus of this subsystem in
  /// global numbering. One-shot — the next run_step1 consumes it as its
  /// initial Gauss-Newton iterate (the PMU/slack reference angle is still
  /// pinned by the solver) instead of the flat profile, which converges in
  /// fewer iterations when the operating point moved only a little since
  /// the checkpoint was taken.
  void set_warm_start(const std::vector<BusStateRecord>& records);

  /// Install a Step-1 solution computed on another cluster (re-mapping
  /// redistribution): `records` must cover every bus of this subsystem in
  /// global numbering. Enables run_step2 without a local run_step1.
  void adopt_step1(const std::vector<BusStateRecord>& records);

  /// DSE Step 2: re-evaluate on the extended model using own measurements
  /// plus neighbour pseudo measurements. Requires run_step1 first.
  /// With `fill_missing_with_priors` (degraded mode), remote extended buses
  /// not covered by `neighbor_states` get low-weight priors derived from the
  /// nearest own bus's Step-1 solution instead of being left unanchored, so
  /// the extended solve stays observable when a neighbour never reported.
  LocalSolveInfo run_step2(const grid::MeasurementSet& global_set,
                           const std::vector<BusStateRecord>& neighbor_states,
                           bool fill_missing_with_priors = false);

  /// Step 2 with condensed neighbour records: each pseudo measurement uses
  /// the record's marginal sigma (clamped to the configured range) instead
  /// of the flat pseudo_sigma_* defaults. Records with non-positive sigmas
  /// fall back to the defaults, so this is a strict generalization of the
  /// BusStateRecord overload.
  LocalSolveInfo run_step2(
      const grid::MeasurementSet& global_set,
      const std::vector<CondensedBoundaryRecord>& neighbor_states,
      bool fill_missing_with_priors = false);

  /// Step-1 solution of this subsystem's own buses, global numbering —
  /// all buses (for the final combine).
  [[nodiscard]] std::vector<BusStateRecord> step1_all_states() const;

  /// Step-1 solution restricted to boundary + sensitive internal buses —
  /// the pseudo measurements shipped to neighbours.
  [[nodiscard]] std::vector<BusStateRecord> step1_boundary_states() const;

  /// Boundary + sensitive states from the most recent step (Step 2 when it
  /// has run, else Step 1) — the payload of later exchange rounds.
  [[nodiscard]] std::vector<BusStateRecord> current_boundary_states() const;

  /// The condensed export. With condensation active: boundary-bus records
  /// only, widened with the Schur marginal sigmas computed after Step 1.
  /// When condensation is off or was not possible (adopted Step-1 solution,
  /// interior factorization failure): all of current_boundary_states() with
  /// sigma -1 (use defaults).
  [[nodiscard]] std::vector<CondensedBoundaryRecord> condensed_boundary_states()
      const;

  /// Final per-bus states after Step 2: Step-2 values for boundary +
  /// sensitive buses, Step-1 values elsewhere. Falls back to Step-1
  /// everywhere when Step 2 has not run.
  [[nodiscard]] std::vector<BusStateRecord> final_states() const;

  [[nodiscard]] const decomp::SubsystemModel& local_model() const {
    return local_;
  }
  [[nodiscard]] const decomp::SubsystemModel& extended_model() const {
    return extended_;
  }
  [[nodiscard]] int subsystem() const { return subsystem_; }

 private:
  struct Reference {
    grid::BusIndex local_bus = 0;
    double angle = 0.0;
  };
  [[nodiscard]] Reference pick_reference(
      const decomp::SubsystemModel& model,
      const grid::MeasurementSet& local_set) const;

  const grid::Network* network_;
  const decomp::Decomposition* decomposition_;
  int subsystem_;
  LocalEstimatorOptions options_;
  decomp::SubsystemModel local_;
  decomp::SubsystemModel extended_;
  /// Map a full-coverage record batch into local numbering; throws
  /// InvalidInput on foreign buses or incomplete coverage.
  [[nodiscard]] grid::GridState records_to_local_state(
      const std::vector<BusStateRecord>& records, const char* what) const;

  /// Compute condensed-export sigmas from the Step-1 solution (no-op unless
  /// options_.condense_boundary; failures leave condensed_ empty and the
  /// exports fall back to default sigmas).
  void maybe_condense(const grid::MeasurementSet& local_set,
                      const Reference& ref);

  /// Lane staged by prepare_step1, consumed by commit_step1. The lane's set
  /// pointer targets `local_set`, which is why this lives in the estimator
  /// rather than on the caller's stack.
  struct Step1Prep {
    grid::MeasurementSet local_set;
    estimation::BatchedLaneProblem lane;
    Reference ref;
    bool warm = false;
  };

  std::optional<grid::GridState> step1_state_;   // local numbering
  std::optional<grid::GridState> step2_state_;   // extended numbering
  std::optional<grid::GridState> warm_start_;    // local numbering, one-shot
  std::optional<Step1Prep> step1_prep_;
  /// Condensed sigmas for the boundary-bus exports, in boundary_buses
  /// order; empty = export everything with default sigmas.
  std::vector<CondensedBoundaryRecord> condensed_;
};

}  // namespace gridse::core
