#include "core/hierarchical.hpp"

#include <map>
#include <memory>

#include "analysis/debug_sync.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace gridse::core {
namespace {

constexpr int kUpTag = 1 << 16;        // BA -> coordinator
constexpr int kDownTag = (1 << 16) + 1;  // coordinator -> BA

}  // namespace

HierarchicalDriver::HierarchicalDriver(
    const grid::Network& network, const decomp::Decomposition& decomposition,
    HierarchicalOptions options)
    : network_(&network),
      decomposition_(&decomposition),
      options_(options) {}

HierarchicalResult HierarchicalDriver::run(
    runtime::Communicator& comm,
    const grid::MeasurementSet& global_measurements,
    std::span<const graph::PartId> assignment) const {
  const int m = decomposition_->num_subsystems();
  const int rank = comm.rank();
  GRIDSE_CHECK(static_cast<int>(assignment.size()) == m);

  const std::size_t bytes_before = comm.bytes_sent();
  Timer total_timer;
  HierarchicalResult result;

  std::vector<int> hosted;
  for (int s = 0; s < m; ++s) {
    if (assignment[static_cast<std::size_t>(s)] == rank) hosted.push_back(s);
  }

  // --- local estimations (same Step 1 as the distributed mode) ---------------
  Timer step1_timer;
  std::map<int, std::unique_ptr<LocalEstimator>> estimators;
  bool local_ok = true;
  {
    ThreadPool pool(static_cast<std::size_t>(options_.workers_per_cluster));
    for (const int s : hosted) {
      estimators.emplace(s, std::make_unique<LocalEstimator>(
                                *network_, *decomposition_, s, options_.local));
    }
    analysis::Mutex ok_mutex{"HierarchicalDriver::ok_mutex"};
    pool.parallel_for(hosted.size(), [&](std::size_t i) {
      const LocalSolveInfo info =
          estimators.at(hosted[i])->run_step1(global_measurements);
      analysis::LockGuard lock(ok_mutex);
      local_ok &= info.converged;
    });
  }
  comm.barrier();
  result.step1_seconds = step1_timer.seconds();

  // --- upward data exchange: solutions to the coordinator --------------------
  Timer coord_timer;
  std::vector<BusStateRecord> my_records;
  for (const int s : hosted) {
    const auto records = estimators.at(s)->step1_all_states();
    my_records.insert(my_records.end(), records.begin(), records.end());
  }
  if (rank != 0) {
    ByteWriter w;
    w.write(static_cast<std::uint8_t>(local_ok ? 1 : 0));
    w.write_vector(my_records);
    comm.send(0, kUpTag, w.take());
  }

  if (rank == 0) {
    // Coordinator: assemble, re-evaluate, broadcast.
    grid::GridState assembled(network_->num_buses());
    bool all_ok = local_ok;
    const auto apply = [&](const std::vector<BusStateRecord>& records) {
      for (const BusStateRecord& rec : records) {
        assembled.theta[static_cast<std::size_t>(rec.bus)] = rec.theta;
        assembled.vm[static_cast<std::size_t>(rec.bus)] = rec.vm;
      }
    };
    apply(my_records);
    for (int r = 1; r < comm.size(); ++r) {
      const runtime::Message msg = comm.recv(r, kUpTag);
      ByteReader reader(msg.payload);
      all_ok &= reader.read<std::uint8_t>() != 0;
      apply(reader.read_vector<BusStateRecord>());
    }

    // Coordination measurement set: subsystem solutions as pseudo
    // measurements at every bus, plus the real tie-line flow telemetry the
    // coordinator owns.
    grid::MeasurementSet coord_set;
    coord_set.timestamp = global_measurements.timestamp;
    for (grid::BusIndex b = 0; b < network_->num_buses(); ++b) {
      coord_set.items.push_back({grid::MeasType::kVMag, b, -1, true,
                                 assembled.vm[static_cast<std::size_t>(b)],
                                 options_.solution_sigma_vm});
      coord_set.items.push_back({grid::MeasType::kVAngle, b, -1, true,
                                 assembled.theta[static_cast<std::size_t>(b)],
                                 options_.solution_sigma_angle});
    }
    for (const std::size_t tie : decomposition_->tie_lines) {
      for (const grid::Measurement& meas : global_measurements.items) {
        if ((meas.type == grid::MeasType::kPFlow ||
             meas.type == grid::MeasType::kQFlow) &&
            meas.branch == static_cast<std::int32_t>(tie)) {
          coord_set.items.push_back(meas);
        }
      }
    }
    estimation::WlsEstimator coordinator(*network_, options_.coordinator_wls);
    const estimation::WlsResult refined =
        coordinator.estimate(coord_set, assembled);
    result.state = refined.state;
    result.all_converged = all_ok && refined.converged;

    ByteWriter w;
    w.write(static_cast<std::uint8_t>(result.all_converged ? 1 : 0));
    w.write_vector(encode_state(result.state));
    const auto payload = w.take();
    for (int r = 1; r < comm.size(); ++r) {
      comm.send(r, kDownTag, payload);
    }
  } else {
    const runtime::Message msg = comm.recv(0, kDownTag);
    ByteReader reader(msg.payload);
    result.all_converged = reader.read<std::uint8_t>() != 0;
    result.state = decode_state(reader.read_vector<std::uint8_t>());
  }
  comm.barrier();
  result.coordination_seconds = coord_timer.seconds();
  result.total_seconds = total_timer.seconds();
  result.bytes_sent = comm.bytes_sent() - bytes_before;
  return result;
}

}  // namespace gridse::core
