#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/debug_sync.hpp"
#include "core/dse_driver.hpp"
#include "core/serialize.hpp"
#include "graph/partition.hpp"
#include "runtime/recovery.hpp"
#include "runtime/resilience.hpp"

namespace gridse::core {

/// Newest-wins checkpoint store: one EstimatorCheckpoint per subsystem,
/// replaced whenever a checkpoint from a later (or equal) cycle arrives.
/// With a spill directory configured every stored checkpoint is also written
/// to `<dir>/ckpt_s<subsystem>.bin` (the encode_checkpoint frame), so a
/// restarted supervisor process can be re-seeded from disk.
///
/// Thread-safe: checkpoints arrive from the cycle thread while operator
/// tooling (kill/rejoin consoles, tests) may snapshot concurrently.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string spill_dir = {});

  /// Keep `ckpt` if it is at least as new as the stored one (or the first
  /// for its subsystem). Checkpoints with a negative subsystem are ignored.
  void store(EstimatorCheckpoint ckpt);

  /// Newest checkpoint for `subsystem`, or nullopt when none was stored.
  /// Returns a copy: a pointer into the store would dangle the moment a
  /// newer checkpoint replaces the entry on another thread.
  [[nodiscard]] std::optional<EstimatorCheckpoint> latest(int subsystem) const;

  /// Copy of the full store, keyed by subsystem — the restore plan shape
  /// consumed by DseRecoveryContext.
  [[nodiscard]] std::map<int, EstimatorCheckpoint> snapshot() const;

  /// Re-load every `ckpt_s*.bin` frame found in the spill directory
  /// (newest-wins against what is already in memory). Returns how many
  /// files decoded successfully; corrupt files are skipped.
  std::size_t load_spilled();

  /// Drop every in-memory checkpoint. Spill files are left on disk: a
  /// subsequent store() at the current cycle out-ranks them newest-wins,
  /// and load_spilled() remains an explicit opt-in. Used when a topology
  /// repartition renumbers subsystems, invalidating every stored record.
  void clear();

  [[nodiscard]] std::size_t size() const {
    analysis::LockGuard lock(mutex_);
    return latest_.size();
  }
  [[nodiscard]] const std::string& spill_dir() const { return spill_dir_; }

 private:
  /// Newest-wins merge of `ckpt` into latest_ plus the spill write; shared
  /// by store() and load_spilled().
  void store_locked(EstimatorCheckpoint ckpt, bool spill)
      GRIDSE_REQUIRES(mutex_);

  std::string spill_dir_;
  mutable analysis::Mutex mutex_{"CheckpointStore::mutex_"};
  std::map<int, EstimatorCheckpoint> latest_ GRIDSE_GUARDED_BY(mutex_);
};

/// Cross-cycle recovery coordinator (one per DseSystem, logically co-located
/// with rank 0). Tracks each cluster through the failure-detector state
/// machine alive → suspect → dead → rejoining → alive, stores the newest
/// checkpoint per subsystem, and — after a confirmed cluster loss — shrinks
/// the participant set so the next cycle's mapping re-runs over survivors
/// only, with orphaned subsystems migrated (their checkpoints shipped by the
/// driver's restore phase). See docs/RESILIENCE.md, "Recovery & remapping".
class Supervisor {
 public:
  Supervisor(int num_clusters, runtime::RecoveryConfig config);

  /// Open a new remap epoch: clusters whose rejoin wait elapsed flip
  /// rejoining → alive, then the sorted ids of all alive clusters are
  /// returned — the cycle's participants, index in this vector == comm rank.
  std::vector<int> begin_cycle();

  /// Project a cluster-space assignment onto the compact rank space of
  /// `participants`. Subsystems on a surviving cluster keep that cluster's
  /// compact index; orphans (their cluster absent from `participants`) go
  /// greedily to the least-loaded surviving rank. `migrated`, when non-null,
  /// collects the orphaned subsystem ids.
  [[nodiscard]] std::vector<graph::PartId> project_assignment(
      const std::vector<graph::PartId>& cluster_assignment,
      const std::vector<int>& participants,
      std::vector<int>* migrated = nullptr) const;

  /// Ingest one cycle's recovery outputs: store the gathered checkpoints
  /// and confirm deaths — every comm rank the membership view marks dead
  /// maps through `participants` back to its cluster, which transitions to
  /// dead (a remap is then due next cycle).
  void absorb(const DseRecoveryResult& recovery,
              const std::vector<int>& participants);

  /// Operator/simulated confirmed death: the cluster leaves the participant
  /// set at the next begin_cycle.
  void kill_cluster(int cluster);

  /// A recovered cluster announces itself. It is held in `rejoining` and
  /// folded back in `rejoin_epoch` epochs later (next begin_cycle with the
  /// default of 1), at which point the restore plan warm-starts whatever
  /// the new mapping places on it.
  void announce_rejoin(int cluster);

  /// Event-driven repartition: the subsystem numbering just changed, so
  /// every stored checkpoint describes subsystems that no longer exist.
  /// Replaces the store wholesale with `checkpoints` — synthetic per-NEW-
  /// subsystem snapshots of the last combined estimate — counts the
  /// repartition, and notifies the alert sink ("topology_repartition",
  /// cluster = -1: the event is system-wide, not tied to one cluster).
  void reseed_checkpoints(std::vector<EstimatorCheckpoint> checkpoints);

  /// Observer of state-machine transitions: invoked with kind
  /// "cluster_dead" or "rejoin" and the affected cluster id, strictly
  /// AFTER mutex_ is released (the sink may do I/O or take its own locks).
  /// Deliberately obs-free — DseSystem wires it to the telemetry flight
  /// recorder under GRIDSE_OBS, so gridse_core itself stays free of obs
  /// symbols in an OBS=OFF build. Install before the first cycle; not
  /// synchronized against in-flight transitions during replacement.
  using AlertSink = std::function<void(const char* kind, int cluster)>;
  void set_alert_sink(AlertSink sink);

  [[nodiscard]] runtime::RankState state_of(int cluster) const;
  /// Snapshot of every cluster's state. Returns a copy: the vector mutates
  /// under mutex_ whenever a death/rejoin lands, so a reference would hand
  /// the caller an unsynchronized view.
  [[nodiscard]] std::vector<runtime::RankState> cluster_states() const {
    analysis::LockGuard lock(mutex_);
    return states_;
  }
  /// The restore plan for the next cycle: newest checkpoint per subsystem.
  [[nodiscard]] std::map<int, EstimatorCheckpoint> plan_restore() const {
    return store_.snapshot();
  }
  [[nodiscard]] CheckpointStore& checkpoints() { return store_; }
  [[nodiscard]] const CheckpointStore& checkpoints() const { return store_; }
  [[nodiscard]] int remaps() const {
    analysis::LockGuard lock(mutex_);
    return remaps_;
  }
  [[nodiscard]] int rejoins() const {
    analysis::LockGuard lock(mutex_);
    return rejoins_;
  }
  /// How many topology-triggered checkpoint reseeds have been absorbed.
  [[nodiscard]] int topology_repartitions() const {
    analysis::LockGuard lock(mutex_);
    return topology_repartitions_;
  }
  [[nodiscard]] std::int64_t epoch() const {
    analysis::LockGuard lock(mutex_);
    return epoch_;
  }
  [[nodiscard]] int num_clusters() const {
    // states_.size() is fixed at construction; only the *values* mutate.
    // Still read under the lock: the vector object itself is guarded.
    analysis::LockGuard lock(mutex_);
    return static_cast<int>(states_.size());
  }

 private:
  /// Returns true when the cluster actually transitioned to dead (the
  /// caller then reports it through the alert sink outside the lock).
  bool mark_dead_locked(int cluster, const char* reason)
      GRIDSE_REQUIRES(mutex_);

  runtime::RecoveryConfig config_;
  /// Guards the failure-detector state machine. kill_cluster() and
  /// announce_rejoin() are operator actions that may race the cycle
  /// thread's begin_cycle()/absorb(); CheckpointStore locks separately.
  mutable analysis::Mutex mutex_{"Supervisor::mutex_"};
  std::vector<runtime::RankState> states_ GRIDSE_GUARDED_BY(mutex_);
  /// Epoch at which a rejoining cluster becomes alive again (-1 = n/a).
  std::vector<std::int64_t> rejoin_ready_ GRIDSE_GUARDED_BY(mutex_);
  AlertSink sink_ GRIDSE_GUARDED_BY(mutex_);
  CheckpointStore store_;
  std::int64_t epoch_ GRIDSE_GUARDED_BY(mutex_) = 0;
  int remaps_ GRIDSE_GUARDED_BY(mutex_) = 0;
  int rejoins_ GRIDSE_GUARDED_BY(mutex_) = 0;
  int topology_repartitions_ GRIDSE_GUARDED_BY(mutex_) = 0;
};

}  // namespace gridse::core
