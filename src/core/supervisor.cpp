#include "core/supervisor.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include "analysis/assert.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace gridse::core {
namespace fs = std::filesystem;

namespace {

fs::path spill_path(const std::string& dir, int subsystem) {
  return fs::path(dir) / ("ckpt_s" + std::to_string(subsystem) + ".bin");
}

}  // namespace

CheckpointStore::CheckpointStore(std::string spill_dir)
    : spill_dir_(std::move(spill_dir)) {}

void CheckpointStore::store_locked(EstimatorCheckpoint ckpt, bool spill) {
  GRIDSE_ASSERT_HELD(mutex_);
  if (ckpt.subsystem < 0) {
    return;
  }
  const auto it = latest_.find(ckpt.subsystem);
  if (it != latest_.end() && it->second.cycle > ckpt.cycle) {
    return;  // stale: a newer cycle's checkpoint is already stored
  }
  if (spill && !spill_dir_.empty()) {
    try {
      fs::create_directories(spill_dir_);
      const auto bytes = encode_checkpoint(ckpt);
      std::ofstream out(spill_path(spill_dir_, ckpt.subsystem),
                        std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    } catch (const std::exception& e) {
      GRIDSE_WARN << "checkpoint spill for subsystem " << ckpt.subsystem
                  << " failed: " << e.what();
    }
  }
  latest_[ckpt.subsystem] = std::move(ckpt);
}

void CheckpointStore::store(EstimatorCheckpoint ckpt) {
  analysis::LockGuard lock(mutex_);
  store_locked(std::move(ckpt), /*spill=*/true);
}

std::optional<EstimatorCheckpoint> CheckpointStore::latest(
    int subsystem) const {
  analysis::LockGuard lock(mutex_);
  const auto it = latest_.find(subsystem);
  if (it == latest_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::map<int, EstimatorCheckpoint> CheckpointStore::snapshot() const {
  analysis::LockGuard lock(mutex_);
  return latest_;
}

std::size_t CheckpointStore::load_spilled() {
  if (spill_dir_.empty() || !fs::is_directory(spill_dir_)) {
    return 0;
  }
  std::size_t loaded = 0;
  analysis::LockGuard lock(mutex_);
  for (const auto& entry : fs::directory_iterator(spill_dir_)) {
    const std::string name = entry.path().filename().string();
    if (!entry.is_regular_file() || name.rfind("ckpt_s", 0) != 0 ||
        entry.path().extension() != ".bin") {
      continue;
    }
    try {
      std::ifstream in(entry.path(), std::ios::binary);
      std::vector<std::uint8_t> bytes(
          (std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>());
      EstimatorCheckpoint ckpt = decode_checkpoint(bytes);
      const auto it = latest_.find(ckpt.subsystem);
      if (ckpt.subsystem >= 0 &&
          (it == latest_.end() || it->second.cycle <= ckpt.cycle)) {
        latest_[ckpt.subsystem] = std::move(ckpt);
        ++loaded;
      }
    } catch (const std::exception& e) {
      GRIDSE_WARN << "skipping corrupt checkpoint spill " << name << ": "
                  << e.what();
    }
  }
  return loaded;
}

void CheckpointStore::clear() {
  analysis::LockGuard lock(mutex_);
  latest_.clear();
}

Supervisor::Supervisor(int num_clusters, runtime::RecoveryConfig config)
    : config_(std::move(config)),
      states_(static_cast<std::size_t>(std::max(num_clusters, 0)),
              runtime::RankState::kAlive),
      rejoin_ready_(states_.size(), -1),
      store_(config_.checkpoint_dir) {
  GRIDSE_CHECK_MSG(num_clusters > 0,
                   "supervisor needs at least one cluster");
}

void Supervisor::set_alert_sink(AlertSink sink) {
  analysis::LockGuard lock(mutex_);
  sink_ = std::move(sink);
}

std::vector<int> Supervisor::begin_cycle() {
  std::vector<int> participants;
  std::vector<int> rejoined;
  AlertSink sink;
  {
    analysis::LockGuard lock(mutex_);
    sink = sink_;
    ++epoch_;
    for (std::size_t c = 0; c < states_.size(); ++c) {
      if (states_[c] == runtime::RankState::kRejoining &&
          rejoin_ready_[c] >= 0 && rejoin_ready_[c] <= epoch_) {
        states_[c] = runtime::RankState::kAlive;
        rejoin_ready_[c] = -1;
        ++rejoins_;
        rejoined.push_back(static_cast<int>(c));
        OBS_COUNTER_ADD("recovery.rejoins", 1);
        OBS_EVENT("recovery.rejoined",
                  OBS_ATTR("cluster", static_cast<int>(c)),
                  OBS_ATTR("epoch", static_cast<int>(epoch_)));
      }
      if (states_[c] == runtime::RankState::kAlive) {
        participants.push_back(static_cast<int>(c));
      }
    }
    GRIDSE_CHECK_MSG(!participants.empty(),
                     "recovery: every cluster is dead — nothing can host the "
                     "estimation");
  }
  if (sink) {
    for (const int c : rejoined) {
      sink("rejoin", c);
    }
  }
  return participants;
}

std::vector<graph::PartId> Supervisor::project_assignment(
    const std::vector<graph::PartId>& cluster_assignment,
    const std::vector<int>& participants,
    std::vector<int>* migrated) const {
  analysis::LockGuard lock(mutex_);
  std::vector<int> compact(states_.size(), -1);
  for (std::size_t i = 0; i < participants.size(); ++i) {
    const int c = participants[i];
    GRIDSE_CHECK_MSG(c >= 0 && c < static_cast<int>(states_.size()),
                     "participant cluster id out of range");
    compact[static_cast<std::size_t>(c)] = static_cast<int>(i);
  }
  std::vector<graph::PartId> out(cluster_assignment.size(), 0);
  std::vector<int> load(participants.size(), 0);
  std::vector<std::size_t> orphans;
  for (std::size_t s = 0; s < cluster_assignment.size(); ++s) {
    const graph::PartId c = cluster_assignment[s];
    const int idx = (c >= 0 && c < static_cast<graph::PartId>(compact.size()))
                        ? compact[static_cast<std::size_t>(c)]
                        : -1;
    if (idx >= 0) {
      out[s] = static_cast<graph::PartId>(idx);
      ++load[static_cast<std::size_t>(idx)];
    } else {
      orphans.push_back(s);
    }
  }
  // Orphans (their cluster died) migrate greedily to the least-loaded
  // survivor — by subsystem count, the same balance notion the remapped
  // METIS partition will then improve on the following cycle.
  for (const std::size_t s : orphans) {
    const auto target = std::min_element(load.begin(), load.end());
    const auto idx = static_cast<std::size_t>(target - load.begin());
    out[s] = static_cast<graph::PartId>(idx);
    ++load[idx];
    if (migrated != nullptr) {
      migrated->push_back(static_cast<int>(s));
    }
    OBS_COUNTER_ADD("recovery.orphans_migrated", 1);
    OBS_EVENT("recovery.remap", OBS_ATTR("subsystem", static_cast<int>(s)),
              OBS_ATTR("from", cluster_assignment[s]),
              OBS_ATTR("to", participants[idx]));
  }
  // A rejoined cluster arrives with an empty part (nothing hosted there the
  // previous cycle), which the repartitioner rejects as input. Seed every
  // empty part with one subsystem from the most-loaded survivor — a
  // deterministic minimal hand-off the refinement then rebalances properly.
  for (std::size_t p = 0; p < load.size(); ++p) {
    if (load[p] > 0) continue;
    const auto donor_it = std::max_element(load.begin(), load.end());
    const auto donor = static_cast<std::size_t>(donor_it - load.begin());
    if (load[donor] <= 1) continue;  // fewer subsystems than parts
    for (std::size_t s = 0; s < out.size(); ++s) {
      if (static_cast<std::size_t>(out[s]) != donor) continue;
      out[s] = static_cast<graph::PartId>(p);
      --load[donor];
      ++load[p];
      if (migrated != nullptr) {
        migrated->push_back(static_cast<int>(s));
      }
      OBS_EVENT("recovery.remap", OBS_ATTR("subsystem", static_cast<int>(s)),
                OBS_ATTR("from", participants[donor]),
                OBS_ATTR("to", participants[p]));
      break;
    }
  }
  return out;
}

void Supervisor::absorb(const DseRecoveryResult& recovery,
                        const std::vector<int>& participants) {
  for (const EstimatorCheckpoint& ckpt : recovery.checkpoints) {
    store_.store(ckpt);
  }
  if (!recovery.enabled) {
    return;
  }
  std::vector<int> died;
  AlertSink sink;
  {
    analysis::LockGuard lock(mutex_);
    sink = sink_;
    for (const int r : recovery.membership.dead_ranks()) {
      if (r < 0 || r >= static_cast<int>(participants.size())) continue;
      const int cluster = participants[static_cast<std::size_t>(r)];
      if (mark_dead_locked(cluster, "heartbeat")) {
        died.push_back(cluster);
      }
    }
#if GRIDSE_OBS
    for (const int r : recovery.membership.suspect_ranks()) {
      if (r < 0 || r >= static_cast<int>(participants.size())) continue;
      OBS_EVENT(
          "recovery.cluster_suspect",
          OBS_ATTR("cluster", participants[static_cast<std::size_t>(r)]));
    }
#endif
  }
  if (sink) {
    for (const int c : died) {
      sink("cluster_dead", c);
    }
  }
}

void Supervisor::kill_cluster(int cluster) {
  bool died = false;
  AlertSink sink;
  {
    analysis::LockGuard lock(mutex_);
    sink = sink_;
    died = mark_dead_locked(cluster, "operator");
  }
  if (died && sink) {
    sink("cluster_dead", cluster);
  }
}

void Supervisor::announce_rejoin(int cluster) {
  analysis::LockGuard lock(mutex_);
  GRIDSE_CHECK_MSG(cluster >= 0 && cluster < static_cast<int>(states_.size()),
                   "announce_rejoin: cluster id out of range");
  if (states_[static_cast<std::size_t>(cluster)] != runtime::RankState::kDead) {
    return;  // only a dead cluster has anything to rejoin
  }
  states_[static_cast<std::size_t>(cluster)] = runtime::RankState::kRejoining;
  rejoin_ready_[static_cast<std::size_t>(cluster)] =
      epoch_ + std::max(config_.rejoin_epoch, 1);
  OBS_EVENT("recovery.rejoin_announced", OBS_ATTR("cluster", cluster),
            OBS_ATTR("ready_epoch",
                     static_cast<int>(
                         rejoin_ready_[static_cast<std::size_t>(cluster)])));
}

void Supervisor::reseed_checkpoints(
    std::vector<EstimatorCheckpoint> checkpoints) {
  store_.clear();
  for (EstimatorCheckpoint& ckpt : checkpoints) {
    store_.store(std::move(ckpt));
  }
  AlertSink sink;
  {
    analysis::LockGuard lock(mutex_);
    sink = sink_;
    ++topology_repartitions_;
  }
  OBS_COUNTER_ADD("topology.repartitions", 1);
  OBS_EVENT("topology.repartition",
            OBS_ATTR("checkpoints", static_cast<int>(checkpoints.size())));
  if (sink) {
    sink("topology_repartition", -1);
  }
}

runtime::RankState Supervisor::state_of(int cluster) const {
  analysis::LockGuard lock(mutex_);
  GRIDSE_CHECK_MSG(cluster >= 0 && cluster < static_cast<int>(states_.size()),
                   "state_of: cluster id out of range");
  return states_[static_cast<std::size_t>(cluster)];
}

bool Supervisor::mark_dead_locked(int cluster, const char* reason) {
  GRIDSE_ASSERT_HELD(mutex_);
  GRIDSE_CHECK_MSG(cluster >= 0 && cluster < static_cast<int>(states_.size()),
                   "mark_dead: cluster id out of range");
  if (states_[static_cast<std::size_t>(cluster)] == runtime::RankState::kDead) {
    return false;
  }
  states_[static_cast<std::size_t>(cluster)] = runtime::RankState::kDead;
  rejoin_ready_[static_cast<std::size_t>(cluster)] = -1;
  ++remaps_;
  OBS_COUNTER_ADD("recovery.remaps", 1);
  OBS_EVENT("recovery.cluster_dead", OBS_ATTR("cluster", cluster),
            OBS_ATTR("reason", reason));
  (void)reason;
  return true;
}

}  // namespace gridse::core
