#include "decomp/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <map>
#include <queue>
#include <set>

#include "util/error.hpp"

namespace gridse::decomp {

void analyze_sensitivity(const grid::Network& network, Decomposition& d,
                         const SensitivityOptions& options) {
  GRIDSE_CHECK_MSG(options.hops >= 0, "sensitivity hops must be nonnegative");
  GRIDSE_CHECK_MSG(options.coupling_floor >= 0.0 && options.coupling_floor <= 1.0,
                   "coupling_floor must be in [0,1]");
  for (Subsystem& s : d.subsystems) {
    s.sensitive_internal.clear();
    if (options.hops == 0 || s.boundary_buses.empty()) {
      continue;
    }
    const std::set<grid::BusIndex> members(s.buses.begin(), s.buses.end());
    const std::set<grid::BusIndex> boundary(s.boundary_buses.begin(),
                                            s.boundary_buses.end());

    // BFS (over internal branches only) outward from the boundary set,
    // accumulating each reached bus's electrical coupling toward the
    // boundary side.
    std::map<grid::BusIndex, int> depth;
    std::map<grid::BusIndex, double> coupling;
    std::queue<grid::BusIndex> q;
    for (const grid::BusIndex b : s.boundary_buses) {
      depth[b] = 0;
      q.push(b);
    }
    while (!q.empty()) {
      const grid::BusIndex u = q.front();
      q.pop();
      if (depth[u] >= options.hops) continue;
      for (const std::size_t bi : network.branches_at(u)) {
        const grid::Branch& br = network.branch(bi);
        const grid::BusIndex v = (br.from == u) ? br.to : br.from;
        if (members.count(v) == 0 || boundary.count(v) > 0) continue;
        const double y = std::abs(1.0 / std::complex<double>(br.r, br.x));
        if (depth.count(v) == 0) {
          depth[v] = depth[u] + 1;
          q.push(v);
        }
        if (depth[v] == depth[u] + 1) {
          coupling[v] += y;
        }
      }
    }

    double max_coupling = 0.0;
    for (const auto& [bus, c] : coupling) {
      max_coupling = std::max(max_coupling, c);
    }
    for (const auto& [bus, c] : coupling) {
      if (options.coupling_floor == 0.0 ||
          c >= options.coupling_floor * max_coupling) {
        s.sensitive_internal.push_back(bus);
      }
    }
    std::sort(s.sensitive_internal.begin(), s.sensitive_internal.end());
  }
}

}  // namespace gridse::decomp
