#pragma once

#include <map>
#include <optional>

#include "decomp/decomposition.hpp"
#include "grid/measurement.hpp"
#include "grid/network.hpp"
#include "grid/state.hpp"

namespace gridse::decomp {

/// A subsystem-scoped network extracted from the interconnection, with the
/// index maps needed to shuttle measurements and states between global and
/// local numbering. Used in two flavours:
///  - local  (DSE Step 1): the subsystem's own buses and internal branches;
///  - extended (DSE Step 2): additionally the tie lines, the neighbouring
///    subsystems' boundary + sensitive-internal buses, and the remote
///    branches among those included remote buses.
struct SubsystemModel {
  int subsystem_id = 0;
  grid::Network network;
  /// local bus index -> global bus index.
  std::vector<grid::BusIndex> global_bus;
  /// global bus index -> local bus index (absent = not in model).
  std::map<grid::BusIndex, grid::BusIndex> local_of_global;
  /// local branch index -> global branch index.
  std::vector<std::size_t> global_branch;
  /// global branch index -> local branch index.
  std::map<std::size_t, std::size_t> local_branch_of_global;
  /// own[local bus] = true when the bus belongs to this subsystem (false for
  /// remote buses pulled into an extended model).
  std::vector<bool> own;

  /// Translate one global-numbered measurement into local numbering.
  /// Returns nullopt when the measurement cannot be evaluated on this model:
  /// the bus/branch is absent, the meter sits on a non-own bus, or it is an
  /// injection at a bus with incident branches outside the model (its h(x)
  /// would be wrong).
  [[nodiscard]] std::optional<grid::Measurement> remap(
      const grid::Measurement& global_meas,
      const grid::Network& global_network) const;

  /// Filter and remap a whole global measurement set.
  [[nodiscard]] grid::MeasurementSet filter(
      const grid::MeasurementSet& global_set,
      const grid::Network& global_network) const;

  /// Scatter a local state into a global state (only this model's buses are
  /// touched; optionally own buses only).
  void scatter_state(const grid::GridState& local_state,
                     grid::GridState& global_state,
                     bool own_buses_only = true) const;

  /// Gather the model's buses from a global state into a local state.
  [[nodiscard]] grid::GridState gather_state(
      const grid::GridState& global_state) const;
};

/// Extract the Step-1 local model of subsystem `s`.
SubsystemModel extract_local(const grid::Network& network,
                             const Decomposition& d, int s);

/// Extract the Step-2 extended model of subsystem `s` (requires
/// analyze_sensitivity to have populated sensitive_internal for neighbours;
/// boundary buses are always included).
SubsystemModel extract_extended(const grid::Network& network,
                                const Decomposition& d, int s);

}  // namespace gridse::decomp
