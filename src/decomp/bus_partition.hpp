#pragma once

#include <vector>

#include "graph/partitioner.hpp"
#include "grid/network.hpp"

namespace gridse::decomp {

/// The bus-level coupling graph: one vertex per bus (unit weight), one edge
/// per connected bus pair with weight = Σ 1/|x| over the parallel branches
/// joining them. 1/x is the DC susceptance, so the edge weight measures how
/// strongly the two buses' states are electrically coupled — a cut through
/// low-1/x corridors yields weakly coupled subsystems, which is exactly what
/// the convergence-aware objective (arXiv 2104.04320) wants to minimize.
graph::WeightedGraph bus_coupling_graph(const grid::Network& network);

/// Partition the network's buses into `options.k` internally connected
/// subsystems by running the multilevel partitioner on the coupling graph
/// and then repairing connectivity deterministically: each part keeps its
/// largest connected component, and every stray fragment is re-grown onto
/// an adjacent part (strongest-coupling neighbour first, sequential sweeps
/// in bus order), so the result always satisfies decompose()'s
/// "internally connected" precondition. Deterministic given options.seed —
/// the partitioner itself is thread-count invariant, and the repair is
/// sequential. Returns subsystem_of_bus (0-based ids, contiguous 0..k-1).
std::vector<int> partition_buses(const grid::Network& network,
                                 const graph::PartitionOptions& options);

}  // namespace gridse::decomp
