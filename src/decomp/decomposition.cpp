#include "decomp/decomposition.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "util/error.hpp"

namespace gridse::decomp {

std::vector<std::pair<int, int>> Decomposition::neighbor_pairs() const {
  std::set<std::pair<int, int>> pairs;
  for (const auto& [a, b] : tie_subsystem_pairs) {
    pairs.insert(std::minmax(a, b));
  }
  return {pairs.begin(), pairs.end()};
}

std::vector<int> Decomposition::neighbors_of(int s) const {
  std::set<int> out;
  for (const auto& [a, b] : tie_subsystem_pairs) {
    if (a == s) out.insert(b);
    if (b == s) out.insert(a);
  }
  return {out.begin(), out.end()};
}

graph::WeightedGraph Decomposition::decomposition_graph() const {
  graph::WeightedGraph g(static_cast<graph::VertexId>(subsystems.size()));
  for (const Subsystem& s : subsystems) {
    g.set_vertex_weight(static_cast<graph::VertexId>(s.id),
                        static_cast<double>(s.buses.size()));
  }
  for (const auto& [a, b] : neighbor_pairs()) {
    // Expression (5): We = gs(s1) + gs(s2). With no sensitivity analysis run
    // yet, gs degenerates to the boundary count; the paper's Table I instead
    // uses the upper bound (total bus counts), which callers get by invoking
    // set_edge_weight with their own estimate. Here we use gs() when it is
    // meaningful and the bus-count upper bound otherwise.
    const Subsystem& sa = subsystems[static_cast<std::size_t>(a)];
    const Subsystem& sb = subsystems[static_cast<std::size_t>(b)];
    const double wa = sa.gs() > 0 ? static_cast<double>(sa.gs())
                                  : static_cast<double>(sa.buses.size());
    const double wb = sb.gs() > 0 ? static_cast<double>(sb.gs())
                                  : static_cast<double>(sb.buses.size());
    g.add_edge(static_cast<graph::VertexId>(a), static_cast<graph::VertexId>(b),
               wa + wb);
  }
  return g;
}

Decomposition decompose(const grid::Network& network,
                        std::span<const int> subsystem_of_bus) {
  const grid::BusIndex n = network.num_buses();
  if (static_cast<grid::BusIndex>(subsystem_of_bus.size()) != n) {
    throw InvalidInput("decompose: membership size does not match bus count");
  }
  int m = 0;
  for (const int s : subsystem_of_bus) {
    if (s < 0) {
      throw InvalidInput("decompose: negative subsystem id");
    }
    m = std::max(m, s + 1);
  }

  Decomposition d;
  d.subsystem_of_bus.assign(subsystem_of_bus.begin(), subsystem_of_bus.end());
  d.subsystems.resize(static_cast<std::size_t>(m));
  for (int s = 0; s < m; ++s) {
    d.subsystems[static_cast<std::size_t>(s)].id = s;
  }
  for (grid::BusIndex b = 0; b < n; ++b) {
    d.subsystems[static_cast<std::size_t>(subsystem_of_bus[static_cast<std::size_t>(b)])]
        .buses.push_back(b);
  }
  for (const Subsystem& s : d.subsystems) {
    if (s.buses.empty()) {
      throw InvalidInput("decompose: subsystem " + std::to_string(s.id) +
                         " is empty (ids must be contiguous 0..m-1)");
    }
  }

  std::vector<std::set<grid::BusIndex>> boundary(static_cast<std::size_t>(m));
  for (std::size_t bi = 0; bi < network.num_branches(); ++bi) {
    const grid::Branch& br = network.branch(bi);
    const int sf = subsystem_of_bus[static_cast<std::size_t>(br.from)];
    const int st = subsystem_of_bus[static_cast<std::size_t>(br.to)];
    if (sf == st) {
      d.subsystems[static_cast<std::size_t>(sf)].internal_branches.push_back(bi);
    } else {
      d.tie_lines.push_back(bi);
      d.tie_subsystem_pairs.emplace_back(sf, st);
      d.subsystems[static_cast<std::size_t>(sf)].tie_branches.push_back(bi);
      d.subsystems[static_cast<std::size_t>(st)].tie_branches.push_back(bi);
      boundary[static_cast<std::size_t>(sf)].insert(br.from);
      boundary[static_cast<std::size_t>(st)].insert(br.to);
    }
  }
  for (int s = 0; s < m; ++s) {
    d.subsystems[static_cast<std::size_t>(s)].boundary_buses.assign(
        boundary[static_cast<std::size_t>(s)].begin(),
        boundary[static_cast<std::size_t>(s)].end());
  }

  // Internal connectivity check per subsystem (a disconnected subsystem
  // cannot run a local state estimation).
  for (const Subsystem& s : d.subsystems) {
    if (s.buses.size() == 1) continue;
    std::set<grid::BusIndex> members(s.buses.begin(), s.buses.end());
    std::set<grid::BusIndex> seen;
    std::queue<grid::BusIndex> q;
    q.push(s.buses.front());
    seen.insert(s.buses.front());
    while (!q.empty()) {
      const grid::BusIndex u = q.front();
      q.pop();
      for (const std::size_t bi : network.branches_at(u)) {
        const grid::Branch& br = network.branch(bi);
        const grid::BusIndex v = (br.from == u) ? br.to : br.from;
        if (members.count(v) > 0 && seen.count(v) == 0) {
          seen.insert(v);
          q.push(v);
        }
      }
    }
    if (seen.size() != s.buses.size()) {
      throw InvalidInput("decompose: subsystem " + std::to_string(s.id) +
                         " is internally disconnected");
    }
  }
  return d;
}

}  // namespace gridse::decomp
