#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "grid/network.hpp"

namespace gridse::decomp {

/// One subsystem of a power-system decomposition (paper §II, preliminary
/// step): a balancing-authority-sized slice of the interconnection.
struct Subsystem {
  int id = 0;
  /// Global bus indices belonging to this subsystem.
  std::vector<grid::BusIndex> buses;
  /// Buses with at least one incident tie line.
  std::vector<grid::BusIndex> boundary_buses;
  /// Sensitive internal buses (filled in by sensitivity analysis; empty
  /// until analyze_sensitivity runs).
  std::vector<grid::BusIndex> sensitive_internal;
  /// Global branch indices fully inside this subsystem.
  std::vector<std::size_t> internal_branches;
  /// Global branch indices of incident tie lines.
  std::vector<std::size_t> tie_branches;

  /// gs(s) of the paper: |boundary| + |sensitive internal|.
  [[nodiscard]] int gs() const {
    return static_cast<int>(boundary_buses.size() + sensitive_internal.size());
  }
};

/// A full non-overlapping decomposition of a network into m subsystems.
struct Decomposition {
  std::vector<Subsystem> subsystems;
  /// subsystem_of_bus[global bus index] = subsystem id.
  std::vector<int> subsystem_of_bus;
  /// All tie-line branch indices (branches crossing subsystems).
  std::vector<std::size_t> tie_lines;
  /// Subsystem pair (from-side, to-side) of each tie line, parallel to
  /// `tie_lines`.
  std::vector<std::pair<int, int>> tie_subsystem_pairs;

  [[nodiscard]] int num_subsystems() const {
    return static_cast<int>(subsystems.size());
  }

  /// Neighbouring subsystem pairs (i < j) connected by at least one tie.
  [[nodiscard]] std::vector<std::pair<int, int>> neighbor_pairs() const;

  /// Neighbour ids of subsystem s.
  [[nodiscard]] std::vector<int> neighbors_of(int s) const;

  /// The decomposition graph of §IV-B1: one vertex per subsystem (weight =
  /// bus count), one edge per neighbouring pair (weight = gs(s1) + gs(s2),
  /// Expression (5) — the paper's Table I upper bound uses bus counts when
  /// sensitivity analysis has not yet narrowed gs).
  [[nodiscard]] graph::WeightedGraph decomposition_graph() const;
};

/// Build a decomposition from a bus→subsystem membership map. Subsystem ids
/// must form a contiguous range 0..m-1 and every subsystem must be
/// non-empty and internally connected; throws InvalidInput otherwise.
Decomposition decompose(const grid::Network& network,
                        std::span<const int> subsystem_of_bus);

}  // namespace gridse::decomp
