#pragma once

#include "decomp/decomposition.hpp"
#include "grid/network.hpp"

namespace gridse::decomp {

/// Controls the preliminary-step sensitivity analysis (paper §II: "sensitivity
/// analysis is usually performed to determine the sensitive internal buses …
/// carried out off-line, once for a given graph topology").
struct SensitivityOptions {
  /// Internal buses within this many hops of a boundary bus are candidates.
  int hops = 1;
  /// Keep only candidates whose electrical coupling to the boundary (sum of
  /// |series admittance| along incident candidate branches) is at least this
  /// fraction of the strongest candidate's coupling. 0 keeps all candidates.
  double coupling_floor = 0.0;
};

/// Fill in `sensitive_internal` for every subsystem of `d`: the internal
/// (non-boundary) buses whose state is materially affected by neighbouring
/// subsystems, i.e. those electrically close to the boundary. These buses'
/// solutions are shipped to neighbours as pseudo measurements in DSE Step 2.
void analyze_sensitivity(const grid::Network& network, Decomposition& d,
                         const SensitivityOptions& options = {});

}  // namespace gridse::decomp
