#include "decomp/subsystem_model.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace gridse::decomp {
namespace {

SubsystemModel build_model(const grid::Network& network,
                           const std::vector<grid::BusIndex>& own_buses,
                           const std::vector<grid::BusIndex>& remote_buses,
                           int subsystem_id) {
  SubsystemModel m;
  m.subsystem_id = subsystem_id;

  const auto add_bus = [&](grid::BusIndex g, bool is_own) {
    grid::Bus bus = network.bus(g);
    const grid::BusIndex local = m.network.add_bus(std::move(bus));
    m.global_bus.push_back(g);
    m.local_of_global[g] = local;
    m.own.push_back(is_own);
  };
  for (const grid::BusIndex g : own_buses) add_bus(g, true);
  for (const grid::BusIndex g : remote_buses) add_bus(g, false);

  // Include every branch whose both endpoints are in the model.
  for (std::size_t bi = 0; bi < network.num_branches(); ++bi) {
    const grid::Branch& br = network.branch(bi);
    const auto fit = m.local_of_global.find(br.from);
    const auto tit = m.local_of_global.find(br.to);
    if (fit == m.local_of_global.end() || tit == m.local_of_global.end()) {
      continue;
    }
    grid::Branch local = br;
    local.from = fit->second;
    local.to = tit->second;
    m.local_branch_of_global[bi] = m.global_branch.size();
    m.global_branch.push_back(bi);
    m.network.add_branch(local);
  }
  return m;
}

}  // namespace

std::optional<grid::Measurement> SubsystemModel::remap(
    const grid::Measurement& g, const grid::Network& global_network) const {
  grid::Measurement local = g;
  const auto bus_it = local_of_global.find(g.bus);
  if (bus_it == local_of_global.end()) {
    return std::nullopt;
  }
  // Meters live with the subsystem that owns the metered bus.
  if (!own[static_cast<std::size_t>(bus_it->second)]) {
    return std::nullopt;
  }
  local.bus = bus_it->second;

  switch (g.type) {
    case grid::MeasType::kPFlow:
    case grid::MeasType::kQFlow: {
      const auto br_it = local_branch_of_global.find(
          static_cast<std::size_t>(g.branch));
      if (br_it == local_branch_of_global.end()) {
        return std::nullopt;
      }
      local.branch = static_cast<std::int32_t>(br_it->second);
      return local;
    }
    case grid::MeasType::kPInjection:
    case grid::MeasType::kQInjection: {
      // The injection function sums over every incident branch; it is only
      // correct when all of them are present in the model.
      for (const std::size_t bi : global_network.branches_at(g.bus)) {
        if (local_branch_of_global.count(bi) == 0) {
          return std::nullopt;
        }
      }
      return local;
    }
    case grid::MeasType::kVMag:
    case grid::MeasType::kVAngle:
      return local;
  }
  return std::nullopt;
}

grid::MeasurementSet SubsystemModel::filter(
    const grid::MeasurementSet& global_set,
    const grid::Network& global_network) const {
  grid::MeasurementSet out;
  out.timestamp = global_set.timestamp;
  for (const grid::Measurement& g : global_set.items) {
    if (auto local = remap(g, global_network)) {
      out.items.push_back(*local);
    }
  }
  return out;
}

void SubsystemModel::scatter_state(const grid::GridState& local_state,
                                   grid::GridState& global_state,
                                   bool own_buses_only) const {
  GRIDSE_CHECK(local_state.num_buses() == network.num_buses());
  for (grid::BusIndex l = 0; l < network.num_buses(); ++l) {
    if (own_buses_only && !own[static_cast<std::size_t>(l)]) continue;
    const grid::BusIndex g = global_bus[static_cast<std::size_t>(l)];
    global_state.theta[static_cast<std::size_t>(g)] =
        local_state.theta[static_cast<std::size_t>(l)];
    global_state.vm[static_cast<std::size_t>(g)] =
        local_state.vm[static_cast<std::size_t>(l)];
  }
}

grid::GridState SubsystemModel::gather_state(
    const grid::GridState& global_state) const {
  grid::GridState local(network.num_buses());
  for (grid::BusIndex l = 0; l < network.num_buses(); ++l) {
    const grid::BusIndex g = global_bus[static_cast<std::size_t>(l)];
    local.theta[static_cast<std::size_t>(l)] =
        global_state.theta[static_cast<std::size_t>(g)];
    local.vm[static_cast<std::size_t>(l)] =
        global_state.vm[static_cast<std::size_t>(g)];
  }
  return local;
}

SubsystemModel extract_local(const grid::Network& network,
                             const Decomposition& d, int s) {
  GRIDSE_CHECK(s >= 0 && s < d.num_subsystems());
  const Subsystem& sub = d.subsystems[static_cast<std::size_t>(s)];
  return build_model(network, sub.buses, {}, s);
}

SubsystemModel extract_extended(const grid::Network& network,
                                const Decomposition& d, int s) {
  GRIDSE_CHECK(s >= 0 && s < d.num_subsystems());
  const Subsystem& sub = d.subsystems[static_cast<std::size_t>(s)];
  std::set<grid::BusIndex> remote;
  for (const int nbr : d.neighbors_of(s)) {
    const Subsystem& nsub = d.subsystems[static_cast<std::size_t>(nbr)];
    for (const grid::BusIndex b : nsub.boundary_buses) remote.insert(b);
    for (const grid::BusIndex b : nsub.sensitive_internal) remote.insert(b);
  }
  return build_model(network, sub.buses,
                     {remote.begin(), remote.end()}, s);
}

}  // namespace gridse::decomp
