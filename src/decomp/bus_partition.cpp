#include "decomp/bus_partition.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <utility>

#include "util/error.hpp"

namespace gridse::decomp {

graph::WeightedGraph bus_coupling_graph(const grid::Network& network) {
  const auto n = static_cast<graph::VertexId>(network.num_buses());
  graph::WeightedGraph g(n);
  // Accumulate parallel branches into one edge: WeightedGraph rejects
  // duplicate edges, and the couplings add anyway.
  std::map<std::pair<graph::VertexId, graph::VertexId>, double> weight;
  for (std::size_t bi = 0; bi < network.num_branches(); ++bi) {
    const grid::Branch& br = network.branch(bi);
    // std::minmax returns references; materialize the pair by value before
    // the casted temporaries die.
    const std::pair<graph::VertexId, graph::VertexId> key =
        std::minmax(static_cast<graph::VertexId>(br.from),
                    static_cast<graph::VertexId>(br.to));
    // |x| floored to keep the weight finite on near-zero-impedance links.
    // Out-of-service branches (line outages, open breakers) keep the edge —
    // the graph must stay structurally connected for the repair phase — but
    // at epsilon weight, so an open corridor is nearly free to cut and the
    // convergence-aware objective steers part borders onto it.
    weight[key] +=
        br.in_service ? 1.0 / std::max(std::abs(br.x), 1e-6) : 1e-9;
  }
  for (const auto& [key, w] : weight) {
    g.add_edge(key.first, key.second, w);
  }
  return g;
}

namespace {

/// Connected components of one part, as lists of bus indices. Components
/// are discovered in ascending bus order, so their order (and the BFS
/// inside each) is deterministic.
std::vector<std::vector<graph::VertexId>> part_components(
    const graph::WeightedGraph& g, const std::vector<int>& part_of, int part) {
  std::vector<std::vector<graph::VertexId>> components;
  std::vector<char> seen(static_cast<std::size_t>(g.num_vertices()), 0);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (part_of[static_cast<std::size_t>(v)] != part ||
        seen[static_cast<std::size_t>(v)] != 0) {
      continue;
    }
    std::vector<graph::VertexId> comp;
    std::queue<graph::VertexId> q;
    q.push(v);
    seen[static_cast<std::size_t>(v)] = 1;
    while (!q.empty()) {
      const graph::VertexId u = q.front();
      q.pop();
      comp.push_back(u);
      for (const auto& [nbr, w] : g.neighbors(u)) {
        (void)w;
        if (part_of[static_cast<std::size_t>(nbr)] == part &&
            seen[static_cast<std::size_t>(nbr)] == 0) {
          seen[static_cast<std::size_t>(nbr)] = 1;
          q.push(nbr);
        }
      }
    }
    components.push_back(std::move(comp));
  }
  return components;
}

}  // namespace

std::vector<int> partition_buses(const grid::Network& network,
                                 const graph::PartitionOptions& options) {
  network.validate();  // repair below relies on a connected network
  const graph::WeightedGraph g = bus_coupling_graph(network);
  const graph::Partition p = graph::partition(g, options);

  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<int> part_of(n);
  for (std::size_t v = 0; v < n; ++v) {
    part_of[v] = static_cast<int>(p.assignment[v]);
  }

  // Connectivity repair: keep each part's largest component (ties break to
  // the one containing the lowest bus index — the first one found), release
  // every other fragment, then re-grow the released buses onto anchored
  // parts. Each released bus attaches to the anchored neighbour part with
  // the strongest total coupling, so every part stays connected by
  // construction: a bus joins a part only through an edge to an anchored
  // member of that part.
  std::vector<char> anchored(n, 0);
  for (int part = 0; part < options.k; ++part) {
    const auto components = part_components(g, part_of, part);
    GRIDSE_CHECK_MSG(!components.empty(),
                     "partition_buses: partitioner produced an empty part");
    std::size_t best = 0;
    for (std::size_t c = 1; c < components.size(); ++c) {
      if (components[c].size() > components[best].size()) best = c;
    }
    for (const graph::VertexId v : components[best]) {
      anchored[static_cast<std::size_t>(v)] = 1;
    }
  }

  // Sequential sweeps in bus order until every bus is anchored. The network
  // is connected, so each sweep anchors at least one more bus; termination
  // is guaranteed. Target choice is balance-aware: parts still under the
  // balance limit win over overweight ones (strongest coupling within each
  // class), so the regrow cannot pile every stray onto one part.
  std::vector<std::size_t> part_size(static_cast<std::size_t>(options.k), 0);
  std::size_t remaining = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (anchored[v] != 0) {
      ++part_size[static_cast<std::size_t>(part_of[v])];
    } else {
      ++remaining;
    }
  }
  const double limit = options.imbalance_tolerance * static_cast<double>(n) /
                       static_cast<double>(options.k);
  while (remaining > 0) {
    std::size_t fixed_this_sweep = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (anchored[v] != 0) continue;
      // Total coupling into each anchored neighbour part.
      std::map<int, double> pull;
      for (const auto& [nbr, w] :
           g.neighbors(static_cast<graph::VertexId>(v))) {
        if (anchored[static_cast<std::size_t>(nbr)] != 0) {
          pull[part_of[static_cast<std::size_t>(nbr)]] += w;
        }
      }
      if (pull.empty()) continue;  // no anchored neighbour yet; next sweep
      int best_part = -1;
      double best_w = -1.0;
      bool best_fits = false;
      // std::map iterates parts in ascending order, so ties break to
      // the lowest part id.
      for (const auto& [part, w] : pull) {
        const bool fits =
            static_cast<double>(
                part_size[static_cast<std::size_t>(part)] + 1) <= limit;
        if ((fits && !best_fits) || (fits == best_fits && w > best_w)) {
          best_w = w;
          best_part = part;
          best_fits = fits;
        }
      }
      part_of[v] = best_part;
      anchored[v] = 1;
      ++part_size[static_cast<std::size_t>(best_part)];
      ++fixed_this_sweep;
    }
    GRIDSE_CHECK_MSG(fixed_this_sweep > 0,
                     "partition_buses: connectivity repair stalled");
    remaining -= fixed_this_sweep;
  }

  // Rebalance: overweight parts shed boundary buses to adjacent under-limit
  // parts, but only when the donor stays connected (verified by BFS over
  // the donor minus the candidate). Sweeps run in bus order until no
  // overweight part can shed anything, so the result is deterministic and
  // still satisfies decompose()'s connectivity precondition.
  const auto stays_connected = [&](std::size_t moved_v, int part) {
    graph::VertexId start = -1;
    std::size_t members = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (part_of[v] != part || v == moved_v) continue;
      ++members;
      if (start < 0) start = static_cast<graph::VertexId>(v);
    }
    if (members == 0) return false;  // never empty a part
    std::vector<char> seen(n, 0);
    std::queue<graph::VertexId> q;
    q.push(start);
    seen[static_cast<std::size_t>(start)] = 1;
    std::size_t count = 1;
    while (!q.empty()) {
      const graph::VertexId u = q.front();
      q.pop();
      for (const auto& [nbr, w] : g.neighbors(u)) {
        (void)w;
        const auto ni = static_cast<std::size_t>(nbr);
        if (ni == moved_v || part_of[ni] != part || seen[ni] != 0) continue;
        seen[ni] = 1;
        ++count;
        q.push(nbr);
      }
    }
    return count == members;
  };
  for (int sweep = 0; sweep < 64; ++sweep) {
    std::size_t moves = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const int from = part_of[v];
      if (static_cast<double>(part_size[static_cast<std::size_t>(from)]) <=
          limit) {
        continue;
      }
      // Strongest-coupled adjacent part that stays under the limit.
      std::map<int, double> pull;
      for (const auto& [nbr, w] :
           g.neighbors(static_cast<graph::VertexId>(v))) {
        const int p2 = part_of[static_cast<std::size_t>(nbr)];
        if (p2 != from &&
            static_cast<double>(part_size[static_cast<std::size_t>(p2)] + 1) <=
                limit) {
          pull[p2] += w;
        }
      }
      if (pull.empty()) continue;
      int best_part = -1;
      double best_w = -1.0;
      for (const auto& [part, w] : pull) {
        if (w > best_w) {
          best_w = w;
          best_part = part;
        }
      }
      if (!stays_connected(v, from)) continue;
      part_of[v] = best_part;
      --part_size[static_cast<std::size_t>(from)];
      ++part_size[static_cast<std::size_t>(best_part)];
      ++moves;
    }
    if (moves == 0) break;
  }
  return part_of;
}

}  // namespace gridse::decomp
