#pragma once

#include <vector>

#include "grid/meas_model.hpp"
#include "grid/network.hpp"
#include "grid/state.hpp"

namespace gridse::estimation {

/// Estimated branch flows at both ends (the paper §I: the estimator's
/// "results are estimated states such as voltage magnitude, power injections
/// and power flows. These are critical inputs for other power system
/// operational tools").
struct BranchFlowEstimate {
  std::size_t branch = 0;
  double p_from = 0.0;  ///< P into the branch at the from end, p.u.
  double q_from = 0.0;
  double p_to = 0.0;    ///< P into the branch at the to end, p.u.
  double q_to = 0.0;
  /// Series active loss = p_from + p_to (≥ 0 for passive branches).
  [[nodiscard]] double p_loss() const { return p_from + p_to; }
};

/// Full operating-point report computed from an estimated state — the
/// interface the downstream tools (contingency analysis, optimal power
/// flow, AGC) consume.
struct SolutionReport {
  grid::GridState state;
  std::vector<double> p_injection;  ///< per bus, p.u.
  std::vector<double> q_injection;
  std::vector<BranchFlowEstimate> flows;
  double total_loss = 0.0;  ///< system active losses, p.u.

  /// Loading ratio |S_from| / rating per branch (0 where unrated).
  [[nodiscard]] std::vector<double> loadings(
      const grid::Network& network) const;
};

/// Evaluate injections and flows at `state`.
SolutionReport build_solution_report(const grid::Network& network,
                                     const grid::GridState& state);

/// Per-bus one-sigma confidence of a WLS estimate, from the estimation
/// error covariance G⁻¹ = (HᵀWH)⁻¹ evaluated at the solution (Abur &
/// Expósito ch. 3). The reference bus angle has zero deviation by
/// construction.
struct StateConfidence {
  std::vector<double> theta_stddev;  ///< radians, per bus
  std::vector<double> vm_stddev;     ///< p.u., per bus
};

/// Compute the estimate's standard deviations. `model` and `set` must be
/// the ones the estimate was produced with; `state` is the WLS solution.
StateConfidence estimate_confidence(const grid::MeasurementModel& model,
                                    const grid::MeasurementSet& set,
                                    const grid::GridState& state);

}  // namespace gridse::estimation
