#pragma once

#include <memory>
#include <span>
#include <vector>

#include "estimation/wls.hpp"
#include "grid/measurement.hpp"
#include "grid/network.hpp"
#include "grid/state.hpp"

namespace gridse::estimation {

/// One subsystem's WLS problem, packed as a lane of a batched solve. The
/// pointed-to network and measurement set must outlive the call.
struct BatchedLaneProblem {
  const grid::Network* network = nullptr;
  /// Angle reference bus for this lane (a DSE subsystem's local reference).
  grid::BusIndex reference_bus = 0;
  const grid::MeasurementSet* set = nullptr;
  /// Start state; the reference angle is pinned to its value at
  /// `reference_bus` (pass a flat GridState for a flat start).
  grid::GridState initial;
};

/// Solve every lane's WLS problem in lockstep Gauss–Newton with one batched
/// LDLᵀ numeric-factorization/solve sweep per iteration, instead of one
/// estimator at a time. Lane i's result matches
/// `WlsEstimator(net, ref, options).estimate(set, initial)` with
/// `options.solver == kLdlt` (the batched path is direct-solver only;
/// `options.solver` is ignored). Converged lanes drop out of the sweep while
/// the rest keep iterating.
///
/// `caches` optionally supplies one SolverCache per lane (e.g. the DSE
/// driver's per-subsystem caches) so symbolic plans persist across cycles;
/// when empty, per-call caches still reuse symbolic work across iterations.
/// Throws InvalidInput if any lane is malformed or unobservable.
[[nodiscard]] std::vector<WlsResult> batched_estimate(
    std::span<const BatchedLaneProblem> lanes, const WlsOptions& options,
    std::span<const std::shared_ptr<SolverCache>> caches = {});

}  // namespace gridse::estimation
