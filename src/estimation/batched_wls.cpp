#include "estimation/batched_wls.hpp"

#include <cmath>
#include <optional>
#include <string>
#include <utility>

#include "estimation/solver_cache.hpp"
#include "grid/meas_model.hpp"
#include "obs/obs.hpp"
#include "sparse/batched.hpp"
#include "sparse/normal_equations.hpp"
#include "sparse/vector_ops.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace gridse::estimation {

namespace {

/// Per-lane working set of the lockstep Gauss–Newton loop.
struct LaneState {
  std::optional<grid::MeasurementModel> model;
  std::vector<double> weights;
  std::vector<double> z;
  double ref_angle = 0.0;
  std::vector<double> x;
  std::shared_ptr<SolverCache> cache;
  sparse::Csr gain;
  std::vector<double> rhs;
  bool active = true;  // still iterating (not yet converged)
};

}  // namespace

std::vector<WlsResult> batched_estimate(
    std::span<const BatchedLaneProblem> lanes, const WlsOptions& options,
    std::span<const std::shared_ptr<SolverCache>> caches) {
  OBS_SPAN("wls.batched_estimate");
  GRIDSE_CHECK_MSG(caches.empty() || caches.size() == lanes.size(),
                   "batched_estimate: caches must match lanes");
  const std::size_t n_lanes = lanes.size();
  std::vector<WlsResult> results(n_lanes);
  if (n_lanes == 0) {
    return results;
  }
  OBS_COUNTER_ADD("wls.batched.solves", 1);
  OBS_COUNTS_OBSERVE("wls.batched.lanes", static_cast<int>(n_lanes));

  // Validate and set up every lane before any numeric work, so a malformed
  // lane throws without partial results.
  std::vector<LaneState> ls(n_lanes);
  for (std::size_t i = 0; i < n_lanes; ++i) {
    const BatchedLaneProblem& lane = lanes[i];
    GRIDSE_CHECK(lane.network != nullptr && lane.set != nullptr);
    grid::validate_measurements(*lane.network, *lane.set);
    ls[i].model.emplace(
        *lane.network,
        grid::StateIndex(lane.network->num_buses(), lane.reference_bus));
    const grid::StateIndex& index = ls[i].model->state_index();
    if (static_cast<std::int32_t>(lane.set->size()) < index.size()) {
      throw InvalidInput("batched WLS lane " + std::to_string(i) +
                         ": fewer measurements than states (" +
                         std::to_string(lane.set->size()) + " < " +
                         std::to_string(index.size()) +
                         "); system unobservable");
    }
    ls[i].weights = lane.set->weights();
    ls[i].z = lane.set->values();
    ls[i].ref_angle =
        lane.initial.theta[static_cast<std::size_t>(index.reference_bus())];
    ls[i].x = index.pack(lane.initial);
    ls[i].cache = (!caches.empty() && caches[i] != nullptr)
                      ? caches[i]
                      : std::make_shared<SolverCache>();
  }

  sparse::BatchedLdlt batched;
  std::vector<std::shared_ptr<const sparse::SymbolicPlan>> plans(n_lanes);
  std::vector<const sparse::Csr*> mats(n_lanes, nullptr);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool any_active = false;
    // Linearize every active lane, then factor all of them in one sweep
    // over the packed arenas.
    for (std::size_t i = 0; i < n_lanes; ++i) {
      if (!ls[i].active) {
        mats[i] = nullptr;
        continue;
      }
      any_active = true;
      const grid::StateIndex& index = ls[i].model->state_index();
      const grid::GridState state = index.unpack(ls[i].x, ls[i].ref_angle);
      const std::vector<double> h = ls[i].model->evaluate(*lanes[i].set, state);
      const std::vector<double> r = sparse::subtract(ls[i].z, h);
      const sparse::Csr jac = ls[i].model->jacobian(*lanes[i].set, state);
      const auto assembler = ls[i].cache->assembler_for(jac);
      ls[i].gain =
          assembler->assemble(jac, ls[i].weights, options.regularization);
      ls[i].rhs = sparse::normal_rhs(jac, ls[i].weights, r);
      plans[i] = ls[i].cache->plan_for(ls[i].gain, /*ordered=*/true);
      mats[i] = &ls[i].gain;
    }
    if (!any_active) {
      break;
    }
    // Pointer-stable cached plans make this a no-op after iteration 0.
    batched.set_lanes(plans);
    batched.factorize(mats);

    for (std::size_t i = 0; i < n_lanes; ++i) {
      if (!ls[i].active) {
        continue;
      }
      std::vector<double> dx(ls[i].x.size(), 0.0);
      batched.solve_lane(i, ls[i].rhs, dx);
      sparse::axpy(1.0, dx, ls[i].x);
      results[i].final_step = sparse::norm_inf(dx);
      results[i].iterations = iter + 1;
      if (!std::isfinite(results[i].final_step)) {
        throw ConvergenceFailure("batched WLS lane " + std::to_string(i) +
                                 " diverged (non-finite step)");
      }
      if (results[i].final_step < options.tolerance) {
        results[i].converged = true;
        ls[i].active = false;
      }
    }
  }

  for (std::size_t i = 0; i < n_lanes; ++i) {
    const grid::StateIndex& index = ls[i].model->state_index();
    results[i].state = index.unpack(ls[i].x, ls[i].ref_angle);
    const std::vector<double> h =
        ls[i].model->evaluate(*lanes[i].set, results[i].state);
    results[i].residuals = sparse::subtract(ls[i].z, h);
    results[i].objective = 0.0;
    for (std::size_t k = 0; k < results[i].residuals.size(); ++k) {
      results[i].objective +=
          ls[i].weights[k] * results[i].residuals[k] * results[i].residuals[k];
    }
    OBS_COUNTS_OBSERVE("wls.gauss_newton_iterations", results[i].iterations);
    if (!results[i].converged) {
      GRIDSE_WARN << "batched WLS lane " << i << " did not converge in "
                  << options.max_iterations << " iterations (last step "
                  << results[i].final_step << ")";
    }
  }
  return results;
}

}  // namespace gridse::estimation
