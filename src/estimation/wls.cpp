#include "estimation/wls.hpp"

#include <cmath>
#include <memory>

#include "estimation/solver_cache.hpp"
#include "obs/obs.hpp"
#include "sparse/dense.hpp"
#include "sparse/ldlt.hpp"
#include "sparse/normal_equations.hpp"
#include "sparse/vector_ops.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace gridse::estimation {

WlsEstimator::WlsEstimator(const grid::Network& network, WlsOptions options)
    : WlsEstimator(network, network.slack_bus(), options) {}

WlsEstimator::WlsEstimator(const grid::Network& network,
                           grid::BusIndex reference_bus, WlsOptions options)
    : network_(&network),
      options_(options),
      model_(network, grid::StateIndex(network.num_buses(), reference_bus)),
      cache_(options.cache != nullptr ? options.cache
                                      : std::make_shared<SolverCache>()) {}

WlsResult WlsEstimator::estimate(const grid::MeasurementSet& set) const {
  return estimate(set, grid::GridState(network_->num_buses()));
}

WlsResult WlsEstimator::estimate(const grid::MeasurementSet& set,
                                 const grid::GridState& initial) const {
  OBS_SPAN("wls.estimate");
  OBS_COUNTER_ADD("wls.solves", 1);
  grid::validate_measurements(*network_, set);
  const grid::StateIndex& index = model_.state_index();
  if (static_cast<std::int32_t>(set.size()) < index.size()) {
    throw InvalidInput(
        "WLS: fewer measurements than states (" + std::to_string(set.size()) +
        " < " + std::to_string(index.size()) + "); system unobservable");
  }
  const std::vector<double> weights = set.weights();
  const std::vector<double> z = set.values();
  const double ref_angle =
      initial.theta[static_cast<std::size_t>(index.reference_bus())];

  WlsResult result;
  std::vector<double> x = index.pack(initial);
  // Hoisted out of the iteration loop: the direct solver's arrays are
  // resized once and refilled numerically each iteration.
  sparse::SparseLdlt ldlt;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const grid::GridState state = index.unpack(x, ref_angle);
    const std::vector<double> h = model_.evaluate(set, state);
    std::vector<double> r = sparse::subtract(z, h);

    const sparse::Csr jac = model_.jacobian(set, state);
    // Symbolic reuse: after the first iteration (and across estimate()
    // calls on a fixed topology) the assembler/plan lookups are fingerprint
    // hits, so only the numeric work below runs.
    const auto assembler = cache_->assembler_for(jac);
    const sparse::Csr gain =
        assembler->assemble(jac, weights, options_.regularization);
    const std::vector<double> rhs = sparse::normal_rhs(jac, weights, r);

    std::vector<double> dx(static_cast<std::size_t>(index.size()), 0.0);
    switch (options_.solver) {
      case LinearSolver::kPcg: {
        std::unique_ptr<sparse::Preconditioner> precond;
        if (options_.preconditioner == sparse::PreconditionerKind::kIc0) {
          const auto plan = cache_->plan_for(gain, /*ordered=*/false);
          precond = std::make_unique<sparse::Ic0Preconditioner>(gain, *plan);
        } else {
          precond = sparse::make_preconditioner(options_.preconditioner, gain);
        }
        sparse::CgOptions cg_opts;
        cg_opts.tolerance = options_.cg_tolerance;
        const sparse::CgReport rep = sparse::pcg(gain, rhs, dx, *precond, cg_opts);
        result.inner_iterations += rep.iterations;
        OBS_COUNTS_OBSERVE("wls.pcg.iterations", rep.iterations);
        if (!rep.converged) {
          OBS_COUNTER_ADD("wls.pcg.nonconverged", 1);
          GRIDSE_WARN << "WLS inner PCG did not converge (rel res "
                      << rep.relative_residual << ")";
        }
        break;
      }
      case LinearSolver::kLdlt: {
        ldlt.factorize(gain, cache_->plan_for(gain, /*ordered=*/true));
        dx = ldlt.solve(rhs);
        break;
      }
      case LinearSolver::kDense: {
        const auto dense_vals = gain.to_dense();
        const auto n = static_cast<std::size_t>(gain.rows());
        sparse::DenseMatrix dm(n, n);
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            dm(i, j) = dense_vals[i * n + j];
          }
        }
        dx = dm.solve_spd(rhs);
        break;
      }
    }

    sparse::axpy(1.0, dx, x);
    result.final_step = sparse::norm_inf(dx);
    result.iterations = iter + 1;
    if (!std::isfinite(result.final_step)) {
      throw ConvergenceFailure("WLS diverged (non-finite step)");
    }
    if (result.final_step < options_.tolerance) {
      result.converged = true;
      break;
    }
  }

  OBS_COUNTS_OBSERVE("wls.gauss_newton_iterations", result.iterations);
  result.state = index.unpack(x, ref_angle);
  const std::vector<double> h = model_.evaluate(set, result.state);
  result.residuals = sparse::subtract(z, h);
  result.objective = 0.0;
  for (std::size_t i = 0; i < result.residuals.size(); ++i) {
    result.objective += weights[i] * result.residuals[i] * result.residuals[i];
  }
  if (!result.converged) {
    GRIDSE_WARN << "WLS did not converge in " << options_.max_iterations
                << " iterations (last step " << result.final_step << ")";
  }
  return result;
}

}  // namespace gridse::estimation
