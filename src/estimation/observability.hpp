#pragma once

#include "grid/meas_model.hpp"
#include "grid/measurement.hpp"

namespace gridse::estimation {

/// Result of a numerical observability analysis of a measurement
/// configuration (can the state be estimated at all?).
struct ObservabilityReport {
  bool observable = false;
  /// Smallest diagonal pivot of the LDLᵀ factorization of the (weighted)
  /// gain matrix at flat start; ≈0 signals an unobservable direction.
  double min_pivot = 0.0;
  /// Measurement count vs state count.
  std::int32_t num_measurements = 0;
  std::int32_t num_states = 0;
  /// Redundancy ratio m/n.
  double redundancy = 0.0;
};

/// Numerical observability check: factor the flat-start gain matrix and
/// inspect the pivots. `pivot_tolerance` is relative to the largest pivot.
ObservabilityReport check_observability(const grid::MeasurementModel& model,
                                        const grid::MeasurementSet& set,
                                        double pivot_tolerance = 1e-8);

}  // namespace gridse::estimation
