#include "estimation/solver_cache.hpp"

#include <utility>

#include "obs/obs.hpp"

namespace gridse::estimation {

std::shared_ptr<const sparse::SymbolicPlan> SolverCache::plan_for(
    const sparse::Csr& a, bool ordered) {
  const sparse::PatternFingerprint fp = sparse::fingerprint_pattern(a);
  {
    analysis::LockGuard lock(mutex_);
    for (const auto& plan : plans_) {
      if (plan->fingerprint() == fp && plan->ordered() == ordered) {
        ++stats_.plan_hits;
        OBS_COUNTER_ADD("solver.plan.hits", 1);
        return plan;
      }
    }
    ++stats_.plan_misses;
  }
  OBS_COUNTER_ADD("solver.plan.misses", 1);
  // Analyze outside the lock: symbolic analysis is the expensive part, and a
  // duplicate analysis on a race is harmless (both plans are equivalent).
  auto plan = std::make_shared<const sparse::SymbolicPlan>(
      sparse::SymbolicPlan::analyze(a, ordered));
  analysis::LockGuard lock(mutex_);
  if (plans_.size() >= kMaxEntries) {
    plans_.erase(plans_.begin());
  }
  plans_.push_back(plan);
  return plan;
}

std::shared_ptr<const sparse::NormalAssembler> SolverCache::assembler_for(
    const sparse::Csr& h) {
  const sparse::PatternFingerprint fp = sparse::fingerprint_pattern(h);
  {
    analysis::LockGuard lock(mutex_);
    for (const auto& assembler : assemblers_) {
      if (assembler->fingerprint() == fp) {
        ++stats_.assembler_hits;
        OBS_COUNTER_ADD("solver.assembler.hits", 1);
        return assembler;
      }
    }
    ++stats_.assembler_misses;
  }
  OBS_COUNTER_ADD("solver.assembler.misses", 1);
  auto assembler = std::make_shared<const sparse::NormalAssembler>(
      sparse::NormalAssembler::analyze(h));
  analysis::LockGuard lock(mutex_);
  if (assemblers_.size() >= kMaxEntries) {
    assemblers_.erase(assemblers_.begin());
  }
  assemblers_.push_back(assembler);
  return assembler;
}

void SolverCache::invalidate() {
  analysis::LockGuard lock(mutex_);
  if (plans_.empty() && assemblers_.empty()) {
    return;
  }
  plans_.clear();
  assemblers_.clear();
  ++stats_.invalidations;
  OBS_COUNTER_ADD("solver.plan.invalidations", 1);
}

SolverCache::Stats SolverCache::stats() const {
  analysis::LockGuard lock(mutex_);
  return stats_;
}

}  // namespace gridse::estimation
