#pragma once

#include "estimation/wls.hpp"

namespace gridse::estimation {

/// Chi-square global test on the WLS objective: J(x̂) ~ χ²(m − n) when all
/// measurements are good. `confidence` is the test level (e.g. 0.99).
struct ChiSquareTest {
  double objective = 0.0;   ///< J(x̂)
  double threshold = 0.0;   ///< χ² quantile at the test level
  int degrees_of_freedom = 0;
  bool suspect_bad_data = false;  ///< objective > threshold
};

/// Upper quantile of the χ² distribution with `dof` degrees of freedom at
/// `confidence` (Wilson–Hilferty approximation; accurate to ~0.1% for
/// dof ≥ 10, which is the regime of SE redundancy).
double chi_square_quantile(int dof, double confidence);

/// Run the global chi-square detection test on a WLS solution.
ChiSquareTest chi_square_test(const WlsResult& result, std::int32_t num_states,
                              double confidence = 0.99);

/// One identified bad measurement.
struct BadDataHit {
  std::size_t measurement_index = 0;
  double normalized_residual = 0.0;
};

/// Largest-normalized-residual (LNR) identification: r_N,i = |r_i| / √Ω_ii
/// with Ω = R − H G⁻¹ Hᵀ (residual covariance). Returns the measurement with
/// the largest normalized residual; bad when it exceeds `threshold`
/// (conventionally 3.0).
///
/// `estimator` supplies the measurement model; `result` must come from the
/// same estimator and measurement set.
BadDataHit largest_normalized_residual(const WlsEstimator& estimator,
                                       const grid::MeasurementSet& set,
                                       const WlsResult& result);

/// Iteratively remove bad measurements (LNR > threshold) and re-estimate, up
/// to `max_removals` times. Returns the cleaned set, the final result, and
/// the indices (into the ORIGINAL set) that were removed.
struct BadDataScrub {
  grid::MeasurementSet cleaned;
  WlsResult result;
  std::vector<std::size_t> removed;
};
BadDataScrub detect_and_remove(const WlsEstimator& estimator,
                               const grid::MeasurementSet& set,
                               double threshold = 3.0, int max_removals = 5);

}  // namespace gridse::estimation
