#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/debug_sync.hpp"
#include "analysis/thread_annotations.hpp"
#include "sparse/normal_equations.hpp"
#include "sparse/symbolic_plan.hpp"

namespace gridse::estimation {

/// Thread-safe store of symbolic solver artifacts keyed on sparsity-pattern
/// fingerprints: SymbolicPlans for the gain matrix (LDLᵀ ordering/etree +
/// IC(0) lower pattern) and NormalAssemblers for the Jacobian pattern.
/// One cache per (subsystem, model) survives across Gauss–Newton iterations
/// and DSE cycles; `invalidate()` is the remap/topology-change hook — it
/// drops everything, so the next solve re-analyzes from scratch and a stale
/// plan can never be applied to a changed pattern. Even without an explicit
/// invalidation a pattern change is caught by the fingerprint mismatch; the
/// explicit hook exists so migrated subsystems also shed the memory.
class SolverCache {
 public:
  struct Stats {
    std::uint64_t plan_hits = 0;
    std::uint64_t plan_misses = 0;
    std::uint64_t assembler_hits = 0;
    std::uint64_t assembler_misses = 0;
    std::uint64_t invalidations = 0;
  };

  /// Plan for the pattern of `a` (analyzing it on a miss). `ordered` selects
  /// the RCM-permuted LDLᵀ facet; plans with different `ordered` flags are
  /// distinct cache entries.
  std::shared_ptr<const sparse::SymbolicPlan> plan_for(const sparse::Csr& a,
                                                       bool ordered = true);

  /// Gain assembler for the pattern of `h` (analyzing it on a miss).
  std::shared_ptr<const sparse::NormalAssembler> assembler_for(
      const sparse::Csr& h);

  /// Drop every cached artifact (topology change / subsystem remap).
  void invalidate();

  [[nodiscard]] Stats stats() const;

 private:
  // A subsystem alternates between very few patterns (local gain, extended
  // gain, their Jacobians), so a tiny FIFO-bounded list beats a map.
  static constexpr std::size_t kMaxEntries = 8;

  mutable analysis::Mutex mutex_{"estimation::SolverCache"};
  std::vector<std::shared_ptr<const sparse::SymbolicPlan>> plans_
      GRIDSE_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<const sparse::NormalAssembler>> assemblers_
      GRIDSE_GUARDED_BY(mutex_);
  Stats stats_ GRIDSE_GUARDED_BY(mutex_);
};

}  // namespace gridse::estimation
