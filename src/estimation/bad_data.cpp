#include "estimation/bad_data.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "sparse/ldlt.hpp"
#include "sparse/normal_equations.hpp"
#include "util/error.hpp"

namespace gridse::estimation {

double chi_square_quantile(int dof, double confidence) {
  GRIDSE_CHECK_MSG(dof > 0, "chi-square dof must be positive");
  GRIDSE_CHECK_MSG(confidence > 0.0 && confidence < 1.0,
                   "confidence must be in (0,1)");
  // Inverse normal via Acklam's rational approximation (|error| < 1.15e-9).
  const auto inv_norm = [](double p) {
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    if (p < plow) {
      const double q = std::sqrt(-2.0 * std::log(p));
      return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
             ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - plow) {
      const double q = std::sqrt(-2.0 * std::log(1.0 - p));
      return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
               c[5]) /
             ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  };
  // Wilson–Hilferty: χ²_p(k) ≈ k (1 − 2/(9k) + z_p √(2/(9k)))³
  const double k = static_cast<double>(dof);
  const double z = inv_norm(confidence);
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

ChiSquareTest chi_square_test(const WlsResult& result, std::int32_t num_states,
                              double confidence) {
  ChiSquareTest test;
  test.objective = result.objective;
  test.degrees_of_freedom =
      static_cast<int>(result.residuals.size()) - num_states;
  GRIDSE_CHECK_MSG(test.degrees_of_freedom > 0,
                   "chi-square test needs measurement redundancy");
  test.threshold = chi_square_quantile(test.degrees_of_freedom, confidence);
  test.suspect_bad_data = test.objective > test.threshold;
  return test;
}

BadDataHit largest_normalized_residual(const WlsEstimator& estimator,
                                       const grid::MeasurementSet& set,
                                       const WlsResult& result) {
  GRIDSE_CHECK(set.size() == result.residuals.size());
  const grid::MeasurementModel& model = estimator.model();
  const std::vector<double> weights = set.weights();
  const sparse::Csr h = model.jacobian(set, result.state);
  const sparse::Csr gain = sparse::normal_matrix(h, weights);
  sparse::SparseLdlt ldlt;
  ldlt.factorize(gain);

  BadDataHit best;
  const auto cols = h.col_idx();
  const auto vals = h.values();
  std::vector<double> hrow(static_cast<std::size_t>(h.cols()), 0.0);
  for (std::size_t mi = 0; mi < set.size(); ++mi) {
    // Ω_ii = R_ii − h_i G⁻¹ h_iᵀ  with R_ii = 1/w_i
    const auto [b, e] =
        h.row_range(static_cast<sparse::Index>(mi));
    std::fill(hrow.begin(), hrow.end(), 0.0);
    for (auto k = b; k < e; ++k) {
      hrow[static_cast<std::size_t>(cols[static_cast<std::size_t>(k)])] =
          vals[static_cast<std::size_t>(k)];
    }
    const std::vector<double> ginv_h = ldlt.solve(hrow);
    double quad = 0.0;
    for (auto k = b; k < e; ++k) {
      quad += vals[static_cast<std::size_t>(k)] *
              ginv_h[static_cast<std::size_t>(cols[static_cast<std::size_t>(k)])];
    }
    const double omega = 1.0 / weights[mi] - quad;
    if (omega <= 1e-14) {
      continue;  // critical measurement: residual carries no information
    }
    const double rn = std::abs(result.residuals[mi]) / std::sqrt(omega);
    if (rn > best.normalized_residual) {
      best.normalized_residual = rn;
      best.measurement_index = mi;
    }
  }
  return best;
}

BadDataScrub detect_and_remove(const WlsEstimator& estimator,
                               const grid::MeasurementSet& set,
                               double threshold, int max_removals) {
  BadDataScrub scrub;
  scrub.cleaned = set;
  // Track original indices through removals.
  std::vector<std::size_t> original(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) original[i] = i;

  scrub.result = estimator.estimate(scrub.cleaned);
  for (int round = 0; round < max_removals; ++round) {
    const BadDataHit hit =
        largest_normalized_residual(estimator, scrub.cleaned, scrub.result);
    if (hit.normalized_residual <= threshold) {
      break;
    }
    scrub.removed.push_back(original[hit.measurement_index]);
    OBS_EVENT("bad_data.rejection",
              OBS_ATTR("measurement", original[hit.measurement_index]),
              OBS_ATTR("normalized_residual", hit.normalized_residual),
              OBS_ATTR("round", round));
    scrub.cleaned.items.erase(scrub.cleaned.items.begin() +
                              static_cast<std::ptrdiff_t>(hit.measurement_index));
    original.erase(original.begin() +
                   static_cast<std::ptrdiff_t>(hit.measurement_index));
    scrub.result = estimator.estimate(scrub.cleaned);
  }
  return scrub;
}

}  // namespace gridse::estimation
