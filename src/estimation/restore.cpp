#include "estimation/restore.hpp"

#include <cmath>
#include <limits>

#include "sparse/dense.hpp"
#include "sparse/normal_equations.hpp"
#include "util/error.hpp"

namespace gridse::estimation {
namespace {

/// Columns of the flat-start gain matrix whose elimination pivot is
/// (near-)zero: the unobservable state directions, attributed per column.
std::vector<std::int32_t> weak_pivot_columns(
    const grid::MeasurementModel& model, const grid::MeasurementSet& set,
    double tolerance) {
  const grid::GridState flat(model.network().num_buses());
  const sparse::Csr h = model.jacobian(set, flat);
  const std::vector<double> w = set.weights();
  const sparse::Csr gain = sparse::normal_matrix(h, w);

  const auto n = static_cast<std::size_t>(gain.rows());
  sparse::DenseMatrix a(n, n);
  const auto vals = gain.to_dense();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = vals[i * n + j];
    }
  }
  double max_pivot = 0.0;
  std::vector<std::int32_t> weak;
  for (std::size_t k = 0; k < n; ++k) {
    const double piv = a(k, k);
    max_pivot = std::max(max_pivot, piv);
    if (piv <= tolerance * std::max(max_pivot, 1.0)) {
      weak.push_back(static_cast<std::int32_t>(k));
      // Skip elimination on a dead pivot; later columns still get scanned.
      continue;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a(i, k) / piv;
      if (f == 0.0) continue;
      for (std::size_t j = k; j < n; ++j) {
        a(i, j) -= f * a(k, j);
      }
    }
  }
  return weak;
}

/// Map a state-vector column back to (bus, is_angle).
std::pair<grid::BusIndex, bool> column_to_bus(const grid::StateIndex& index,
                                              std::int32_t col) {
  const grid::BusIndex n = index.num_buses();
  if (col < n - 1) {
    // angle block: skips the reference bus
    const grid::BusIndex bus =
        col < index.reference_bus() ? col : col + 1;
    return {bus, true};
  }
  return {static_cast<grid::BusIndex>(col - (n - 1)), false};
}

}  // namespace

RestorationResult restore_observability(const grid::MeasurementModel& model,
                                        const grid::MeasurementSet& set,
                                        double pseudo_sigma, int max_rounds) {
  GRIDSE_CHECK_MSG(pseudo_sigma > 0.0, "pseudo sigma must be positive");
  GRIDSE_CHECK_MSG(max_rounds > 0, "need at least one restoration round");
  RestorationResult result;
  result.augmented = set;

  for (int round = 0; round < max_rounds; ++round) {
    const ObservabilityReport report =
        check_observability(model, result.augmented);
    if (report.observable) {
      result.observable = true;
      return result;
    }
    const auto weak = weak_pivot_columns(model, result.augmented, 1e-8);
    if (weak.empty()) {
      break;  // unobservable yet no attributable pivot: give up
    }
    for (const std::int32_t col : weak) {
      const auto [bus, is_angle] = column_to_bus(model.state_index(), col);
      grid::Measurement pseudo;
      pseudo.type =
          is_angle ? grid::MeasType::kVAngle : grid::MeasType::kVMag;
      pseudo.bus = bus;
      pseudo.value = is_angle ? 0.0 : 1.0;  // flat-profile prior
      pseudo.sigma = pseudo_sigma;
      result.augmented.items.push_back(pseudo);
      result.added.push_back(pseudo);
    }
  }
  result.observable = check_observability(model, result.augmented).observable;
  return result;
}

}  // namespace gridse::estimation
