#include "estimation/outputs.hpp"

#include <cmath>
#include <complex>

#include "grid/powerflow.hpp"
#include "grid/ybus.hpp"
#include "sparse/ldlt.hpp"
#include "sparse/normal_equations.hpp"
#include "util/error.hpp"

namespace gridse::estimation {

std::vector<double> SolutionReport::loadings(
    const grid::Network& network) const {
  GRIDSE_CHECK(flows.size() == network.num_branches());
  std::vector<double> out(flows.size(), 0.0);
  for (std::size_t bi = 0; bi < flows.size(); ++bi) {
    const double rating = network.branch(bi).rating;
    if (rating <= 0.0) continue;
    const double s_from =
        std::hypot(flows[bi].p_from, flows[bi].q_from);
    out[bi] = s_from / rating;
  }
  return out;
}

SolutionReport build_solution_report(const grid::Network& network,
                                     const grid::GridState& state) {
  GRIDSE_CHECK(state.num_buses() == network.num_buses());
  using C = std::complex<double>;
  SolutionReport report;
  report.state = state;

  const auto ybus = grid::build_ybus(network);
  auto [p, q] = grid::bus_injections(ybus, state);
  report.p_injection = std::move(p);
  report.q_injection = std::move(q);

  report.flows.reserve(network.num_branches());
  for (std::size_t bi = 0; bi < network.num_branches(); ++bi) {
    const grid::Branch& br = network.branch(bi);
    const grid::BranchAdmittance a = grid::branch_admittance(br);
    const C vf = std::polar(state.vm[static_cast<std::size_t>(br.from)],
                            state.theta[static_cast<std::size_t>(br.from)]);
    const C vt = std::polar(state.vm[static_cast<std::size_t>(br.to)],
                            state.theta[static_cast<std::size_t>(br.to)]);
    const C s_from = vf * std::conj(a.yff * vf + a.yft * vt);
    const C s_to = vt * std::conj(a.ytf * vf + a.ytt * vt);
    BranchFlowEstimate flow;
    flow.branch = bi;
    flow.p_from = s_from.real();
    flow.q_from = s_from.imag();
    flow.p_to = s_to.real();
    flow.q_to = s_to.imag();
    report.total_loss += flow.p_loss();
    report.flows.push_back(flow);
  }
  return report;
}

StateConfidence estimate_confidence(const grid::MeasurementModel& model,
                                    const grid::MeasurementSet& set,
                                    const grid::GridState& state) {
  const grid::StateIndex& index = model.state_index();
  GRIDSE_CHECK(state.num_buses() == index.num_buses());
  const sparse::Csr h = model.jacobian(set, state);
  const std::vector<double> w = set.weights();
  const sparse::Csr gain = sparse::normal_matrix(h, w);
  sparse::SparseLdlt ldlt;
  ldlt.factorize(gain);

  // diag(G⁻¹) column by column: G⁻¹ e_k. One solve per state; the factor is
  // reused, so this is O(n · solve) — fine at case-study scale.
  const auto n = static_cast<std::size_t>(gain.rows());
  std::vector<double> variance(n);
  std::vector<double> unit(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    unit[k] = 1.0;
    const std::vector<double> column = ldlt.solve(unit);
    unit[k] = 0.0;
    variance[k] = std::max(column[k], 0.0);
  }

  StateConfidence conf;
  const auto buses = static_cast<std::size_t>(index.num_buses());
  conf.theta_stddev.assign(buses, 0.0);
  conf.vm_stddev.assign(buses, 0.0);
  for (grid::BusIndex b = 0; b < index.num_buses(); ++b) {
    const auto ti = index.theta_index(b);
    if (ti >= 0) {
      conf.theta_stddev[static_cast<std::size_t>(b)] =
          std::sqrt(variance[static_cast<std::size_t>(ti)]);
    }
    conf.vm_stddev[static_cast<std::size_t>(b)] =
        std::sqrt(variance[static_cast<std::size_t>(index.vm_index(b))]);
  }
  return conf;
}

}  // namespace gridse::estimation
