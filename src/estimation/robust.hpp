#pragma once

#include "estimation/wls.hpp"

namespace gridse::estimation {

/// Options for the Huber M-estimator. `gamma` is the Huber threshold in
/// standard deviations: residuals within ±gamma·sigma get quadratic loss
/// (WLS behaviour), larger ones linear loss (bounded influence).
struct RobustOptions {
  WlsOptions wls;
  double gamma = 1.5;
  /// Outer IRLS iterations (each runs one full WLS on reweighted data).
  int max_reweight_iterations = 10;
  /// Stop when the largest relative weight change falls below this.
  double weight_tolerance = 1e-3;
};

struct RobustResult {
  WlsResult wls;
  /// Final IRLS weight multipliers in [0,1], one per measurement; values
  /// well below 1 mark suspected outliers.
  std::vector<double> influence;
  int reweight_iterations = 0;
};

/// Huber M-estimation by iteratively reweighted least squares: an
/// alternative to detect-and-remove that tolerates gross errors without
/// explicitly excising measurements (Abur & Expósito ch. 6 — the robust
/// option for the paper's reference [19] formulation).
class HuberEstimator {
 public:
  explicit HuberEstimator(const grid::Network& network,
                          RobustOptions options = {});

  [[nodiscard]] RobustResult estimate(const grid::MeasurementSet& set) const;
  [[nodiscard]] RobustResult estimate(const grid::MeasurementSet& set,
                                      const grid::GridState& initial) const;

 private:
  const grid::Network* network_;
  RobustOptions options_;
};

}  // namespace gridse::estimation
