#pragma once

#include <memory>

#include "grid/meas_model.hpp"
#include "grid/measurement.hpp"
#include "grid/network.hpp"
#include "grid/state.hpp"
#include "sparse/cg.hpp"
#include "sparse/preconditioner.hpp"

namespace gridse::estimation {

class SolverCache;

/// Which linear solver handles the normal-equations system G Δx = Hᵀ W r in
/// each Gauss–Newton iteration.
enum class LinearSolver {
  kPcg,   ///< preconditioned conjugate gradient (the paper's solver, §IV-C)
  kLdlt,  ///< sparse direct LDLᵀ (baseline)
  kDense  ///< dense Cholesky (reference; tiny systems only)
};

struct WlsOptions {
  /// Gauss–Newton stops when max |Δx| falls below this (10⁻⁶ p.u./radians
  /// is far below measurement noise; tighter values fight the inner
  /// solver's own tolerance on large systems).
  double tolerance = 1e-6;
  int max_iterations = 25;
  LinearSolver solver = LinearSolver::kPcg;
  sparse::PreconditionerKind preconditioner = sparse::PreconditionerKind::kIc0;
  /// Relative tolerance for the inner PCG solve.
  double cg_tolerance = 1e-12;
  /// Tikhonov term added to the gain matrix diagonal (0 = none). DSE Step 2
  /// re-evaluation sets this to keep reduced systems well-posed.
  double regularization = 0.0;
  /// Symbolic-artifact cache shared across estimators (per subsystem in the
  /// DSE driver). When null the estimator creates a private cache, so
  /// repeated estimate() calls on one estimator still reuse symbolic work.
  std::shared_ptr<SolverCache> cache;
};

struct WlsResult {
  grid::GridState state;
  bool converged = false;
  int iterations = 0;
  /// Weighted least-squares objective J(x̂) = Σ w_i r_i² at the solution.
  double objective = 0.0;
  /// Residuals z − h(x̂) at the solution, in measurement order.
  std::vector<double> residuals;
  /// max |Δx| of the final iteration.
  double final_step = 0.0;
  /// Total inner (PCG) iterations across the Gauss–Newton loop; 0 for
  /// direct solvers.
  int inner_iterations = 0;
};

/// Centralized weighted-least-squares state estimator (Abur & Expósito
/// formulation, the paper's reference [19]): Gauss–Newton on
/// min Σ w_i (z_i − h_i(x))², normal equations solved per WlsOptions.
class WlsEstimator {
 public:
  /// The angle reference defaults to the network's slack bus.
  explicit WlsEstimator(const grid::Network& network, WlsOptions options = {});

  /// Alternate reference bus (DSE subsystems use their local reference).
  WlsEstimator(const grid::Network& network, grid::BusIndex reference_bus,
               WlsOptions options);

  /// Run the estimator from `initial` (flat start when omitted). The
  /// reference angle is pinned to `initial`'s value at the reference bus.
  /// Throws InvalidInput on malformed measurements; a non-converged run is
  /// reported via WlsResult::converged, not an exception.
  [[nodiscard]] WlsResult estimate(const grid::MeasurementSet& set) const;
  [[nodiscard]] WlsResult estimate(const grid::MeasurementSet& set,
                                   const grid::GridState& initial) const;

  [[nodiscard]] const grid::MeasurementModel& model() const { return model_; }
  [[nodiscard]] const WlsOptions& options() const { return options_; }

 private:
  const grid::Network* network_;
  WlsOptions options_;
  grid::MeasurementModel model_;
  /// options_.cache, or a private cache when none was supplied. Never null.
  std::shared_ptr<SolverCache> cache_;
};

}  // namespace gridse::estimation
