#include "estimation/robust.hpp"

#include <cmath>

#include "util/error.hpp"

namespace gridse::estimation {

HuberEstimator::HuberEstimator(const grid::Network& network,
                               RobustOptions options)
    : network_(&network), options_(options) {
  GRIDSE_CHECK_MSG(options.gamma > 0.0, "Huber gamma must be positive");
  GRIDSE_CHECK_MSG(options.max_reweight_iterations > 0,
                   "need at least one reweight iteration");
}

RobustResult HuberEstimator::estimate(const grid::MeasurementSet& set) const {
  return estimate(set, grid::GridState(network_->num_buses()));
}

RobustResult HuberEstimator::estimate(const grid::MeasurementSet& set,
                                      const grid::GridState& initial) const {
  RobustResult result;
  result.influence.assign(set.size(), 1.0);

  grid::MeasurementSet working = set;
  grid::GridState start = initial;
  for (int iter = 0; iter < options_.max_reweight_iterations; ++iter) {
    const WlsEstimator wls(*network_, options_.wls);
    result.wls = wls.estimate(working, start);
    result.reweight_iterations = iter + 1;

    // Huber weights on the ORIGINAL sigmas: w_i = 1 for |r|/sigma <= gamma,
    // gamma*sigma/|r| beyond. Applied by inflating the working sigma,
    // because WLS weight = 1/sigma².
    double max_change = 0.0;
    for (std::size_t i = 0; i < set.size(); ++i) {
      const double sigma = set.items[i].sigma;
      const double std_res = std::abs(result.wls.residuals[i]) / sigma;
      const double w =
          std_res <= options_.gamma ? 1.0 : options_.gamma / std_res;
      max_change = std::max(max_change, std::abs(w - result.influence[i]));
      result.influence[i] = w;
      working.items[i].sigma = sigma / std::sqrt(w);
    }
    start = result.wls.state;  // warm start the next IRLS pass
    if (max_change < options_.weight_tolerance) {
      break;
    }
  }
  return result;
}

}  // namespace gridse::estimation
