#include "estimation/observability.hpp"

#include <cmath>

#include "sparse/dense.hpp"
#include "sparse/normal_equations.hpp"
#include "util/error.hpp"

namespace gridse::estimation {

ObservabilityReport check_observability(const grid::MeasurementModel& model,
                                        const grid::MeasurementSet& set,
                                        double pivot_tolerance) {
  ObservabilityReport report;
  report.num_measurements = static_cast<std::int32_t>(set.size());
  report.num_states = model.state_index().size();
  report.redundancy = report.num_states > 0
                          ? static_cast<double>(report.num_measurements) /
                                static_cast<double>(report.num_states)
                          : 0.0;
  if (report.num_measurements < report.num_states) {
    report.observable = false;
    return report;
  }

  const grid::GridState flat(model.network().num_buses());
  const sparse::Csr h = model.jacobian(set, flat);
  const std::vector<double> weights = set.weights();
  const sparse::Csr gain = sparse::normal_matrix(h, weights);

  // Dense LDLᵀ-style pivot scan (no pivoting needed for PSD): robust to the
  // exactly-singular case the sparse factorization throws on.
  const auto n = static_cast<std::size_t>(gain.rows());
  sparse::DenseMatrix a(n, n);
  const auto dvals = gain.to_dense();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = dvals[i * n + j];
    }
  }
  double max_pivot = 0.0;
  double min_pivot = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < n; ++k) {
    const double piv = a(k, k);
    max_pivot = std::max(max_pivot, piv);
    min_pivot = std::min(min_pivot, piv);
    if (piv <= 0.0) {
      min_pivot = std::min(min_pivot, 0.0);
      break;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a(i, k) / piv;
      if (f == 0.0) continue;
      for (std::size_t j = k; j < n; ++j) {
        a(i, j) -= f * a(k, j);
      }
    }
  }
  report.min_pivot = min_pivot;
  report.observable = min_pivot > pivot_tolerance * max_pivot;
  return report;
}

}  // namespace gridse::estimation
