#pragma once

#include "estimation/observability.hpp"
#include "grid/measurement.hpp"

namespace gridse::estimation {

/// Outcome of observability restoration.
struct RestorationResult {
  /// The augmented measurement set (original + added pseudo measurements).
  grid::MeasurementSet augmented;
  /// The pseudo measurements that were added, in order.
  std::vector<grid::Measurement> added;
  /// True if the augmented set is numerically observable.
  bool observable = false;
};

/// Restore observability by injecting pseudo measurements (Abur & Expósito
/// ch. 4): scan the flat-start gain matrix pivots; every state coordinate
/// behind a (near-)zero pivot gets a pseudo measurement — a flat-profile
/// angle or magnitude at the corresponding bus with standard deviation
/// `pseudo_sigma` (loose: forecasts/schedules, not telemetry). Iterates
/// until observable or `max_rounds` exhausted.
RestorationResult restore_observability(const grid::MeasurementModel& model,
                                        const grid::MeasurementSet& set,
                                        double pseudo_sigma = 0.1,
                                        int max_rounds = 4);

}  // namespace gridse::estimation
