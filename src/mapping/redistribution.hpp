#pragma once

#include <span>
#include <vector>

#include "decomp/decomposition.hpp"
#include "graph/partition.hpp"

namespace gridse::mapping {

/// A planned data movement caused by re-mapping a subsystem between DSE
/// Step 1 and Step 2 (paper §IV-C: "some of the raw measurements data for a
/// subsystem may need to be redistributed to another HPC cluster").
struct RedistributionMove {
  int subsystem = 0;
  graph::PartId from_cluster = 0;
  graph::PartId to_cluster = 0;
  /// Estimated payload: raw measurements of the subsystem's boundary and
  /// sensitive-internal buses plus its Step-1 solution.
  std::size_t estimated_bytes = 0;
};

struct RedistributionPlan {
  std::vector<RedistributionMove> moves;

  [[nodiscard]] std::size_t total_bytes() const;
  [[nodiscard]] bool empty() const { return moves.empty(); }
};

/// Diff two subsystem→cluster assignments into the move list, sizing each
/// move at `bytes_per_bus` (a calibration constant for the raw-measurement
/// footprint of one bus) times the subsystem's gs() bus count, plus
/// `solution_bytes_per_bus` for the Step-1 state.
RedistributionPlan plan_redistribution(
    const decomp::Decomposition& d, std::span<const graph::PartId> before,
    std::span<const graph::PartId> after, std::size_t bytes_per_bus = 4096,
    std::size_t solution_bytes_per_bus = 16);

}  // namespace gridse::mapping
