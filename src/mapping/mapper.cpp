#include "mapping/mapper.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace gridse::mapping {

ClusterMapper::ClusterMapper(const decomp::Decomposition& decomposition,
                             MappingOptions options, WeightModelParams params)
    : decomposition_(&decomposition), options_(options), params_(params) {
  GRIDSE_CHECK_MSG(options.num_clusters >= 1, "need at least one cluster");
  GRIDSE_CHECK_MSG(options.num_clusters <= decomposition.num_subsystems(),
                   "more clusters than subsystems");
}

graph::WeightedGraph ClusterMapper::initial_graph() const {
  return weighted_graph(/*noise=*/-1.0, /*step2_edges=*/true);
}

graph::WeightedGraph ClusterMapper::weighted_graph(double noise,
                                                   bool step2_edges) const {
  const auto m =
      static_cast<graph::VertexId>(decomposition_->num_subsystems());
  graph::WeightedGraph g(m);
  for (const decomp::Subsystem& s : decomposition_->subsystems) {
    const int nb = static_cast<int>(s.buses.size());
    // noise < 0 selects the Table-I initialization (weight = bus count).
    const double wv =
        noise < 0.0 ? static_cast<double>(nb) : vertex_weight(nb, noise, params_);
    g.set_vertex_weight(static_cast<graph::VertexId>(s.id), wv);
  }
  for (const auto& [a, b] : decomposition_->neighbor_pairs()) {
    double we = 1.0;  // Step 1: no communication, uniform edges
    if (step2_edges) {
      const decomp::Subsystem& sa =
          decomposition_->subsystems[static_cast<std::size_t>(a)];
      const decomp::Subsystem& sb =
          decomposition_->subsystems[static_cast<std::size_t>(b)];
      we = options_.edge_upper_bound
               ? edge_weight_upper_bound(static_cast<int>(sa.buses.size()),
                                         static_cast<int>(sb.buses.size()))
               : edge_weight(sa.gs(), sb.gs());
    }
    g.add_edge(static_cast<graph::VertexId>(a), static_cast<graph::VertexId>(b),
               we);
  }
  return g;
}

MappingResult ClusterMapper::map_before_step1(
    double time_frame_sec, const std::vector<graph::PartId>* previous) const {
  OBS_SPAN("mapping.map_before_step1");
  if (previous != nullptr) {
    OBS_COUNTER_ADD("mapping.repartitions", 1);
    OBS_EVENT("mapping.repartition", OBS_ATTR("step", 1),
              OBS_ATTR("time_frame_sec", time_frame_sec));
  }
  MappingResult result;
  result.noise_level = noise_from_time_frame(time_frame_sec, params_);
  result.predicted_iterations =
      predicted_iterations(result.noise_level, params_);
  result.weighted_graph =
      weighted_graph(result.noise_level, /*step2_edges=*/false);

  graph::PartitionOptions popts;
  popts.k = options_.num_clusters;
  popts.imbalance_tolerance = options_.imbalance_tolerance;
  popts.seed = options_.seed;
  popts.objective = options_.objective;
  popts.threads = options_.partition_threads;
  result.partition =
      (previous != nullptr)
          ? graph::repartition(result.weighted_graph, *previous, popts)
          : graph::partition(result.weighted_graph, popts);
  return result;
}

MappingResult ClusterMapper::map_before_step2(
    double time_frame_sec, const std::vector<graph::PartId>& step1) const {
  OBS_SPAN("mapping.map_before_step2");
  OBS_COUNTER_ADD("mapping.repartitions", 1);
  OBS_EVENT("mapping.repartition", OBS_ATTR("step", 2),
            OBS_ATTR("time_frame_sec", time_frame_sec));
  MappingResult result;
  result.noise_level = noise_from_time_frame(time_frame_sec, params_);
  result.predicted_iterations =
      predicted_iterations(result.noise_level, params_);
  result.weighted_graph =
      weighted_graph(result.noise_level, /*step2_edges=*/true);

  graph::PartitionOptions popts;
  popts.k = options_.num_clusters;
  popts.imbalance_tolerance = options_.imbalance_tolerance;
  popts.seed = options_.seed;
  popts.objective = options_.objective;
  popts.threads = options_.partition_threads;
  result.partition = graph::repartition(result.weighted_graph, step1, popts);
  return result;
}

std::vector<graph::PartId> contiguous_mapping(int num_subsystems,
                                              int num_clusters) {
  GRIDSE_CHECK(num_clusters >= 1 && num_subsystems >= num_clusters);
  std::vector<graph::PartId> assignment(
      static_cast<std::size_t>(num_subsystems));
  // Even slicing in index order; remainders go to the leading clusters.
  const int base = num_subsystems / num_clusters;
  const int extra = num_subsystems % num_clusters;
  int next = 0;
  for (int c = 0; c < num_clusters; ++c) {
    const int count = base + (c < extra ? 1 : 0);
    for (int i = 0; i < count; ++i) {
      assignment[static_cast<std::size_t>(next++)] =
          static_cast<graph::PartId>(c);
    }
  }
  return assignment;
}

std::vector<int> cluster_bus_counts(const decomp::Decomposition& d,
                                    std::span<const graph::PartId> assignment,
                                    int num_clusters) {
  GRIDSE_CHECK(static_cast<int>(assignment.size()) == d.num_subsystems());
  std::vector<int> counts(static_cast<std::size_t>(num_clusters), 0);
  for (const decomp::Subsystem& s : d.subsystems) {
    counts[static_cast<std::size_t>(
        assignment[static_cast<std::size_t>(s.id)])] +=
        static_cast<int>(s.buses.size());
  }
  return counts;
}

}  // namespace gridse::mapping
