#pragma once

namespace gridse::mapping {

/// Parameters of the paper's empirical cost model (§IV-B2, Expressions
/// (1)–(5)). Defaults are the values the paper reports for a 14-bus
/// subsystem: Ni = g1·x + g2 with g1 = 3.7579, g2 = 5.2464.
struct WeightModelParams {
  double g1 = 3.7579;  ///< iterations per unit noise (Expression (2))
  double g2 = 5.2464;  ///< base iterations (Expression (2))

  /// Expression (1) x = f(δt): we model the per-frame noise level as a
  /// deterministic quasi-diurnal profile around `base_noise` — the stand-in
  /// for the Gaussian field-noise estimate the paper derives from each
  /// SCADA time frame.
  double base_noise = 1.0;
  double noise_amplitude = 0.5;
  double noise_period_sec = 240.0;
};

/// Expression (1): noise level of the measurements collected in the time
/// frame anchored at `t` seconds.
double noise_from_time_frame(double t, const WeightModelParams& params);

/// Expression (2): predicted state-estimation iterations at noise level x.
double predicted_iterations(double noise, const WeightModelParams& params);

/// Expression (3)/(4): vertex weight Wv = Nb · Ni = Nb · (g1·f(δt) + g2).
double vertex_weight(int num_buses, double noise,
                     const WeightModelParams& params);

/// Expression (5): edge weight We = gs(s1) + gs(s2), where gs is the number
/// of boundary plus sensitive-internal buses of a subsystem.
double edge_weight(int gs1, int gs2);

/// The paper's Table-I upper bound for Expression (5): the plain sum of the
/// two subsystems' bus counts.
double edge_weight_upper_bound(int buses1, int buses2);

}  // namespace gridse::mapping
