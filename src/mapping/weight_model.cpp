#include "mapping/weight_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace gridse::mapping {

double noise_from_time_frame(double t, const WeightModelParams& params) {
  GRIDSE_CHECK_MSG(params.noise_period_sec > 0.0,
                   "noise period must be positive");
  constexpr double kTwoPi = 6.28318530717958647692;
  const double phase = kTwoPi * t / params.noise_period_sec;
  const double x =
      params.base_noise + params.noise_amplitude * std::sin(phase);
  return std::max(x, 0.0);
}

double predicted_iterations(double noise, const WeightModelParams& params) {
  GRIDSE_CHECK_MSG(noise >= 0.0, "noise level must be nonnegative");
  return params.g1 * noise + params.g2;
}

double vertex_weight(int num_buses, double noise,
                     const WeightModelParams& params) {
  GRIDSE_CHECK_MSG(num_buses > 0, "vertex weight needs a positive bus count");
  return static_cast<double>(num_buses) * predicted_iterations(noise, params);
}

double edge_weight(int gs1, int gs2) {
  GRIDSE_CHECK_MSG(gs1 >= 0 && gs2 >= 0, "gs counts must be nonnegative");
  return static_cast<double>(gs1 + gs2);
}

double edge_weight_upper_bound(int buses1, int buses2) {
  GRIDSE_CHECK_MSG(buses1 > 0 && buses2 > 0, "bus counts must be positive");
  return static_cast<double>(buses1 + buses2);
}

}  // namespace gridse::mapping
