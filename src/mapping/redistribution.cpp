#include "mapping/redistribution.hpp"

#include "util/error.hpp"

namespace gridse::mapping {

std::size_t RedistributionPlan::total_bytes() const {
  std::size_t total = 0;
  for (const RedistributionMove& m : moves) {
    total += m.estimated_bytes;
  }
  return total;
}

RedistributionPlan plan_redistribution(const decomp::Decomposition& d,
                                       std::span<const graph::PartId> before,
                                       std::span<const graph::PartId> after,
                                       std::size_t bytes_per_bus,
                                       std::size_t solution_bytes_per_bus) {
  GRIDSE_CHECK(static_cast<int>(before.size()) == d.num_subsystems());
  GRIDSE_CHECK(before.size() == after.size());
  RedistributionPlan plan;
  for (const decomp::Subsystem& s : d.subsystems) {
    const auto idx = static_cast<std::size_t>(s.id);
    if (before[idx] == after[idx]) {
      continue;
    }
    RedistributionMove move;
    move.subsystem = s.id;
    move.from_cluster = before[idx];
    move.to_cluster = after[idx];
    // Step 2 needs the raw measurements of the boundary + sensitive buses at
    // the new host, and the subsystem's Step-1 solution for every bus.
    move.estimated_bytes =
        static_cast<std::size_t>(s.gs()) * bytes_per_bus +
        s.buses.size() * solution_bytes_per_bus;
    plan.moves.push_back(move);
  }
  return plan;
}

}  // namespace gridse::mapping
