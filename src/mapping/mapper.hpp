#pragma once

#include <optional>

#include "decomp/decomposition.hpp"
#include "graph/partitioner.hpp"
#include "mapping/weight_model.hpp"

namespace gridse::mapping {

struct MappingOptions {
  int num_clusters = 3;
  /// METIS-style balance tolerance (paper: "the suggested threshold 1.05").
  double imbalance_tolerance = 1.05;
  std::uint64_t seed = 1;
  /// Use Table-I bus-count upper bounds for Step-2 edge weights instead of
  /// gs(s1)+gs(s2) (the paper's case study does: "we use the upper bound of
  /// the size of the pseudo measurements").
  bool edge_upper_bound = true;
  /// Partition objective forwarded to the graph partitioner: classic edge
  /// cut, or the convergence-aware boundary-coupling score (arXiv
  /// 2104.04320) that trades cut for fewer expected GN iterations.
  graph::PartitionObjective objective = graph::PartitionObjective::kEdgeCut;
  /// Partitioner worker threads (the result is bit-identical regardless).
  int partition_threads = 1;
};

/// A subsystem→cluster mapping plus the weighted graph it was computed on.
struct MappingResult {
  graph::Partition partition;
  graph::WeightedGraph weighted_graph;
  double noise_level = 0.0;
  double predicted_iterations = 0.0;
};

/// The paper's mapping method (§IV-B): formulate the decomposition as a
/// weighted graph, estimate weights from the time frame via Expressions
/// (1)–(5), and invoke the (re)partitioner before each DSE step.
class ClusterMapper {
 public:
  ClusterMapper(const decomp::Decomposition& decomposition,
                MappingOptions options, WeightModelParams params = {});

  /// Mapping before DSE Step 1: vertex weights from Expression (4), uniform
  /// edge weights (no Step-1 communication). When `previous` is given, the
  /// repartitioning routine refines it (low migration); otherwise a fresh
  /// partition is computed.
  [[nodiscard]] MappingResult map_before_step1(
      double time_frame_sec,
      const std::vector<graph::PartId>* previous = nullptr) const;

  /// Mapping before DSE Step 2: vertex weights updated, edge weights from
  /// Expression (5) (or the Table-I upper bound), repartitioned from the
  /// Step-1 assignment to minimize communication while staying balanced.
  [[nodiscard]] MappingResult map_before_step2(
      double time_frame_sec, const std::vector<graph::PartId>& step1) const;

  [[nodiscard]] const MappingOptions& options() const { return options_; }

  /// The initial weighted decomposition graph of Table I: vertex weight =
  /// bus count, edge weight = bus-count sum of the endpoints.
  [[nodiscard]] graph::WeightedGraph initial_graph() const;

 private:
  [[nodiscard]] graph::WeightedGraph weighted_graph(double noise,
                                                    bool step2_edges) const;

  const decomp::Decomposition* decomposition_;
  MappingOptions options_;
  WeightModelParams params_;
};

/// The "w/o mapping" baseline for Table II: group subsystems onto clusters
/// contiguously in index order (a business-policy style designation).
std::vector<graph::PartId> contiguous_mapping(int num_subsystems,
                                              int num_clusters);

/// Bus count per cluster under a subsystem→cluster assignment.
std::vector<int> cluster_bus_counts(const decomp::Decomposition& d,
                                    std::span<const graph::PartId> assignment,
                                    int num_clusters);

}  // namespace gridse::mapping
