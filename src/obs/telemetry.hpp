#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/debug_sync.hpp"
#include "obs/metrics.hpp"

namespace gridse::obs {

/// Cycle-boundary context stamped into every time-series record: which
/// cycle, which membership epoch, who participated, and what degraded.
/// Produced by DseSystem at the end of each run_cycle.
struct CycleStamp {
  std::int64_t cycle = 0;
  /// Supervisor remap epoch; -1 when recovery is disabled.
  std::int64_t epoch = -1;
  /// Cluster ids that hosted the cycle (index == comm rank).
  std::vector<int> participants;
  /// Subsystem ids whose Step 2 ran degraded this cycle.
  std::vector<int> degraded_subsystems;
  /// Cluster ids currently marked dead by the supervisor.
  std::vector<int> dead_clusters;
  double step1_seconds = 0.0;
  double exchange_seconds = 0.0;
  double step2_seconds = 0.0;
  double combine_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Sampler knobs, resolved by the caller (DseSystem resolves
/// runtime::TelemetryConfig against the environment and passes the result
/// here so src/obs stays free of config plumbing).
struct TelemetryOptions {
  /// Output directory; created on first use. Must be non-empty.
  std::string dir;
  /// Background wall-clock sampling period for long phases; 0 = off.
  std::chrono::milliseconds sample_period{0};
  /// Cycle records retained in the flight-recorder ring.
  std::size_t flight_ring = 16;
};

/// One degradation trigger noted between cycle boundaries; flushed into the
/// next flight-<cycle>.json.
struct FlightTrigger {
  std::string kind;  ///< cluster_dead | remap | rejoin | degraded_combine
  int cluster = -1;  ///< affected cluster, -1 when not cluster-scoped
  std::int64_t cycle = 0;
};

/// Per-cycle telemetry time series over a MetricsRegistry (see
/// docs/OBSERVABILITY.md, "Per-cycle telemetry & flight recorder").
///
/// on_cycle_end() snapshots the registry, computes what changed since the
/// previous cycle boundary — counter deltas, histogram count/sum/bucket
/// increments, span count/time increments, current gauge values — and
/// appends one `gridse-timeseries/1` JSONL record to `<dir>/timeseries.jsonl`
/// stamped with the CycleStamp. After every record the full registry state
/// is re-rendered to `<dir>/metrics.prom` (Prometheus text exposition,
/// atomically replaced) so an external scrape or operator `cat` reads a
/// consistent live view while the system runs.
///
/// An optional background thread emits `kind:"interval"` records every
/// sample_period measuring progress *within* the current cycle (deltas
/// against the last cycle boundary, baseline not advanced), so a stalled
/// phase is visible before the cycle completes. Cycle records therefore
/// keep the invariant: summing their deltas reproduces the end-of-run
/// aggregate exactly.
///
/// The flight recorder keeps the last `flight_ring` cycle records in memory.
/// note_trigger() (wired to supervisor death/remap/rejoin alerts and
/// degraded combines) marks the cycle; the next on_cycle_end (or the
/// destructor) force-flushes the ring, the triggers, and the trace buffer
/// into a self-contained `flight-<cycle>.json` post-mortem artifact.
///
/// Thread-safe. All file I/O happens under the sampler mutex, off the
/// metrics hot path (instrument updates never block on the sampler).
class TelemetrySampler {
 public:
  explicit TelemetrySampler(TelemetryOptions options,
                            MetricsRegistry& registry =
                                MetricsRegistry::global());
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Record the cycle that just finished and advance the delta baseline.
  /// Flushes a flight file when triggers were noted since the last call.
  void on_cycle_end(const CycleStamp& stamp);

  /// Note a degradation trigger (thread-safe, callable from supervisor
  /// alert callbacks mid-cycle). The flight flush itself is deferred to the
  /// next cycle boundary so the triggering cycle's record is in the ring.
  void note_trigger(const char* kind, int cluster, std::int64_t cycle);

  /// Flush any pending triggers immediately (also runs in the destructor —
  /// a trigger on the final cycle still produces its flight file).
  void flush_pending_flights();

  [[nodiscard]] std::size_t cycles_recorded() const;
  [[nodiscard]] std::size_t flights_written() const;
  [[nodiscard]] const std::string& dir() const { return options_.dir; }

 private:
  struct RingEntry {
    std::int64_t cycle = 0;
    std::vector<int> degraded_subsystems;
    std::vector<int> dead_clusters;
    std::string json;  ///< the rendered cycle record
  };

  /// Render one record ("cycle" or "interval") of cur minus baseline_.
  [[nodiscard]] std::string render_record_locked(
      const char* kind, const Snapshot& cur,
      const CycleStamp* stamp) GRIDSE_REQUIRES(mutex_);
  void write_line_locked(const std::string& line) GRIDSE_REQUIRES(mutex_);
  void write_exposition_locked(const Snapshot& cur) GRIDSE_REQUIRES(mutex_);
  void flush_pending_locked() GRIDSE_REQUIRES(mutex_);
  void sampler_loop();

  TelemetryOptions options_;
  MetricsRegistry& registry_;
  mutable analysis::Mutex mutex_{"TelemetrySampler::mutex_"};
  Snapshot baseline_ GRIDSE_GUARDED_BY(mutex_);
  std::ofstream out_ GRIDSE_GUARDED_BY(mutex_);
  std::deque<RingEntry> ring_ GRIDSE_GUARDED_BY(mutex_);
  std::vector<FlightTrigger> pending_ GRIDSE_GUARDED_BY(mutex_);
  std::int64_t last_cycle_ GRIDSE_GUARDED_BY(mutex_) = -1;
  std::size_t cycles_recorded_ GRIDSE_GUARDED_BY(mutex_) = 0;
  std::size_t flights_written_ GRIDSE_GUARDED_BY(mutex_) = 0;
  bool stop_ GRIDSE_GUARDED_BY(mutex_) = false;
  analysis::ConditionVariable stop_cv_;
  std::thread sampler_thread_;
};

/// Prometheus text exposition of a snapshot: counters, gauges (+ _max),
/// histograms (_bucket/_count/_sum), spans (as histograms + _total_seconds).
/// Metric names are sanitized to [a-zA-Z0-9_:] and prefixed `gridse_`.
[[nodiscard]] std::string exposition_text(const Snapshot& snapshot);

}  // namespace gridse::obs
