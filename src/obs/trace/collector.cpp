#include "obs/trace/collector.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "obs/trace/json_mini.hpp"
#include "util/error.hpp"

namespace gridse::obs::trace {
namespace {

constexpr int kMiddlewarePid = 1000;

std::string fmt_us(double us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

std::string fmt_ms(double ns) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", ns / 1e6);
  return buf;
}

/// Re-serialize a parsed value (used to embed event attrs into slice args;
/// numeric tokens pass through verbatim, so 64-bit ids stay exact).
std::string serialize(const jsonm::Value& v) {
  using Type = jsonm::Value::Type;
  switch (v.type) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return v.boolean ? "true" : "false";
    case Type::kNumber:
      return v.text;
    case Type::kString:
      return "\"" + jsonm::escape(v.text) + "\"";
    case Type::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += serialize(v.array[i]);
      }
      return out + "]";
    }
    case Type::kObject:
      break;
  }
  std::string out = "{";
  for (std::size_t i = 0; i < v.object.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += "\"" + jsonm::escape(v.object[i].first) +
           "\":" + serialize(v.object[i].second);
  }
  return out + "}";
}

std::uint64_t field_u64(const jsonm::Value& obj, const std::string& key) {
  const jsonm::Value* v = obj.find(key);
  return v != nullptr ? v->as_u64() : 0;
}

std::string field_str(const jsonm::Value& obj, const std::string& key) {
  const jsonm::Value* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->text : std::string{};
}

/// Subsystem track of a record: the leading name segment, or the leading
/// two for the medici/runtime layers whose second segment distinguishes the
/// component (client vs relay, inproc vs tcp).
std::string subsystem_of(const std::string& name) {
  const std::size_t first = name.find('.');
  if (first == std::string::npos) {
    return name;
  }
  const std::string head = name.substr(0, first);
  if (head != "medici" && head != "runtime") {
    return head;
  }
  const std::size_t second = name.find('.', first + 1);
  return second == std::string::npos ? name : name.substr(0, second);
}

/// DSE phase label of a span name ("" when it is not a phase span).
std::string phase_of(const std::string& name) {
  if (name.rfind("dse.step1", 0) == 0) {
    return "Step1";
  }
  if (name.rfind("dse.exchange", 0) == 0) {
    return "Exchange";
  }
  if (name.rfind("dse.step2", 0) == 0) {
    return "Step2";
  }
  if (name.rfind("dse.combine", 0) == 0) {
    return "Combine";
  }
  if (name == "dse.run") {
    return "Run";
  }
  return "";
}

int pid_of(int rank) { return rank >= 0 ? rank + 1 : kMiddlewarePid; }

/// Wall-clock nanoseconds of a record, aligned via the rank's anchor pair.
std::int64_t wall_ns(const RankTrace& rank, std::uint64_t steady_ns) {
  const auto rel = static_cast<std::int64_t>(steady_ns) -
                   static_cast<std::int64_t>(rank.anchor_steady_ns);
  return static_cast<std::int64_t>(rank.anchor_wall_ns) + rel;
}

}  // namespace

RankTrace load_rank_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw InvalidInput("cannot open trace file " + path);
  }
  RankTrace out;
  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const jsonm::Value v = jsonm::parse(line);
    if (!v.is_object()) {
      throw InvalidInput(path + ": non-object trace line");
    }
    if (!have_header) {
      if (field_str(v, "schema") != "gridse-trace/1") {
        throw InvalidInput(path + ": missing gridse-trace/1 schema header");
      }
      const jsonm::Value* rank = v.find("rank");
      out.rank = rank != nullptr ? static_cast<int>(rank->number) : -1;
      out.trace_hi = field_str(v, "trace_hi");
      out.trace_lo = field_str(v, "trace_lo");
      out.anchor_steady_ns = field_u64(v, "anchor_steady_ns");
      out.anchor_wall_ns = field_u64(v, "anchor_wall_ns");
      have_header = true;
      continue;
    }
    CollectedRecord rec;
    rec.kind = field_str(v, "kind");
    rec.name = field_str(v, "name");
    if (rec.kind.empty() || rec.name.empty()) {
      throw InvalidInput(path + ": record line without kind/name");
    }
    rec.tid = static_cast<std::uint32_t>(field_u64(v, "tid"));
    rec.span_id = field_u64(v, "span");
    rec.parent_id = field_u64(v, "parent");
    rec.flow_id = field_u64(v, "flow");
    rec.clock = field_u64(v, "clock");
    rec.ts_ns = field_u64(v, "ts_ns");
    rec.dur_ns = field_u64(v, "dur_ns");
    if (const jsonm::Value* attrs = v.find("attrs"); attrs != nullptr) {
      rec.attrs_json = serialize(*attrs);
    }
    out.records.push_back(std::move(rec));
  }
  if (!have_header) {
    throw InvalidInput(path + ": empty trace file");
  }
  return out;
}

std::string merge_to_chrome_json(const std::vector<RankTrace>& ranks) {
  // Global time base: the earliest aligned wall timestamp, so the merged
  // trace starts near t=0 regardless of process uptimes.
  std::int64_t base = 0;
  bool have_base = false;
  for (const RankTrace& rank : ranks) {
    for (const CollectedRecord& rec : rank.records) {
      const std::int64_t w = wall_ns(rank, rec.ts_ns);
      if (!have_base || w < base) {
        base = w;
        have_base = true;
      }
    }
  }

  // Stable (pid, subsystem, writer-tid) -> output tid assignment; one
  // Perfetto track per subsystem (and per real thread within it).
  std::map<std::pair<int, std::string>, int> track_tid;
  std::map<std::pair<int, std::string>, std::string> track_name;
  std::map<int, int> next_tid;
  const auto track_of = [&](int pid, const std::string& subsystem,
                            std::uint32_t tid) {
    const std::string key = subsystem + "#" + std::to_string(tid);
    const auto it = track_tid.find({pid, key});
    if (it != track_tid.end()) {
      return it->second;
    }
    const int assigned = ++next_tid[pid];
    track_tid[{pid, key}] = assigned;
    track_name[{pid, key}] = subsystem;
    return assigned;
  };

  std::vector<std::string> events;
  for (const RankTrace& rank : ranks) {
    const int pid = pid_of(rank.rank);
    for (const CollectedRecord& rec : rank.records) {
      const std::string subsystem = subsystem_of(rec.name);
      const int tid = track_of(pid, subsystem, rec.tid);
      const double ts_us =
          static_cast<double>(wall_ns(rank, rec.ts_ns) - base) / 1e3;
      const double dur_us = static_cast<double>(rec.dur_ns) / 1e3;
      const std::string pos = ",\"pid\":" + std::to_string(pid) +
                              ",\"tid\":" + std::to_string(tid);
      if (rec.kind == "event") {
        std::string e = "{\"name\":\"" + jsonm::escape(rec.name) +
                        "\",\"ph\":\"i\",\"s\":\"t\",\"cat\":\"" + subsystem +
                        "\",\"ts\":" + fmt_us(ts_us) + pos;
        if (!rec.attrs_json.empty()) {
          e += ",\"args\":" + rec.attrs_json;
        }
        events.push_back(e + "}");
        continue;
      }
      std::string args = "\"span\":" + std::to_string(rec.span_id) +
                         ",\"parent\":" + std::to_string(rec.parent_id) +
                         ",\"clock\":" + std::to_string(rec.clock);
      const std::string phase = phase_of(rec.name);
      if (!phase.empty()) {
        args += ",\"phase\":\"" + phase + "\"";
      }
      events.push_back("{\"name\":\"" + jsonm::escape(rec.name) +
                       "\",\"ph\":\"X\",\"cat\":\"" + subsystem +
                       "\",\"ts\":" + fmt_us(ts_us) +
                       ",\"dur\":" + fmt_us(dur_us) + pos + ",\"args\":{" +
                       args + "}}");
      if (rec.flow_id != 0) {
        // Flow triplet: s at the send, t at every relay hop, f (binding
        // enclosing, bp:"e") at the consume — Perfetto draws the arrows.
        const std::string id = ",\"id\":" + std::to_string(rec.flow_id);
        const std::string flow_common =
            "{\"name\":\"exchange\",\"cat\":\"exchange\"" + id;
        if (rec.kind == "send") {
          events.push_back(flow_common + ",\"ph\":\"s\",\"ts\":" +
                           fmt_us(ts_us) + pos + "}");
        } else if (rec.kind == "relay") {
          events.push_back(flow_common + ",\"ph\":\"t\",\"ts\":" +
                           fmt_us(ts_us + dur_us) + pos + "}");
        } else if (rec.kind == "consume") {
          events.push_back(flow_common + ",\"ph\":\"f\",\"bp\":\"e\",\"ts\":" +
                           fmt_us(ts_us + dur_us) + pos + "}");
        }
      }
    }
  }

  // Metadata: process and track names, ranks first, middleware last.
  std::vector<std::string> metadata;
  std::set<int> pids;
  for (const RankTrace& rank : ranks) {
    const int pid = pid_of(rank.rank);
    if (!pids.insert(pid).second) {
      continue;
    }
    const std::string pname = rank.rank >= 0
                                  ? "rank " + std::to_string(rank.rank)
                                  : "middleware";
    metadata.push_back(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
        std::to_string(pid) + ",\"args\":{\"name\":\"" + pname + "\"}}");
    metadata.push_back(
        "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" +
        std::to_string(pid) + ",\"args\":{\"sort_index\":" +
        std::to_string(pid) + "}}");
  }
  for (const auto& [key, tid] : track_tid) {
    metadata.push_back(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
        std::to_string(key.first) + ",\"tid\":" + std::to_string(tid) +
        ",\"args\":{\"name\":\"" + jsonm::escape(track_name[key]) + "\"}}");
  }

  std::string trace_id;
  for (const RankTrace& rank : ranks) {
    if (!rank.trace_hi.empty()) {
      trace_id = rank.trace_hi + rank.trace_lo;
      break;
    }
  }

  std::string out = "{\n\"displayTimeUnit\":\"ms\",\n";
  out += "\"otherData\":{\"schema\":\"gridse-perfetto/1\"";
  if (!trace_id.empty()) {
    out += ",\"trace_id\":\"" + jsonm::escape(trace_id) + "\"";
  }
  out += "},\n\"traceEvents\":[";
  bool first = true;
  for (const auto* list : {&metadata, &events}) {
    for (const std::string& e : *list) {
      out += first ? "\n" : ",\n";
      out += e;
      first = false;
    }
  }
  out += "\n]}\n";
  return out;
}

std::vector<std::string> validate_chrome_trace(std::string_view json_text) {
  std::vector<std::string> problems;
  jsonm::Value doc;
  try {
    doc = jsonm::parse(json_text);
  } catch (const InvalidInput& e) {
    problems.emplace_back(e.what());
    return problems;
  }
  if (!doc.is_object()) {
    problems.emplace_back("top-level value is not an object");
    return problems;
  }
  const jsonm::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    problems.emplace_back("missing traceEvents array");
    return problems;
  }
  std::set<std::string> flow_starts;
  std::vector<std::pair<std::size_t, std::string>> flow_refs;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const jsonm::Value& e = events->array[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (!e.is_object()) {
      problems.push_back(at + ": not an object");
      continue;
    }
    const std::string ph = field_str(e, "ph");
    if (ph.empty()) {
      problems.push_back(at + ": missing ph");
      continue;
    }
    if (ph == "M") {
      continue;  // metadata needs no timestamp
    }
    const jsonm::Value* ts = e.find("ts");
    if (ts == nullptr || !ts->is_number()) {
      problems.push_back(at + ": missing numeric ts");
    }
    for (const char* key : {"pid", "tid"}) {
      const jsonm::Value* v = e.find(key);
      if (v == nullptr || !v->is_number()) {
        problems.push_back(at + ": missing numeric " + std::string(key));
      }
    }
    if (ph == "X") {
      if (field_str(e, "name").empty()) {
        problems.push_back(at + ": slice without a name");
      }
      const jsonm::Value* dur = e.find("dur");
      if (dur == nullptr || !dur->is_number()) {
        problems.push_back(at + ": slice without numeric dur");
      } else if (dur->number < 0) {
        problems.push_back(at + ": negative dur");
      }
    } else if (ph == "s" || ph == "t" || ph == "f") {
      const jsonm::Value* id = e.find("id");
      if (id == nullptr || (!id->is_number() && !id->is_string())) {
        problems.push_back(at + ": flow event without id");
        continue;
      }
      const std::string& key = id->text;  // raw token for numbers too
      if (ph == "s") {
        flow_starts.insert(key);
      } else {
        flow_refs.emplace_back(i, key);
      }
    } else if (ph != "i") {
      problems.push_back(at + ": unexpected ph '" + ph + "'");
    }
  }
  for (const auto& [index, id] : flow_refs) {
    if (flow_starts.count(id) == 0) {
      problems.push_back("traceEvents[" + std::to_string(index) +
                         "]: flow id " + id + " has no start event");
    }
  }
  return problems;
}

std::string critical_path_summary(const std::vector<RankTrace>& ranks) {
  const std::vector<std::string> phases = {"Step1", "Exchange", "Step2",
                                           "Combine"};
  std::map<std::string, std::map<int, std::uint64_t>> phase_ns;
  struct WaitStats {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  std::map<int, WaitStats> waits;
  std::set<std::uint64_t> sends;
  std::set<std::uint64_t> consumes;
  std::uint64_t relays = 0;
  for (const RankTrace& rank : ranks) {
    for (const CollectedRecord& rec : rank.records) {
      if (rec.kind == "span") {
        const std::string phase = phase_of(rec.name);
        if (!phase.empty() && phase != "Run") {
          phase_ns[phase][rank.rank] += rec.dur_ns;
        }
      } else if (rec.kind == "send") {
        sends.insert(rec.flow_id);
      } else if (rec.kind == "relay") {
        ++relays;
      } else if (rec.kind == "consume") {
        consumes.insert(rec.flow_id);
        WaitStats& w = waits[rank.rank];
        ++w.count;
        w.total_ns += rec.dur_ns;
        w.max_ns = std::max(w.max_ns, rec.dur_ns);
      }
    }
  }

  std::ostringstream out;
  out << "critical path (summed span time per phase, slowest rank last):\n";
  for (const std::string& phase : phases) {
    const auto it = phase_ns.find(phase);
    if (it == phase_ns.end()) {
      continue;
    }
    int slowest = -1;
    std::uint64_t slowest_ns = 0;
    out << "  " << phase << ":";
    for (const auto& [rank, ns] : it->second) {
      out << " rank" << rank << "=" << fmt_ms(static_cast<double>(ns))
          << "ms";
      if (ns >= slowest_ns) {
        slowest_ns = ns;
        slowest = rank;
      }
    }
    out << "  -> slowest rank " << slowest << " ("
        << fmt_ms(static_cast<double>(slowest_ns)) << " ms)\n";
  }
  out << "exchange fan-in waits (receive-side blocking):\n";
  for (const auto& [rank, w] : waits) {
    out << "  rank " << rank << ": " << w.count << " messages, total "
        << fmt_ms(static_cast<double>(w.total_ns)) << " ms, max "
        << fmt_ms(static_cast<double>(w.max_ns)) << " ms\n";
  }
  std::uint64_t unmatched = 0;
  for (const std::uint64_t id : consumes) {
    if (sends.count(id) == 0) {
      ++unmatched;
    }
  }
  out << "flows: " << sends.size() << " sends, " << consumes.size()
      << " consumed, " << relays << " relay hops, " << unmatched
      << " consumes without a recorded send\n";
  return out.str();
}

}  // namespace gridse::obs::trace
