#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/trace_context.hpp"

namespace gridse::obs::trace {

/// What a TraceRecord describes. Spans are ordinary timed scopes; send,
/// consume, and relay records additionally carry a flow id that stitches the
/// per-rank timelines together across process/thread boundaries (Perfetto
/// flow events).
enum class RecordKind : std::uint8_t { kSpan, kSend, kConsume, kRelay };

/// One completed span (or message hop) as stored in the trace ring buffer.
/// `name` must be a string literal — records outlive the scope that pushed
/// them and are only rendered at flush time.
struct TraceRecord {
  const char* name = nullptr;
  RecordKind kind = RecordKind::kSpan;
  int rank = -1;               ///< owning DSE rank (-1 = middleware/unknown)
  std::uint32_t tid = 0;       ///< small per-thread ordinal, process-wide
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t flow_id = 0;   ///< nonzero links send -> relay -> consume
  std::uint64_t clock = 0;     ///< Lamport clock when the record was made
  std::uint64_t start_ns = 0;  ///< steady-clock nanoseconds
  std::uint64_t dur_ns = 0;
};

/// Fixed-capacity lock-free ring of completed trace records. Writers claim
/// slots with one fetch_add; once the ring wraps, the oldest records are
/// overwritten (drop-oldest) and the `trace.dropped` counter is bumped. A
/// per-slot busy flag guards against a writer racing the drain on the same
/// wrapped slot.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);
  ~TraceBuffer();

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void push(const TraceRecord& record);

  /// Copy out the retained records (oldest first) and empty the ring. Must
  /// not race concurrent push() of more than `capacity` records; callers
  /// drain at run quiescence (flush) or from tests.
  [[nodiscard]] std::vector<TraceRecord> drain();

  /// Total records ever pushed (including dropped ones).
  [[nodiscard]] std::uint64_t total_pushed() const;
  /// Records lost to ring wrap since construction or the last reset().
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Discard everything and reallocate with a new capacity (tests).
  void reset(std::size_t capacity);

 private:
  struct Slot;
  void allocate(std::size_t capacity);

  std::size_t capacity_;
  Slot* slots_ = nullptr;
  std::atomic<std::uint64_t> next_{0};
};

/// Process-wide tracing state: the span-id allocator, the Lamport clock, the
/// 128-bit trace id of the current run, the steady/wall clock anchor pair
/// used to align per-rank files at merge time, and the record ring.
class Tracer {
 public:
  Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& global();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Allocate a fresh span id (never 0).
  std::uint64_t next_id() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Lamport clock: tick for a local event, observe for a received stamp.
  std::uint64_t tick_clock() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void observe_clock(std::uint64_t remote);
  [[nodiscard]] std::uint64_t clock() const {
    return clock_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t trace_hi() const { return trace_hi_; }
  [[nodiscard]] std::uint64_t trace_lo() const { return trace_lo_; }
  [[nodiscard]] std::uint64_t anchor_steady_ns() const {
    return anchor_steady_ns_;
  }
  [[nodiscard]] std::uint64_t anchor_wall_ns() const {
    return anchor_wall_ns_;
  }

  TraceBuffer& buffer() { return buffer_; }

  /// Discard all records, re-anchor the clocks, and draw a fresh trace id.
  /// Not safe against concurrent recording; call at quiescence (tests, or
  /// between runs).
  void reset(std::size_t capacity = TraceBuffer::kDefaultCapacity);

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_span_id_{1};
  std::atomic<std::uint64_t> clock_{0};
  std::uint64_t trace_hi_ = 0;
  std::uint64_t trace_lo_ = 0;
  std::uint64_t anchor_steady_ns_ = 0;
  std::uint64_t anchor_wall_ns_ = 0;
  TraceBuffer buffer_;
};

/// Current steady-clock time in nanoseconds (the record timebase).
[[nodiscard]] std::uint64_t steady_now_ns();

/// Rank attribution: worlds tag their per-rank threads so records (and
/// events) land on the right timeline; relay/middleware threads keep the
/// default -1 and are grouped under a synthetic "middleware" process.
void set_thread_rank(int rank);
[[nodiscard]] int thread_rank();
/// Small process-wide ordinal of the calling thread (stable per thread).
[[nodiscard]] std::uint32_t thread_ordinal();

/// Transport send hook: mint the context to put on the wire (fresh span id,
/// parent = innermost active span, ticked clock) and record the send. The
/// returned context is all-zero when tracing is disabled.
runtime::TraceContext on_send(const char* name);

/// Transport receive hook: record the consume of a message carrying `ctx`.
/// The record's parent is the sender's send span and its duration is the
/// receiver-side blocking time, so fan-in waits show up as slices.
void on_consume(const char* name, const runtime::TraceContext& ctx,
                double wait_seconds);

/// Relay hook: a store-and-forward hop that preserved `ctx` on the wire.
void on_relay(const char* name, const runtime::TraceContext& ctx,
              double forward_seconds);

/// ScopedSpan destructor hook: record a completed span.
void on_span_end(const char* name, std::uint64_t span_id,
                 std::uint64_t parent_id,
                 std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end);

/// Everything write_trace_files() put on disk.
struct FlushStats {
  std::size_t records = 0;  ///< span/send/consume/relay records written
  std::size_t events = 0;   ///< event-log entries written
  std::vector<std::string> files;
};

/// Drain the trace buffer and the event log into `dir`: one
/// `trace_rank_<R>.jsonl` per rank seen (schema gridse-trace/1; the header
/// line carries the trace id and the steady/wall anchor pair) plus
/// `events.jsonl` with every discrete event. Creates `dir` if needed.
/// Writes nothing when there is nothing to write (OBS=OFF runs).
FlushStats write_trace_files(const std::string& dir);

}  // namespace gridse::obs::trace
