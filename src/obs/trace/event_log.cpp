#include "obs/trace/event_log.hpp"

#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace/json_mini.hpp"
#include "obs/trace/trace.hpp"

namespace gridse::obs {
namespace {

std::string fmt_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

}  // namespace

EventAttr event_attr(const char* key, double value) {
  return {key, fmt_double(value)};
}

EventAttr event_attr(const char* key, bool value) {
  return {key, value ? "true" : "false"};
}

EventAttr event_attr(const char* key, const char* value) {
  return {key, "\"" + jsonm::escape(value) + "\""};
}

EventAttr event_attr(const char* key, const std::string& value) {
  return {key, "\"" + jsonm::escape(value) + "\""};
}

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

void EventLog::emit_impl(const char* name, std::vector<EventAttr> attrs) {
  if (!trace::Tracer::global().enabled()) {
    return;
  }
  Event event{name, trace::thread_rank(), trace::thread_ordinal(),
              trace::steady_now_ns(), std::move(attrs)};
  analysis::LockGuard lock(mutex_);
  if (events_.size() >= capacity_) {
    events_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
    static Counter& dropped_counter =
        MetricsRegistry::global().counter("trace.events.dropped");
    dropped_counter.add(1);
  }
  events_.push_back(std::move(event));
}

std::vector<Event> EventLog::drain() {
  analysis::LockGuard lock(mutex_);
  std::vector<Event> out(events_.begin(), events_.end());
  events_.clear();
  return out;
}

void EventLog::reset(std::size_t capacity) {
  analysis::LockGuard lock(mutex_);
  events_.clear();
  capacity_ = capacity;
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace gridse::obs
