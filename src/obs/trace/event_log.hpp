#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "analysis/debug_sync.hpp"

namespace gridse::obs {

/// One rendered event attribute: the value is already JSON (numbers and
/// booleans unquoted, strings escaped and quoted) so flushing is a string
/// join, not a type dispatch.
struct EventAttr {
  const char* key;
  std::string value;
};

[[nodiscard]] EventAttr event_attr(const char* key, double value);
[[nodiscard]] EventAttr event_attr(const char* key, bool value);
[[nodiscard]] EventAttr event_attr(const char* key, const char* value);
[[nodiscard]] EventAttr event_attr(const char* key, const std::string& value);
template <typename T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
[[nodiscard]] EventAttr event_attr(const char* key, T value) {
  return {key, std::to_string(value)};
}

/// A discrete occurrence spans can't represent: barrier entry/exit, a send
/// retry, a bad-data rejection, a mapper repartition decision. Stamped with
/// the emitting thread's rank/ordinal and a steady-clock timestamp so the
/// collector can place it on the right timeline.
struct Event {
  const char* name;
  int rank;
  std::uint32_t tid;
  std::uint64_t ts_ns;
  std::vector<EventAttr> attrs;
};

/// Process-wide structured event log behind the OBS_EVENT macro. Bounded:
/// once full, the oldest events are dropped (counted in `dropped()` and the
/// `trace.events.dropped` metric). Drained into events.jsonl by
/// trace::write_trace_files().
class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 16384;

  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  static EventLog& global();

  /// Record `name` with zero or more event_attr(...) attributes. No-op when
  /// the global Tracer is disabled.
  template <typename... Attrs>
  void emit(const char* name, Attrs&&... attrs) {
    std::vector<EventAttr> list;
    list.reserve(sizeof...(attrs));
    (list.push_back(std::forward<Attrs>(attrs)), ...);
    emit_impl(name, std::move(list));
  }

  /// Copy out everything recorded so far (oldest first) and empty the log.
  [[nodiscard]] std::vector<Event> drain();

  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Discard all events and set a new capacity (tests).
  void reset(std::size_t capacity = kDefaultCapacity);

 private:
  void emit_impl(const char* name, std::vector<EventAttr> attrs);

  mutable analysis::Mutex mutex_{"EventLog::mutex_"};
  std::deque<Event> events_ GRIDSE_GUARDED_BY(mutex_);
  std::size_t capacity_ GRIDSE_GUARDED_BY(mutex_) = kDefaultCapacity;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace gridse::obs
