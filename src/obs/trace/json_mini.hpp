#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gridse::obs::jsonm {

/// Minimal JSON document model + strict parser, shared by the trace
/// collector, the gridse_trace tool, and their tests. Numbers keep their
/// source text alongside the double so 64-bit ids round-trip exactly.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;  ///< string value, or the raw numeric token
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(const std::string& key) const;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }

  /// Exact unsigned 64-bit read of a numeric token (strtoull on the raw
  /// text); 0 for non-numbers or negative values.
  [[nodiscard]] std::uint64_t as_u64() const;
};

/// Parse one JSON document. Throws gridse::InvalidInput on malformed input
/// or trailing garbage.
[[nodiscard]] Value parse(std::string_view input);

/// JSON string escaping (shared by the trace writers).
[[nodiscard]] std::string escape(std::string_view raw);

}  // namespace gridse::obs::jsonm
