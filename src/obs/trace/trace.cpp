#include "obs/trace/trace.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace/event_log.hpp"
#include "obs/trace/json_mini.hpp"
#include "util/error.hpp"

namespace gridse::obs::trace {
namespace {

thread_local int t_rank = -1;
thread_local std::uint32_t t_ordinal = 0;

std::uint64_t to_ns(std::chrono::steady_clock::duration d) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

std::uint64_t seconds_to_ns(double seconds) {
  if (seconds <= 0.0) {
    return 0;
  }
  return static_cast<std::uint64_t>(seconds * 1e9);
}

const char* kind_name(RecordKind kind) {
  switch (kind) {
    case RecordKind::kSend:
      return "send";
    case RecordKind::kConsume:
      return "consume";
    case RecordKind::kRelay:
      return "relay";
    case RecordKind::kSpan:
      break;
  }
  return "span";
}

std::string hex64(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

void bump_dropped_counter() {
  static Counter& dropped = MetricsRegistry::global().counter("trace.dropped");
  dropped.add(1);
}

}  // namespace

std::uint64_t steady_now_ns() {
  return to_ns(std::chrono::steady_clock::now().time_since_epoch());
}

// ---- TraceBuffer -----------------------------------------------------------

/// One ring slot: `stamp` is the push index + 1 (0 = never written), so the
/// drain can tell a completed write from a slot an in-flight writer still
/// owns; `busy` makes the record copy itself atomic wrt a wrapping writer.
struct TraceBuffer::Slot {
  std::atomic<std::uint64_t> stamp{0};
  std::atomic_flag busy;
  TraceRecord record;
};

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  allocate(capacity);
}

TraceBuffer::~TraceBuffer() { delete[] slots_; }

void TraceBuffer::allocate(std::size_t capacity) {
  if (capacity == 0) {
    throw InvalidInput("trace buffer capacity must be positive");
  }
  capacity_ = capacity;
  slots_ = new Slot[capacity];
}

void TraceBuffer::push(const TraceRecord& record) {
  const std::uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx % capacity_];
  while (slot.busy.test_and_set(std::memory_order_acquire)) {
  }
  slot.record = record;
  slot.stamp.store(idx + 1, std::memory_order_relaxed);
  slot.busy.clear(std::memory_order_release);
  if (idx >= capacity_) {
    bump_dropped_counter();
  }
}

std::vector<TraceRecord> TraceBuffer::drain() {
  const std::uint64_t total = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = total > capacity_ ? total - capacity_ : 0;
  std::vector<TraceRecord> out;
  out.reserve(static_cast<std::size_t>(total - begin));
  for (std::uint64_t idx = begin; idx < total; ++idx) {
    Slot& slot = slots_[idx % capacity_];
    while (slot.busy.test_and_set(std::memory_order_acquire)) {
    }
    if (slot.stamp.load(std::memory_order_relaxed) == idx + 1) {
      out.push_back(slot.record);
    }
    slot.stamp.store(0, std::memory_order_relaxed);
    slot.busy.clear(std::memory_order_release);
  }
  next_.store(0, std::memory_order_release);
  return out;
}

std::uint64_t TraceBuffer::total_pushed() const {
  return next_.load(std::memory_order_relaxed);
}

std::uint64_t TraceBuffer::dropped() const {
  const std::uint64_t total = total_pushed();
  return total > capacity_ ? total - capacity_ : 0;
}

void TraceBuffer::reset(std::size_t capacity) {
  delete[] slots_;
  slots_ = nullptr;
  allocate(capacity);
  next_.store(0, std::memory_order_release);
}

// ---- Tracer ----------------------------------------------------------------

Tracer::Tracer() { reset(TraceBuffer::kDefaultCapacity); }

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::observe_clock(std::uint64_t remote) {
  std::uint64_t seen = clock_.load(std::memory_order_relaxed);
  while (seen < remote && !clock_.compare_exchange_weak(
                              seen, remote, std::memory_order_relaxed)) {
  }
  clock_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::reset(std::size_t capacity) {
  buffer_.reset(capacity);
  next_span_id_.store(1, std::memory_order_relaxed);
  clock_.store(0, std::memory_order_relaxed);
  // The 128-bit trace id only needs process-level uniqueness; a random
  // device seed keeps concurrent runs on the same host distinguishable.
  std::mt19937_64 rng(std::random_device{}());
  trace_hi_ = rng();
  trace_lo_ = rng() | 1u;  // never all-zero: zero means "no context"
  anchor_steady_ns_ = steady_now_ns();
  anchor_wall_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// ---- thread attribution ----------------------------------------------------

void set_thread_rank(int rank) { t_rank = rank; }

int thread_rank() { return t_rank; }

std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{1};
  if (t_ordinal == 0) {
    t_ordinal = next.fetch_add(1, std::memory_order_relaxed);
  }
  return t_ordinal;
}

// ---- transport + span hooks ------------------------------------------------

runtime::TraceContext on_send(const char* name) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) {
    return {};
  }
  runtime::TraceContext ctx;
  ctx.trace_hi = tracer.trace_hi();
  ctx.trace_lo = tracer.trace_lo();
  ctx.span_id = tracer.next_id();
  ctx.parent_id = ScopedSpan::current_id();
  ctx.clock = tracer.tick_clock();
  TraceRecord rec;
  rec.name = name;
  rec.kind = RecordKind::kSend;
  rec.rank = thread_rank();
  rec.tid = thread_ordinal();
  rec.span_id = ctx.span_id;
  rec.parent_id = ctx.parent_id;
  rec.flow_id = ctx.span_id;
  rec.clock = ctx.clock;
  rec.start_ns = steady_now_ns();
  rec.dur_ns = 0;
  tracer.buffer().push(rec);
  return ctx;
}

namespace {

void record_hop(RecordKind kind, const char* name,
                const runtime::TraceContext& ctx, double duration_seconds) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled() || !ctx.valid()) {
    return;
  }
  tracer.observe_clock(ctx.clock);
  TraceRecord rec;
  rec.name = name;
  rec.kind = kind;
  rec.rank = thread_rank();
  rec.tid = thread_ordinal();
  rec.span_id = tracer.next_id();
  rec.parent_id = ctx.span_id;
  rec.flow_id = ctx.span_id;
  rec.clock = tracer.clock();
  const std::uint64_t dur_ns = seconds_to_ns(duration_seconds);
  const std::uint64_t now = steady_now_ns();
  rec.start_ns = now > dur_ns ? now - dur_ns : 0;
  rec.dur_ns = dur_ns;
  tracer.buffer().push(rec);
}

}  // namespace

void on_consume(const char* name, const runtime::TraceContext& ctx,
                double wait_seconds) {
  record_hop(RecordKind::kConsume, name, ctx, wait_seconds);
}

void on_relay(const char* name, const runtime::TraceContext& ctx,
              double forward_seconds) {
  record_hop(RecordKind::kRelay, name, ctx, forward_seconds);
}

void on_span_end(const char* name, std::uint64_t span_id,
                 std::uint64_t parent_id,
                 std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) {
    return;
  }
  TraceRecord rec;
  rec.name = name;
  rec.kind = RecordKind::kSpan;
  rec.rank = thread_rank();
  rec.tid = thread_ordinal();
  rec.span_id = span_id;
  rec.parent_id = parent_id;
  rec.flow_id = 0;
  rec.clock = tracer.clock();
  rec.start_ns = to_ns(start.time_since_epoch());
  rec.dur_ns = to_ns(end - start);
  tracer.buffer().push(rec);
}

// ---- flush -----------------------------------------------------------------

FlushStats write_trace_files(const std::string& dir) {
  Tracer& tracer = Tracer::global();
  const std::vector<TraceRecord> records = tracer.buffer().drain();
  const std::vector<Event> events = EventLog::global().drain();
  FlushStats stats;
  if (records.empty() && events.empty()) {
    return stats;
  }
  std::filesystem::create_directories(dir);

  std::map<int, std::vector<const TraceRecord*>> by_rank;
  for (const TraceRecord& rec : records) {
    by_rank[rec.rank].push_back(&rec);
  }
  std::map<int, std::vector<const Event*>> events_by_rank;
  for (const Event& ev : events) {
    events_by_rank[ev.rank].push_back(&ev);
    by_rank.try_emplace(ev.rank);  // event-only ranks still get a file
  }

  const auto render_attrs = [](const std::vector<EventAttr>& attrs) {
    std::string out = "{";
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += "\"" + jsonm::escape(attrs[i].key) + "\":" + attrs[i].value;
    }
    out += "}";
    return out;
  };

  for (const auto& [rank, recs] : by_rank) {
    const std::string name =
        rank >= 0 ? "trace_rank_" + std::to_string(rank) + ".jsonl"
                  : "trace_rank_mw.jsonl";
    const std::string path = dir + "/" + name;
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      throw InvalidInput("cannot open trace file " + path);
    }
    out << "{\"schema\":\"gridse-trace/1\",\"rank\":" << rank
        << ",\"trace_hi\":\"" << hex64(tracer.trace_hi())
        << "\",\"trace_lo\":\"" << hex64(tracer.trace_lo())
        << "\",\"anchor_steady_ns\":" << tracer.anchor_steady_ns()
        << ",\"anchor_wall_ns\":" << tracer.anchor_wall_ns() << "}\n";
    for (const TraceRecord* rec : recs) {
      out << "{\"kind\":\"" << kind_name(rec->kind) << "\",\"name\":\""
          << jsonm::escape(rec->name) << "\",\"tid\":" << rec->tid
          << ",\"span\":" << rec->span_id << ",\"parent\":" << rec->parent_id
          << ",\"flow\":" << rec->flow_id << ",\"clock\":" << rec->clock
          << ",\"ts_ns\":" << rec->start_ns << ",\"dur_ns\":" << rec->dur_ns
          << "}\n";
      ++stats.records;
    }
    if (const auto it = events_by_rank.find(rank);
        it != events_by_rank.end()) {
      for (const Event* ev : it->second) {
        out << "{\"kind\":\"event\",\"name\":\"" << jsonm::escape(ev->name)
            << "\",\"tid\":" << ev->tid << ",\"ts_ns\":" << ev->ts_ns
            << ",\"attrs\":" << render_attrs(ev->attrs) << "}\n";
      }
    }
    stats.files.push_back(path);
  }

  if (!events.empty()) {
    const std::string path = dir + "/events.jsonl";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      throw InvalidInput("cannot open event log " + path);
    }
    for (const Event& ev : events) {
      out << "{\"name\":\"" << jsonm::escape(ev.name)
          << "\",\"rank\":" << ev.rank << ",\"tid\":" << ev.tid
          << ",\"ts_ns\":" << ev.ts_ns << ",\"attrs\":" << render_attrs(
                                              ev.attrs)
          << "}\n";
      ++stats.events;
    }
    stats.files.push_back(path);
  }
  return stats;
}

}  // namespace gridse::obs::trace
