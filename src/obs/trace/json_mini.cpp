#include "obs/trace/json_mini.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace gridse::obs::jsonm {
namespace {

/// Recursive-descent parser over a string_view; positions only move
/// forward, errors carry the offset for debuggability.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != input_.size()) {
      fail("trailing characters after document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidInput("json: " + what + " at offset " +
                       std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < input_.size() &&
           (input_[pos_] == ' ' || input_[pos_] == '\t' ||
            input_[pos_] == '\n' || input_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= input_.size()) {
      fail("unexpected end of input");
    }
    return input_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (input_.substr(pos_, lit.size()) != lit) {
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.text = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = c == 't';
        if (!consume_literal(c == 't' ? "true" : "false")) {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) {
          fail("bad literal");
        }
        return Value{};
      }
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') {
        fail("expected object key");
      }
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') {
        return v;
      }
      if (c != ',') {
        fail("expected ',' or '}'");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') {
        return v;
      }
      if (c != ',') {
        fail("expected ',' or ']'");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= input_.size()) {
        break;
      }
      const char esc = input_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > input_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = input_[pos_++];
            code <<= 4u;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The writers only escape ASCII control characters; anything
          // else is passed through as a replacement byte.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          fail("bad escape character");
      }
    }
    fail("unterminated string");
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < input_.size() && input_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) != 0 ||
            input_[pos_] == '.' || input_[pos_] == 'e' ||
            input_[pos_] == 'E' || input_[pos_] == '+' ||
            input_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
    }
    Value v;
    v.type = Value::Type::kNumber;
    v.text = std::string(input_.substr(start, pos_ - start));
    v.number = std::strtod(v.text.c_str(), nullptr);
    return v;
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::uint64_t Value::as_u64() const {
  if (type != Type::kNumber || text.empty() || text[0] == '-') {
    return 0;
  }
  return std::strtoull(text.c_str(), nullptr, 10);
}

Value parse(std::string_view input) { return Parser(input).run(); }

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace gridse::obs::jsonm
