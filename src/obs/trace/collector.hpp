#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gridse::obs::trace {

/// One parsed line of a per-rank trace file (schema gridse-trace/1).
struct CollectedRecord {
  std::string kind;  ///< span | send | consume | relay | event
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t flow_id = 0;
  std::uint64_t clock = 0;
  std::uint64_t ts_ns = 0;  ///< steady-clock ns of the writing process
  std::uint64_t dur_ns = 0;
  std::string attrs_json;  ///< raw attrs object for events ("" when none)
};

/// One rank's trace file: the header metadata plus every record.
struct RankTrace {
  int rank = -1;
  std::string trace_hi;  ///< hex string, e.g. "0x0123..."
  std::string trace_lo;
  std::uint64_t anchor_steady_ns = 0;
  std::uint64_t anchor_wall_ns = 0;
  std::vector<CollectedRecord> records;
};

/// Parse one trace_rank_*.jsonl file. Throws gridse::InvalidInput on a
/// missing file, a bad schema header, or a malformed record line.
[[nodiscard]] RankTrace load_rank_trace(const std::string& path);

/// Merge per-rank traces into one Chrome/Perfetto trace JSON document: one
/// process per rank (plus a synthetic "middleware" process for rank -1),
/// one track per subsystem, complete ("X") slices for spans and message
/// hops, flow events (s/t/f) stitching each send to its relay hops and
/// final consume, instant events for the event log, and DSE phase labels
/// (Step1/Exchange/Step2/Combine) in the slice args. Timestamps from
/// different processes are aligned via each file's steady/wall anchor pair.
[[nodiscard]] std::string merge_to_chrome_json(
    const std::vector<RankTrace>& ranks);

/// Structural validation of a merged trace document: parseable JSON, a
/// traceEvents array, well-formed slice/flow/metadata events, non-negative
/// durations, and no flow step/finish without a matching start. Returns
/// human-readable problems; empty means valid.
[[nodiscard]] std::vector<std::string> validate_chrome_trace(
    std::string_view json_text);

/// Text critical-path summary: per-phase totals per rank with the slowest
/// rank called out, receive-side fan-in wait statistics, and flow-matching
/// counts — the data behind the paper's Figures 4–5.
[[nodiscard]] std::string critical_path_summary(
    const std::vector<RankTrace>& ranks);

}  // namespace gridse::obs::trace
