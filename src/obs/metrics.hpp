#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/debug_sync.hpp"

/// GRIDSE_OBS selects between the live observability layer (metrics registry
/// + trace spans accumulating real values) and near-no-op stubs: the macros
/// in obs/obs.hpp expand to nothing and instrumented hot paths carry no
/// timing calls. The build system defines it globally (option GRIDSE_OBS,
/// default ON); the fallback here keeps standalone compiles of a single
/// header sensible.
#ifndef GRIDSE_OBS
#define GRIDSE_OBS 1
#endif

namespace gridse::obs {

/// Whether the instrumentation macros are live in this build.
inline constexpr bool kEnabled = GRIDSE_OBS != 0;

/// Monotonically increasing event count. All operations are lock-free.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value plus running maximum (e.g. queue depth high-water
/// mark). All operations are lock-free.
class Gauge {
 public:
  void set(double value) {
    value_.store(value, std::memory_order_relaxed);
    update_max(value);
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() {
    value_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
  }

 private:
  void update_max(double value) {
    double seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

/// Bucket layout of a histogram: bucket i counts observations in
/// (first_bound·growthⁱ⁻¹, first_bound·growthⁱ]; bucket 0 is everything
/// ≤ first_bound and the last bucket absorbs overflow.
struct HistogramSpec {
  double first_bound = 1e-6;  ///< default: latency buckets from 1 µs
  double growth = 2.0;        ///< ×2 per bucket → 1 µs … ~2000 s span

  /// Buckets suited to small integer counts (iterations, messages).
  [[nodiscard]] static HistogramSpec counts() { return {1.0, 2.0}; }
  /// Buckets suited to wall-clock seconds (the default).
  [[nodiscard]] static HistogramSpec latency() { return {}; }
};

/// Fixed-bucket histogram with exponentially growing bucket bounds. observe()
/// is lock-free: a handful of relaxed atomic updates plus a short multiply
/// loop to locate the bucket.
class Histogram {
 public:
  static constexpr int kNumBuckets = 32;

  explicit Histogram(HistogramSpec spec = {}) : spec_(spec) {}

  void observe(double value);

  [[nodiscard]] const HistogramSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::uint64_t bucket_count(int bucket) const;
  /// Inclusive upper bound of `bucket` (infinity for the last bucket).
  [[nodiscard]] double bucket_bound(int bucket) const;

  void reset();

 private:
  [[nodiscard]] int bucket_index(double value) const;

  HistogramSpec spec_;
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// +inf when empty; min() maps that back to 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
};

/// Value-only copy of a histogram, for export and assertions.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// (inclusive upper bound, count) for every non-empty bucket, in order.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

/// Aggregate of one span name: how often it ran, where in the taxonomy it
/// sits, and its latency distribution.
struct SpanSnapshot {
  std::string parent;  ///< enclosing span name at first use ("" = root)
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  HistogramSnapshot latency;
};

/// Point-in-time copy of a whole registry.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, double> gauge_maxima;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, SpanSnapshot> spans;
};

/// Thread-safe, per-run home of every metric. Lookup by name takes a lock;
/// the returned references are stable for the registry's lifetime, so hot
/// paths resolve once (the obs.hpp macros cache in a function-local static)
/// and then touch only atomics. reset() zeroes values in place — cached
/// references stay valid across runs.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, HistogramSpec spec = {});

  /// Record one completed span occurrence. `parent` is the name of the
  /// enclosing span ("" at top level); the first recorded parent is kept as
  /// the span's canonical position in the taxonomy.
  void record_span(const std::string& name, const std::string& parent,
                   double seconds);

  /// Zero every value, keeping registrations (and handles) intact.
  void reset();

  [[nodiscard]] Snapshot snapshot() const;

  /// Snapshot rendered as JSON (schema: docs/OBSERVABILITY.md).
  [[nodiscard]] std::string to_json() const;

  /// Snapshot rendered as aligned human-readable tables.
  [[nodiscard]] std::string to_table() const;

  /// The process-wide registry the OBS_* macros write to.
  static MetricsRegistry& global();

 private:
  struct SpanData {
    std::string parent;
    bool parent_set = false;
    Counter count;
    std::atomic<double> total_seconds{0.0};
    Histogram latency{HistogramSpec::latency()};
  };

  /// Guards the name→instrument maps. The instruments themselves are
  /// atomic-based and updated lock-free through the references handed out
  /// by counter()/gauge()/histogram(); the unique_ptrs pin their addresses
  /// for the registry's lifetime, which is what makes that sound.
  mutable analysis::Mutex mutex_{"MetricsRegistry::mutex_"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GRIDSE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      GRIDSE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GRIDSE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<SpanData>> spans_
      GRIDSE_GUARDED_BY(mutex_);
};

/// Render a snapshot as JSON without going through a registry (the report
/// tool embeds snapshots into larger documents).
[[nodiscard]] std::string snapshot_to_json(const Snapshot& snapshot,
                                           int indent = 0);

}  // namespace gridse::obs
