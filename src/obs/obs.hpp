#pragma once

// Instrumentation entry points for the GridSE hot path. Call sites use only
// these macros so a GRIDSE_OBS=OFF build compiles the entire layer out: the
// macros expand to a no-op statement whose arguments sit in an unevaluated
// sizeof, so they cost no code, no clock reads, and no symbol references —
// while still being type-checked.
//
// Naming convention (docs/OBSERVABILITY.md): dot-separated, lower_snake
// segments, `<subsystem>.<component>.<quantity>[.<unit>]`, e.g.
// `dse.step1.subsystem_seconds`, `medici.relay.bytes`. Span names are the
// taxonomy itself: `dse.run` > `dse.step1` > `wls.estimate`.

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#if GRIDSE_OBS
#include "obs/trace/event_log.hpp"
#endif

#define GRIDSE_OBS_CONCAT_INNER(a, b) a##b
#define GRIDSE_OBS_CONCAT(a, b) GRIDSE_OBS_CONCAT_INNER(a, b)

#if GRIDSE_OBS

/// Time the rest of the enclosing scope as span `name` (a string literal).
#define OBS_SPAN(name) \
  ::gridse::obs::ScopedSpan GRIDSE_OBS_CONCAT(gridse_obs_span_, __LINE__)(name)

/// Bump counter `name` (resolved once per call site) by `delta`.
#define OBS_COUNTER_ADD(name, delta)                                       \
  do {                                                                     \
    static ::gridse::obs::Counter& gridse_obs_handle =                     \
        ::gridse::obs::MetricsRegistry::global().counter(name);            \
    gridse_obs_handle.add(static_cast<std::uint64_t>(delta));              \
  } while (0)

/// Set gauge `name` (also tracks the running maximum).
#define OBS_GAUGE_SET(name, value)                                         \
  do {                                                                     \
    static ::gridse::obs::Gauge& gridse_obs_handle =                       \
        ::gridse::obs::MetricsRegistry::global().gauge(name);              \
    gridse_obs_handle.set(static_cast<double>(value));                     \
  } while (0)

/// Record `value` into latency-bucketed histogram `name`.
#define OBS_HISTOGRAM_OBSERVE(name, value)                                 \
  do {                                                                     \
    static ::gridse::obs::Histogram& gridse_obs_handle =                   \
        ::gridse::obs::MetricsRegistry::global().histogram(name);          \
    gridse_obs_handle.observe(static_cast<double>(value));                 \
  } while (0)

/// Record `value` into count-bucketed histogram `name` (iterations,
/// messages — anything whose natural scale starts at 1, not 1 µs).
#define OBS_COUNTS_OBSERVE(name, value)                                    \
  do {                                                                     \
    static ::gridse::obs::Histogram& gridse_obs_handle =                   \
        ::gridse::obs::MetricsRegistry::global().histogram(                \
            name, ::gridse::obs::HistogramSpec::counts());                 \
    gridse_obs_handle.observe(static_cast<double>(value));                 \
  } while (0)

/// Record a discrete occurrence into the structured event log (see
/// docs/OBSERVABILITY.md): OBS_EVENT("name", OBS_ATTR("key", value), ...).
/// The name must be a string literal.
#define OBS_EVENT(...) ::gridse::obs::EventLog::global().emit(__VA_ARGS__)

/// One key/value attribute of an OBS_EVENT.
#define OBS_ATTR(key, value) ::gridse::obs::event_attr(key, value)

#else  // !GRIDSE_OBS — statements that type-check but never evaluate.

#define OBS_SPAN(name) ((void)sizeof(name))
#define OBS_COUNTER_ADD(name, delta) \
  ((void)sizeof(name), (void)sizeof(delta))
#define OBS_GAUGE_SET(name, value) ((void)sizeof(name), (void)sizeof(value))
#define OBS_HISTOGRAM_OBSERVE(name, value) \
  ((void)sizeof(name), (void)sizeof(value))
#define OBS_COUNTS_OBSERVE(name, value) \
  ((void)sizeof(name), (void)sizeof(value))
// Arguments are stringified, not expanded: OBS_ATTR(...) inside never
// evaluates and pulls in no obs symbols.
#define OBS_EVENT(...) ((void)sizeof(#__VA_ARGS__))
#define OBS_ATTR(key, value) 0

#endif  // GRIDSE_OBS
