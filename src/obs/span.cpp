#include "obs/span.hpp"

#include "obs/trace/trace.hpp"

namespace gridse::obs {
namespace {

/// Innermost active span of this thread; spans form an intrusive stack.
thread_local ScopedSpan* t_top = nullptr;
thread_local int t_depth = 0;

}  // namespace

ScopedSpan::ScopedSpan(const char* name, MetricsRegistry* registry)
    : name_(name),
      parent_(t_top != nullptr ? t_top->name_ : nullptr),
      registry_(registry != nullptr ? registry : &MetricsRegistry::global()),
      prev_(t_top),
      id_(trace::Tracer::global().next_id()),
      parent_id_(t_top != nullptr ? t_top->id_ : 0),
      start_(std::chrono::steady_clock::now()) {
  t_top = this;
  ++t_depth;
}

ScopedSpan::~ScopedSpan() {
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start_).count();
  t_top = prev_;
  --t_depth;
  registry_->record_span(name_, parent_ != nullptr ? parent_ : "", seconds);
  trace::on_span_end(name_, id_, parent_id_, start_, end);
}

const char* ScopedSpan::current_name() {
  return t_top != nullptr ? t_top->name_ : nullptr;
}

std::uint64_t ScopedSpan::current_id() {
  return t_top != nullptr ? t_top->id_ : 0;
}

int ScopedSpan::depth() { return t_depth; }

}  // namespace gridse::obs
