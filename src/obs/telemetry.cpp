#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/assert.hpp"
#include "obs/trace/json_mini.hpp"
#include "obs/trace/trace.hpp"
#include "util/error.hpp"

namespace gridse::obs {
namespace fs = std::filesystem;
namespace {

/// The obs layer sits below util in the link order (gridse_util links
/// gridse_obs), so GRIDSE_WARN is off limits here; telemetry failures are
/// non-fatal and go straight to stderr.
void warn(const std::string& message) {
  std::fprintf(stderr, "gridse telemetry: %s\n", message.c_str());
}

/// Shortest round-trippable decimal for JSON / exposition values.
std::string fmt_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string quoted(const std::string& raw) {
  return "\"" + jsonm::escape(raw) + "\"";
}

std::string int_list(const std::vector<int>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(values[i]);
  }
  return out + "]";
}

/// Replace the destination file atomically so concurrent readers never see
/// a half-written exposition or flight document.
void write_file_atomic(const fs::path& target, const std::string& content) {
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << content;
    if (!out) {
      throw Error("telemetry: write to " + tmp.string() + " failed");
    }
  }
  fs::rename(tmp, target);
}

/// Prometheus metric name: `gridse_` + the dotted name with every character
/// outside [a-zA-Z0-9_:] mapped to '_'.
std::string prom_name(const std::string& name, const char* prefix) {
  std::string out = prefix;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void append_prom_histogram(std::ostringstream& out, const std::string& name,
                           const HistogramSnapshot& h) {
  out << "# TYPE " << name << " histogram\n";
  std::uint64_t cumulative = 0;
  for (const auto& [bound, count] : h.buckets) {
    cumulative += count;
    out << name << "_bucket{le=\""
        << (std::isinf(bound) ? std::string("+Inf") : fmt_double(bound))
        << "\"} " << cumulative << "\n";
  }
  out << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
  out << name << "_sum " << fmt_double(h.sum) << "\n";
  out << name << "_count " << h.count << "\n";
}

/// Histogram increment between two snapshots of the same (monotone)
/// histogram: count/sum deltas plus per-bucket count deltas. min/max are
/// not delta-able and are deliberately absent from time-series records.
std::string histogram_delta_json(const HistogramSnapshot* prev,
                                 const HistogramSnapshot& cur,
                                 std::uint64_t count_delta) {
  std::map<double, std::uint64_t> before;
  if (prev != nullptr) {
    for (const auto& [bound, count] : prev->buckets) {
      before[bound] = count;
    }
  }
  std::string buckets = "[";
  bool first = true;
  for (const auto& [bound, count] : cur.buckets) {
    const auto it = before.find(bound);
    const std::uint64_t delta =
        count - (it == before.end() ? 0 : it->second);
    if (delta == 0) continue;
    if (!first) buckets += ",";
    first = false;
    buckets += "[" + fmt_double(bound) + "," + std::to_string(delta) + "]";
  }
  buckets += "]";
  const double sum_delta = cur.sum - (prev != nullptr ? prev->sum : 0.0);
  return "{\"count\":" + std::to_string(count_delta) +
         ",\"sum\":" + fmt_double(sum_delta) + ",\"buckets\":" + buckets +
         "}";
}

}  // namespace

std::string exposition_text(const Snapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string p = prom_name(name, "gridse_");
    out << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string p = prom_name(name, "gridse_");
    out << "# TYPE " << p << " gauge\n" << p << " " << fmt_double(value)
        << "\n";
    const auto max_it = snapshot.gauge_maxima.find(name);
    if (max_it != snapshot.gauge_maxima.end()) {
      out << "# TYPE " << p << "_max gauge\n"
          << p << "_max " << fmt_double(max_it->second) << "\n";
    }
  }
  for (const auto& [name, h] : snapshot.histograms) {
    append_prom_histogram(out, prom_name(name, "gridse_"), h);
  }
  for (const auto& [name, span] : snapshot.spans) {
    const std::string p = prom_name(name, "gridse_span_");
    append_prom_histogram(out, p, span.latency);
    out << "# TYPE " << p << "_total_seconds counter\n"
        << p << "_total_seconds " << fmt_double(span.total_seconds) << "\n";
  }
  return out.str();
}

TelemetrySampler::TelemetrySampler(TelemetryOptions options,
                                   MetricsRegistry& registry)
    : options_(std::move(options)), registry_(registry) {
  GRIDSE_CHECK_MSG(!options_.dir.empty(),
                   "TelemetrySampler needs an output directory");
  options_.flight_ring = std::max<std::size_t>(options_.flight_ring, 1);
  analysis::LockGuard lock(mutex_);
  try {
    fs::create_directories(options_.dir);
    out_.open(fs::path(options_.dir) / "timeseries.jsonl", std::ios::trunc);
  } catch (const std::exception& e) {
    warn("cannot open " + options_.dir + ": " + e.what());
  }
  if (out_.is_open()) {
    write_line_locked(
        "{\"schema\":\"gridse-timeseries/1\",\"flight_ring\":" +
        std::to_string(options_.flight_ring) + ",\"sample_period_ms\":" +
        std::to_string(options_.sample_period.count()) + "}");
  }
  baseline_ = registry_.snapshot();
  if (options_.sample_period.count() > 0) {
    sampler_thread_ = std::thread([this] { sampler_loop(); });
  }
}

TelemetrySampler::~TelemetrySampler() {
  if (sampler_thread_.joinable()) {
    {
      analysis::LockGuard lock(mutex_);
      stop_ = true;
    }
    stop_cv_.notify_all();
    sampler_thread_.join();
  }
  flush_pending_flights();
}

void TelemetrySampler::on_cycle_end(const CycleStamp& stamp) {
  const Snapshot cur = registry_.snapshot();
  analysis::LockGuard lock(mutex_);
  const std::string record = render_record_locked("cycle", cur, &stamp);
  ring_.push_back(RingEntry{stamp.cycle, stamp.degraded_subsystems,
                            stamp.dead_clusters, record});
  while (ring_.size() > options_.flight_ring) {
    ring_.pop_front();
  }
  baseline_ = cur;
  last_cycle_ = stamp.cycle;
  ++cycles_recorded_;
  write_line_locked(record);
  try {
    write_exposition_locked(cur);
  } catch (const std::exception& e) {
    warn(std::string("exposition write failed: ") + e.what());
  }
  if (!pending_.empty()) {
    flush_pending_locked();
  }
}

void TelemetrySampler::note_trigger(const char* kind, int cluster,
                                    std::int64_t cycle) {
  analysis::LockGuard lock(mutex_);
  pending_.push_back(FlightTrigger{kind, cluster, cycle});
}

void TelemetrySampler::flush_pending_flights() {
  analysis::LockGuard lock(mutex_);
  if (!pending_.empty()) {
    flush_pending_locked();
  }
}

std::size_t TelemetrySampler::cycles_recorded() const {
  analysis::LockGuard lock(mutex_);
  return cycles_recorded_;
}

std::size_t TelemetrySampler::flights_written() const {
  analysis::LockGuard lock(mutex_);
  return flights_written_;
}

std::string TelemetrySampler::render_record_locked(const char* kind,
                                                   const Snapshot& cur,
                                                   const CycleStamp* stamp) {
  std::ostringstream out;
  out << "{\"kind\":\"" << kind << "\"";
  if (stamp != nullptr) {
    out << ",\"cycle\":" << stamp->cycle << ",\"epoch\":" << stamp->epoch
        << ",\"participants\":" << int_list(stamp->participants)
        << ",\"degraded_subsystems\":" << int_list(stamp->degraded_subsystems)
        << ",\"dead_clusters\":" << int_list(stamp->dead_clusters)
        << ",\"phase_seconds\":{\"step1\":" << fmt_double(stamp->step1_seconds)
        << ",\"exchange\":" << fmt_double(stamp->exchange_seconds)
        << ",\"step2\":" << fmt_double(stamp->step2_seconds)
        << ",\"combine\":" << fmt_double(stamp->combine_seconds)
        << ",\"total\":" << fmt_double(stamp->total_seconds) << "}";
  } else {
    // Interval records measure progress inside the in-flight cycle; the
    // baseline is NOT advanced, so cycle records stay exact.
    out << ",\"cycle\":" << (last_cycle_ + 1);
  }

  bool slo_missed = false;
  out << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : cur.counters) {
    const auto it = baseline_.counters.find(name);
    const std::uint64_t delta =
        value - (it == baseline_.counters.end() ? 0 : it->second);
    if (delta == 0) continue;
    if (name == "slo.cycle_deadline_missed") slo_missed = true;
    if (!first) out << ",";
    first = false;
    out << quoted(name) << ":" << delta;
  }
  out << "}";

  out << ",\"gauges\":{";
  first = true;
  for (const auto& [name, value] : cur.gauges) {
    if (!first) out << ",";
    first = false;
    out << quoted(name) << ":" << fmt_double(value);
  }
  out << "}";

  out << ",\"histograms\":{";
  first = true;
  for (const auto& [name, h] : cur.histograms) {
    const auto it = baseline_.histograms.find(name);
    const HistogramSnapshot* prev =
        it == baseline_.histograms.end() ? nullptr : &it->second;
    const std::uint64_t count_delta =
        h.count - (prev != nullptr ? prev->count : 0);
    if (count_delta == 0) continue;
    if (!first) out << ",";
    first = false;
    out << quoted(name) << ":" << histogram_delta_json(prev, h, count_delta);
  }
  out << "}";

  out << ",\"spans\":{";
  first = true;
  for (const auto& [name, span] : cur.spans) {
    const auto it = baseline_.spans.find(name);
    const std::uint64_t prev_count =
        it == baseline_.spans.end() ? 0 : it->second.count;
    const double prev_seconds =
        it == baseline_.spans.end() ? 0.0 : it->second.total_seconds;
    const std::uint64_t count_delta = span.count - prev_count;
    if (count_delta == 0) continue;
    if (!first) out << ",";
    first = false;
    out << quoted(name) << ":{\"count\":" << count_delta << ",\"seconds\":"
        << fmt_double(span.total_seconds - prev_seconds) << "}";
  }
  out << "}";

  out << ",\"slo_deadline_missed\":" << (slo_missed ? "true" : "false")
      << "}";
  return out.str();
}

void TelemetrySampler::write_line_locked(const std::string& line) {
  if (!out_.is_open()) {
    return;
  }
  out_ << line << "\n";
  // Flush per record: the series must be readable while the system runs
  // (the live-exposition contract), and records are rare — one per cycle.
  out_.flush();
}

void TelemetrySampler::write_exposition_locked(const Snapshot& cur) {
  write_file_atomic(fs::path(options_.dir) / "metrics.prom",
                    exposition_text(cur));
}

void TelemetrySampler::flush_pending_locked() {
  std::int64_t cycle = pending_.front().cycle;
  for (const FlightTrigger& t : pending_) {
    cycle = std::max(cycle, t.cycle);
  }

  // Flush the trace ring and event log alongside the flight file: the
  // post-mortem is the last chance to capture them time-anchored.
  const fs::path trace_dir =
      fs::path(options_.dir) / ("flight-" + std::to_string(cycle) + "-trace");
  trace::FlushStats trace_stats;
  try {
    trace_stats = trace::write_trace_files(trace_dir.string());
  } catch (const std::exception& e) {
    warn(std::string("flight trace flush failed: ") + e.what());
  }

  std::set<int> dead;
  std::ostringstream triggers;
  triggers << "[";
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const FlightTrigger& t = pending_[i];
    if (i > 0) triggers << ",";
    triggers << "{\"kind\":" << quoted(t.kind) << ",\"cluster\":" << t.cluster
             << ",\"cycle\":" << t.cycle << "}";
    if (t.kind == "cluster_dead" && t.cluster >= 0) {
      dead.insert(t.cluster);
    }
  }
  triggers << "]";

  std::vector<int> degraded;
  if (!ring_.empty()) {
    degraded = ring_.back().degraded_subsystems;
    for (const int c : ring_.back().dead_clusters) {
      dead.insert(c);
    }
  }

  std::ostringstream doc;
  doc << "{\n  \"schema\": \"gridse-flight/1\",\n  \"cycle\": " << cycle
      << ",\n  \"triggers\": " << triggers.str() << ",\n  \"dead_clusters\": "
      << int_list(std::vector<int>(dead.begin(), dead.end()))
      << ",\n  \"degraded_subsystems\": " << int_list(degraded)
      << ",\n  \"trace\": {\"records\": " << trace_stats.records
      << ", \"events\": " << trace_stats.events << ", \"dir\": "
      << quoted(trace_dir.filename().string()) << "},\n  \"ring\": [\n";
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    doc << "    " << ring_[i].json << (i + 1 < ring_.size() ? ",\n" : "\n");
  }
  doc << "  ]\n}\n";

  try {
    write_file_atomic(
        fs::path(options_.dir) / ("flight-" + std::to_string(cycle) + ".json"),
        doc.str());
    ++flights_written_;
  } catch (const std::exception& e) {
    warn(std::string("flight write failed: ") + e.what());
  }
  pending_.clear();
}

void TelemetrySampler::sampler_loop() {
  analysis::UniqueLock lock(mutex_);
  while (!stop_) {
    const bool stopped =
        stop_cv_.wait_for(lock, options_.sample_period, [this] {
          GRIDSE_ASSERT_HELD(mutex_);
          return stop_;
        });
    if (stopped) {
      break;
    }
    const Snapshot cur = registry_.snapshot();
    write_line_locked(render_record_locked("interval", cur, nullptr));
    try {
      write_exposition_locked(cur);
    } catch (const std::exception& e) {
      warn(std::string("exposition write failed: ") + e.what());
    }
  }
}

}  // namespace gridse::obs
