#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace gridse::obs {

/// RAII trace span: times the enclosing scope and records the duration —
/// plus its position in the span tree — into a MetricsRegistry on
/// destruction. Spans nest per thread: a span opened while another is active
/// on the same thread records that span as its parent, which is how
/// `dse.step1.wls` ends up attributed under `dse.step1` without the call
/// sites knowing about each other.
///
/// `name` must outlive the span (string literals at the OBS_SPAN call sites
/// satisfy this for free).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, MetricsRegistry* registry = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Name of the innermost active span on this thread (nullptr when none).
  [[nodiscard]] static const char* current_name();

  /// Span id of the innermost active span on this thread (0 when none);
  /// this is the parent id a message minted here carries onto the wire.
  [[nodiscard]] static std::uint64_t current_id();

  /// Number of active spans on this thread.
  [[nodiscard]] static int depth();

 private:
  const char* name_;
  const char* parent_;
  MetricsRegistry* registry_;
  ScopedSpan* prev_;
  std::uint64_t id_;
  std::uint64_t parent_id_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gridse::obs
