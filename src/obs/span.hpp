#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace gridse::obs {

/// RAII trace span: times the enclosing scope and records the duration —
/// plus its position in the span tree — into a MetricsRegistry on
/// destruction. Spans nest per thread: a span opened while another is active
/// on the same thread records that span as its parent, which is how
/// `dse.step1.wls` ends up attributed under `dse.step1` without the call
/// sites knowing about each other.
///
/// `name` must outlive the span (string literals at the OBS_SPAN call sites
/// satisfy this for free).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, MetricsRegistry* registry = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Name of the innermost active span on this thread (nullptr when none).
  [[nodiscard]] static const char* current_name();

  /// Number of active spans on this thread.
  [[nodiscard]] static int depth();

 private:
  const char* name_;
  const char* parent_;
  MetricsRegistry* registry_;
  ScopedSpan* prev_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gridse::obs
