#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

namespace gridse::obs {
namespace {

/// Shortest round-trippable-enough representation; deterministic across
/// runs for the golden-file exporter test.
std::string fmt_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_histogram_json(std::ostringstream& out,
                           const HistogramSnapshot& h) {
  out << "{\"count\":" << h.count << ",\"sum\":" << fmt_double(h.sum)
      << ",\"min\":" << fmt_double(h.min) << ",\"max\":" << fmt_double(h.max)
      << ",\"buckets\":[";
  bool first = true;
  for (const auto& [bound, count] : h.buckets) {
    if (!first) out << ",";
    first = false;
    out << "{\"le\":" << fmt_double(bound) << ",\"count\":" << count << "}";
  }
  out << "]}";
}

/// Left-pad `s` to `width` (right-align numbers the way the paper's tables
/// do).
std::string pad(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

}  // namespace

// --- Histogram --------------------------------------------------------------

int Histogram::bucket_index(double value) const {
  double bound = spec_.first_bound;
  int i = 0;
  while (i < kNumBuckets - 1 && value > bound) {
    bound *= spec_.growth;
    ++i;
  }
  return i;
}

void Histogram::observe(double value) {
  buckets_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  double seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  const double m = min_.load(std::memory_order_relaxed);
  return m == std::numeric_limits<double>::infinity() ? 0.0 : m;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::uint64_t Histogram::bucket_count(int bucket) const {
  return buckets_[static_cast<std::size_t>(bucket)].load(
      std::memory_order_relaxed);
}

double Histogram::bucket_bound(int bucket) const {
  if (bucket >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  double bound = spec_.first_bound;
  for (int i = 0; i < bucket; ++i) {
    bound *= spec_.growth;
  }
  return bound;
}

void Histogram::reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// --- MetricsRegistry --------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  analysis::LockGuard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  analysis::LockGuard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      HistogramSpec spec) {
  analysis::LockGuard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(spec);
  return *slot;
}

void MetricsRegistry::record_span(const std::string& name,
                                  const std::string& parent, double seconds) {
  SpanData* data = nullptr;
  {
    analysis::LockGuard lock(mutex_);
    auto& slot = spans_[name];
    if (!slot) slot = std::make_unique<SpanData>();
    if (!slot->parent_set) {
      slot->parent = parent;
      slot->parent_set = true;
    }
    data = slot.get();
  }
  data->count.add(1);
  data->total_seconds.fetch_add(seconds, std::memory_order_relaxed);
  data->latency.observe(seconds);
}

void MetricsRegistry::reset() {
  analysis::LockGuard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : spans_) {
    s->count.reset();
    s->total_seconds.store(0.0, std::memory_order_relaxed);
    s->latency.reset();
    s->parent.clear();
    s->parent_set = false;
  }
}

namespace {

HistogramSnapshot snapshot_histogram(const Histogram& h) {
  HistogramSnapshot snap;
  snap.count = h.count();
  snap.sum = h.sum();
  snap.min = h.min();
  snap.max = h.max();
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    const std::uint64_t c = h.bucket_count(b);
    if (c > 0) {
      snap.buckets.emplace_back(h.bucket_bound(b), c);
    }
  }
  return snap;
}

}  // namespace

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  analysis::LockGuard lock(mutex_);
  for (const auto& [name, c] : counters_) {
    snap.counters[name] = c->value();
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = g->value();
    snap.gauge_maxima[name] = g->max();
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = snapshot_histogram(*h);
  }
  for (const auto& [name, s] : spans_) {
    SpanSnapshot span;
    span.parent = s->parent;
    span.count = s->count.value();
    span.total_seconds = s->total_seconds.load(std::memory_order_relaxed);
    span.latency = snapshot_histogram(s->latency);
    snap.spans[name] = std::move(span);
  }
  return snap;
}

std::string MetricsRegistry::to_json() const { return snapshot_to_json(snapshot()); }

std::string MetricsRegistry::to_table() const {
  const Snapshot snap = snapshot();
  std::ostringstream out;

  std::size_t name_width = 4;
  for (const auto& [name, v] : snap.counters) {
    name_width = std::max(name_width, name.size());
  }
  for (const auto& [name, v] : snap.gauges) {
    name_width = std::max(name_width, name.size());
  }
  for (const auto& [name, v] : snap.histograms) {
    name_width = std::max(name_width, name.size());
  }
  for (const auto& [name, v] : snap.spans) {
    name_width = std::max(name_width, name.size());
  }
  const auto cell = [&](const std::string& s) {
    return s + std::string(name_width > s.size() ? name_width - s.size() : 0,
                           ' ');
  };

  if (!snap.spans.empty()) {
    out << "spans (seconds)\n";
    out << cell("name") << "  " << pad("count", 8) << "  " << pad("total", 12)
        << "  " << pad("mean", 12) << "  " << pad("max", 12)
        << "  parent\n";
    for (const auto& [name, s] : snap.spans) {
      const double mean =
          s.count == 0 ? 0.0
                       : s.total_seconds / static_cast<double>(s.count);
      out << cell(name) << "  " << pad(std::to_string(s.count), 8) << "  "
          << pad(fmt_double(s.total_seconds), 12) << "  "
          << pad(fmt_double(mean), 12) << "  "
          << pad(fmt_double(s.latency.max), 12) << "  "
          << (s.parent.empty() ? "-" : s.parent) << "\n";
    }
    out << "\n";
  }
  if (!snap.counters.empty()) {
    out << "counters\n";
    for (const auto& [name, v] : snap.counters) {
      out << cell(name) << "  " << pad(std::to_string(v), 16) << "\n";
    }
    out << "\n";
  }
  if (!snap.gauges.empty()) {
    out << "gauges (value / max)\n";
    for (const auto& [name, v] : snap.gauges) {
      out << cell(name) << "  " << pad(fmt_double(v), 12) << "  "
          << pad(fmt_double(snap.gauge_maxima.at(name)), 12) << "\n";
    }
    out << "\n";
  }
  if (!snap.histograms.empty()) {
    out << "histograms\n";
    out << cell("name") << "  " << pad("count", 8) << "  " << pad("mean", 12)
        << "  " << pad("min", 12) << "  " << pad("max", 12) << "\n";
    for (const auto& [name, h] : snap.histograms) {
      const double mean =
          h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count);
      out << cell(name) << "  " << pad(std::to_string(h.count), 8) << "  "
          << pad(fmt_double(mean), 12) << "  " << pad(fmt_double(h.min), 12)
          << "  " << pad(fmt_double(h.max), 12) << "\n";
    }
  }
  return out.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string snapshot_to_json(const Snapshot& snapshot, int indent) {
  const std::string pad0(static_cast<std::size_t>(indent), ' ');
  const std::string pad1(static_cast<std::size_t>(indent) + 2, ' ');
  const std::string pad2(static_cast<std::size_t>(indent) + 4, ' ');
  std::ostringstream out;
  out << "{\n";

  out << pad1 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "\n" : ",\n") << pad2 << "\"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n" + pad1) << "},\n";

  out << pad1 << "\"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "\n" : ",\n") << pad2 << "\"" << json_escape(name)
        << "\": {\"value\": " << fmt_double(value)
        << ", \"max\": " << fmt_double(snapshot.gauge_maxima.at(name)) << "}";
    first = false;
  }
  out << (first ? "" : "\n" + pad1) << "},\n";

  out << pad1 << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out << (first ? "\n" : ",\n") << pad2 << "\"" << json_escape(name)
        << "\": ";
    append_histogram_json(out, h);
    first = false;
  }
  out << (first ? "" : "\n" + pad1) << "},\n";

  out << pad1 << "\"spans\": {";
  first = true;
  for (const auto& [name, s] : snapshot.spans) {
    out << (first ? "\n" : ",\n") << pad2 << "\"" << json_escape(name)
        << "\": {\"parent\": \"" << json_escape(s.parent)
        << "\", \"count\": " << s.count
        << ", \"total_seconds\": " << fmt_double(s.total_seconds)
        << ", \"latency\": ";
    append_histogram_json(out, s.latency);
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n" + pad1) << "}\n";

  out << pad0 << "}";
  return out.str();
}

}  // namespace gridse::obs
