#pragma once

#include <optional>
#include <vector>

#include "grid/network.hpp"

namespace gridse::grid {

/// DC (linearized, lossless) power-flow solution: bus angles and branch
/// active flows. The workhorse of contingency screening (paper reference
/// [2] runs "massive contingency analysis" on HPC clusters; the estimated
/// state from DSE is its input).
struct DcPowerFlow {
  std::vector<double> theta;  ///< bus angles, radians (slack = 0)
  /// Active flow on each branch, from -> to, p.u. Entries for outaged
  /// branches are 0.
  std::vector<double> flows;
};

/// Solve the DC power flow B'θ = P with the given branch subset removed.
/// `outaged` lists branch indices treated as out of service. Returns
/// nullopt when the outage islands the network (no unique solution).
/// Injections come from the network's scheduled values; the slack balances.
std::optional<DcPowerFlow> solve_dc_power_flow(
    const Network& network, const std::vector<std::size_t>& outaged = {});

/// Assign thermal ratings to every branch: `margin` times the absolute
/// base-case DC flow, floored at `min_rating` so lightly loaded branches
/// don't alarm on any redistribution. Mutates the network's branch ratings
/// and returns the base-case solution.
DcPowerFlow assign_ratings_from_base_case(Network& network,
                                          double margin = 1.3,
                                          double min_rating = 0.2);

}  // namespace gridse::grid
