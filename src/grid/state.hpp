#pragma once

#include <span>
#include <vector>

#include "grid/network.hpp"

namespace gridse::grid {

/// Full polar operating state of a network: one angle and one magnitude per
/// bus. This is "the state of the power systems … the voltage and angle of
/// every bus" (paper §I).
struct GridState {
  std::vector<double> theta;  ///< bus voltage angles, radians
  std::vector<double> vm;     ///< bus voltage magnitudes, p.u.

  GridState() = default;
  /// Flat start: all angles 0, all magnitudes 1.
  explicit GridState(BusIndex num_buses)
      : theta(static_cast<std::size_t>(num_buses), 0.0),
        vm(static_cast<std::size_t>(num_buses), 1.0) {}

  [[nodiscard]] BusIndex num_buses() const {
    return static_cast<BusIndex>(theta.size());
  }
};

/// Maps bus quantities onto the reduced estimation state vector
/// x = [θ(all non-reference buses), |V|(all buses)]. The reference bus
/// angle is pinned to a known value and excluded from x.
class StateIndex {
 public:
  StateIndex() = default;
  /// `reference_bus` angle is excluded from the state vector.
  StateIndex(BusIndex num_buses, BusIndex reference_bus);

  [[nodiscard]] BusIndex num_buses() const { return num_buses_; }
  [[nodiscard]] BusIndex reference_bus() const { return reference_bus_; }

  /// Dimension of x: (n-1) angles + n magnitudes.
  [[nodiscard]] std::int32_t size() const { return 2 * num_buses_ - 1; }

  /// Index of θ_bus in x, or -1 for the reference bus.
  [[nodiscard]] std::int32_t theta_index(BusIndex bus) const;

  /// Index of |V|_bus in x.
  [[nodiscard]] std::int32_t vm_index(BusIndex bus) const;

  /// Expand x into a full GridState, pinning the reference angle to
  /// `reference_angle`.
  [[nodiscard]] GridState unpack(std::span<const double> x,
                                 double reference_angle = 0.0) const;

  /// Flatten a GridState into x (drops the reference angle).
  [[nodiscard]] std::vector<double> pack(const GridState& state) const;

 private:
  BusIndex num_buses_ = 0;
  BusIndex reference_bus_ = -1;
};

/// Largest absolute angle difference (radians) between two states, skipping
/// no buses; used as an estimation-accuracy metric.
double max_angle_error(const GridState& a, const GridState& b);

/// Largest absolute magnitude difference (p.u.).
double max_vm_error(const GridState& a, const GridState& b);

}  // namespace gridse::grid
