#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace gridse::grid {

/// Internal, dense bus index (0-based). External bus numbers from case files
/// map onto these via Network::index_of.
using BusIndex = std::int32_t;

enum class BusType {
  kSlack,  ///< reference bus: fixed angle and magnitude
  kPV,     ///< generator bus: fixed P injection and |V|
  kPQ      ///< load bus: fixed P and Q injection
};

/// One bus of the per-unit network model.
struct Bus {
  int external_id = 0;  ///< case-file bus number (1-based in IEEE cases)
  BusType type = BusType::kPQ;
  double p_load = 0.0;   ///< active load, p.u.
  double q_load = 0.0;   ///< reactive load, p.u.
  double p_gen = 0.0;    ///< scheduled active generation, p.u.
  double q_gen = 0.0;    ///< scheduled reactive generation, p.u.
  double v_setpoint = 1.0;  ///< |V| setpoint for slack/PV buses, p.u.
  double gs = 0.0;       ///< shunt conductance, p.u.
  double bs = 0.0;       ///< shunt susceptance, p.u.
  std::string name;      ///< optional label
};

/// One branch (transmission line or transformer) in per-unit.
struct Branch {
  BusIndex from = -1;
  BusIndex to = -1;
  double r = 0.0;            ///< series resistance
  double x = 0.0;            ///< series reactance (must be nonzero)
  double b_charging = 0.0;   ///< total line charging susceptance
  double tap = 1.0;          ///< off-nominal turns ratio (1.0 = plain line)
  double phase_shift = 0.0;  ///< phase-shifter angle, radians
  double rating = 0.0;       ///< thermal flow limit, p.u. (0 = unlimited)
  /// Live switching status. Out-of-service branches stay in the structural
  /// model (indices, incidence lists and the Ybus pattern are stable across
  /// switching) but carry no admittance and no flow.
  bool in_service = true;
};

/// Per-unit positive-sequence network model: the entity state estimation
/// runs against. The structural topology (buses, branch endpoints,
/// incidence) is immutable after construction helpers finish; only the
/// per-branch `in_service` status may change afterwards, via
/// `set_branch_in_service` (driven by grid::LiveTopology).
class Network {
 public:
  /// Append a bus; returns its internal index. Throws InvalidInput on a
  /// duplicate external id.
  BusIndex add_bus(Bus bus);

  /// Append a branch between internal indices; throws InvalidInput on
  /// out-of-range endpoints or zero series impedance.
  void add_branch(Branch branch);

  /// Accumulate scheduled generation onto bus i (used by case parsing where
  /// multiple generator records may target one bus).
  void add_generation(BusIndex i, double p_gen, double q_gen);

  /// Re-type bus i (slack/PV/PQ) with a voltage setpoint; used by the
  /// synthetic case builders.
  void set_bus_type(BusIndex i, BusType type, double v_setpoint);

  /// Set the thermal rating of branch i (p.u. flow; 0 = unlimited).
  void set_branch_rating(std::size_t i, double rating);

  /// Flip the live switching status of branch i. The structural model is
  /// untouched: `connected()`/`validate()` still reason over all branches,
  /// so partitioning preconditions hold mid-replay; live reachability is
  /// the topology layer's job (grid::find_islands).
  void set_branch_in_service(std::size_t i, bool in_service);

  [[nodiscard]] bool branch_in_service(std::size_t i) const {
    return branch(i).in_service;
  }

  /// Scale every bus's load and scheduled generation by `factor` — the
  /// knob a time-series simulation turns to move the operating point
  /// between SCADA frames.
  void scale_loads(double factor);

  [[nodiscard]] BusIndex num_buses() const {
    return static_cast<BusIndex>(buses_.size());
  }
  [[nodiscard]] std::size_t num_branches() const { return branches_.size(); }

  [[nodiscard]] const Bus& bus(BusIndex i) const;
  [[nodiscard]] const std::vector<Bus>& buses() const { return buses_; }
  [[nodiscard]] const Branch& branch(std::size_t i) const;
  [[nodiscard]] const std::vector<Branch>& branches() const { return branches_; }

  /// Internal index for an external bus number; throws InvalidInput if absent.
  [[nodiscard]] BusIndex index_of(int external_id) const;

  /// Index of the (single) slack bus; throws InvalidInput if there is not
  /// exactly one.
  [[nodiscard]] BusIndex slack_bus() const;

  /// Branch indices incident to bus i.
  [[nodiscard]] const std::vector<std::size_t>& branches_at(BusIndex i) const;

  /// Net scheduled injection at bus i: (p_gen - p_load, q_gen - q_load).
  [[nodiscard]] std::pair<double, double> scheduled_injection(BusIndex i) const;

  /// True when every bus is reachable from bus 0 over branches.
  [[nodiscard]] bool connected() const;

  /// Sanity-check the model: exactly one slack, connected, valid branches.
  /// Throws InvalidInput describing the first problem found.
  void validate() const;

 private:
  std::vector<Bus> buses_;
  std::vector<Branch> branches_;
  std::vector<std::vector<std::size_t>> incident_;
  /// external_id -> internal index; keeps add_bus/index_of O(1) so the
  /// 100k-bus synthetic interconnections build in linear time.
  std::unordered_map<int, BusIndex> external_index_;
};

}  // namespace gridse::grid
