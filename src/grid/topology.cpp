#include "grid/topology.hpp"

#include <algorithm>
#include <queue>

#include "grid/ybus.hpp"
#include "sparse/ldlt.hpp"
#include "util/error.hpp"

namespace gridse::grid {
namespace {

/// values[k] += delta for the structurally present entry (r, c). The Ybus
/// pattern covers every branch (build_ybus emits explicit zeros), so the
/// entry always exists; a miss means the pattern and the network diverged.
void add_at(sparse::CsrComplex& m, sparse::Index r, sparse::Index c,
            std::complex<double> delta) {
  const auto [b, e] = m.row_range(r);
  const auto cols = m.col_idx();
  const auto* first = cols.data() + b;
  const auto* last = cols.data() + e;
  const auto* it = std::lower_bound(first, last, c);
  GRIDSE_CHECK_MSG(it != last && *it == c,
                   "incremental Ybus update hit a structurally absent entry");
  m.mutable_values()[static_cast<std::size_t>(b + (it - first))] += delta;
}

}  // namespace

const char* topology_event_kind_name(TopologyEventKind kind) {
  switch (kind) {
    case TopologyEventKind::kLineOutage:
      return "line_outage";
    case TopologyEventKind::kLineRestore:
      return "line_restore";
    case TopologyEventKind::kBreakerOpen:
      return "breaker_open";
    case TopologyEventKind::kBreakerClose:
      return "breaker_close";
    case TopologyEventKind::kBusSplit:
      return "bus_split";
    case TopologyEventKind::kBusMerge:
      return "bus_merge";
  }
  return "unknown";
}

IslandReport find_islands(const Network& network) {
  const BusIndex n = network.num_buses();
  IslandReport report;
  report.island_of_bus.assign(static_cast<std::size_t>(n), -1);
  for (BusIndex start = 0; start < n; ++start) {
    if (report.island_of_bus[static_cast<std::size_t>(start)] >= 0) continue;
    const std::int32_t island = report.num_islands++;
    bool has_slack = false;
    BusIndex best_pv = -1;
    double best_pgen = 0.0;
    std::queue<BusIndex> q;
    q.push(start);
    report.island_of_bus[static_cast<std::size_t>(start)] = island;
    while (!q.empty()) {
      const BusIndex u = q.front();
      q.pop();
      const Bus& b = network.bus(u);
      if (b.type == BusType::kSlack) has_slack = true;
      if (b.type == BusType::kPV &&
          (best_pv < 0 || b.p_gen > best_pgen)) {
        best_pv = u;
        best_pgen = b.p_gen;
      }
      for (const std::size_t bi : network.branches_at(u)) {
        const Branch& br = network.branch(bi);
        if (!br.in_service) continue;
        const BusIndex v = (br.from == u) ? br.to : br.from;
        if (report.island_of_bus[static_cast<std::size_t>(v)] < 0) {
          report.island_of_bus[static_cast<std::size_t>(v)] = island;
          q.push(v);
        }
      }
    }
    // BFS discovery order is not index order; re-derive "largest p_gen,
    // ties to lowest index" deterministically below once membership is
    // known. Record the slack/energization verdict now.
    report.energized.push_back(has_slack || best_pv >= 0 ? 1 : 0);
    report.reference_bus.push_back(start);  // provisional: lowest member
  }
  // Reference assignment pass in ascending bus order: slack wins, then the
  // PV bus with the largest p_gen (first seen wins ties — lowest index).
  std::vector<double> ref_pgen(static_cast<std::size_t>(report.num_islands),
                               -1.0);
  std::vector<char> ref_slack(static_cast<std::size_t>(report.num_islands), 0);
  for (BusIndex i = 0; i < n; ++i) {
    const auto island =
        static_cast<std::size_t>(report.island_of_bus[static_cast<std::size_t>(i)]);
    if (ref_slack[island] != 0) continue;
    const Bus& b = network.bus(i);
    if (b.type == BusType::kSlack) {
      report.reference_bus[island] = i;
      ref_slack[island] = 1;
    } else if (b.type == BusType::kPV && b.p_gen > ref_pgen[island]) {
      report.reference_bus[island] = i;
      ref_pgen[island] = b.p_gen;
    }
  }
  return report;
}

LiveTopology::LiveTopology(Network& network)
    : network_(&network), ybus_(build_ybus(network)) {
  status_.reserve(network.num_branches());
  for (std::size_t bi = 0; bi < network.num_branches(); ++bi) {
    status_.push_back(network.branch(bi).in_service
                          ? BranchStatus::kInService
                          : BranchStatus::kFaultOutage);
  }
}

BranchStatus LiveTopology::status(std::size_t branch) const {
  GRIDSE_CHECK(branch < status_.size());
  return status_[branch];
}

std::size_t LiveTopology::num_out_of_service() const {
  std::size_t count = 0;
  for (const BranchStatus s : status_) {
    if (s != BranchStatus::kInService) ++count;
  }
  return count;
}

void LiveTopology::apply_admittance_delta(std::size_t branch, double sign) {
  const Branch& br = network_->branch(branch);
  const BranchAdmittance a = branch_admittance(br);
  add_at(ybus_, br.from, br.from, sign * a.yff);
  add_at(ybus_, br.from, br.to, sign * a.yft);
  add_at(ybus_, br.to, br.from, sign * a.ytf);
  add_at(ybus_, br.to, br.to, sign * a.ytt);
}

bool LiveTopology::transition(std::size_t branch, BranchStatus next) {
  if (status_[branch] == next) return false;
  const bool was_in = status_[branch] == BranchStatus::kInService;
  const bool now_in = next == BranchStatus::kInService;
  if (was_in && !now_in) {
    // The admittance delta is computed from the branch parameters, which
    // do not change while out of service, so subtract-then-add restores
    // the original values exactly (same rounding both ways).
    apply_admittance_delta(branch, -1.0);
    network_->set_branch_in_service(branch, false);
  } else if (!was_in && now_in) {
    network_->set_branch_in_service(branch, true);
    apply_admittance_delta(branch, 1.0);
  }
  status_[branch] = next;
  return true;
}

std::vector<std::size_t> LiveTopology::apply(const TopologyEvent& event) {
  std::vector<std::size_t> changed;
  const auto check_branch = [&] {
    if (event.branch < 0 ||
        static_cast<std::size_t>(event.branch) >= status_.size()) {
      throw InvalidInput("topology event branch index out of range");
    }
    return static_cast<std::size_t>(event.branch);
  };
  const auto check_bus = [&] {
    if (event.bus < 0 || event.bus >= network_->num_buses()) {
      throw InvalidInput("topology event bus index out of range");
    }
    return event.bus;
  };
  switch (event.kind) {
    case TopologyEventKind::kLineOutage: {
      const std::size_t b = check_branch();
      if (transition(b, BranchStatus::kFaultOutage)) changed.push_back(b);
      break;
    }
    case TopologyEventKind::kLineRestore: {
      const std::size_t b = check_branch();
      if (status_[b] == BranchStatus::kFaultOutage &&
          transition(b, BranchStatus::kInService)) {
        changed.push_back(b);
      }
      break;
    }
    case TopologyEventKind::kBreakerOpen: {
      const std::size_t b = check_branch();
      if (status_[b] == BranchStatus::kInService &&
          transition(b, BranchStatus::kBreakerOpen)) {
        changed.push_back(b);
      }
      break;
    }
    case TopologyEventKind::kBreakerClose: {
      const std::size_t b = check_branch();
      if (status_[b] == BranchStatus::kBreakerOpen &&
          transition(b, BranchStatus::kInService)) {
        changed.push_back(b);
      }
      break;
    }
    case TopologyEventKind::kBusSplit: {
      const BusIndex bus = check_bus();
      // Incidence lists are in branch-insertion order, i.e. ascending
      // branch index — the changed list comes out sorted for free.
      for (const std::size_t bi : network_->branches_at(bus)) {
        if (status_[bi] == BranchStatus::kInService &&
            transition(bi, BranchStatus::kBreakerOpen)) {
          changed.push_back(bi);
        }
      }
      break;
    }
    case TopologyEventKind::kBusMerge: {
      const BusIndex bus = check_bus();
      for (const std::size_t bi : network_->branches_at(bus)) {
        if (status_[bi] == BranchStatus::kBreakerOpen &&
            transition(bi, BranchStatus::kInService)) {
          changed.push_back(bi);
        }
      }
      break;
    }
  }
  return changed;
}

MaskedMeasurements mask_measurements(const Network& network,
                                     const IslandReport& islands,
                                     const MeasurementSet& set) {
  MaskedMeasurements out;
  out.active.timestamp = set.timestamp;
  out.active.items.reserve(set.items.size());
  for (const Measurement& m : set.items) {
    switch (m.type) {
      case MeasType::kPFlow:
      case MeasType::kQFlow: {
        const Branch& br = network.branch(static_cast<std::size_t>(m.branch));
        if (!br.in_service) {
          ++out.masked_out_of_service;
          continue;
        }
        // An in-service branch inside a de-energized island (isolated by
        // remote switching) carries no real flow either.
        if (!islands.bus_energized(br.from) || !islands.bus_energized(br.to)) {
          ++out.masked_deenergized;
          continue;
        }
        break;
      }
      case MeasType::kPInjection:
      case MeasType::kQInjection:
      case MeasType::kVMag:
      case MeasType::kVAngle:
        if (!islands.bus_energized(m.bus)) {
          ++out.masked_deenergized;
          continue;
        }
        break;
    }
    out.active.items.push_back(m);
  }
  return out;
}

std::size_t append_anchor_measurements(const Network& network,
                                       const IslandReport& islands,
                                       std::span<const int> group_of_bus,
                                       const GridState& prior,
                                       MeasurementSet& set,
                                       const AnchorOptions& options) {
  const BusIndex n = network.num_buses();
  GRIDSE_CHECK(group_of_bus.size() == static_cast<std::size_t>(n));
  std::size_t appended = 0;

  // Angle/magnitude coverage of the pre-anchor set: a component with any
  // angle measurement (PMU or pseudo) already has its reference
  // observable, one with any |V| measurement has its voltage level
  // observable.
  std::vector<char> has_angle(static_cast<std::size_t>(n), 0);
  std::vector<char> has_vmag(static_cast<std::size_t>(n), 0);
  for (const Measurement& m : set.items) {
    if (m.type == MeasType::kVAngle) {
      has_angle[static_cast<std::size_t>(m.bus)] = 1;
    } else if (m.type == MeasType::kVMag) {
      has_vmag[static_cast<std::size_t>(m.bus)] = 1;
    }
  }

  // (a) De-energized buses: dead metal pinned to |V| = 0, θ = 0. Their
  // real measurements were masked, so without these pins the gain matrix
  // is singular in every dead bus's variables.
  for (BusIndex i = 0; i < n; ++i) {
    if (islands.bus_energized(i)) continue;
    set.items.push_back({MeasType::kVMag, i, -1, true, 0.0,
                         options.dead_sigma});
    set.items.push_back({MeasType::kVAngle, i, -1, true, 0.0,
                         options.dead_sigma});
    appended += 2;
  }

  // (b) Live components of each group's internal subgraph: one θ anchor
  // per energized component with no angle measurement. Components are
  // discovered in ascending bus order → deterministic anchors.
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (BusIndex start = 0; start < n; ++start) {
    if (seen[static_cast<std::size_t>(start)] != 0) continue;
    const int group = group_of_bus[static_cast<std::size_t>(start)];
    std::vector<BusIndex> members;
    std::queue<BusIndex> q;
    q.push(start);
    seen[static_cast<std::size_t>(start)] = 1;
    while (!q.empty()) {
      const BusIndex u = q.front();
      q.pop();
      members.push_back(u);
      for (const std::size_t bi : network.branches_at(u)) {
        const Branch& br = network.branch(bi);
        if (!br.in_service) continue;
        const BusIndex v = (br.from == u) ? br.to : br.from;
        if (group_of_bus[static_cast<std::size_t>(v)] != group ||
            seen[static_cast<std::size_t>(v)] != 0) {
          continue;
        }
        seen[static_cast<std::size_t>(v)] = 1;
        q.push(v);
      }
    }
    // A component lies inside one island, so energization is uniform.
    if (!islands.bus_energized(start)) continue;
    bool covered_angle = false;
    bool covered_vmag = false;
    for (const BusIndex b : members) {
      covered_angle =
          covered_angle || has_angle[static_cast<std::size_t>(b)] != 0;
      covered_vmag =
          covered_vmag || has_vmag[static_cast<std::size_t>(b)] != 0;
      if (covered_angle && covered_vmag) break;
    }
    if (covered_angle && covered_vmag) continue;
    // Anchor at the island reference when this component holds it — truth
    // pins that bus to θ = 0, so the angle anchor is exact. Otherwise fall
    // back to the lowest member with the prior estimate's angle
    // (continuity).
    const auto island = static_cast<std::size_t>(
        islands.island_of_bus[static_cast<std::size_t>(start)]);
    const BusIndex ref = islands.reference_bus[island];
    BusIndex anchor_bus = start;  // lowest member: BFS started there
    double theta_value = 0.0;
    if (std::find(members.begin(), members.end(), ref) != members.end()) {
      anchor_bus = ref;
    } else if (static_cast<BusIndex>(prior.theta.size()) == n) {
      theta_value = prior.theta[static_cast<std::size_t>(anchor_bus)];
    }
    if (!covered_angle) {
      set.items.push_back({MeasType::kVAngle, anchor_bus, -1, true,
                           theta_value, options.angle_sigma});
      ++appended;
    }
    if (!covered_vmag) {
      // The voltage level is unobservable from P/Q telemetry alone: hold
      // the component at the prior estimate's magnitude.
      const double vm_value =
          static_cast<BusIndex>(prior.vm.size()) == n
              ? prior.vm[static_cast<std::size_t>(anchor_bus)]
              : 1.0;
      set.items.push_back({MeasType::kVMag, anchor_bus, -1, true, vm_value,
                           options.vm_sigma});
      ++appended;
    }
  }
  return appended;
}

DcPowerFlow solve_dc_power_flow_islands(const Network& network,
                                        const IslandReport& islands) {
  const BusIndex n = network.num_buses();
  GRIDSE_CHECK(islands.island_of_bus.size() == static_cast<std::size_t>(n));

  // Reduced index over energized, non-reference buses. Each energized
  // island contributes one block of the (block-diagonal) reduced B'.
  std::vector<std::int32_t> red(static_cast<std::size_t>(n), -1);
  std::int32_t next = 0;
  for (BusIndex i = 0; i < n; ++i) {
    const auto island = static_cast<std::size_t>(
        islands.island_of_bus[static_cast<std::size_t>(i)]);
    if (islands.energized[island] == 0) continue;
    if (islands.reference_bus[island] == i) continue;
    red[static_cast<std::size_t>(i)] = next++;
  }

  DcPowerFlow result;
  result.theta.assign(static_cast<std::size_t>(n), 0.0);
  result.flows.assign(network.num_branches(), 0.0);
  if (next > 0) {
    std::vector<sparse::Triplet<double>> triplets;
    for (std::size_t bi = 0; bi < network.num_branches(); ++bi) {
      const Branch& br = network.branch(bi);
      if (!br.in_service) continue;
      if (!islands.bus_energized(br.from)) continue;  // dead island: no flow
      GRIDSE_CHECK_MSG(br.x != 0.0,
                       "DC power flow requires nonzero reactance");
      const double b = 1.0 / br.x;
      const auto rf = red[static_cast<std::size_t>(br.from)];
      const auto rt = red[static_cast<std::size_t>(br.to)];
      if (rf >= 0) triplets.push_back({rf, rf, b});
      if (rt >= 0) triplets.push_back({rt, rt, b});
      if (rf >= 0 && rt >= 0) {
        triplets.push_back({rf, rt, -b});
        triplets.push_back({rt, rf, -b});
      }
    }
    const auto dim = static_cast<sparse::Index>(next);
    const sparse::Csr bmat =
        sparse::Csr::from_triplets(dim, dim, std::move(triplets));
    std::vector<double> p(static_cast<std::size_t>(dim), 0.0);
    for (BusIndex i = 0; i < n; ++i) {
      const auto ri = red[static_cast<std::size_t>(i)];
      if (ri < 0) continue;
      p[static_cast<std::size_t>(ri)] = network.scheduled_injection(i).first;
    }
    sparse::SparseLdlt ldlt;
    ldlt.factorize(bmat);
    const std::vector<double> theta_red = ldlt.solve(p);
    for (BusIndex i = 0; i < n; ++i) {
      const auto ri = red[static_cast<std::size_t>(i)];
      if (ri >= 0) {
        result.theta[static_cast<std::size_t>(i)] =
            theta_red[static_cast<std::size_t>(ri)];
      }
    }
  }
  for (std::size_t bi = 0; bi < network.num_branches(); ++bi) {
    const Branch& br = network.branch(bi);
    if (!br.in_service || !islands.bus_energized(br.from)) continue;
    result.flows[bi] = (result.theta[static_cast<std::size_t>(br.from)] -
                        result.theta[static_cast<std::size_t>(br.to)]) /
                       br.x;
  }
  return result;
}

}  // namespace gridse::grid
