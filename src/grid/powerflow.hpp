#pragma once

#include "grid/network.hpp"
#include "grid/state.hpp"
#include "grid/ybus.hpp"

namespace gridse::grid {

struct PowerFlowOptions {
  double tolerance = 1e-10;  ///< max |mismatch| in p.u.
  int max_iterations = 30;
  bool flat_start = true;
};

struct PowerFlowResult {
  GridState state;
  bool converged = false;
  int iterations = 0;
  double max_mismatch = 0.0;
};

/// Full-Newton AC power flow in polar coordinates. Produces the "true"
/// operating state that the measurement generator samples from; mirrors the
/// role of the real grid + SCADA in the paper's testbed.
/// Throws ConvergenceFailure when the iteration diverges numerically (NaN),
/// but returns converged=false (not a throw) when it merely runs out of
/// iterations, so callers can retry with a different start.
PowerFlowResult solve_power_flow(const Network& network,
                                 const PowerFlowOptions& options = {});

/// Complex power injections S_i = V_i (Y V)*_i for all buses at `state`.
/// Returns (P, Q) vectors; used by tests to verify power-flow consistency
/// and by the measurement model as the injection reference.
std::pair<std::vector<double>, std::vector<double>> bus_injections(
    const sparse::CsrComplex& ybus, const GridState& state);

}  // namespace gridse::grid
