#include "grid/dc_powerflow.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "sparse/csr.hpp"
#include "sparse/ldlt.hpp"
#include "util/error.hpp"

namespace gridse::grid {
namespace {

bool connected_without(const Network& network,
                       const std::set<std::size_t>& outaged) {
  const BusIndex n = network.num_buses();
  if (n <= 1) return true;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::queue<BusIndex> q;
  q.push(0);
  seen[0] = true;
  BusIndex count = 1;
  while (!q.empty()) {
    const BusIndex u = q.front();
    q.pop();
    for (const std::size_t bi : network.branches_at(u)) {
      if (outaged.count(bi) > 0) continue;
      const Branch& br = network.branch(bi);
      const BusIndex v = (br.from == u) ? br.to : br.from;
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++count;
        q.push(v);
      }
    }
  }
  return count == n;
}

}  // namespace

std::optional<DcPowerFlow> solve_dc_power_flow(
    const Network& network, const std::vector<std::size_t>& outaged) {
  network.validate();
  const std::set<std::size_t> out(outaged.begin(), outaged.end());
  for (const std::size_t bi : out) {
    GRIDSE_CHECK_MSG(bi < network.num_branches(),
                     "outaged branch index out of range");
  }
  if (!connected_without(network, out)) {
    return std::nullopt;
  }

  const BusIndex n = network.num_buses();
  const BusIndex slack = network.slack_bus();
  // reduced index: all buses except slack
  std::vector<std::int32_t> red(static_cast<std::size_t>(n), -1);
  std::int32_t next = 0;
  for (BusIndex i = 0; i < n; ++i) {
    if (i != slack) red[static_cast<std::size_t>(i)] = next++;
  }

  // B' matrix over susceptances 1/x (taps/charging ignored in DC).
  std::vector<sparse::Triplet<double>> triplets;
  for (std::size_t bi = 0; bi < network.num_branches(); ++bi) {
    if (out.count(bi) > 0) continue;
    const Branch& br = network.branch(bi);
    GRIDSE_CHECK_MSG(br.x != 0.0, "DC power flow requires nonzero reactance");
    const double b = 1.0 / br.x;
    const auto rf = red[static_cast<std::size_t>(br.from)];
    const auto rt = red[static_cast<std::size_t>(br.to)];
    if (rf >= 0) triplets.push_back({rf, rf, b});
    if (rt >= 0) triplets.push_back({rt, rt, b});
    if (rf >= 0 && rt >= 0) {
      triplets.push_back({rf, rt, -b});
      triplets.push_back({rt, rf, -b});
    }
  }
  const auto dim = static_cast<sparse::Index>(n - 1);
  const sparse::Csr bmat =
      sparse::Csr::from_triplets(dim, dim, std::move(triplets));

  std::vector<double> p(static_cast<std::size_t>(dim), 0.0);
  for (BusIndex i = 0; i < n; ++i) {
    const auto ri = red[static_cast<std::size_t>(i)];
    if (ri < 0) continue;
    p[static_cast<std::size_t>(ri)] = network.scheduled_injection(i).first;
  }

  sparse::SparseLdlt ldlt;
  ldlt.factorize(bmat);
  const std::vector<double> theta_red = ldlt.solve(p);

  DcPowerFlow result;
  result.theta.assign(static_cast<std::size_t>(n), 0.0);
  for (BusIndex i = 0; i < n; ++i) {
    const auto ri = red[static_cast<std::size_t>(i)];
    if (ri >= 0) {
      result.theta[static_cast<std::size_t>(i)] =
          theta_red[static_cast<std::size_t>(ri)];
    }
  }
  result.flows.assign(network.num_branches(), 0.0);
  for (std::size_t bi = 0; bi < network.num_branches(); ++bi) {
    if (out.count(bi) > 0) continue;
    const Branch& br = network.branch(bi);
    result.flows[bi] =
        (result.theta[static_cast<std::size_t>(br.from)] -
         result.theta[static_cast<std::size_t>(br.to)]) /
        br.x;
  }
  return result;
}

DcPowerFlow assign_ratings_from_base_case(Network& network, double margin,
                                          double min_rating) {
  GRIDSE_CHECK_MSG(margin > 1.0, "rating margin must exceed 1");
  const auto base = solve_dc_power_flow(network);
  GRIDSE_CHECK_MSG(base.has_value(), "base case must be connected");
  for (std::size_t bi = 0; bi < network.num_branches(); ++bi) {
    network.set_branch_rating(
        bi, std::max(min_rating, margin * std::abs(base->flows[bi])));
  }
  return *base;
}

}  // namespace gridse::grid
