#include "grid/network.hpp"

#include <queue>

#include "util/error.hpp"

namespace gridse::grid {

BusIndex Network::add_bus(Bus bus) {
  const auto idx = static_cast<BusIndex>(buses_.size());
  const auto [it, inserted] = external_index_.emplace(bus.external_id, idx);
  if (!inserted) {
    throw InvalidInput("duplicate external bus id " +
                       std::to_string(bus.external_id));
  }
  buses_.push_back(std::move(bus));
  incident_.emplace_back();
  return idx;
}

void Network::add_branch(Branch branch) {
  if (branch.from < 0 || branch.from >= num_buses() || branch.to < 0 ||
      branch.to >= num_buses()) {
    throw InvalidInput("branch endpoint out of range");
  }
  if (branch.from == branch.to) {
    throw InvalidInput("branch endpoints must differ");
  }
  if (branch.r == 0.0 && branch.x == 0.0) {
    throw InvalidInput("branch has zero series impedance");
  }
  if (branch.tap <= 0.0) {
    throw InvalidInput("branch tap ratio must be positive");
  }
  const auto idx = branches_.size();
  branches_.push_back(branch);
  incident_[static_cast<std::size_t>(branch.from)].push_back(idx);
  incident_[static_cast<std::size_t>(branch.to)].push_back(idx);
}

void Network::add_generation(BusIndex i, double p_gen, double q_gen) {
  GRIDSE_CHECK(i >= 0 && i < num_buses());
  buses_[static_cast<std::size_t>(i)].p_gen += p_gen;
  buses_[static_cast<std::size_t>(i)].q_gen += q_gen;
}

void Network::set_bus_type(BusIndex i, BusType type, double v_setpoint) {
  GRIDSE_CHECK(i >= 0 && i < num_buses());
  GRIDSE_CHECK_MSG(v_setpoint > 0.0, "voltage setpoint must be positive");
  buses_[static_cast<std::size_t>(i)].type = type;
  buses_[static_cast<std::size_t>(i)].v_setpoint = v_setpoint;
}

void Network::scale_loads(double factor) {
  GRIDSE_CHECK_MSG(factor > 0.0, "load scale factor must be positive");
  for (Bus& b : buses_) {
    b.p_load *= factor;
    b.q_load *= factor;
    b.p_gen *= factor;
    b.q_gen *= factor;
  }
}

void Network::set_branch_rating(std::size_t i, double rating) {
  GRIDSE_CHECK(i < branches_.size());
  GRIDSE_CHECK_MSG(rating >= 0.0, "branch rating must be nonnegative");
  branches_[i].rating = rating;
}

void Network::set_branch_in_service(std::size_t i, bool in_service) {
  GRIDSE_CHECK(i < branches_.size());
  branches_[i].in_service = in_service;
}

const Bus& Network::bus(BusIndex i) const {
  GRIDSE_CHECK(i >= 0 && i < num_buses());
  return buses_[static_cast<std::size_t>(i)];
}

const Branch& Network::branch(std::size_t i) const {
  GRIDSE_CHECK(i < branches_.size());
  return branches_[i];
}

BusIndex Network::index_of(int external_id) const {
  const auto it = external_index_.find(external_id);
  if (it == external_index_.end()) {
    throw InvalidInput("unknown external bus id " +
                       std::to_string(external_id));
  }
  return it->second;
}

BusIndex Network::slack_bus() const {
  BusIndex slack = -1;
  for (BusIndex i = 0; i < num_buses(); ++i) {
    if (buses_[static_cast<std::size_t>(i)].type == BusType::kSlack) {
      if (slack >= 0) {
        throw InvalidInput("network has more than one slack bus");
      }
      slack = i;
    }
  }
  if (slack < 0) {
    throw InvalidInput("network has no slack bus");
  }
  return slack;
}

const std::vector<std::size_t>& Network::branches_at(BusIndex i) const {
  GRIDSE_CHECK(i >= 0 && i < num_buses());
  return incident_[static_cast<std::size_t>(i)];
}

std::pair<double, double> Network::scheduled_injection(BusIndex i) const {
  const Bus& b = bus(i);
  return {b.p_gen - b.p_load, b.q_gen - b.q_load};
}

bool Network::connected() const {
  const BusIndex n = num_buses();
  if (n <= 1) return true;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::queue<BusIndex> q;
  q.push(0);
  seen[0] = true;
  BusIndex count = 1;
  while (!q.empty()) {
    const BusIndex u = q.front();
    q.pop();
    for (const std::size_t bi : branches_at(u)) {
      const Branch& br = branches_[bi];
      const BusIndex v = (br.from == u) ? br.to : br.from;
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++count;
        q.push(v);
      }
    }
  }
  return count == n;
}

void Network::validate() const {
  if (num_buses() == 0) {
    throw InvalidInput("network has no buses");
  }
  (void)slack_bus();  // throws unless exactly one
  if (!connected()) {
    throw InvalidInput("network is not connected");
  }
}

}  // namespace gridse::grid
