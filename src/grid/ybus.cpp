#include "grid/ybus.hpp"

namespace gridse::grid {

BranchAdmittance branch_admittance(const Branch& branch) {
  using C = std::complex<double>;
  const C y = 1.0 / C(branch.r, branch.x);
  const C ysh(0.0, branch.b_charging / 2.0);
  const double t = branch.tap;
  // complex tap: t * e^{j*shift}; from-side is the tapped side (MATPOWER
  // convention)
  const C tap = std::polar(t, branch.phase_shift);
  BranchAdmittance a;
  a.yff = (y + ysh) / (t * t);
  a.yft = -y / std::conj(tap);
  a.ytf = -y / tap;
  a.ytt = y + ysh;
  return a;
}

sparse::CsrComplex build_ybus(const Network& network) {
  using C = std::complex<double>;
  const auto n = network.num_buses();
  std::vector<sparse::Triplet<C>> triplets;
  triplets.reserve(network.num_branches() * 4 + static_cast<std::size_t>(n));
  for (const Branch& br : network.branches()) {
    // Out-of-service branches contribute explicit zeros: the sparsity
    // pattern is identical for every switching state, so incremental
    // updates (LiveTopology) can patch values in place and symbolic
    // solver plans keyed on the pattern stay valid across switching.
    const BranchAdmittance a =
        br.in_service ? branch_admittance(br) : BranchAdmittance{};
    triplets.push_back({br.from, br.from, a.yff});
    triplets.push_back({br.from, br.to, a.yft});
    triplets.push_back({br.to, br.from, a.ytf});
    triplets.push_back({br.to, br.to, a.ytt});
  }
  for (BusIndex i = 0; i < n; ++i) {
    const Bus& b = network.bus(i);
    if (b.gs != 0.0 || b.bs != 0.0) {
      triplets.push_back({i, i, C(b.gs, b.bs)});
    }
  }
  return sparse::CsrComplex::from_triplets(n, n, std::move(triplets));
}

}  // namespace gridse::grid
