#pragma once

#include <string>
#include <vector>

#include "grid/network.hpp"

namespace gridse::grid {

/// Measurement kinds the estimator understands. The paper's data resources
/// are "power flow-injections and voltage magnitudes" plus PMU phasor data
/// (§II); pseudo-measurements carry neighbour solutions in DSE Step 2.
enum class MeasType : std::uint8_t {
  kPFlow,       ///< active power flow on a branch, measured at the from side
  kQFlow,       ///< reactive power flow on a branch, from side
  kPInjection,  ///< net active injection at a bus
  kQInjection,  ///< net reactive injection at a bus
  kVMag,        ///< voltage magnitude at a bus
  kVAngle       ///< voltage angle at a bus (PMU / pseudo-measurement)
};

[[nodiscard]] const char* meas_type_name(MeasType type);

/// One telemetered (or pseudo) measurement.
struct Measurement {
  MeasType type = MeasType::kVMag;
  /// Bus the measurement refers to (for flows: the metering end).
  BusIndex bus = -1;
  /// Branch index for flow measurements; -1 otherwise.
  std::int32_t branch = -1;
  /// True for flows metered at the branch's `from` end, false for `to`.
  bool at_from_side = true;
  /// Telemetered value, p.u. (angles in radians).
  double value = 0.0;
  /// Measurement standard deviation; WLS weight is 1/sigma².
  double sigma = 1.0;
};

/// A tagged set of measurements for one scan/time frame.
struct MeasurementSet {
  std::vector<Measurement> items;
  /// Scan timestamp in seconds (the paper's time frame δt anchor).
  double timestamp = 0.0;

  [[nodiscard]] std::size_t size() const { return items.size(); }

  /// WLS weights 1/sigma² in measurement order.
  [[nodiscard]] std::vector<double> weights() const;

  /// Telemetered values in measurement order.
  [[nodiscard]] std::vector<double> values() const;
};

/// Validate measurement/branch/bus references against `network`;
/// throws InvalidInput with a description of the first offending item.
void validate_measurements(const Network& network, const MeasurementSet& set);

}  // namespace gridse::grid
