#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "grid/dc_powerflow.hpp"
#include "grid/measurement.hpp"
#include "grid/network.hpp"
#include "grid/state.hpp"
#include "sparse/csr.hpp"

namespace gridse::grid {

/// Switching events a grid operator (or a replay plan) can apply to the
/// live network. Line events model protection trips and repairs; breaker
/// events model deliberate switching; bus split/merge model substation
/// reconfiguration by opening/closing every breaker at one bus.
enum class TopologyEventKind : std::uint8_t {
  kLineOutage,    ///< protection trip: branch forced out, overrides breakers
  kLineRestore,   ///< repair complete: clears a fault outage
  kBreakerOpen,   ///< deliberate open of one in-service branch
  kBreakerClose,  ///< reclose one breaker-opened branch
  kBusSplit,      ///< open every in-service branch at a bus (isolates it)
  kBusMerge       ///< reclose every breaker-opened branch at a bus
};

[[nodiscard]] const char* topology_event_kind_name(TopologyEventKind kind);

/// One switching event. Line/breaker events address a branch; bus
/// split/merge address a bus (branch stays -1 and vice versa).
struct TopologyEvent {
  TopologyEventKind kind = TopologyEventKind::kLineOutage;
  std::int32_t branch = -1;
  BusIndex bus = -1;

  bool operator==(const TopologyEvent&) const = default;
};

/// Live status of one branch. A fault outage dominates breaker state:
/// breaker close/merge cannot re-energize a faulted line, only
/// kLineRestore can.
enum class BranchStatus : std::uint8_t {
  kInService,
  kFaultOutage,
  kBreakerOpen
};

/// Connected components of the live (in-service) network, with a
/// deterministic per-island reference-bus assignment so every island can
/// pin its own angle reference instead of diverging on a singular gain.
struct IslandReport {
  /// Island id of every bus; ids are dense, assigned in ascending order of
  /// each island's lowest bus index (island 0 contains bus 0).
  std::vector<std::int32_t> island_of_bus;
  std::int32_t num_islands = 0;
  /// Per-island angle reference: the slack bus when the island holds it,
  /// otherwise the generator (PV) bus with the largest scheduled p_gen
  /// (ties to the lowest index), otherwise the island's lowest bus.
  std::vector<BusIndex> reference_bus;
  /// Per-island energization: true when the island holds the slack bus or
  /// any PV generator. De-energized islands are dead metal: |V| = 0.
  std::vector<char> energized;

  [[nodiscard]] bool bus_energized(BusIndex bus) const {
    return energized[static_cast<std::size_t>(
               island_of_bus[static_cast<std::size_t>(bus)])] != 0;
  }
};

/// Connected components over in-service branches only. BFS in ascending
/// bus order, so island ids, member order and reference choices are
/// deterministic for a given switching state.
[[nodiscard]] IslandReport find_islands(const Network& network);

/// Maintains the live switching state of a network plus an incrementally
/// updated Ybus. The Ybus pattern covers all branches (out-of-service ones
/// hold explicit zeros, see build_ybus), so status flips patch values in
/// place — no re-assembly, and pattern-keyed symbolic solver plans stay
/// valid across switching.
class LiveTopology {
 public:
  /// Binds to `network` (not owned; must outlive this object). Existing
  /// out-of-service branches are adopted as kFaultOutage.
  explicit LiveTopology(Network& network);

  /// Apply one event to the network. Returns the indices of branches whose
  /// live status actually flipped, in ascending order — empty when the
  /// event was a no-op (e.g. restoring a line that is not faulted).
  /// Throws InvalidInput on an out-of-range branch/bus.
  std::vector<std::size_t> apply(const TopologyEvent& event);

  [[nodiscard]] BranchStatus status(std::size_t branch) const;
  [[nodiscard]] const Network& network() const { return *network_; }
  [[nodiscard]] const sparse::CsrComplex& ybus() const { return ybus_; }
  [[nodiscard]] std::size_t num_out_of_service() const;

  [[nodiscard]] IslandReport islands() const {
    return find_islands(*network_);
  }

 private:
  /// Transition branch to `next`, patching the Ybus when the in-service
  /// bit flips. Returns true when the status changed.
  bool transition(std::size_t branch, BranchStatus next);
  void apply_admittance_delta(std::size_t branch, double sign);

  Network* network_;
  std::vector<BranchStatus> status_;
  sparse::CsrComplex ybus_;
};

/// Result of masking a measurement set against the live topology.
struct MaskedMeasurements {
  MeasurementSet active;
  /// Flow measurements dropped because their branch is out of service.
  std::size_t masked_out_of_service = 0;
  /// Measurements dropped because their bus (or either flow endpoint) sits
  /// in a de-energized island.
  std::size_t masked_deenergized = 0;

  [[nodiscard]] std::size_t total_masked() const {
    return masked_out_of_service + masked_deenergized;
  }
};

/// Drop measurements on de-energized equipment: flows on open branches and
/// anything metered at (or flowing toward) a dead bus. The returned active
/// set is what may enter the estimator's residual; order is preserved.
[[nodiscard]] MaskedMeasurements mask_measurements(const Network& network,
                                                   const IslandReport& islands,
                                                   const MeasurementSet& set);

/// Pseudo-measurement pinning so every estimation group keeps a
/// nonsingular gain matrix under islanding.
struct AnchorOptions {
  /// Sigma of the pseudo angle anchors added to unobserved components.
  double angle_sigma = 1e-4;
  /// Sigma of the |V|=0 / θ=0 pins on de-energized buses.
  double dead_sigma = 1e-4;
  /// Sigma of the |V| anchors on live components whose voltage-magnitude
  /// telemetry was entirely masked away (the level is unobservable from
  /// P/Q alone — without an anchor the island's |V| profile drifts).
  double vm_sigma = 1e-4;
};

/// Append pseudo measurements to `set`: (a) |V| = 0 and θ = 0 pins at
/// every de-energized bus; (b) per live connected component of each
/// group's internal subgraph, one θ anchor when it carries no angle
/// measurement in `set` — at the island reference bus (value 0, matching
/// the per-island truth pinning) when the component holds it, otherwise at
/// the component's lowest bus with the prior estimate's angle — and one
/// |V| anchor (prior estimate's magnitude at the same bus) when it carries
/// no magnitude measurement. `group_of_bus` maps each bus to its
/// estimation group (subsystem); pass all-zeros for a single global
/// estimation. Returns the number of pseudo measurements appended.
/// Deterministic for a given input.
std::size_t append_anchor_measurements(const Network& network,
                                       const IslandReport& islands,
                                       std::span<const int> group_of_bus,
                                       const GridState& prior,
                                       MeasurementSet& set,
                                       const AnchorOptions& options = {});

/// DC power flow of the live, possibly islanded network: each energized
/// island is solved with its own reference pinned to θ = 0; de-energized
/// islands get θ = 0 and zero flows. Never fails on islanding — this is
/// the graceful-degradation truth model for topology replay.
[[nodiscard]] DcPowerFlow solve_dc_power_flow_islands(
    const Network& network, const IslandReport& islands);

}  // namespace gridse::grid
