#pragma once

#include <span>
#include <vector>

#include "grid/state.hpp"

namespace gridse::grid {

/// Boundary/internal split of a reduced state vector: the positions in
/// x = [θ(non-reference), |V|(all)] belonging to a given set of boundary
/// buses, plus the per-bus slots to recover which position is which. This is
/// the B-block of the Schur condensation (sparse::schur_condense); every
/// other position is internal.
struct BoundarySplit {
  /// Boundary state positions, ascending and unique.
  std::vector<std::int32_t> positions;
  /// Per input bus: index into `positions` of its θ entry, or -1 when the
  /// bus is the angle reference (its θ is not a state).
  std::vector<std::int32_t> theta_slot;
  /// Per input bus: index into `positions` of its |V| entry.
  std::vector<std::int32_t> vm_slot;
};

/// Compute the split of `index`'s state vector for `boundary_buses` (local
/// numbering of the same network; duplicates not allowed). Throws
/// InvalidInput on out-of-range or duplicate buses.
[[nodiscard]] BoundarySplit split_boundary_states(
    const StateIndex& index, std::span<const BusIndex> boundary_buses);

}  // namespace gridse::grid
