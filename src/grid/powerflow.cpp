#include "grid/powerflow.hpp"

#include <cmath>

#include "sparse/dense.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace gridse::grid {

std::pair<std::vector<double>, std::vector<double>> bus_injections(
    const sparse::CsrComplex& ybus, const GridState& state) {
  using C = std::complex<double>;
  const auto n = static_cast<std::size_t>(ybus.rows());
  GRIDSE_CHECK(state.theta.size() == n);
  std::vector<C> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::polar(state.vm[i], state.theta[i]);
  }
  std::vector<C> iv(n);
  ybus.multiply(v, iv);
  std::vector<double> p(n);
  std::vector<double> q(n);
  for (std::size_t i = 0; i < n; ++i) {
    const C s = v[i] * std::conj(iv[i]);
    p[i] = s.real();
    q[i] = s.imag();
  }
  return {std::move(p), std::move(q)};
}

PowerFlowResult solve_power_flow(const Network& network,
                                 const PowerFlowOptions& options) {
  network.validate();
  const BusIndex n = network.num_buses();
  const auto ybus = build_ybus(network);
  const BusIndex slack = network.slack_bus();

  PowerFlowResult result;
  result.state = GridState(n);
  GridState& st = result.state;
  if (options.flat_start) {
    for (BusIndex i = 0; i < n; ++i) {
      const Bus& b = network.bus(i);
      st.vm[static_cast<std::size_t>(i)] =
          (b.type == BusType::kPQ) ? 1.0 : b.v_setpoint;
    }
  }

  // Unknown layout: angles of all non-slack buses, then magnitudes of PQ
  // buses.
  std::vector<BusIndex> ang_buses;
  std::vector<BusIndex> mag_buses;
  for (BusIndex i = 0; i < n; ++i) {
    if (i != slack) ang_buses.push_back(i);
    if (network.bus(i).type == BusType::kPQ) mag_buses.push_back(i);
  }
  const std::size_t na = ang_buses.size();
  const std::size_t nm = mag_buses.size();
  const std::size_t dim = na + nm;
  if (dim == 0) {
    result.converged = true;
    return result;
  }

  std::vector<std::int32_t> ang_pos(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> mag_pos(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < na; ++i) {
    ang_pos[static_cast<std::size_t>(ang_buses[i])] =
        static_cast<std::int32_t>(i);
  }
  for (std::size_t i = 0; i < nm; ++i) {
    mag_pos[static_cast<std::size_t>(mag_buses[i])] =
        static_cast<std::int32_t>(na + i);
  }

  const auto g_of = [&](BusIndex i, BusIndex j) {
    return ybus.value_at(i, j).real();
  };
  const auto b_of = [&](BusIndex i, BusIndex j) {
    return ybus.value_at(i, j).imag();
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const auto [p_calc, q_calc] = bus_injections(ybus, st);

    // mismatch vector: ΔP for non-slack, ΔQ for PQ
    std::vector<double> mismatch(dim, 0.0);
    double max_mis = 0.0;
    for (std::size_t i = 0; i < na; ++i) {
      const BusIndex b = ang_buses[i];
      const auto [ps, qs] = network.scheduled_injection(b);
      mismatch[i] = ps - p_calc[static_cast<std::size_t>(b)];
      max_mis = std::max(max_mis, std::abs(mismatch[i]));
      (void)qs;
    }
    for (std::size_t i = 0; i < nm; ++i) {
      const BusIndex b = mag_buses[i];
      const auto [ps, qs] = network.scheduled_injection(b);
      mismatch[na + i] = qs - q_calc[static_cast<std::size_t>(b)];
      max_mis = std::max(max_mis, std::abs(mismatch[na + i]));
      (void)ps;
    }
    result.max_mismatch = max_mis;
    result.iterations = iter;
    if (max_mis < options.tolerance) {
      result.converged = true;
      return result;
    }
    if (!std::isfinite(max_mis)) {
      throw ConvergenceFailure("power flow diverged (non-finite mismatch)");
    }

    // Jacobian, dense (the power-flow substrate is only exercised on
    // case-study-sized networks; the estimator's solve path is the sparse
    // one).
    sparse::DenseMatrix jac(dim, dim);
    for (BusIndex i = 0; i < n; ++i) {
      const std::size_t iu = static_cast<std::size_t>(i);
      const double vi = st.vm[iu];
      const auto row_p = ang_pos[iu];
      const auto row_q = mag_pos[iu];
      if (row_p < 0 && row_q < 0) continue;
      const auto [rb, re] = ybus.row_range(i);
      const auto cols = ybus.col_idx();
      for (auto k = rb; k < re; ++k) {
        const BusIndex j = cols[static_cast<std::size_t>(k)];
        const std::size_t ju = static_cast<std::size_t>(j);
        const double vj = st.vm[ju];
        const double gij = g_of(i, j);
        const double bij = b_of(i, j);
        const double dth = st.theta[iu] - st.theta[ju];
        const double c = std::cos(dth);
        const double s = std::sin(dth);
        const auto col_a = ang_pos[ju];
        const auto col_m = mag_pos[ju];
        if (i == j) {
          const double pi = p_calc[iu];
          const double qi = q_calc[iu];
          if (row_p >= 0 && col_a >= 0) {
            jac(static_cast<std::size_t>(row_p), static_cast<std::size_t>(col_a)) =
                -qi - bij * vi * vi;
          }
          if (row_p >= 0 && col_m >= 0) {
            jac(static_cast<std::size_t>(row_p), static_cast<std::size_t>(col_m)) =
                pi / vi + gij * vi;
          }
          if (row_q >= 0 && col_a >= 0) {
            jac(static_cast<std::size_t>(row_q), static_cast<std::size_t>(col_a)) =
                pi - gij * vi * vi;
          }
          if (row_q >= 0 && col_m >= 0) {
            jac(static_cast<std::size_t>(row_q), static_cast<std::size_t>(col_m)) =
                qi / vi - bij * vi;
          }
        } else {
          const double dp_dth = vi * vj * (gij * s - bij * c);
          const double dp_dv = vi * (gij * c + bij * s);
          const double dq_dth = -vi * vj * (gij * c + bij * s);
          const double dq_dv = vi * (gij * s - bij * c);
          if (row_p >= 0 && col_a >= 0) {
            jac(static_cast<std::size_t>(row_p),
                static_cast<std::size_t>(col_a)) = dp_dth;
          }
          if (row_p >= 0 && col_m >= 0) {
            jac(static_cast<std::size_t>(row_p),
                static_cast<std::size_t>(col_m)) = dp_dv;
          }
          if (row_q >= 0 && col_a >= 0) {
            jac(static_cast<std::size_t>(row_q),
                static_cast<std::size_t>(col_a)) = dq_dth;
          }
          if (row_q >= 0 && col_m >= 0) {
            jac(static_cast<std::size_t>(row_q),
                static_cast<std::size_t>(col_m)) = dq_dv;
          }
        }
      }
    }

    const std::vector<double> dx = jac.solve_lu(mismatch);
    for (std::size_t i = 0; i < na; ++i) {
      st.theta[static_cast<std::size_t>(ang_buses[i])] += dx[i];
    }
    for (std::size_t i = 0; i < nm; ++i) {
      st.vm[static_cast<std::size_t>(mag_buses[i])] += dx[na + i];
    }
  }
  GRIDSE_WARN << "power flow did not converge in " << options.max_iterations
              << " iterations (mismatch " << result.max_mismatch << ")";
  return result;
}

}  // namespace gridse::grid
