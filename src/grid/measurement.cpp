#include "grid/measurement.hpp"

#include "util/error.hpp"

namespace gridse::grid {

const char* meas_type_name(MeasType type) {
  switch (type) {
    case MeasType::kPFlow:
      return "P_flow";
    case MeasType::kQFlow:
      return "Q_flow";
    case MeasType::kPInjection:
      return "P_inj";
    case MeasType::kQInjection:
      return "Q_inj";
    case MeasType::kVMag:
      return "V_mag";
    case MeasType::kVAngle:
      return "V_angle";
  }
  return "unknown";
}

std::vector<double> MeasurementSet::weights() const {
  std::vector<double> w(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    GRIDSE_CHECK_MSG(items[i].sigma > 0.0, "measurement sigma must be positive");
    w[i] = 1.0 / (items[i].sigma * items[i].sigma);
  }
  return w;
}

std::vector<double> MeasurementSet::values() const {
  std::vector<double> v(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    v[i] = items[i].value;
  }
  return v;
}

void validate_measurements(const Network& network, const MeasurementSet& set) {
  for (std::size_t i = 0; i < set.items.size(); ++i) {
    const Measurement& m = set.items[i];
    const std::string at = "measurement " + std::to_string(i) + " (" +
                           meas_type_name(m.type) + ")";
    if (m.sigma <= 0.0) {
      throw InvalidInput(at + ": sigma must be positive");
    }
    const bool is_flow =
        m.type == MeasType::kPFlow || m.type == MeasType::kQFlow;
    if (is_flow) {
      if (m.branch < 0 ||
          static_cast<std::size_t>(m.branch) >= network.num_branches()) {
        throw InvalidInput(at + ": branch index out of range");
      }
      const Branch& br = network.branch(static_cast<std::size_t>(m.branch));
      const BusIndex metered = m.at_from_side ? br.from : br.to;
      if (m.bus != metered) {
        throw InvalidInput(at + ": bus does not match the metered branch end");
      }
    } else {
      if (m.bus < 0 || m.bus >= network.num_buses()) {
        throw InvalidInput(at + ": bus index out of range");
      }
      if (m.branch != -1) {
        throw InvalidInput(at + ": non-flow measurement must not set branch");
      }
    }
  }
}

}  // namespace gridse::grid
