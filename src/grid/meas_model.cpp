#include "grid/meas_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace gridse::grid {
namespace {

/// Scalar pieces of one branch end's flow equations.
struct FlowTerms {
  double p;
  double q;
  double dp_dth_m;  // ∂P/∂θ at metered bus
  double dp_dth_o;  // ∂P/∂θ at other bus
  double dp_dv_m;   // ∂P/∂V at metered bus
  double dp_dv_o;   // ∂P/∂V at other bus
  double dq_dth_m;
  double dq_dth_o;
  double dq_dv_m;
  double dq_dv_o;
};

/// Flow metered at bus m toward bus o through a two-port with self-admittance
/// y_mm and transfer admittance y_mo:
///   S = V_m² conj(y_mm) + V_m V_o conj(y_mo) e^{j(θ_m−θ_o)}
FlowTerms flow_terms(std::complex<double> y_mm, std::complex<double> y_mo,
                     double vm, double vo, double th_m, double th_o) {
  const double gmm = y_mm.real();
  const double bmm = y_mm.imag();
  const double gmo = y_mo.real();
  const double bmo = y_mo.imag();
  const double d = th_m - th_o;
  const double c = std::cos(d);
  const double s = std::sin(d);
  FlowTerms t{};
  const double cross_p = gmo * c + bmo * s;   // Re(conj(y_mo) e^{jd})
  const double cross_q = gmo * s - bmo * c;   // Im(conj(y_mo) e^{jd})
  t.p = vm * vm * gmm + vm * vo * cross_p;
  t.q = -vm * vm * bmm + vm * vo * cross_q;
  t.dp_dth_m = vm * vo * (-gmo * s + bmo * c);
  t.dp_dth_o = -t.dp_dth_m;
  t.dp_dv_m = 2.0 * vm * gmm + vo * cross_p;
  t.dp_dv_o = vm * cross_p;
  t.dq_dth_m = vm * vo * cross_p;
  t.dq_dth_o = -t.dq_dth_m;
  t.dq_dv_m = -2.0 * vm * bmm + vo * cross_q;
  t.dq_dv_o = vm * cross_q;
  return t;
}

}  // namespace

MeasurementModel::MeasurementModel(const Network& network, StateIndex index)
    : network_(&network), index_(index), ybus_(build_ybus(network)) {
  GRIDSE_CHECK(index_.num_buses() == network.num_buses());
}

void MeasurementModel::sync_ybus(const sparse::CsrComplex& live) {
  if (live.rows() != ybus_.rows() || live.nnz() != ybus_.nnz() ||
      !std::equal(live.row_ptr().begin(), live.row_ptr().end(),
                  ybus_.row_ptr().begin()) ||
      !std::equal(live.col_idx().begin(), live.col_idx().end(),
                  ybus_.col_idx().begin())) {
    throw InvalidInput(
        "sync_ybus: pattern mismatch — the live Ybus is not an in-place "
        "patched copy of this model's admittance matrix");
  }
  std::copy(live.values().begin(), live.values().end(),
            ybus_.mutable_values().begin());
}

std::vector<double> MeasurementModel::evaluate(const MeasurementSet& set,
                                               const GridState& state) const {
  GRIDSE_CHECK(state.num_buses() == network_->num_buses());
  std::vector<double> h(set.size());
  for (std::size_t mi = 0; mi < set.items.size(); ++mi) {
    const Measurement& m = set.items[mi];
    switch (m.type) {
      case MeasType::kVMag:
        h[mi] = state.vm[static_cast<std::size_t>(m.bus)];
        break;
      case MeasType::kVAngle:
        h[mi] = state.theta[static_cast<std::size_t>(m.bus)];
        break;
      case MeasType::kPFlow:
      case MeasType::kQFlow: {
        const Branch& br = network_->branch(static_cast<std::size_t>(m.branch));
        // Open branch carries no flow. Such measurements are masked before
        // estimation (grid::mask_measurements); this guard keeps the model
        // physical for direct evaluation too.
        if (!br.in_service) {
          h[mi] = 0.0;
          break;
        }
        const BranchAdmittance a = branch_admittance(br);
        const BusIndex mb = m.at_from_side ? br.from : br.to;
        const BusIndex ob = m.at_from_side ? br.to : br.from;
        const auto y_mm = m.at_from_side ? a.yff : a.ytt;
        const auto y_mo = m.at_from_side ? a.yft : a.ytf;
        const FlowTerms t = flow_terms(
            y_mm, y_mo, state.vm[static_cast<std::size_t>(mb)],
            state.vm[static_cast<std::size_t>(ob)],
            state.theta[static_cast<std::size_t>(mb)],
            state.theta[static_cast<std::size_t>(ob)]);
        h[mi] = (m.type == MeasType::kPFlow) ? t.p : t.q;
        break;
      }
      case MeasType::kPInjection:
      case MeasType::kQInjection: {
        const BusIndex i = m.bus;
        const std::size_t iu = static_cast<std::size_t>(i);
        const auto [rb, re] = ybus_.row_range(i);
        const auto cols = ybus_.col_idx();
        const auto vals = ybus_.values();
        double p = 0.0;
        double q = 0.0;
        for (auto k = rb; k < re; ++k) {
          const BusIndex j = cols[static_cast<std::size_t>(k)];
          const std::size_t ju = static_cast<std::size_t>(j);
          const auto y = vals[static_cast<std::size_t>(k)];
          const double d = state.theta[iu] - state.theta[ju];
          const double vv = state.vm[iu] * state.vm[ju];
          p += vv * (y.real() * std::cos(d) + y.imag() * std::sin(d));
          q += vv * (y.real() * std::sin(d) - y.imag() * std::cos(d));
        }
        h[mi] = (m.type == MeasType::kPInjection) ? p : q;
        break;
      }
    }
  }
  return h;
}

sparse::Csr MeasurementModel::jacobian(const MeasurementSet& set,
                                       const GridState& state) const {
  GRIDSE_CHECK(state.num_buses() == network_->num_buses());
  std::vector<sparse::Triplet<double>> triplets;
  triplets.reserve(set.size() * 8);

  const auto add = [&](std::size_t row, std::int32_t col, double value) {
    if (col >= 0 && value != 0.0) {
      triplets.push_back({static_cast<sparse::Index>(row), col, value});
    }
  };

  for (std::size_t mi = 0; mi < set.items.size(); ++mi) {
    const Measurement& m = set.items[mi];
    switch (m.type) {
      case MeasType::kVMag:
        add(mi, index_.vm_index(m.bus), 1.0);
        break;
      case MeasType::kVAngle:
        add(mi, index_.theta_index(m.bus), 1.0);
        break;
      case MeasType::kPFlow:
      case MeasType::kQFlow: {
        const Branch& br = network_->branch(static_cast<std::size_t>(m.branch));
        if (!br.in_service) break;  // zero flow, zero sensitivity
        const BranchAdmittance a = branch_admittance(br);
        const BusIndex mb = m.at_from_side ? br.from : br.to;
        const BusIndex ob = m.at_from_side ? br.to : br.from;
        const auto y_mm = m.at_from_side ? a.yff : a.ytt;
        const auto y_mo = m.at_from_side ? a.yft : a.ytf;
        const FlowTerms t = flow_terms(
            y_mm, y_mo, state.vm[static_cast<std::size_t>(mb)],
            state.vm[static_cast<std::size_t>(ob)],
            state.theta[static_cast<std::size_t>(mb)],
            state.theta[static_cast<std::size_t>(ob)]);
        const bool is_p = m.type == MeasType::kPFlow;
        add(mi, index_.theta_index(mb), is_p ? t.dp_dth_m : t.dq_dth_m);
        add(mi, index_.theta_index(ob), is_p ? t.dp_dth_o : t.dq_dth_o);
        add(mi, index_.vm_index(mb), is_p ? t.dp_dv_m : t.dq_dv_m);
        add(mi, index_.vm_index(ob), is_p ? t.dp_dv_o : t.dq_dv_o);
        break;
      }
      case MeasType::kPInjection:
      case MeasType::kQInjection: {
        const BusIndex i = m.bus;
        const std::size_t iu = static_cast<std::size_t>(i);
        const double vi = state.vm[iu];
        const auto [rb, re] = ybus_.row_range(i);
        const auto cols = ybus_.col_idx();
        const auto vals = ybus_.values();
        // First pass: injections at bus i (needed for the diagonal terms).
        double p = 0.0;
        double q = 0.0;
        double gii = 0.0;
        double bii = 0.0;
        for (auto k = rb; k < re; ++k) {
          const BusIndex j = cols[static_cast<std::size_t>(k)];
          const std::size_t ju = static_cast<std::size_t>(j);
          const auto y = vals[static_cast<std::size_t>(k)];
          if (j == i) {
            gii = y.real();
            bii = y.imag();
          }
          const double d = state.theta[iu] - state.theta[ju];
          const double vv = vi * state.vm[ju];
          p += vv * (y.real() * std::cos(d) + y.imag() * std::sin(d));
          q += vv * (y.real() * std::sin(d) - y.imag() * std::cos(d));
        }
        const bool is_p = m.type == MeasType::kPInjection;
        for (auto k = rb; k < re; ++k) {
          const BusIndex j = cols[static_cast<std::size_t>(k)];
          const std::size_t ju = static_cast<std::size_t>(j);
          const auto y = vals[static_cast<std::size_t>(k)];
          if (j == i) {
            if (is_p) {
              add(mi, index_.theta_index(i), -q - bii * vi * vi);
              add(mi, index_.vm_index(i), p / vi + gii * vi);
            } else {
              add(mi, index_.theta_index(i), p - gii * vi * vi);
              add(mi, index_.vm_index(i), q / vi - bii * vi);
            }
            continue;
          }
          const double vj = state.vm[ju];
          const double d = state.theta[iu] - state.theta[ju];
          const double c = std::cos(d);
          const double s = std::sin(d);
          if (is_p) {
            add(mi, index_.theta_index(j), vi * vj * (y.real() * s - y.imag() * c));
            add(mi, index_.vm_index(j), vi * (y.real() * c + y.imag() * s));
          } else {
            add(mi, index_.theta_index(j),
                -vi * vj * (y.real() * c + y.imag() * s));
            add(mi, index_.vm_index(j), vi * (y.real() * s - y.imag() * c));
          }
        }
        break;
      }
    }
  }
  return sparse::Csr::from_triplets(static_cast<sparse::Index>(set.size()),
                                    index_.size(), std::move(triplets));
}

}  // namespace gridse::grid
