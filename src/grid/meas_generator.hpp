#pragma once

#include "grid/meas_model.hpp"
#include "grid/measurement.hpp"
#include "grid/network.hpp"
#include "grid/state.hpp"
#include "util/rng.hpp"

namespace gridse::grid {

/// What the synthetic SCADA/PMU layer telemeters and how noisy it is. The
/// defaults give the classic redundancy mix: both-end branch flows, bus
/// injections, and all voltage magnitudes.
struct MeasurementPlan {
  bool branch_p_flows = true;     ///< P flow at both branch ends
  bool branch_q_flows = true;     ///< Q flow at both branch ends
  bool bus_p_injections = true;   ///< P injection at every bus
  bool bus_q_injections = true;   ///< Q injection at every bus
  bool bus_voltage_mags = true;   ///< |V| at every bus

  /// Fraction of branches whose flows are actually telemetered (SCADA RTU
  /// density). A hash of (coverage_seed, branch index) selects the subset
  /// deterministically; 1.0 keeps the classic full-coverage mix. Injections
  /// and |V| stay at every bus so observability is preserved at any
  /// density.
  double flow_coverage = 1.0;
  std::uint64_t coverage_seed = 0x5eed;
  /// Fraction of buses carrying a PMU (angle measurement); 0 disables.
  double pmu_coverage = 0.0;
  /// Explicit PMU placement (global bus indices); when non-empty it
  /// overrides `pmu_coverage`. DSE requires at least one PMU per subsystem
  /// so each local estimation can reference its angles to the
  /// interconnection.
  std::vector<BusIndex> pmu_buses;

  double sigma_flow = 0.008;       ///< std dev of flow measurements, p.u.
  double sigma_injection = 0.010;  ///< std dev of injection measurements
  double sigma_vmag = 0.004;       ///< std dev of |V| measurements
  double sigma_pmu_angle = 0.002;  ///< std dev of PMU angles, radians

  /// Global noise multiplier — the paper's per-time-frame noise level
  /// x = f(δt) scales every sigma (§IV-B2).
  double noise_level = 1.0;
};

/// Synthesizes measurement sets from a true operating state: the stand-in
/// for SCADA field data in the paper's testbed. Noise is Gaussian, zero
/// mean, drawn from the caller's deterministic Rng.
class MeasurementGenerator {
 public:
  MeasurementGenerator(const Network& network, MeasurementPlan plan);

  /// Generate one scan at `timestamp`, sampling noise from `rng`. The true
  /// values are h(state) with the plan's sigmas (scaled by noise_level)
  /// applied.
  [[nodiscard]] MeasurementSet generate(const GridState& true_state, Rng& rng,
                                        double timestamp = 0.0) const;

  /// The noiseless skeleton (types/buses/sigmas with value = truth); used by
  /// tests and by bad-data experiments that inject their own gross errors.
  [[nodiscard]] MeasurementSet generate_noiseless(
      const GridState& true_state, double timestamp = 0.0) const;

  [[nodiscard]] const MeasurementPlan& plan() const { return plan_; }

  /// Adopt the live switching state after topology events: copies the
  /// values of an incrementally patched Ybus (same pattern as the cached
  /// model's) so generated injections reflect open/restored branches.
  void sync_ybus(const sparse::CsrComplex& live) { model_.sync_ybus(live); }

 private:
  [[nodiscard]] MeasurementSet skeleton(double timestamp) const;

  const Network* network_;
  MeasurementPlan plan_;
  MeasurementModel model_;
};

}  // namespace gridse::grid
