#include "grid/state.hpp"

#include <cmath>

#include "util/error.hpp"

namespace gridse::grid {

StateIndex::StateIndex(BusIndex num_buses, BusIndex reference_bus)
    : num_buses_(num_buses), reference_bus_(reference_bus) {
  GRIDSE_CHECK(num_buses > 0);
  GRIDSE_CHECK(reference_bus >= 0 && reference_bus < num_buses);
}

std::int32_t StateIndex::theta_index(BusIndex bus) const {
  GRIDSE_CHECK(bus >= 0 && bus < num_buses_);
  if (bus == reference_bus_) return -1;
  return bus < reference_bus_ ? bus : bus - 1;
}

std::int32_t StateIndex::vm_index(BusIndex bus) const {
  GRIDSE_CHECK(bus >= 0 && bus < num_buses_);
  return num_buses_ - 1 + bus;
}

GridState StateIndex::unpack(std::span<const double> x,
                             double reference_angle) const {
  GRIDSE_CHECK(static_cast<std::int32_t>(x.size()) == size());
  GridState s(num_buses_);
  for (BusIndex b = 0; b < num_buses_; ++b) {
    const auto ti = theta_index(b);
    s.theta[static_cast<std::size_t>(b)] =
        ti < 0 ? reference_angle : x[static_cast<std::size_t>(ti)];
    s.vm[static_cast<std::size_t>(b)] =
        x[static_cast<std::size_t>(vm_index(b))];
  }
  return s;
}

std::vector<double> StateIndex::pack(const GridState& state) const {
  GRIDSE_CHECK(state.num_buses() == num_buses_);
  std::vector<double> x(static_cast<std::size_t>(size()));
  for (BusIndex b = 0; b < num_buses_; ++b) {
    const auto ti = theta_index(b);
    if (ti >= 0) {
      x[static_cast<std::size_t>(ti)] = state.theta[static_cast<std::size_t>(b)];
    }
    x[static_cast<std::size_t>(vm_index(b))] =
        state.vm[static_cast<std::size_t>(b)];
  }
  return x;
}

double max_angle_error(const GridState& a, const GridState& b) {
  GRIDSE_CHECK(a.num_buses() == b.num_buses());
  double m = 0.0;
  for (std::size_t i = 0; i < a.theta.size(); ++i) {
    m = std::max(m, std::abs(a.theta[i] - b.theta[i]));
  }
  return m;
}

double max_vm_error(const GridState& a, const GridState& b) {
  GRIDSE_CHECK(a.num_buses() == b.num_buses());
  double m = 0.0;
  for (std::size_t i = 0; i < a.vm.size(); ++i) {
    m = std::max(m, std::abs(a.vm[i] - b.vm[i]));
  }
  return m;
}

}  // namespace gridse::grid
