#include "grid/boundary.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace gridse::grid {

BoundarySplit split_boundary_states(const StateIndex& index,
                                    std::span<const BusIndex> boundary_buses) {
  const std::size_t nb = boundary_buses.size();
  BoundarySplit out;
  out.theta_slot.assign(nb, -1);
  out.vm_slot.assign(nb, -1);

  // (position, bus ordinal, is_theta) tuples, then sort by position so the
  // slots can point into the ascending `positions` array.
  struct Entry {
    std::int32_t pos;
    std::int32_t ordinal;
    bool is_theta;
  };
  std::vector<Entry> entries;
  entries.reserve(2 * nb);
  std::vector<bool> seen(static_cast<std::size_t>(index.num_buses()), false);
  for (std::size_t i = 0; i < nb; ++i) {
    const BusIndex bus = boundary_buses[i];
    if (bus < 0 || bus >= index.num_buses()) {
      throw InvalidInput("boundary split: bus " + std::to_string(bus) +
                         " out of range");
    }
    if (seen[static_cast<std::size_t>(bus)]) {
      throw InvalidInput("boundary split: duplicate bus " +
                         std::to_string(bus));
    }
    seen[static_cast<std::size_t>(bus)] = true;
    const std::int32_t t = index.theta_index(bus);
    if (t >= 0) {  // the reference bus has no θ state
      entries.push_back({t, static_cast<std::int32_t>(i), true});
    }
    entries.push_back(
        {index.vm_index(bus), static_cast<std::int32_t>(i), false});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.pos < b.pos; });

  out.positions.reserve(entries.size());
  for (const Entry& e : entries) {
    const auto slot = static_cast<std::int32_t>(out.positions.size());
    out.positions.push_back(e.pos);
    if (e.is_theta) {
      out.theta_slot[static_cast<std::size_t>(e.ordinal)] = slot;
    } else {
      out.vm_slot[static_cast<std::size_t>(e.ordinal)] = slot;
    }
  }
  return out;
}

}  // namespace gridse::grid
