#pragma once

#include "grid/measurement.hpp"
#include "grid/network.hpp"
#include "grid/state.hpp"
#include "grid/ybus.hpp"
#include "sparse/csr.hpp"

namespace gridse::grid {

/// The nonlinear states-to-measurements function h(x) and its Jacobian H —
/// the paper's z = h(x) + e model (§II). Construct once per network; both
/// entry points are pure functions of the supplied state.
class MeasurementModel {
 public:
  /// `index` defines the reduced state vector (which bus is the angle
  /// reference). The admittance matrix is built once here.
  MeasurementModel(const Network& network, StateIndex index);

  /// Evaluate h at `state` for every measurement in `set`, in order.
  [[nodiscard]] std::vector<double> evaluate(const MeasurementSet& set,
                                             const GridState& state) const;

  /// Sparse Jacobian H = ∂h/∂x at `state`; rows follow `set` order, columns
  /// follow the StateIndex layout.
  [[nodiscard]] sparse::Csr jacobian(const MeasurementSet& set,
                                     const GridState& state) const;

  [[nodiscard]] const StateIndex& state_index() const { return index_; }
  [[nodiscard]] const sparse::CsrComplex& ybus() const { return ybus_; }
  [[nodiscard]] const Network& network() const { return *network_; }

  /// Adopt the values of `live` — an incrementally patched Ybus of the SAME
  /// network (build_ybus keeps the pattern switching-invariant, so only
  /// values differ after topology events). Throws InvalidInput on a pattern
  /// mismatch. Keeps cached injection h consistent with live switching
  /// state without an O(nnz log nnz) rebuild.
  void sync_ybus(const sparse::CsrComplex& live);

 private:
  const Network* network_;
  StateIndex index_;
  sparse::CsrComplex ybus_;
};

}  // namespace gridse::grid
