#include "grid/meas_generator.hpp"

#include "util/error.hpp"

namespace gridse::grid {

MeasurementGenerator::MeasurementGenerator(const Network& network,
                                           MeasurementPlan plan)
    : network_(&network),
      plan_(plan),
      model_(network, StateIndex(network.num_buses(), network.slack_bus())) {
  GRIDSE_CHECK_MSG(plan.noise_level >= 0.0, "noise level must be nonnegative");
  GRIDSE_CHECK_MSG(plan.pmu_coverage >= 0.0 && plan.pmu_coverage <= 1.0,
                   "pmu coverage must be in [0,1]");
  GRIDSE_CHECK_MSG(plan.flow_coverage >= 0.0 && plan.flow_coverage <= 1.0,
                   "flow coverage must be in [0,1]");
}

namespace {

/// splitmix64 finalizer; selects the telemetered-branch subset so coverage
/// is a deterministic property of (coverage_seed, branch index).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool branch_telemetered(const MeasurementPlan& plan, std::size_t branch) {
  if (plan.flow_coverage >= 1.0) return true;
  if (plan.flow_coverage <= 0.0) return false;
  const double u =
      static_cast<double>(mix64(plan.coverage_seed ^ branch) >> 11) *
      0x1.0p-53;
  return u < plan.flow_coverage;
}

}  // namespace

MeasurementSet MeasurementGenerator::skeleton(double timestamp) const {
  MeasurementSet set;
  set.timestamp = timestamp;
  // Floor keeps sigmas positive (WLS weights are 1/sigma²) even when a
  // caller asks for a noise-free frame via noise_level = 0.
  const double lvl = std::max(plan_.noise_level, 1e-6);
  for (std::size_t bi = 0; bi < network_->num_branches(); ++bi) {
    if (!branch_telemetered(plan_, bi)) continue;
    const Branch& br = network_->branch(bi);
    for (const bool from_side : {true, false}) {
      const BusIndex metered = from_side ? br.from : br.to;
      if (plan_.branch_p_flows) {
        set.items.push_back({MeasType::kPFlow, metered,
                             static_cast<std::int32_t>(bi), from_side, 0.0,
                             plan_.sigma_flow * lvl});
      }
      if (plan_.branch_q_flows) {
        set.items.push_back({MeasType::kQFlow, metered,
                             static_cast<std::int32_t>(bi), from_side, 0.0,
                             plan_.sigma_flow * lvl});
      }
    }
  }
  for (BusIndex b = 0; b < network_->num_buses(); ++b) {
    if (plan_.bus_p_injections) {
      set.items.push_back(
          {MeasType::kPInjection, b, -1, true, 0.0, plan_.sigma_injection * lvl});
    }
    if (plan_.bus_q_injections) {
      set.items.push_back(
          {MeasType::kQInjection, b, -1, true, 0.0, plan_.sigma_injection * lvl});
    }
    if (plan_.bus_voltage_mags) {
      set.items.push_back(
          {MeasType::kVMag, b, -1, true, 0.0, plan_.sigma_vmag * lvl});
    }
  }
  if (!plan_.pmu_buses.empty()) {
    for (const BusIndex b : plan_.pmu_buses) {
      GRIDSE_CHECK_MSG(b >= 0 && b < network_->num_buses(),
                       "PMU bus index out of range");
      set.items.push_back(
          {MeasType::kVAngle, b, -1, true, 0.0, plan_.sigma_pmu_angle * lvl});
    }
  } else if (plan_.pmu_coverage > 0.0) {
    // Deterministic PMU placement: every ceil(1/coverage)-th bus carries a
    // PMU, starting at the slack (which anchors the angle reference).
    const auto stride = static_cast<BusIndex>(1.0 / plan_.pmu_coverage);
    for (BusIndex b = network_->slack_bus(); b < network_->num_buses();
         b += std::max<BusIndex>(stride, 1)) {
      set.items.push_back(
          {MeasType::kVAngle, b, -1, true, 0.0, plan_.sigma_pmu_angle * lvl});
    }
  }
  return set;
}

MeasurementSet MeasurementGenerator::generate_noiseless(
    const GridState& true_state, double timestamp) const {
  MeasurementSet set = skeleton(timestamp);
  const std::vector<double> truth = model_.evaluate(set, true_state);
  for (std::size_t i = 0; i < set.items.size(); ++i) {
    set.items[i].value = truth[i];
  }
  return set;
}

MeasurementSet MeasurementGenerator::generate(const GridState& true_state,
                                              Rng& rng,
                                              double timestamp) const {
  MeasurementSet set = generate_noiseless(true_state, timestamp);
  for (Measurement& m : set.items) {
    m.value += rng.gaussian(m.sigma);
  }
  return set;
}

}  // namespace gridse::grid
