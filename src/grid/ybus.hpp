#pragma once

#include <complex>

#include "grid/network.hpp"
#include "sparse/csr.hpp"

namespace gridse::grid {

/// Two-port admittance parameters of one branch:
///   [I_f]   [y_ff  y_ft] [V_f]
///   [I_t] = [y_tf  y_tt] [V_t]
/// including tap ratio, phase shift and line charging.
struct BranchAdmittance {
  std::complex<double> yff;
  std::complex<double> yft;
  std::complex<double> ytf;
  std::complex<double> ytt;
};

/// Compute the two-port admittances for `branch`.
BranchAdmittance branch_admittance(const Branch& branch);

/// Assemble the complex bus admittance matrix Ybus (n×n, sparse) from the
/// branch two-ports plus bus shunts.
sparse::CsrComplex build_ybus(const Network& network);

}  // namespace gridse::grid
