#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/debug_sync.hpp"
#include "medici/endpoint.hpp"
#include "medici/netmodel.hpp"
#include "runtime/socket.hpp"

namespace gridse::medici {

struct RelayStats {
  std::size_t messages = 0;
  std::size_t bytes = 0;
};

/// One one-way MeDICi relay ("MeDICi acts as a router to exchange data
/// between the neighboring state estimators", paper §IV-C): accepts
/// connections on the inbound endpoint, reads each framed message fully into
/// memory (store-and-forward — this is where the measured middleware
/// overhead comes from), then writes it to the outbound endpoint, paced by
/// the relay NetModel.
class Relay {
 public:
  /// `inbound` must be free to bind; `outbound` is connected lazily on the
  /// first message of each inbound connection.
  Relay(EndpointUrl inbound, EndpointUrl outbound, NetModel shape);
  ~Relay();

  Relay(const Relay&) = delete;
  Relay& operator=(const Relay&) = delete;

  /// Begin accepting. Throws CommError if the inbound endpoint cannot bind.
  void start();

  /// Stop accepting and join all relay threads (idempotent).
  void stop();

  [[nodiscard]] const EndpointUrl& inbound() const { return inbound_; }
  [[nodiscard]] const EndpointUrl& outbound() const { return outbound_; }
  [[nodiscard]] RelayStats stats() const;

 private:
  void accept_loop();
  void relay_connection(runtime::Socket upstream);

  EndpointUrl inbound_;
  EndpointUrl outbound_;
  NetModel shape_;
  runtime::Socket listener_;
  std::thread acceptor_;
  analysis::Mutex workers_mutex_{"Relay::workers_mutex_"};
  std::vector<std::thread> workers_ GRIDSE_GUARDED_BY(workers_mutex_);
  /// Accepted upstreams, shut down on stop().
  std::vector<int> live_fds_ GRIDSE_GUARDED_BY(workers_mutex_);
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> messages_{0};
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace gridse::medici
