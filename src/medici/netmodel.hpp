#pragma once

#include <cstddef>

namespace gridse::medici {

/// Link shaping applied to a socket path to emulate the paper's network
/// segments on loopback hardware (DESIGN.md §2): the lab GigE path between
/// the workstation and the cluster (~115 MB/s as measured in Table IV) and
/// the middleware's internal relay rate (~0.4 GB/s, §V-B).
struct NetModel {
  /// 0 = unshaped (raw loopback).
  double bandwidth_bytes_per_sec = 0.0;
  /// One-way latency added per message, seconds.
  double latency_sec = 0.0;

  [[nodiscard]] bool is_unshaped() const {
    return bandwidth_bytes_per_sec <= 0.0 && latency_sec <= 0.0;
  }
};

/// Paper-calibrated models.
NetModel gige_network_model();      ///< ~115 MB/s, 0.1 ms (Table IV direct path)
NetModel medici_relay_model();      ///< ~0.4 GB/s relay rate (§V-B)
NetModel unshaped_model();          ///< raw loopback

/// Rate limiter enforcing a NetModel on a byte stream. Call `pace` before
/// sending each chunk; it sleeps just enough that the cumulative stream
/// never exceeds the modelled bandwidth.
class Pacer {
 public:
  explicit Pacer(NetModel model);

  /// Account `chunk_bytes` and sleep as required. First call also pays the
  /// latency charge.
  void pace(std::size_t chunk_bytes);

 private:
  NetModel model_;
  double credit_time_ = 0.0;  // seconds of transmission time owed
  bool first_ = true;
  double start_time_ = 0.0;
};

}  // namespace gridse::medici
