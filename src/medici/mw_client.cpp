#include "medici/mw_client.hpp"

#include <sys/socket.h>

#include <algorithm>

#include "analysis/assert.hpp"
#include "fault/fault.hpp"
#include "medici/wire.hpp"
#include "obs/obs.hpp"
#if GRIDSE_OBS
#include "obs/trace/trace.hpp"
#endif
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace gridse::medici {

MwClient::MwClient(int id) : MwClient(id, EndpointUrl{}) {}

MwClient::MwClient(int id, EndpointUrl listen)
    : id_(id), endpoint_(std::move(listen)) {
  std::uint16_t port = endpoint_.port;
  listener_ = runtime::Socket::listen_loopback(port);
  endpoint_.port = port;
  acceptor_ = std::thread([this] { accept_loop(); });
}

MwClient::~MwClient() { stop(); }

void MwClient::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listener_.valid()) {
    ::shutdown(listener_.fd(), SHUT_RDWR);
  }
  {
    analysis::LockGuard lock(send_mutex_);
    for (auto& [key, sock] : connections_) {
      if (sock.valid()) {
        ::shutdown(sock.fd(), SHUT_RDWR);
      }
    }
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  std::vector<std::thread> readers;
  {
    analysis::LockGuard lock(readers_mutex_);
    readers.swap(readers_);
    for (const int fd : live_fds_) {
      ::shutdown(fd, SHUT_RDWR);  // wake readers blocked in recv
    }
    live_fds_.clear();
  }
  for (auto& r : readers) {
    r.join();
  }
}

void MwClient::accept_loop() {
  for (;;) {
    runtime::Socket conn;
    try {
      conn = listener_.accept();
    } catch (const CommError&) {
      return;
    }
    if (stopping_.load()) {
      return;
    }
    analysis::LockGuard lock(readers_mutex_);
    live_fds_.push_back(conn.fd());
    readers_.emplace_back(
        [this, c = std::move(conn)]() mutable { read_loop(std::move(c)); });
  }
}

void MwClient::read_loop(runtime::Socket conn) {
  try {
    WireFrame frame;
    while (read_frame(conn, frame)) {
      runtime::Message m;
      m.source = frame.source;
      m.tag = frame.tag;
      m.payload = std::move(frame.payload);
#if GRIDSE_OBS
      m.trace = frame.trace;  // zeroed (invalid) for legacy v1 frames
#endif
      OBS_COUNTER_ADD("medici.client.recv.messages", 1);
      OBS_COUNTER_ADD("medici.client.recv.bytes", m.payload.size());
#if GRIDSE_OBS
      // Receive-side mirror of the per-endpoint send counters: keyed by the
      // sending client id (the frame's source), so the telemetry sampler
      // can compute per-link in/out rate deltas per cycle.
      {
        auto& registry = obs::MetricsRegistry::global();
        const std::string from = std::to_string(m.source);
        registry.counter("medici.endpoint.messages.from." + from).add(1);
        registry.counter("medici.endpoint.bytes.from." + from)
            .add(m.payload.size());
      }
#endif
      mailbox_.deliver(std::move(m));
    }
  } catch (const CommError& e) {
    if (!stopping_.load()) {
      GRIDSE_WARN << "mw client " << id_ << " reader ended: " << e.what();
    }
  }
}

void MwClient::send_attempt_locked(const std::string& key,
                                   const EndpointUrl& to, int tag,
                                   std::span<const std::uint8_t> payload,
                                   const NetModel& shape,
                                   const runtime::TraceContext* trace) {
  GRIDSE_ASSERT_HELD(send_mutex_);
  auto it = connections_.find(key);
  if (it == connections_.end() || !it->second.valid()) {
    connections_[key] = runtime::Socket::connect_loopback(to.port);
    it = connections_.find(key);
  }
  Pacer pacer(shape);
  write_frame(it->second, id_, tag, payload, trace, pacer);
  bytes_sent_.fetch_add(payload.size(), std::memory_order_relaxed);
}

bool MwClient::send_with_retries(const EndpointUrl& to, int tag,
                                 std::span<const std::uint8_t> payload,
                                 const NetModel& shape, bool nothrow) {
  OBS_SPAN("medici.client.send");
  const runtime::TraceContext* trace = nullptr;
#if GRIDSE_OBS
  runtime::TraceContext ctx = obs::trace::on_send("medici.client.send");
  if (ctx.valid()) {
    trace = &ctx;
  }
#endif
  if (FAULT_DROP("client.send", id_, tag)) {
    return true;  // injected loss before the client ever touches the wire
  }
  const std::string key = to.to_string();
  // Snapshot the policy once: retry_ is guarded by send_mutex_, and reading
  // max_attempts/backoff per attempt without the lock raced concurrent
  // set_retry_policy() calls. The copy keeps one send internally consistent.
  runtime::RetryPolicy policy;
  {
    analysis::LockGuard lock(send_mutex_);
    policy = retry_;
  }
  // Bounded retry with exponential backoff: a cached connection may have
  // gone stale (peer restarted) or an in-flight write may fail; drop the
  // connection, back off, and re-dial up to the policy's attempt budget. A
  // frame is written atomically per attempt, so the receiver never sees a
  // torn message. The lock is taken per attempt and the backoff sleep
  // happens outside it, so sends to healthy endpoints proceed meanwhile.
  const int attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0;; ++attempt) {
    try {
      {
        analysis::LockGuard lock(send_mutex_);
        send_attempt_locked(key, to, tag, payload, shape, trace);
      }
#if GRIDSE_OBS
      // Per-endpoint traffic accounting (paper Table IV is per link). The
      // names are dynamic, so this resolves through the registry map rather
      // than a cached handle; a send already paid for syscalls.
      auto& registry = obs::MetricsRegistry::global();
      registry.counter("medici.endpoint.messages.to." + key).add(1);
      registry.counter("medici.endpoint.bytes.to." + key)
          .add(payload.size());
#endif
      return true;
    } catch (const CommError&) {
      {
        analysis::LockGuard lock(send_mutex_);
        connections_.erase(key);
      }
      if (attempt + 1 >= attempts || stopping_.load()) {
        if (nothrow) {
          OBS_EVENT("medici.client.send_failed", OBS_ATTR("endpoint", key),
                    OBS_ATTR("client", id_), OBS_ATTR("tag", tag));
          return false;
        }
        throw;
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      OBS_COUNTER_ADD("exchange.retries", 1);
      OBS_EVENT("medici.client.reconnect", OBS_ATTR("endpoint", key),
                OBS_ATTR("client", id_), OBS_ATTR("attempt", attempt + 1));
      GRIDSE_DEBUG << "mw client " << id_ << ": reconnecting to " << key
                   << " (attempt " << attempt + 2 << "/" << attempts << ")";
      const std::uint64_t salt =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id_))
           << 32) ^
          retry_salt_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(policy.backoff(attempt, salt));
    }
  }
}

void MwClient::send(const EndpointUrl& to, int tag,
                    std::span<const std::uint8_t> payload,
                    const NetModel& shape) {
  (void)send_with_retries(to, tag, payload, shape, /*nothrow=*/false);
}

bool MwClient::try_send(const EndpointUrl& to, int tag,
                        std::span<const std::uint8_t> payload,
                        const NetModel& shape) {
  return send_with_retries(to, tag, payload, shape, /*nothrow=*/true);
}

runtime::Message MwClient::recv(int source, int tag) {
#if GRIDSE_OBS
  Timer wait_timer;
  runtime::Message m = mailbox_.take(source, tag);
  const double wait = wait_timer.seconds();
  OBS_HISTOGRAM_OBSERVE("medici.client.recv.wait_seconds", wait);
  obs::trace::on_consume("medici.client.recv", m.trace, wait);
  return m;
#else
  return mailbox_.take(source, tag);
#endif
}

std::optional<runtime::Message> MwClient::recv_for(
    int source, int tag, std::chrono::milliseconds timeout) {
  return mailbox_.take_for(source, tag, timeout);
}

}  // namespace gridse::medici
