#include "medici/wire.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace gridse::medici {
namespace {

WireHeader make_header(std::int32_t source, std::int32_t tag,
                       std::size_t payload_size, bool has_trace) {
  if (payload_size > runtime::kTraceLengthMask) {
    throw CommError("wire: payload too large for the length field");
  }
  WireHeader header{payload_size, source, tag};
  if (has_trace) {
    header.length |= runtime::kTraceLengthFlag;
  }
  return header;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(std::int32_t source, std::int32_t tag,
                                       std::span<const std::uint8_t> payload,
                                       const runtime::TraceContext* trace) {
  const WireHeader header =
      make_header(source, tag, payload.size(), trace != nullptr);
  std::vector<std::uint8_t> out;
  out.reserve(sizeof header + (trace != nullptr ? kWireTraceSize : 0) +
              payload.size());
  const auto* hbytes = reinterpret_cast<const std::uint8_t*>(&header);
  out.insert(out.end(), hbytes, hbytes + sizeof header);
  if (trace != nullptr) {
    const auto* tbytes = reinterpret_cast<const std::uint8_t*>(trace);
    out.insert(out.end(), tbytes, tbytes + kWireTraceSize);
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::size_t decode_frame(std::span<const std::uint8_t> bytes,
                         WireFrame& out) {
  if (bytes.size() < sizeof(WireHeader)) {
    throw CommError("wire: truncated frame header");
  }
  WireHeader header{};
  std::memcpy(&header, bytes.data(), sizeof header);
  out.source = header.source;
  out.tag = header.tag;
  out.has_trace = (header.length & runtime::kTraceLengthFlag) != 0;
  const std::uint64_t payload_len = header.length & runtime::kTraceLengthMask;
  std::size_t offset = sizeof header;
  if (out.has_trace) {
    if (bytes.size() < offset + kWireTraceSize) {
      throw CommError("wire: truncated trace-context block");
    }
    std::memcpy(&out.trace, bytes.data() + offset, kWireTraceSize);
    offset += kWireTraceSize;
  } else {
    out.trace = {};
  }
  if (bytes.size() - offset < payload_len) {
    throw CommError("wire: truncated payload");
  }
  out.payload.assign(bytes.data() + offset,
                     bytes.data() + offset + payload_len);
  return offset + static_cast<std::size_t>(payload_len);
}

bool read_frame(const runtime::Socket& socket, WireFrame& out) {
  WireHeader header{};
  // Peek one byte first to distinguish orderly shutdown from a frame.
  std::uint8_t probe = 0;
  if (socket.recv_some(&probe, 1) == 0) {
    return false;
  }
  std::memcpy(&header, &probe, 1);
  socket.recv_all(reinterpret_cast<std::uint8_t*>(&header) + 1,
                  sizeof header - 1);
  out.source = header.source;
  out.tag = header.tag;
  out.has_trace = (header.length & runtime::kTraceLengthFlag) != 0;
  if (out.has_trace) {
    socket.recv_all(&out.trace, kWireTraceSize);
  } else {
    out.trace = {};
  }
  const std::uint64_t payload_len = header.length & runtime::kTraceLengthMask;
  out.payload.resize(payload_len);
  if (payload_len > 0) {
    socket.recv_all(out.payload.data(), out.payload.size());
  }
  return true;
}

void write_frame(const runtime::Socket& socket, std::int32_t source,
                 std::int32_t tag, std::span<const std::uint8_t> payload,
                 const runtime::TraceContext* trace, Pacer& pacer) {
  const WireHeader header =
      make_header(source, tag, payload.size(), trace != nullptr);
  pacer.pace(sizeof header);
  socket.send_all(&header, sizeof header);
  if (trace != nullptr) {
    pacer.pace(kWireTraceSize);
    socket.send_all(trace, kWireTraceSize);
  }
  std::size_t off = 0;
  while (off < payload.size()) {
    const std::size_t n = std::min(kWireChunk, payload.size() - off);
    pacer.pace(n);
    socket.send_all(payload.data() + off, n);
    off += n;
  }
}

}  // namespace gridse::medici
