#include "medici/wire.hpp"

#include <algorithm>
#include <cstring>

#include "fault/fault.hpp"
#include "util/error.hpp"

namespace gridse::medici {
namespace {

WireHeader make_header(std::int32_t source, std::int32_t tag,
                       std::size_t payload_size, bool has_trace) {
  if (payload_size > runtime::kTraceLengthMask) {
    throw CommError("wire: payload too large for the length field");
  }
  WireHeader header{payload_size, source, tag};
  if (has_trace) {
    header.length |= runtime::kTraceLengthFlag;
  }
  return header;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(std::int32_t source, std::int32_t tag,
                                       std::span<const std::uint8_t> payload,
                                       const runtime::TraceContext* trace) {
  const WireHeader header =
      make_header(source, tag, payload.size(), trace != nullptr);
  std::vector<std::uint8_t> out;
  out.reserve(sizeof header + (trace != nullptr ? kWireTraceSize : 0) +
              payload.size());
  const auto* hbytes = reinterpret_cast<const std::uint8_t*>(&header);
  out.insert(out.end(), hbytes, hbytes + sizeof header);
  if (trace != nullptr) {
    const auto* tbytes = reinterpret_cast<const std::uint8_t*>(trace);
    out.insert(out.end(), tbytes, tbytes + kWireTraceSize);
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::size_t decode_frame(std::span<const std::uint8_t> bytes,
                         WireFrame& out) {
  if (bytes.size() < sizeof(WireHeader)) {
    throw CommError("wire: truncated frame header");
  }
  WireHeader header{};
  std::memcpy(&header, bytes.data(), sizeof header);
  out.source = header.source;
  out.tag = header.tag;
  out.has_trace = (header.length & runtime::kTraceLengthFlag) != 0;
  const std::uint64_t payload_len = header.length & runtime::kTraceLengthMask;
  std::size_t offset = sizeof header;
  if (out.has_trace) {
    if (bytes.size() < offset + kWireTraceSize) {
      throw CommError("wire: truncated trace-context block");
    }
    std::memcpy(&out.trace, bytes.data() + offset, kWireTraceSize);
    offset += kWireTraceSize;
  } else {
    out.trace = {};
  }
  if (bytes.size() - offset < payload_len) {
    throw CommError("wire: truncated payload");
  }
  out.payload.assign(bytes.data() + offset,
                     bytes.data() + offset + payload_len);
  return offset + static_cast<std::size_t>(payload_len);
}

bool read_frame(const runtime::Socket& socket, WireFrame& out) {
  // Reader-side site (delay / error); the frame's source and tag are not
  // known until the header is read, so rules match on site alone.
  (void)FAULT_POINT("wire.read", fault::kAnyValue, fault::kAnyValue);
  WireHeader header{};
  // Peek one byte first to distinguish orderly shutdown from a frame.
  std::uint8_t probe = 0;
  if (socket.recv_some(&probe, 1) == 0) {
    return false;
  }
  std::memcpy(&header, &probe, 1);
  socket.recv_all(reinterpret_cast<std::uint8_t*>(&header) + 1,
                  sizeof header - 1);
  out.source = header.source;
  out.tag = header.tag;
  out.has_trace = (header.length & runtime::kTraceLengthFlag) != 0;
  if (out.has_trace) {
    socket.recv_all(&out.trace, kWireTraceSize);
  } else {
    out.trace = {};
  }
  const std::uint64_t payload_len = header.length & runtime::kTraceLengthMask;
  out.payload.resize(payload_len);
  if (payload_len > 0) {
    socket.recv_all(out.payload.data(), out.payload.size());
  }
  return true;
}

namespace {

/// The unfaulted write path (header [+ trace] + chunked payload).
void write_frame_impl(const runtime::Socket& socket, std::int32_t source,
                      std::int32_t tag, std::span<const std::uint8_t> payload,
                      const runtime::TraceContext* trace, Pacer& pacer) {
  const WireHeader header =
      make_header(source, tag, payload.size(), trace != nullptr);
  pacer.pace(sizeof header);
  socket.send_all(&header, sizeof header);
  if (trace != nullptr) {
    pacer.pace(kWireTraceSize);
    socket.send_all(trace, kWireTraceSize);
  }
  std::size_t off = 0;
  while (off < payload.size()) {
    const std::size_t n = std::min(kWireChunk, payload.size() - off);
    pacer.pace(n);
    socket.send_all(payload.data() + off, n);
    off += n;
  }
}

}  // namespace

void write_frame(const runtime::Socket& socket, std::int32_t source,
                 std::int32_t tag, std::span<const std::uint8_t> payload,
                 const runtime::TraceContext* trace, Pacer& pacer) {
#if GRIDSE_FAULT
  const fault::Action act = FAULT_POINT("wire.write", source, tag);
  switch (act.kind) {
    case fault::ActionKind::kDrop:
      // The frame vanishes in flight: the sender believes the write
      // succeeded, the receiver never sees it.
      return;
    case fault::ActionKind::kTruncate: {
      // Write a strict prefix of the encoded frame, then fail the
      // connection: the receiver observes a mid-frame close, the sender a
      // CommError (which MwClient turns into a reconnect + retry).
      const std::vector<std::uint8_t> bytes =
          encode_frame(source, tag, payload, trace);
      const std::size_t cut =
          fault::truncate_length(act.mutation, bytes.size());
      pacer.pace(cut);
      socket.send_all(bytes.data(), cut);
      throw CommError("fault injected: truncated frame at wire.write");
    }
    case fault::ActionKind::kBitFlip: {
      // Corrupt one payload bit. The header and trace block stay intact so
      // the stream framing never desyncs — without a wire checksum, payload
      // corruption is the application decoder's to reject.
      std::vector<std::uint8_t> corrupted(payload.begin(), payload.end());
      fault::apply_bitflip(act.mutation, corrupted);
      write_frame_impl(socket, source, tag, corrupted, trace, pacer);
      return;
    }
    default:
      break;
  }
#endif
  write_frame_impl(socket, source, tag, payload, trace, pacer);
}

}  // namespace gridse::medici
