#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "medici/mw_client.hpp"
#include "medici/pipeline.hpp"
#include "runtime/communicator.hpp"

namespace gridse::medici {

/// Transport selection for a MediciWorld.
enum class TransportMode {
  kViaMiddleware,  ///< all traffic hops through a MeDICi pipeline relay
  kDirectTcp       ///< peers connect directly (the paper's "w/o MeDICi" mode)
};

/// A world of estimator endpoints wired the way the paper's prototype is
/// (§IV-C): one MwClient per rank, and in middleware mode one MeDICi
/// pipeline per directed pair of ranks. Exposes runtime::Communicator so the
/// DSE driver runs unchanged over in-process channels, raw TCP, or MeDICi.
class MediciWorld {
 public:
  /// `relay_model` paces the middleware hop (ignored in direct mode);
  /// `link_model` paces the sender's own uplink in both modes (use
  /// gige_network_model() to emulate the cross-network scenario).
  MediciWorld(int size, TransportMode mode,
              NetModel relay_model = medici_relay_model(),
              NetModel link_model = unshaped_model());
  ~MediciWorld();

  MediciWorld(const MediciWorld&) = delete;
  MediciWorld& operator=(const MediciWorld&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(clients_.size()); }
  [[nodiscard]] TransportMode mode() const { return mode_; }

  /// Communicator bound to `rank`; the world must outlive it.
  [[nodiscard]] std::unique_ptr<runtime::Communicator> communicator(int rank);

  /// Run `fn(comm)` on one thread per rank and join (first exception
  /// rethrown).
  void run(const std::function<void(runtime::Communicator&)>& fn);

  /// The estimator's own URL (paper: "each state estimator … is uniquely
  /// identified by a URL").
  [[nodiscard]] const EndpointUrl& endpoint_of(int rank) const;

  /// Total bytes relayed through all pipelines (0 in direct mode).
  [[nodiscard]] RelayStats relay_stats() const;

  static constexpr int kMaxUserTag = 1 << 20;

 private:
  friend class MediciCommunicatorImpl;

  TransportMode mode_;
  NetModel link_model_;
  std::vector<std::unique_ptr<MwClient>> clients_;
  /// pipelines_[src][dst] (middleware mode only; null on the diagonal).
  std::vector<std::vector<std::unique_ptr<MifPipeline>>> pipelines_;
  /// send_target_[src][dst]: where rank src writes for rank dst — the
  /// pipeline inbound endpoint, or dst's own endpoint in direct mode.
  std::vector<std::vector<EndpointUrl>> send_target_;
};

}  // namespace gridse::medici
