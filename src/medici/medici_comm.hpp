#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "medici/mw_client.hpp"
#include "medici/pipeline.hpp"
#include "runtime/communicator.hpp"
#include "runtime/resilience.hpp"

namespace gridse::medici {

/// Transport selection for a MediciWorld.
enum class TransportMode {
  kViaMiddleware,  ///< all traffic hops through a MeDICi pipeline relay
  kDirectTcp       ///< peers connect directly (the paper's "w/o MeDICi" mode)
};

/// A world of estimator endpoints wired the way the paper's prototype is
/// (§IV-C): one MwClient per rank, and in middleware mode one MeDICi
/// pipeline per directed pair of ranks. Exposes runtime::Communicator so the
/// DSE driver runs unchanged over in-process channels, raw TCP, or MeDICi.
class MediciWorld {
 public:
  /// `relay_model` paces the middleware hop (ignored in direct mode);
  /// `link_model` paces the sender's own uplink in both modes (use
  /// gige_network_model() to emulate the cross-network scenario).
  /// `resilience` sets the barrier timeout and every client's send retry
  /// policy.
  MediciWorld(int size, TransportMode mode,
              NetModel relay_model = medici_relay_model(),
              NetModel link_model = unshaped_model(),
              runtime::ResilienceConfig resilience = {});
  ~MediciWorld();

  MediciWorld(const MediciWorld&) = delete;
  MediciWorld& operator=(const MediciWorld&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(clients_.size()); }
  [[nodiscard]] TransportMode mode() const { return mode_; }

  /// Communicator bound to `rank`; the world must outlive it.
  [[nodiscard]] std::unique_ptr<runtime::Communicator> communicator(int rank);

  /// Run `fn(comm)` on one thread per rank and join (first exception
  /// rethrown).
  void run(const std::function<void(runtime::Communicator&)>& fn);

  /// The estimator's own URL (paper: "each state estimator … is uniquely
  /// identified by a URL").
  [[nodiscard]] const EndpointUrl& endpoint_of(int rank) const;

  /// Total bytes relayed through all pipelines (0 in direct mode).
  [[nodiscard]] RelayStats relay_stats() const;

  /// True when any rank's body has thrown during the current run().
  [[nodiscard]] bool any_rank_dead() const {
    return dead_ranks_.load(std::memory_order_acquire) != 0;
  }

  [[nodiscard]] std::chrono::milliseconds barrier_timeout() const {
    return resilience_.barrier_timeout;
  }

  /// Total send retries performed across all clients (exchange.retries).
  [[nodiscard]] std::uint64_t total_retries() const;

  static constexpr int kMaxUserTag = 1 << 20;

 private:
  friend class MediciCommunicatorImpl;

  TransportMode mode_;
  NetModel link_model_;
  std::vector<std::unique_ptr<MwClient>> clients_;
  /// pipelines_[src][dst] (middleware mode only; null on the diagonal).
  std::vector<std::vector<std::unique_ptr<MifPipeline>>> pipelines_;
  /// send_target_[src][dst]: where rank src writes for rank dst — the
  /// pipeline inbound endpoint, or dst's own endpoint in direct mode.
  std::vector<std::vector<EndpointUrl>> send_target_;
  runtime::ResilienceConfig resilience_;
  /// Count of ranks whose run() body threw (the in-process analogue of a
  /// peer process dying mid-cycle).
  std::atomic<int> dead_ranks_{0};
};

}  // namespace gridse::medici
