#include "medici/netmodel.hpp"

#include <chrono>
#include <thread>

namespace gridse::medici {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

NetModel gige_network_model() {
  // Calibrated to the paper's Table IV direct-TCP rate: 2 GB / 17.75 s ≈
  // 115 MB/s (a loaded gigabit lab network).
  return {115.0 * 1024.0 * 1024.0, 1e-4};
}

NetModel medici_relay_model() {
  // §V-B: "the data relaying rate through the middleware is around 0.4GB/s".
  return {0.4 * 1024.0 * 1024.0 * 1024.0, 3e-4};
}

NetModel unshaped_model() { return {}; }

Pacer::Pacer(NetModel model) : model_(model) {}

void Pacer::pace(std::size_t chunk_bytes) {
  if (model_.is_unshaped()) {
    return;
  }
  const double now = now_seconds();
  if (first_) {
    first_ = false;
    start_time_ = now;
    credit_time_ = model_.latency_sec;
  }
  if (model_.bandwidth_bytes_per_sec > 0.0) {
    credit_time_ += static_cast<double>(chunk_bytes) /
                    model_.bandwidth_bytes_per_sec;
  }
  const double due = start_time_ + credit_time_;
  if (due > now) {
    std::this_thread::sleep_for(std::chrono::duration<double>(due - now));
  }
}

}  // namespace gridse::medici
