#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "analysis/debug_sync.hpp"
#include "medici/endpoint.hpp"
#include "medici/netmodel.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/resilience.hpp"
#include "runtime/socket.hpp"

namespace gridse::medici {

/// The interface-layer middleware client of the paper (§IV-A): deployed on
/// each site's master node, it "wraps the communication code for
/// disseminating and retrieving data". One MwClient both serves this
/// estimator's own endpoint (receiving deliveries) and opens outgoing
/// connections — to a MeDICi pipeline's inbound endpoint (middleware mode)
/// or straight to a peer's endpoint (direct TCP mode).
class MwClient {
 public:
  /// Listen on an ephemeral loopback endpoint.
  explicit MwClient(int id);
  /// Listen on a caller-chosen endpoint (port may be 0 for ephemeral).
  MwClient(int id, EndpointUrl listen);
  ~MwClient();

  MwClient(const MwClient&) = delete;
  MwClient& operator=(const MwClient&) = delete;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const EndpointUrl& endpoint() const { return endpoint_; }

  /// MW_Client_Send of Fig. 6: frame the payload and write it to `to`
  /// (paced by `shape`). Connections are cached per destination endpoint;
  /// a failed write drops the cached connection and retries with
  /// exponential backoff up to the configured retry policy (default: one
  /// reconnect, the historical behavior).
  void send(const EndpointUrl& to, int tag,
            std::span<const std::uint8_t> payload,
            const NetModel& shape = {});

  /// Best-effort variant of send() for traffic that must never abort the
  /// caller (heartbeats, membership reports): the exact same connection
  /// cache, retry budget, backoff, and retries()/exchange.retries
  /// accounting, but an exhausted attempt budget returns false instead of
  /// throwing CommError. A false return is itself a liveness signal — the
  /// failure detector counts the missing beat at the receiver.
  bool try_send(const EndpointUrl& to, int tag,
                std::span<const std::uint8_t> payload,
                const NetModel& shape = {});

  /// Replace the send retry policy (default: RetryPolicy{}). Takes effect
  /// for sends that start after this call; in-flight sends finish under the
  /// policy they copied at entry.
  void set_retry_policy(runtime::RetryPolicy policy) {
    analysis::LockGuard lock(send_mutex_);
    retry_ = policy;
  }

  /// Send retries performed so far (reconnect attempts beyond each first
  /// try) — the local view of the exchange.retries counter.
  [[nodiscard]] std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

  /// MW_Client_Recv of Fig. 6: block for the next message matching
  /// (source, tag); wildcards as in runtime::Communicator.
  runtime::Message recv(int source = runtime::kAnySource,
                        int tag = runtime::kAnyTag);

  /// Bounded recv; nullopt if nothing matching arrived within `timeout`.
  std::optional<runtime::Message> recv_for(int source, int tag,
                                           std::chrono::milliseconds timeout);

  /// Total payload bytes sent.
  [[nodiscard]] std::size_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

  /// Messages queued but not yet received (non-blocking probe).
  [[nodiscard]] std::size_t pending() const { return mailbox_.pending(); }

  /// Stop serving (idempotent; also called by the destructor).
  void stop();

 private:
  void accept_loop();
  void read_loop(runtime::Socket conn);
  /// One framed write attempt on the cached connection; the connection
  /// cache and the wire are shared, hence the capability requirement.
  /// `trace` may be nullptr for an untraced (v1) frame.
  void send_attempt_locked(const std::string& key, const EndpointUrl& to,
                           int tag, std::span<const std::uint8_t> payload,
                           const NetModel& shape,
                           const runtime::TraceContext* trace)
      GRIDSE_REQUIRES(send_mutex_);

  int id_;
  EndpointUrl endpoint_;
  runtime::Socket listener_;
  std::thread acceptor_;
  analysis::Mutex readers_mutex_{"MwClient::readers_mutex_"};
  std::vector<std::thread> readers_ GRIDSE_GUARDED_BY(readers_mutex_);
  /// Accepted connections, shut down on stop().
  std::vector<int> live_fds_ GRIDSE_GUARDED_BY(readers_mutex_);
  runtime::Mailbox mailbox_;
  analysis::Mutex send_mutex_{"MwClient::send_mutex_"};
  std::map<std::string, runtime::Socket> connections_
      GRIDSE_GUARDED_BY(send_mutex_);
  /// One framed write with the shared bounded-retry loop; `nothrow` selects
  /// between send() (throw on exhaustion) and try_send() (return false).
  bool send_with_retries(const EndpointUrl& to, int tag,
                         std::span<const std::uint8_t> payload,
                         const NetModel& shape, bool nothrow);

  runtime::RetryPolicy retry_ GRIDSE_GUARDED_BY(send_mutex_);
  std::atomic<std::uint64_t> retries_{0};
  /// Retry-jitter seed derivation: each backoff sleep is
  /// RetryPolicy::backoff(attempt, salt) with
  ///   salt = (uint64(uint32(id_)) << 32) ^ retry_salt_.fetch_add(1),
  /// i.e. the client id in the high word XOR a per-client monotone retry
  /// counter in the low word. RetryPolicy::backoff() then hashes
  /// (policy seed ^ mix64(salt ^ attempt)) via splitmix64, so jitter is
  /// fully deterministic per (policy seed, client id, lifetime retry
  /// ordinal, attempt) and distinct clients never sleep in lockstep.
  std::atomic<std::uint64_t> retry_salt_{0};
  std::atomic<std::size_t> bytes_sent_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace gridse::medici
