#include "medici/router.hpp"

#include <sys/socket.h>

#include <cstring>

#include "analysis/assert.hpp"
#include "medici/wire.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace gridse::medici {

Relay::Relay(EndpointUrl inbound, EndpointUrl outbound, NetModel shape)
    : inbound_(std::move(inbound)),
      outbound_(std::move(outbound)),
      shape_(shape) {}

Relay::~Relay() { stop(); }

void Relay::start() {
  std::uint16_t port = inbound_.port;
  listener_ = runtime::Socket::listen_loopback(port);
  inbound_.port = port;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Relay::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listener_.valid()) {
    ::shutdown(listener_.fd(), SHUT_RDWR);
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  std::vector<std::thread> workers;
  {
    analysis::LockGuard lock(workers_mutex_);
    GRIDSE_ASSERT(live_fds_.size() == workers_.size(),
                  "fd bookkeeping out of sync: " << live_fds_.size()
                                                 << " fds for "
                                                 << workers_.size()
                                                 << " workers");
    workers.swap(workers_);
    for (const int fd : live_fds_) {
      ::shutdown(fd, SHUT_RDWR);  // wake workers blocked in recv
    }
    live_fds_.clear();
  }
  for (auto& w : workers) {
    w.join();
  }
}

RelayStats Relay::stats() const {
  return {messages_.load(), bytes_.load()};
}

void Relay::accept_loop() {
  for (;;) {
    runtime::Socket conn;
    try {
      conn = listener_.accept();
    } catch (const CommError&) {
      return;  // listener shut down
    }
    if (stopping_.load()) {
      return;
    }
    analysis::LockGuard lock(workers_mutex_);
    GRIDSE_ASSERT_HELD(workers_mutex_);
    live_fds_.push_back(conn.fd());
    workers_.emplace_back(
        [this, c = std::move(conn)]() mutable { relay_connection(std::move(c)); });
  }
}

void Relay::relay_connection(runtime::Socket upstream) {
  runtime::Socket downstream;
  std::vector<std::uint8_t> buffer;
  try {
    for (;;) {
      // ---- store: read one complete message from the source -------------
      WireHeader header{};
      std::uint8_t probe = 0;
      const std::size_t got = upstream.recv_some(&probe, 1);
      if (got == 0) {
        return;  // orderly close
      }
      std::memcpy(&header, &probe, 1);
      upstream.recv_all(reinterpret_cast<std::uint8_t*>(&header) + 1,
                        sizeof header - 1);
      buffer.resize(header.length);
      if (header.length > 0) {
        upstream.recv_all(buffer.data(), buffer.size());
      }

      // ---- forward: connect lazily, then paced chunked write -------------
      {
        OBS_SPAN("medici.relay.forward");
        if (!downstream.valid()) {
          downstream = runtime::Socket::connect_loopback(outbound_.port);
        }
        Pacer pacer(shape_);
        pacer.pace(sizeof header);
        downstream.send_all(&header, sizeof header);
        std::size_t off = 0;
        while (off < buffer.size()) {
          const std::size_t n = std::min(kWireChunk, buffer.size() - off);
          pacer.pace(n);
          downstream.send_all(buffer.data() + off, n);
          off += n;
        }
      }
      messages_.fetch_add(1);
      bytes_.fetch_add(buffer.size());
      OBS_COUNTER_ADD("medici.relay.messages", 1);
      OBS_COUNTER_ADD("medici.relay.bytes", buffer.size());
    }
  } catch (const CommError& e) {
    if (!stopping_.load()) {
      GRIDSE_WARN << "relay " << inbound_.to_string() << " -> "
                  << outbound_.to_string() << " ended: " << e.what();
    }
  }
}

}  // namespace gridse::medici
