#include "medici/router.hpp"

#include <sys/socket.h>

#include "analysis/assert.hpp"
#include "fault/fault.hpp"
#include "medici/wire.hpp"
#include "obs/obs.hpp"
#if GRIDSE_OBS
#include "obs/trace/trace.hpp"
#endif
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace gridse::medici {

Relay::Relay(EndpointUrl inbound, EndpointUrl outbound, NetModel shape)
    : inbound_(std::move(inbound)),
      outbound_(std::move(outbound)),
      shape_(shape) {}

Relay::~Relay() { stop(); }

void Relay::start() {
  std::uint16_t port = inbound_.port;
  listener_ = runtime::Socket::listen_loopback(port);
  inbound_.port = port;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Relay::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listener_.valid()) {
    ::shutdown(listener_.fd(), SHUT_RDWR);
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  std::vector<std::thread> workers;
  {
    analysis::LockGuard lock(workers_mutex_);
    GRIDSE_ASSERT(live_fds_.size() == workers_.size(),
                  "fd bookkeeping out of sync: " << live_fds_.size()
                                                 << " fds for "
                                                 << workers_.size()
                                                 << " workers");
    workers.swap(workers_);
    for (const int fd : live_fds_) {
      ::shutdown(fd, SHUT_RDWR);  // wake workers blocked in recv
    }
    live_fds_.clear();
  }
  for (auto& w : workers) {
    w.join();
  }
}

RelayStats Relay::stats() const {
  return {messages_.load(), bytes_.load()};
}

void Relay::accept_loop() {
  for (;;) {
    runtime::Socket conn;
    try {
      conn = listener_.accept();
    } catch (const CommError&) {
      return;  // listener shut down
    }
    if (stopping_.load()) {
      return;
    }
    analysis::LockGuard lock(workers_mutex_);
    GRIDSE_ASSERT_HELD(workers_mutex_);
    live_fds_.push_back(conn.fd());
    workers_.emplace_back(
        [this, c = std::move(conn)]() mutable { relay_connection(std::move(c)); });
  }
}

void Relay::relay_connection(runtime::Socket upstream) {
  runtime::Socket downstream;
  WireFrame frame;
  try {
    // ---- store-and-forward: read one complete message, then write it ----
    while (read_frame(upstream, frame)) {
      // A relay can lose a message after accepting it (the middleware-hop
      // loss mode); dropped frames are not counted as forwarded.
      if (FAULT_DROP("relay.forward", frame.source, frame.tag)) {
        continue;
      }
#if GRIDSE_OBS
      Timer forward_timer;
#endif
      {
        OBS_SPAN("medici.relay.forward");
        if (!downstream.valid()) {
          downstream = runtime::Socket::connect_loopback(outbound_.port);
        }
        Pacer pacer(shape_);
        // Forward the trace block verbatim so the consumer still sees the
        // original sender's span as its parent; the hop itself is recorded
        // as a relay trace record, not a new context.
        write_frame(downstream, frame.source, frame.tag, frame.payload,
                    frame.has_trace ? &frame.trace : nullptr, pacer);
      }
#if GRIDSE_OBS
      obs::trace::on_relay("medici.relay.forward", frame.trace,
                           forward_timer.seconds());
#endif
      messages_.fetch_add(1);
      bytes_.fetch_add(frame.payload.size());
      OBS_COUNTER_ADD("medici.relay.messages", 1);
      OBS_COUNTER_ADD("medici.relay.bytes", frame.payload.size());
    }
  } catch (const CommError& e) {
    if (!stopping_.load()) {
      GRIDSE_WARN << "relay " << inbound_.to_string() << " -> "
                  << outbound_.to_string() << " ended: " << e.what();
    }
  }
}

}  // namespace gridse::medici
