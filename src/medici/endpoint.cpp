#include "medici/endpoint.hpp"

#include "runtime/socket.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace gridse::medici {

std::string EndpointUrl::to_string() const {
  return protocol + "://" + host + ":" + std::to_string(port);
}

EndpointUrl parse_endpoint(const std::string& url) {
  const auto scheme_end = url.find("://");
  if (scheme_end == std::string::npos) {
    throw InvalidInput("endpoint url missing protocol: " + url);
  }
  EndpointUrl e;
  e.protocol = url.substr(0, scheme_end);
  if (e.protocol != "tcp") {
    throw InvalidInput("unsupported endpoint protocol: " + e.protocol);
  }
  const std::string rest = url.substr(scheme_end + 3);
  const auto colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
    throw InvalidInput("endpoint url missing host:port: " + url);
  }
  e.host = rest.substr(0, colon);
  const std::string port_str = rest.substr(colon + 1);
  int port = 0;
  try {
    port = std::stoi(port_str);
  } catch (const std::exception&) {
    throw InvalidInput("endpoint url has bad port: " + url);
  }
  if (port < 0 || port > 65535) {
    throw InvalidInput("endpoint url port out of range: " + url);
  }
  e.port = static_cast<std::uint16_t>(port);
  return e;
}

EndpointUrl ephemeral_endpoint() {
  std::uint16_t port = 0;
  {
    // Bind to port 0 to have the kernel pick a free port, then release it.
    runtime::Socket probe = runtime::Socket::listen_loopback(port);
  }
  EndpointUrl e;
  e.port = port;
  return e;
}

}  // namespace gridse::medici
