#pragma once

#include <cstdint>

namespace gridse::medici {

/// Frame header shared by the MeDICi client, the pipeline relays, and the
/// direct TCP path, so a relay is wire-transparent: u64 payload length,
/// i32 logical source id, i32 tag, then the payload bytes.
// Kept trivially copyable (no default member initializers) so the framing
// code may assemble it from raw bytes with memcpy.
struct WireHeader {
  std::uint64_t length;
  std::int32_t source;
  std::int32_t tag;
};
static_assert(sizeof(WireHeader) == 16, "wire header must be tightly packed");

/// Chunk size for paced/chunked socket writes.
inline constexpr std::size_t kWireChunk = 256 * 1024;

}  // namespace gridse::medici
