#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "medici/netmodel.hpp"
#include "runtime/socket.hpp"
#include "runtime/trace_context.hpp"

namespace gridse::medici {

/// Frame header shared by the MeDICi client, the pipeline relays, and the
/// direct TCP path, so a relay is wire-transparent: u64 payload length,
/// i32 logical source id, i32 tag, then the payload bytes.
// Kept trivially copyable (no default member initializers) so the framing
// code may assemble it from raw bytes with memcpy.
struct WireHeader {
  std::uint64_t length;
  std::int32_t source;
  std::int32_t tag;
};
static_assert(sizeof(WireHeader) == 16, "wire header must be tightly packed");

/// Wire format version. v2 adds an optional trace-context block: when bit
/// 63 of `length` (runtime::kTraceLengthFlag) is set, a serialized
/// runtime::TraceContext sits between the header and the payload, and the
/// true payload length is `length & runtime::kTraceLengthMask`. v1 frames
/// never set the bit, so they parse unchanged; v2 readers skip the block
/// when the flag is clear, which keeps the formats interoperable in both
/// directions for untraced traffic.
inline constexpr int kWireVersion = 2;

/// Size of the serialized trace-context block.
inline constexpr std::size_t kWireTraceSize = sizeof(runtime::TraceContext);

/// Chunk size for paced/chunked socket writes.
inline constexpr std::size_t kWireChunk = 256 * 1024;

/// One decoded frame: addressing, the optional trace context, and the
/// payload bytes.
struct WireFrame {
  std::int32_t source = -1;
  std::int32_t tag = 0;
  bool has_trace = false;
  runtime::TraceContext trace{};
  std::vector<std::uint8_t> payload;
};

/// Serialize one frame (header [+ trace block] + payload) into a buffer;
/// `trace` may be nullptr for a legacy v1 frame.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    std::int32_t source, std::int32_t tag,
    std::span<const std::uint8_t> payload,
    const runtime::TraceContext* trace = nullptr);

/// Decode one frame from the front of `bytes` into `out`; returns the
/// number of bytes consumed. Throws gridse::CommError when the input is
/// shorter than the encoded frame (truncated header, trace block, or
/// payload).
std::size_t decode_frame(std::span<const std::uint8_t> bytes, WireFrame& out);

/// Blocking read of one frame from `socket` into `out`. Returns false on an
/// orderly peer close before the first header byte (the EOF-protocol probe);
/// throws gridse::CommError on a mid-frame close.
bool read_frame(const runtime::Socket& socket, WireFrame& out);

/// Write one frame to `socket`, paced by `pacer` in kWireChunk slices;
/// `trace` may be nullptr for a legacy v1 frame. The caller serializes
/// access to the socket (one frame is written atomically per call).
void write_frame(const runtime::Socket& socket, std::int32_t source,
                 std::int32_t tag, std::span<const std::uint8_t> payload,
                 const runtime::TraceContext* trace, Pacer& pacer);

}  // namespace gridse::medici
