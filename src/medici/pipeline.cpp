#include "medici/pipeline.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace gridse::medici {

void MifConnector::set_property(const std::string& name,
                                const std::string& value) {
  if (name == "tcpProtocol" && value != "EOFProtocol") {
    throw InvalidInput("MifConnector: only the EOFProtocol framing is "
                       "implemented");
  }
  properties_.emplace_back(name, value);
}

void MifComponent::set_in_name_endpoint(const std::string& url) {
  inbound_ = parse_endpoint(url);
}

void MifComponent::set_out_hal_endpoint(const std::string& url) {
  outbound_ = parse_endpoint(url);
}

MifPipeline::~MifPipeline() { stop(); }

MifConnector& MifPipeline::add_mif_connector(EndpointProtocol protocol) {
  GRIDSE_CHECK_MSG(!running_, "cannot reconfigure a running pipeline");
  connectors_.push_back(std::make_unique<MifConnector>(protocol));
  return *connectors_.back();
}

MifComponent& MifPipeline::add_mif_component(std::string name) {
  GRIDSE_CHECK_MSG(!running_, "cannot reconfigure a running pipeline");
  components_.push_back(std::make_unique<MifComponent>(std::move(name)));
  return *components_.back();
}

void MifPipeline::start() {
  GRIDSE_CHECK_MSG(!running_, "pipeline already started");
  GRIDSE_CHECK_MSG(!connectors_.empty(),
                   "pipeline needs a connector (add_mif_connector)");
  GRIDSE_CHECK_MSG(!components_.empty(),
                   "pipeline needs at least one component");
  for (const auto& comp : components_) {
    if (comp->outbound().port == 0) {
      throw InvalidInput("component '" + comp->name() +
                         "' has no outbound endpoint");
    }
    relays_.push_back(std::make_unique<Relay>(comp->inbound(),
                                              comp->outbound(), relay_model_));
    relays_.back()->start();
    comp->inbound_ = relays_.back()->inbound();  // ephemeral port resolved
    OBS_COUNTER_ADD("medici.pipeline.relays_started", 1);
  }
  running_ = true;
}

void MifPipeline::stop() {
  for (auto& relay : relays_) {
    relay->stop();
  }
  relays_.clear();
  running_ = false;
}

RelayStats MifPipeline::stats() const {
  RelayStats total;
  for (const auto& relay : relays_) {
    const RelayStats s = relay->stats();
    total.messages += s.messages;
    total.bytes += s.bytes;
  }
  return total;
}

}  // namespace gridse::medici
