#pragma once

#include <cstdint>
#include <string>

namespace gridse::medici {

/// A MeDICi endpoint URL ("each state estimator or data source is uniquely
/// identified by a URL", paper §IV-A), e.g. "tcp://127.0.0.1:6789".
/// This prototype routes everything over loopback TCP, mirroring the
/// single-lab-network testbed.
struct EndpointUrl {
  std::string protocol = "tcp";
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const EndpointUrl&) const = default;
};

/// Parse "tcp://host:port". Throws InvalidInput on malformed URLs or
/// non-tcp protocols.
EndpointUrl parse_endpoint(const std::string& url);

/// A fresh loopback endpoint with a kernel-assigned free port. The port is
/// reserved by binding briefly, then released — callers bind it again
/// immediately. Collisions are possible in principle but not in the
/// single-process testbed.
EndpointUrl ephemeral_endpoint();

}  // namespace gridse::medici
