#include "medici/medici_comm.hpp"

#include <thread>

#include "obs/obs.hpp"
#if GRIDSE_OBS
#include "obs/trace/trace.hpp"
#endif
#include "util/error.hpp"

namespace gridse::medici {
namespace {

constexpr int kBarrierArriveTag = MediciWorld::kMaxUserTag + 1;
constexpr int kBarrierReleaseTag = MediciWorld::kMaxUserTag + 2;

}  // namespace

class MediciCommunicatorImpl final : public runtime::Communicator {
 public:
  MediciCommunicatorImpl(MediciWorld* world, int rank)
      : world_(world), rank_(rank) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return world_->size(); }

  void send(int dest, int tag, std::vector<std::uint8_t> payload) override {
    send_tagged(dest, tag, payload, /*allow_reserved=*/false);
  }

  runtime::Message recv(int source, int tag) override {
    if (tag != runtime::kAnyTag && tag > MediciWorld::kMaxUserTag) {
      throw CommError("medici recv: tag above kMaxUserTag is reserved");
    }
    return world_->clients_[static_cast<std::size_t>(rank_)]->recv(source, tag);
  }

  std::optional<runtime::Message> recv_for(
      int source, int tag, std::chrono::milliseconds timeout) override {
    if (tag != runtime::kAnyTag && tag > MediciWorld::kMaxUserTag) {
      throw CommError("medici recv: tag above kMaxUserTag is reserved");
    }
    return world_->clients_[static_cast<std::size_t>(rank_)]->recv_for(
        source, tag, timeout);
  }

  void barrier() override {
    OBS_EVENT("barrier.enter", OBS_ATTR("rank", rank_),
              OBS_ATTR("transport", "medici"));
    MwClient& me = *world_->clients_[static_cast<std::size_t>(rank_)];
    if (rank_ == 0) {
      for (int r = 1; r < size(); ++r) {
        (void)me.recv(runtime::kAnySource, kBarrierArriveTag);
      }
      for (int r = 1; r < size(); ++r) {
        send_tagged(r, kBarrierReleaseTag, {}, /*allow_reserved=*/true);
      }
    } else {
      send_tagged(0, kBarrierArriveTag, {}, /*allow_reserved=*/true);
      (void)me.recv(0, kBarrierReleaseTag);
    }
    OBS_EVENT("barrier.exit", OBS_ATTR("rank", rank_),
              OBS_ATTR("transport", "medici"));
  }

  [[nodiscard]] std::size_t bytes_sent() const override {
    return world_->clients_[static_cast<std::size_t>(rank_)]->bytes_sent();
  }

 private:
  void send_tagged(int dest, int tag, const std::vector<std::uint8_t>& payload,
                   bool allow_reserved) {
    if (dest < 0 || dest >= size()) {
      throw CommError("medici send: bad destination rank " +
                      std::to_string(dest));
    }
    if (tag < 0 || (!allow_reserved && tag > MediciWorld::kMaxUserTag)) {
      throw CommError("medici send: bad tag " + std::to_string(tag));
    }
    const EndpointUrl& target =
        world_->send_target_[static_cast<std::size_t>(rank_)]
                            [static_cast<std::size_t>(dest)];
    world_->clients_[static_cast<std::size_t>(rank_)]->send(
        target, tag, payload, world_->link_model_);
  }

  MediciWorld* world_;
  int rank_;
};

MediciWorld::MediciWorld(int size, TransportMode mode, NetModel relay_model,
                         NetModel link_model)
    : mode_(mode), link_model_(link_model) {
  GRIDSE_CHECK_MSG(size > 0, "world size must be positive");
  clients_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    clients_.push_back(std::make_unique<MwClient>(r));
  }
  send_target_.resize(static_cast<std::size_t>(size));
  pipelines_.resize(static_cast<std::size_t>(size));
  for (int s = 0; s < size; ++s) {
    send_target_[static_cast<std::size_t>(s)].resize(
        static_cast<std::size_t>(size));
    pipelines_[static_cast<std::size_t>(s)].resize(
        static_cast<std::size_t>(size));
    for (int d = 0; d < size; ++d) {
      if (s == d) {
        send_target_[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] =
            clients_[static_cast<std::size_t>(d)]->endpoint();
        continue;
      }
      if (mode_ == TransportMode::kDirectTcp) {
        send_target_[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] =
            clients_[static_cast<std::size_t>(d)]->endpoint();
      } else {
        // One MeDICi pipeline per directed pair (paper §IV-C), from an
        // ephemeral inbound endpoint to the destination's own URL.
        auto pipeline = std::make_unique<MifPipeline>();
        pipeline->set_relay_model(relay_model);
        auto& conn = pipeline->add_mif_connector(EndpointProtocol::kTcp);
        conn.set_property("tcpProtocol", "EOFProtocol");
        auto& comp = pipeline->add_mif_component(
            "SE_" + std::to_string(s) + "_to_" + std::to_string(d));
        comp.set_in_name_endpoint("tcp://127.0.0.1:0");
        comp.set_out_hal_endpoint(
            clients_[static_cast<std::size_t>(d)]->endpoint().to_string());
        pipeline->start();
        send_target_[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] =
            comp.inbound();  // ephemeral port resolved by start()
        pipelines_[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] =
            std::move(pipeline);
      }
    }
  }
}

MediciWorld::~MediciWorld() {
  // Pipelines stop before clients so relays do not log noisy warnings about
  // vanished downstream endpoints.
  for (auto& row : pipelines_) {
    for (auto& p : row) {
      if (p) p->stop();
    }
  }
  for (auto& c : clients_) {
    c->stop();
  }
}

std::unique_ptr<runtime::Communicator> MediciWorld::communicator(int rank) {
  GRIDSE_CHECK_MSG(rank >= 0 && rank < size(), "rank out of range");
  return std::make_unique<MediciCommunicatorImpl>(this, rank);
}

void MediciWorld::run(
    const std::function<void(runtime::Communicator&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size()));
  threads.reserve(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      try {
#if GRIDSE_OBS
        obs::trace::set_thread_rank(r);
#endif
        const auto comm = communicator(r);
        fn(*comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

const EndpointUrl& MediciWorld::endpoint_of(int rank) const {
  GRIDSE_CHECK_MSG(rank >= 0 && rank < size(), "rank out of range");
  return clients_[static_cast<std::size_t>(rank)]->endpoint();
}

RelayStats MediciWorld::relay_stats() const {
  RelayStats total;
  for (const auto& row : pipelines_) {
    for (const auto& p : row) {
      if (!p) continue;
      const RelayStats s = p->stats();
      total.messages += s.messages;
      total.bytes += s.bytes;
    }
  }
  return total;
}

}  // namespace gridse::medici
