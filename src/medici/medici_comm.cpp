#include "medici/medici_comm.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/obs.hpp"
#if GRIDSE_OBS
#include "obs/trace/trace.hpp"
#endif
#include "runtime/recovery.hpp"
#include "util/error.hpp"

namespace gridse::medici {
namespace {

constexpr int kBarrierArriveTag = MediciWorld::kMaxUserTag + 1;
constexpr int kBarrierReleaseTag = MediciWorld::kMaxUserTag + 2;

/// Poll granularity inside the barrier wait loop: short enough that a dead
/// peer is noticed quickly, long enough that an idle barrier burns no CPU.
constexpr std::chrono::milliseconds kBarrierPollSlice{50};

}  // namespace

class MediciCommunicatorImpl final : public runtime::Communicator {
 public:
  MediciCommunicatorImpl(MediciWorld* world, int rank)
      : world_(world), rank_(rank) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return world_->size(); }

  void send(int dest, int tag, std::vector<std::uint8_t> payload) override {
    send_tagged(dest, tag, payload, /*allow_reserved=*/false);
  }

  runtime::Message recv(int source, int tag) override {
    if (tag != runtime::kAnyTag && tag > MediciWorld::kMaxUserTag) {
      throw CommError("medici recv: tag above kMaxUserTag is reserved");
    }
    return world_->clients_[static_cast<std::size_t>(rank_)]->recv(source, tag);
  }

  std::optional<runtime::Message> recv_for(
      int source, int tag, std::chrono::milliseconds timeout) override {
    if (tag != runtime::kAnyTag && tag > MediciWorld::kMaxUserTag) {
      throw CommError("medici recv: tag above kMaxUserTag is reserved");
    }
    return world_->clients_[static_cast<std::size_t>(rank_)]->recv_for(
        source, tag, timeout);
  }

  void barrier() override {
    OBS_EVENT("barrier.enter", OBS_ATTR("rank", rank_),
              OBS_ATTR("transport", "medici"));
    MwClient& me = *world_->clients_[static_cast<std::size_t>(rank_)];
    if (rank_ == 0) {
      for (int r = 1; r < size(); ++r) {
        (void)barrier_take(me, runtime::kAnySource, kBarrierArriveTag);
      }
      for (int r = 1; r < size(); ++r) {
        send_tagged(r, kBarrierReleaseTag, {}, /*allow_reserved=*/true);
      }
    } else {
      send_tagged(0, kBarrierArriveTag, {}, /*allow_reserved=*/true);
      (void)barrier_take(me, 0, kBarrierReleaseTag);
    }
    OBS_EVENT("barrier.exit", OBS_ATTR("rank", rank_),
              OBS_ATTR("transport", "medici"));
  }

  [[nodiscard]] std::size_t bytes_sent() const override {
    return world_->clients_[static_cast<std::size_t>(rank_)]->bytes_sent();
  }

 private:
  /// A barrier wait bounded by the world's barrier timeout: polls the
  /// mailbox in short slices so a rank that died before arriving turns into
  /// a fast CommError instead of a silent hang until the full timeout.
  runtime::Message barrier_take(MwClient& me, int source, int tag) {
    using std::chrono::steady_clock;
    const steady_clock::time_point deadline =
        steady_clock::now() + world_->barrier_timeout();
    int polls_after_death = 0;
    for (;;) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline - steady_clock::now());
      const std::chrono::milliseconds slice = std::min(
          std::max(remaining, std::chrono::milliseconds{0}),
          kBarrierPollSlice);
      if (auto msg = me.recv_for(source, tag, slice)) {
        return std::move(*msg);
      }
      if (remaining <= std::chrono::milliseconds{0}) {
        throw CommError("medici barrier: rank " + std::to_string(rank_) +
                        " timed out waiting for a peer (lost rank?)");
      }
      // One grace slice after a death is observed lets barrier messages
      // already delivered to the mailbox drain before giving up.
      if (world_->any_rank_dead() && ++polls_after_death >= 2) {
        throw CommError("medici barrier: aborted at rank " +
                        std::to_string(rank_) +
                        ": a peer died before the barrier");
      }
    }
  }

  void send_tagged(int dest, int tag, const std::vector<std::uint8_t>& payload,
                   bool allow_reserved) {
    if (dest < 0 || dest >= size()) {
      throw CommError("medici send: bad destination rank " +
                      std::to_string(dest));
    }
    if (tag < 0 || (!allow_reserved && tag > MediciWorld::kMaxUserTag)) {
      throw CommError("medici send: bad tag " + std::to_string(tag));
    }
    const EndpointUrl& target =
        world_->send_target_[static_cast<std::size_t>(rank_)]
                            [static_cast<std::size_t>(dest)];
    MwClient& client = *world_->clients_[static_cast<std::size_t>(rank_)];
    if (tag >= runtime::kHeartbeatTagBase && tag <= MediciWorld::kMaxUserTag) {
      // Failure-detector traffic (heartbeats, membership/recovery reports,
      // checkpoint shipments) is best-effort: it rides the same bounded
      // retry/backoff accounting, but a dead peer must not abort the
      // sender's cycle — the missing beat IS the detection signal.
      (void)client.try_send(target, tag, payload, world_->link_model_);
      return;
    }
    client.send(target, tag, payload, world_->link_model_);
  }

  MediciWorld* world_;
  int rank_;
};

MediciWorld::MediciWorld(int size, TransportMode mode, NetModel relay_model,
                         NetModel link_model,
                         runtime::ResilienceConfig resilience)
    : mode_(mode), link_model_(link_model), resilience_(resilience) {
  GRIDSE_CHECK_MSG(size > 0, "world size must be positive");
  clients_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    clients_.push_back(std::make_unique<MwClient>(r));
    clients_.back()->set_retry_policy(resilience_.send_retry);
  }
  send_target_.resize(static_cast<std::size_t>(size));
  pipelines_.resize(static_cast<std::size_t>(size));
  for (int s = 0; s < size; ++s) {
    send_target_[static_cast<std::size_t>(s)].resize(
        static_cast<std::size_t>(size));
    pipelines_[static_cast<std::size_t>(s)].resize(
        static_cast<std::size_t>(size));
    for (int d = 0; d < size; ++d) {
      if (s == d) {
        send_target_[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] =
            clients_[static_cast<std::size_t>(d)]->endpoint();
        continue;
      }
      if (mode_ == TransportMode::kDirectTcp) {
        send_target_[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] =
            clients_[static_cast<std::size_t>(d)]->endpoint();
      } else {
        // One MeDICi pipeline per directed pair (paper §IV-C), from an
        // ephemeral inbound endpoint to the destination's own URL.
        auto pipeline = std::make_unique<MifPipeline>();
        pipeline->set_relay_model(relay_model);
        auto& conn = pipeline->add_mif_connector(EndpointProtocol::kTcp);
        conn.set_property("tcpProtocol", "EOFProtocol");
        auto& comp = pipeline->add_mif_component(
            "SE_" + std::to_string(s) + "_to_" + std::to_string(d));
        comp.set_in_name_endpoint("tcp://127.0.0.1:0");
        comp.set_out_hal_endpoint(
            clients_[static_cast<std::size_t>(d)]->endpoint().to_string());
        pipeline->start();
        send_target_[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] =
            comp.inbound();  // ephemeral port resolved by start()
        pipelines_[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] =
            std::move(pipeline);
      }
    }
  }
}

MediciWorld::~MediciWorld() {
  // Pipelines stop before clients so relays do not log noisy warnings about
  // vanished downstream endpoints.
  for (auto& row : pipelines_) {
    for (auto& p : row) {
      if (p) p->stop();
    }
  }
  for (auto& c : clients_) {
    c->stop();
  }
}

std::unique_ptr<runtime::Communicator> MediciWorld::communicator(int rank) {
  GRIDSE_CHECK_MSG(rank >= 0 && rank < size(), "rank out of range");
  return std::make_unique<MediciCommunicatorImpl>(this, rank);
}

void MediciWorld::run(
    const std::function<void(runtime::Communicator&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size()));
  threads.reserve(static_cast<std::size_t>(size()));
  dead_ranks_.store(0, std::memory_order_release);
  for (int r = 0; r < size(); ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      try {
#if GRIDSE_OBS
        obs::trace::set_thread_rank(r);
#endif
        const auto comm = communicator(r);
        fn(*comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        dead_ranks_.fetch_add(1, std::memory_order_release);
        OBS_EVENT("rank.died", OBS_ATTR("rank", r),
                  OBS_ATTR("transport", "medici"));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

const EndpointUrl& MediciWorld::endpoint_of(int rank) const {
  GRIDSE_CHECK_MSG(rank >= 0 && rank < size(), "rank out of range");
  return clients_[static_cast<std::size_t>(rank)]->endpoint();
}

std::uint64_t MediciWorld::total_retries() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) {
    total += c->retries();
  }
  return total;
}

RelayStats MediciWorld::relay_stats() const {
  RelayStats total;
  for (const auto& row : pipelines_) {
    for (const auto& p : row) {
      if (!p) continue;
      const RelayStats s = p->stats();
      total.messages += s.messages;
      total.bytes += s.bytes;
    }
  }
  return total;
}

}  // namespace gridse::medici
