#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "medici/netmodel.hpp"
#include "medici/router.hpp"

namespace gridse::medici {

enum class EndpointProtocol { kTcp };

/// Connector facade mirroring the MifConnector of the paper's Fig. 7 sample
/// code ("conn.setProperty(\"tcpProtocol\", new EOFProtocol())"); properties
/// are recorded but only the TCP/EOF framing this prototype implements is
/// accepted.
class MifConnector {
 public:
  explicit MifConnector(EndpointProtocol protocol) : protocol_(protocol) {}

  void set_property(const std::string& name, const std::string& value);
  [[nodiscard]] EndpointProtocol protocol() const { return protocol_; }

 private:
  EndpointProtocol protocol_;
  std::vector<std::pair<std::string, std::string>> properties_;
};

/// A pipeline component with inbound/outbound endpoints — the "SESocket"
/// component of Fig. 7.
class MifComponent {
 public:
  explicit MifComponent(std::string name) : name_(std::move(name)) {}

  /// Fig. 7: SE.setInNameEndp("tcp://nwiceb.pnl.gov:6789")
  void set_in_name_endpoint(const std::string& url);
  /// Fig. 7: SE.setOutHalEndp("tcp://chinook.emsl.pnl.gov:7890")
  void set_out_hal_endpoint(const std::string& url);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const EndpointUrl& inbound() const { return inbound_; }
  [[nodiscard]] const EndpointUrl& outbound() const { return outbound_; }

 private:
  friend class MifPipeline;
  std::string name_;
  EndpointUrl inbound_;
  EndpointUrl outbound_;
};

/// A MeDICi pipeline: one one-way communication channel between two state
/// estimators (paper §IV-C). start() binds each component's inbound endpoint
/// and relays everything to its outbound endpoint through a
/// store-and-forward hop.
class MifPipeline {
 public:
  MifPipeline() = default;
  ~MifPipeline();

  MifPipeline(const MifPipeline&) = delete;
  MifPipeline& operator=(const MifPipeline&) = delete;

  MifConnector& add_mif_connector(EndpointProtocol protocol);
  MifComponent& add_mif_component(std::string name);

  /// Pace relayed traffic with `model` (default: the paper-calibrated
  /// ~0.4 GB/s relay rate; pass unshaped_model() for raw loopback).
  void set_relay_model(NetModel model) { relay_model_ = model; }

  /// Bind inbound endpoints and begin relaying. Components whose inbound
  /// port is 0 get an ephemeral port (readable via their inbound() after
  /// start). Throws CommError when a bind fails.
  void start();

  /// Stop all relays (idempotent).
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Aggregate stats across this pipeline's relays.
  [[nodiscard]] RelayStats stats() const;

 private:
  std::vector<std::unique_ptr<MifConnector>> connectors_;
  std::vector<std::unique_ptr<MifComponent>> components_;
  std::vector<std::unique_ptr<Relay>> relays_;
  NetModel relay_model_ = medici_relay_model();
  /// Atomic rather than mutex-guarded: running() is a status probe that may
  /// be polled from any thread while start()/stop() run on another; the
  /// flag is independent of the relays_ vector, which only start()/stop()
  /// (externally serialized, as documented) touch.
  std::atomic<bool> running_{false};
};

}  // namespace gridse::medici
