#pragma once

#include <chrono>
#include <deque>
#include <optional>

#include "analysis/debug_sync.hpp"
#include "runtime/message.hpp"

namespace gridse::runtime {

/// Thread-safe mailbox with (source, tag) selective receive — the shared
/// receive engine behind both the in-process and the TCP communicators.
class Mailbox {
 public:
  /// Deposit a message (any thread).
  void deliver(Message message);

  /// Block until a message matching (source, tag) exists; remove and return
  /// the first match in arrival order. Wildcards: kAnySource / kAnyTag.
  Message take(int source, int tag);

  /// Bounded take: wait at most `timeout` for a match. Returns nullopt on
  /// timeout, so a lost peer cannot hang a DSE step forever.
  std::optional<Message> take_for(int source, int tag,
                                  std::chrono::milliseconds timeout);

  /// Non-blocking variant; returns false if no match is queued.
  bool try_take(int source, int tag, Message& out);

  /// Number of queued messages (diagnostics).
  [[nodiscard]] std::size_t pending() const;

 private:
  [[nodiscard]] static bool matches(const Message& m, int source, int tag) {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  /// First queued match, or end(); requires mutex_ held.
  [[nodiscard]] std::deque<Message>::iterator find_match_locked(int source,
                                                                int tag)
      GRIDSE_REQUIRES(mutex_);

  mutable analysis::Mutex mutex_{"Mailbox::mutex_"};
  analysis::ConditionVariable cv_;
  std::deque<Message> queue_ GRIDSE_GUARDED_BY(mutex_);
};

}  // namespace gridse::runtime
