#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>

#include "runtime/message.hpp"

namespace gridse::runtime {

/// Thread-safe mailbox with (source, tag) selective receive — the shared
/// receive engine behind both the in-process and the TCP communicators.
class Mailbox {
 public:
  /// Deposit a message (any thread).
  void deliver(Message message);

  /// Block until a message matching (source, tag) exists; remove and return
  /// the first match in arrival order. Wildcards: kAnySource / kAnyTag.
  Message take(int source, int tag);

  /// Non-blocking variant; returns false if no match is queued.
  bool try_take(int source, int tag, Message& out);

  /// Number of queued messages (diagnostics).
  [[nodiscard]] std::size_t pending() const;

 private:
  [[nodiscard]] static bool matches(const Message& m, int source, int tag) {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace gridse::runtime
