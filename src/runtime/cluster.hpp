#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace gridse::runtime {

/// Static description of one HPC site (paper Fig. 1: a balancing-authority
/// control center hosting an HPC platform).
struct ClusterSpec {
  std::string name;        ///< e.g. "Nwiceb", "Catamount", "Chinook"
  int worker_threads = 4;  ///< worker processors behind the master node
};

/// A simulated HPC cluster: a named worker pool behind a master. The master
/// node runs the interface layer (middleware client + data processor); the
/// workers execute subsystem state estimations in parallel.
class SimulatedCluster {
 public:
  explicit SimulatedCluster(ClusterSpec spec);

  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] const ClusterSpec& spec() const { return spec_; }
  [[nodiscard]] ThreadPool& workers() { return *workers_; }

  /// Stop the site's worker pool (idempotent). Further submissions to
  /// workers() throw; models taking the site offline.
  void shutdown();

 private:
  ClusterSpec spec_;
  std::unique_ptr<ThreadPool> workers_;
};

/// Construct the paper's three-cluster testbed (Nwiceb, Catamount, Chinook).
std::vector<ClusterSpec> pnnl_testbed_specs(int worker_threads = 4);

}  // namespace gridse::runtime
