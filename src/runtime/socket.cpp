#include "runtime/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "fault/fault.hpp"
#include "util/error.hpp"

namespace gridse::runtime {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw CommError(what + ": " + std::strerror(errno));
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(const void* data, std::size_t size) const {
  GRIDSE_CHECK(valid());
  // Byte-level site: supports delay and error (drop here would desync the
  // stream framing; frame-level drops live in wire.write).
  (void)FAULT_POINT("socket.send", fault::kAnyValue, fault::kAnyValue);
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Socket::recv_all(void* data, std::size_t size) const {
  GRIDSE_CHECK(valid());
  (void)FAULT_POINT("socket.recv", fault::kAnyValue, fault::kAnyValue);
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("recv");
    }
    if (n == 0) {
      throw CommError("recv: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
}

std::size_t Socket::recv_some(void* data, std::size_t size) const {
  GRIDSE_CHECK(valid());
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

Socket Socket::listen_loopback(std::uint16_t& port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  Socket s(fd);
  const int yes = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    fail("bind");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail("getsockname");
  }
  port = ntohs(addr.sin_port);
  if (::listen(fd, backlog) != 0) {
    fail("listen");
  }
  return s;
}

Socket Socket::accept() const {
  GRIDSE_CHECK(valid());
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      fail("accept");
    }
    const int yes = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
    return Socket(fd);
  }
}

Socket Socket::connect_loopback(std::uint16_t port) {
  (void)FAULT_POINT("socket.connect", fault::kAnyValue, fault::kAnyValue);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  Socket s(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    fail("connect");
  }
  const int yes = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof yes);
  return s;
}

}  // namespace gridse::runtime
