#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

namespace gridse::runtime {

/// Bounded retry with exponential backoff and deterministic jitter, used by
/// MwClient::send when a cached connection fails mid-exchange.
struct RetryPolicy {
  /// Total send attempts including the first; 2 reproduces the historical
  /// single-reconnect behavior.
  int max_attempts = 2;
  /// First backoff sleep; doubled per retry up to backoff_max.
  std::chrono::milliseconds backoff_base{5};
  std::chrono::milliseconds backoff_max{500};
  /// Fraction of each backoff randomized away ([0, 1]); breaks retry
  /// synchronization between clients without losing determinism (the jitter
  /// is a hash of seed, client and attempt).
  double jitter = 0.5;
  std::uint64_t seed = 0x5eedULL;

  /// Sleep before retry number `attempt` (0-based: the sleep between the
  /// first failure and the second attempt). `salt` decorrelates independent
  /// retry sequences (client id, per-client counter).
  [[nodiscard]] std::chrono::milliseconds backoff(int attempt,
                                                  std::uint64_t salt) const;
};

/// Cross-cycle recovery knobs: the heartbeat failure detector, checkpoint
/// warm-restart, and remapping after confirmed cluster loss (see
/// docs/RESILIENCE.md "Recovery & remapping"). Default **off**: with
/// `enabled = false` the DSE driver and DseSystem behave exactly as before
/// this layer existed.
struct RecoveryConfig {
  bool enabled = false;
  /// Spacing between heartbeat rounds at the start of each cycle.
  std::chrono::milliseconds heartbeat_period{20};
  /// Total budget for collecting peers' heartbeats (and the coordinator's
  /// membership broadcast). A peer with zero beats inside this window is
  /// observed dead; some-but-not-all beats observed is suspect.
  std::chrono::milliseconds heartbeat_timeout{1000};
  /// Beats sent per cycle; >= 2 distinguishes suspect from dead.
  int heartbeat_rounds = 2;
  /// How many cycles a rejoining cluster waits after announce_rejoin before
  /// it is folded back into the participant set (the remap epoch).
  int rejoin_epoch = 1;
  /// Optional disk spill directory for estimator checkpoints; empty keeps
  /// the store purely in memory.
  std::string checkpoint_dir;
};

/// Per-cycle service-level objectives: a wall-clock deadline for the whole
/// cycle and optional per-phase budgets. A value of 0 disables that check.
/// Violations never alter control flow — they only emit
/// `slo.cycle_deadline_missed` / `slo.phase_budget_over` counters and trace
/// events (see docs/OBSERVABILITY.md, "Per-cycle telemetry").
struct SloConfig {
  std::chrono::milliseconds cycle_deadline{0};
  std::chrono::milliseconds step1_budget{0};
  std::chrono::milliseconds exchange_budget{0};
  std::chrono::milliseconds step2_budget{0};
  std::chrono::milliseconds combine_budget{0};

  /// True when at least one threshold is configured.
  [[nodiscard]] bool any() const {
    return cycle_deadline.count() > 0 || step1_budget.count() > 0 ||
           exchange_budget.count() > 0 || step2_budget.count() > 0 ||
           combine_budget.count() > 0;
  }
};

/// Per-cycle telemetry knobs (the time-series sampler and the degradation
/// flight recorder in src/obs/telemetry.hpp). Plain data here so the config
/// plumbing stays obs-free: a GRIDSE_OBS=OFF build still parses these, it
/// just never starts a sampler.
struct TelemetryConfig {
  /// Output directory for timeseries.jsonl / metrics.prom / flight-*.json.
  /// Empty = take GRIDSE_TELEMETRY_DIR; both empty = telemetry off.
  std::string dir;
  /// Wall-clock background sampling period for long phases; 0 = sample at
  /// cycle boundaries only.
  std::chrono::milliseconds sample_period{0};
  /// Cycle snapshots retained in the flight-recorder ring.
  int flight_ring = 16;
  SloConfig slo;
};

/// Topology-change replay and event-driven repartitioning knobs (see
/// docs/RESILIENCE.md "Topology events & repartitioning"). Plain data so
/// the config plumbing stays fault/grid-free; DseSystem interprets it.
struct TopologyConfig {
  /// Replay plan: inline JSON when it starts with '{', else a file path.
  /// Empty = take GRIDSE_TOPOLOGY_PLAN; both empty = replay off.
  std::string plan;
  /// Repartition when the live decomposition's expected-GN-iteration score
  /// exceeds threshold × the score captured at the last (re)partition.
  /// <= 0 disables event-driven repartitioning.
  double repartition_threshold = 1.5;
  /// Subsystem-count sweep bounds handed to graph::choose_parts when a
  /// repartition triggers; both 0 = keep the current k.
  int k_min = 0;
  int k_max = 0;
  /// Sigma of the pseudo angle anchors on unobserved live components.
  double anchor_angle_sigma = 1e-4;
  /// Sigma of the |V| = 0 / θ = 0 pins on de-energized buses.
  double dead_pin_sigma = 1e-4;
};

/// How the distributed exchange behaves when peers misbehave. Threaded from
/// SystemConfig into the transports and the DSE driver.
struct ResilienceConfig {
  RetryPolicy send_retry;
  /// How long a barrier waits before declaring a peer lost (historically
  /// the hard-coded 120 s kBarrierTimeout in tcp_comm.cpp).
  std::chrono::milliseconds barrier_timeout{120'000};
  /// Per-phase deadline on the Step-2 pseudo-measurement fan-in, the
  /// redistribution receive, and the final combine. 0 = wait forever (the
  /// pre-resilience behavior).
  std::chrono::milliseconds exchange_deadline{0};
  /// When a neighbour's pseudo-measurements miss the deadline, re-solve
  /// Step 2 with own Step-1 boundary values as low-weight priors and tag
  /// the result degraded, instead of failing the cycle.
  bool degraded_step2 = true;
  /// Cross-cycle recovery (heartbeats, checkpoints, remap-after-loss).
  RecoveryConfig recovery;
};

/// The one blessed environment lookup: every GRIDSE_* variable read in the
/// tree goes through here (tools/gridse_check.py flags raw getenv calls
/// anywhere else), so configuration inputs stay greppable in one place.
/// Returns nullopt when the variable is unset OR empty — the two are
/// equivalent for every gridse knob.
std::optional<std::string> env_value(const char* name);

/// Centralized environment-value validation (every GRIDSE_*_MS / count /
/// flag variable goes through these — one parser, one error shape).
/// `raw` is the environment value; `name` only labels the error message.
/// All three throw gridse::InvalidInput on malformed input instead of
/// silently falling back.

/// Non-negative integer milliseconds.
std::chrono::milliseconds parse_env_ms(const std::string& name,
                                       const std::string& raw);
/// Integer >= `min_value`.
int parse_env_int(const std::string& name, const std::string& raw,
                  int min_value);
/// Boolean: accepts 0/1/on/off/true/false (case-sensitive, lowercase).
bool parse_env_flag(const std::string& name, const std::string& raw);
/// Finite double >= `min_value`.
double parse_env_double(const std::string& name, const std::string& raw,
                        double min_value);

/// `base` with environment overrides applied:
///   GRIDSE_BARRIER_TIMEOUT_MS, GRIDSE_EXCHANGE_DEADLINE_MS   (ms)
///   GRIDSE_RECOVERY                                          (flag)
///   GRIDSE_HEARTBEAT_PERIOD_MS, GRIDSE_HEARTBEAT_TIMEOUT_MS  (ms)
///   GRIDSE_HEARTBEAT_ROUNDS  (int >= 1), GRIDSE_REJOIN_EPOCH (int >= 1)
///   GRIDSE_CHECKPOINT_DIR                                    (path)
/// Throws gridse::InvalidInput on unparsable values.
ResilienceConfig with_env_overrides(ResilienceConfig base);

/// `base` with environment overrides applied:
///   GRIDSE_TELEMETRY_DIR                                   (path)
///   GRIDSE_TELEMETRY_SAMPLE_MS                             (ms)
///   GRIDSE_FLIGHT_RING                                     (int >= 1)
///   GRIDSE_CYCLE_DEADLINE_MS                               (ms)
///   GRIDSE_PHASE_BUDGET_STEP1_MS, GRIDSE_PHASE_BUDGET_EXCHANGE_MS,
///   GRIDSE_PHASE_BUDGET_STEP2_MS, GRIDSE_PHASE_BUDGET_COMBINE_MS  (ms)
/// Throws gridse::InvalidInput on unparsable values.
TelemetryConfig with_env_overrides(TelemetryConfig base);

/// `base` with environment overrides applied:
///   GRIDSE_TOPOLOGY_PLAN                         (inline JSON or path)
///   GRIDSE_TOPOLOGY_REPARTITION_THRESHOLD        (double >= 0; 0 = off)
///   GRIDSE_TOPOLOGY_K_MIN, GRIDSE_TOPOLOGY_K_MAX (int >= 0; 0 = keep k)
/// Throws gridse::InvalidInput on unparsable values.
TopologyConfig with_env_overrides(TopologyConfig base);

}  // namespace gridse::runtime
