#pragma once

#include <chrono>
#include <cstdint>

namespace gridse::runtime {

/// Bounded retry with exponential backoff and deterministic jitter, used by
/// MwClient::send when a cached connection fails mid-exchange.
struct RetryPolicy {
  /// Total send attempts including the first; 2 reproduces the historical
  /// single-reconnect behavior.
  int max_attempts = 2;
  /// First backoff sleep; doubled per retry up to backoff_max.
  std::chrono::milliseconds backoff_base{5};
  std::chrono::milliseconds backoff_max{500};
  /// Fraction of each backoff randomized away ([0, 1]); breaks retry
  /// synchronization between clients without losing determinism (the jitter
  /// is a hash of seed, client and attempt).
  double jitter = 0.5;
  std::uint64_t seed = 0x5eedULL;

  /// Sleep before retry number `attempt` (0-based: the sleep between the
  /// first failure and the second attempt). `salt` decorrelates independent
  /// retry sequences (client id, per-client counter).
  [[nodiscard]] std::chrono::milliseconds backoff(int attempt,
                                                  std::uint64_t salt) const;
};

/// How the distributed exchange behaves when peers misbehave. Threaded from
/// SystemConfig into the transports and the DSE driver.
struct ResilienceConfig {
  RetryPolicy send_retry;
  /// How long a barrier waits before declaring a peer lost (historically
  /// the hard-coded 120 s kBarrierTimeout in tcp_comm.cpp).
  std::chrono::milliseconds barrier_timeout{120'000};
  /// Per-phase deadline on the Step-2 pseudo-measurement fan-in, the
  /// redistribution receive, and the final combine. 0 = wait forever (the
  /// pre-resilience behavior).
  std::chrono::milliseconds exchange_deadline{0};
  /// When a neighbour's pseudo-measurements miss the deadline, re-solve
  /// Step 2 with own Step-1 boundary values as low-weight priors and tag
  /// the result degraded, instead of failing the cycle.
  bool degraded_step2 = true;
};

/// `base` with environment overrides applied: GRIDSE_BARRIER_TIMEOUT_MS and
/// GRIDSE_EXCHANGE_DEADLINE_MS (non-negative integers, milliseconds).
/// Throws gridse::InvalidInput on unparsable values.
ResilienceConfig with_env_overrides(ResilienceConfig base);

}  // namespace gridse::runtime
