#include "runtime/mailbox.hpp"

#include "analysis/assert.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "util/timer.hpp"

namespace gridse::runtime {

void Mailbox::deliver(Message message) {
  // Injection point for lost deliveries (and delivery delay); evaluated
  // before the lock so an injected sleep never extends the critical section.
  if (FAULT_DROP("mailbox.deliver", message.source, message.tag)) {
    return;
  }
  std::size_t depth = 0;
  {
    analysis::LockGuard lock(mutex_);
    queue_.push_back(std::move(message));
    depth = queue_.size();
  }
  // Depth high-water mark is the backlog signal of the paper's data
  // processor; recorded outside the lock so the gauge never extends the
  // critical section.
  OBS_GAUGE_SET("runtime.mailbox.depth", depth);
  cv_.notify_all();
}

std::deque<Message>::iterator Mailbox::find_match_locked(int source, int tag) {
  GRIDSE_ASSERT_HELD(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag)) {
      return it;
    }
  }
  return queue_.end();
}

Message Mailbox::take(int source, int tag) {
#if GRIDSE_OBS
  const Timer wait_timer;
#endif
  analysis::UniqueLock lock(mutex_);
  for (;;) {
    const auto it = find_match_locked(source, tag);
    if (it != queue_.end()) {
      Message m = std::move(*it);
      queue_.erase(it);
#if GRIDSE_OBS
      OBS_HISTOGRAM_OBSERVE("runtime.mailbox.wait_seconds",
                            wait_timer.seconds());
#endif
      return m;
    }
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::take_for(int source, int tag,
                                         std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  analysis::UniqueLock lock(mutex_);
  for (;;) {
    const auto it = find_match_locked(source, tag);
    if (it != queue_.end()) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last scan: a deliver may have raced the timeout.
      const auto last = find_match_locked(source, tag);
      if (last == queue_.end()) {
        return std::nullopt;
      }
      Message m = std::move(*last);
      queue_.erase(last);
      return m;
    }
  }
}

bool Mailbox::try_take(int source, int tag, Message& out) {
  analysis::LockGuard lock(mutex_);
  const auto it = find_match_locked(source, tag);
  if (it == queue_.end()) {
    return false;
  }
  out = std::move(*it);
  queue_.erase(it);
  return true;
}

std::size_t Mailbox::pending() const {
  analysis::LockGuard lock(mutex_);
  return queue_.size();
}

}  // namespace gridse::runtime
