#include "runtime/mailbox.hpp"

namespace gridse::runtime {

void Mailbox::deliver(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

Message Mailbox::take(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        queue_.erase(it);
        return m;
      }
    }
    cv_.wait(lock);
  }
}

bool Mailbox::try_take(int source, int tag, Message& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag)) {
      out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace gridse::runtime
