#pragma once

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/debug_sync.hpp"
#include "runtime/communicator.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/socket.hpp"

namespace gridse::runtime {

/// A world of ranks connected by a full mesh of real loopback TCP sockets —
/// the cross-cluster data path of the paper's testbed, with actual kernel
/// framing/copy costs. One process hosts all ranks (per DESIGN.md §2 this
/// mirrors the homogeneous-lab-network setting); each rank owns a reader
/// thread that demultiplexes incoming frames into its mailbox.
///
/// Wire format per message: u64 payload length, i32 source, i32 tag, bytes.
class TcpWorld {
 public:
  explicit TcpWorld(int size);
  ~TcpWorld();

  TcpWorld(const TcpWorld&) = delete;
  TcpWorld& operator=(const TcpWorld&) = delete;

  [[nodiscard]] int size() const { return size_; }

  /// Communicator bound to `rank`; the world must outlive it. Reserved tag
  /// space above kMaxUserTag implements the barrier.
  [[nodiscard]] std::unique_ptr<Communicator> communicator(int rank);

  /// Run `fn(comm)` on one thread per rank and join (first exception
  /// rethrown).
  void run(const std::function<void(Communicator&)>& fn);

  static constexpr int kMaxUserTag = 1 << 20;

 private:
  friend class TcpCommunicatorImpl;

  struct Link {
    Socket socket;
    analysis::Mutex write_mutex{"TcpWorld::Link::write_mutex"};
  };

  /// peer_links_[rank][peer] — shared socket between rank and peer (null on
  /// the diagonal).
  std::vector<std::vector<std::shared_ptr<Link>>> peer_links_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::thread> readers_;
  int size_ = 0;
};

}  // namespace gridse::runtime
