#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/debug_sync.hpp"
#include "runtime/communicator.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/resilience.hpp"
#include "runtime/socket.hpp"

namespace gridse::runtime {

/// A world of ranks connected by a full mesh of real loopback TCP sockets —
/// the cross-cluster data path of the paper's testbed, with actual kernel
/// framing/copy costs. One process hosts all ranks (per DESIGN.md §2 this
/// mirrors the homogeneous-lab-network setting); each rank owns a reader
/// thread that demultiplexes incoming frames into its mailbox.
///
/// Wire format per message: u64 payload length, i32 source, i32 tag, bytes.
class TcpWorld {
 public:
  /// `resilience` configures the barrier timeout (default: the historical
  /// 120 s) and related exchange behavior.
  explicit TcpWorld(int size, ResilienceConfig resilience = {});
  ~TcpWorld();

  TcpWorld(const TcpWorld&) = delete;
  TcpWorld& operator=(const TcpWorld&) = delete;

  [[nodiscard]] int size() const { return size_; }

  /// Communicator bound to `rank`; the world must outlive it. Reserved tag
  /// space above kMaxUserTag implements the barrier.
  [[nodiscard]] std::unique_ptr<Communicator> communicator(int rank);

  /// Run `fn(comm)` on one thread per rank and join (first exception
  /// rethrown). A rank whose body throws is marked dead so peers blocked in
  /// a barrier fail fast instead of sitting out the full barrier timeout.
  void run(const std::function<void(Communicator&)>& fn);

  /// True when any rank's body has thrown during the current run().
  [[nodiscard]] bool any_rank_dead() const {
    return dead_ranks_.load(std::memory_order_acquire) != 0;
  }

  [[nodiscard]] std::chrono::milliseconds barrier_timeout() const {
    return resilience_.barrier_timeout;
  }

  static constexpr int kMaxUserTag = 1 << 20;

 private:
  friend class TcpCommunicatorImpl;

  /// One full-duplex socket shared by a (rank, peer) pair. The socket is
  /// deliberately NOT GRIDSE_GUARDED_BY(write_mutex): the write half is
  /// serialized by write_mutex (frames from concurrent senders must not
  /// interleave) while the read half is owned exclusively by the rank's
  /// single reader thread, which reads without any lock. A guarded_by
  /// annotation would force the reader to take the write lock and serialize
  /// reads against writes on a full-duplex fd for no correctness gain.
  struct Link {
    Socket socket;
    analysis::Mutex write_mutex{"TcpWorld::Link::write_mutex"};
  };

  /// peer_links_[rank][peer] — shared socket between rank and peer (null on
  /// the diagonal).
  std::vector<std::vector<std::shared_ptr<Link>>> peer_links_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::thread> readers_;
  int size_ = 0;
  ResilienceConfig resilience_;
  /// Count of ranks whose run() body threw (the in-process analogue of a
  /// peer process dying mid-cycle).
  std::atomic<int> dead_ranks_{0};
};

}  // namespace gridse::runtime
