#include "runtime/resilience.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace gridse::runtime {
namespace {

/// splitmix64, same mixer as the fault layer: jitter must be deterministic
/// so retry schedules reproduce under a fixed seed.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool read_env_ms(const char* name, std::chrono::milliseconds& out) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return false;
  }
  char* end = nullptr;
  const long long ms = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || ms < 0) {
    throw InvalidInput(std::string(name) + ": expected a non-negative " +
                       "millisecond count, got \"" + raw + "\"");
  }
  out = std::chrono::milliseconds(ms);
  return true;
}

}  // namespace

std::chrono::milliseconds RetryPolicy::backoff(int attempt,
                                               std::uint64_t salt) const {
  const int shift = std::min(attempt, 20);
  std::chrono::milliseconds delay{backoff_base.count() << shift};
  delay = std::min(delay, backoff_max);
  if (jitter > 0.0 && delay.count() > 0) {
    const std::uint64_t h =
        mix64(seed ^ mix64(salt ^ static_cast<std::uint64_t>(attempt)));
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
    const double scale = 1.0 - jitter * unit;
    delay = std::chrono::milliseconds(
        static_cast<long long>(static_cast<double>(delay.count()) * scale));
  }
  return delay;
}

ResilienceConfig with_env_overrides(ResilienceConfig base) {
  read_env_ms("GRIDSE_BARRIER_TIMEOUT_MS", base.barrier_timeout);
  read_env_ms("GRIDSE_EXCHANGE_DEADLINE_MS", base.exchange_deadline);
  return base;
}

}  // namespace gridse::runtime
