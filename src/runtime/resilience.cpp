#include "runtime/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/error.hpp"

namespace gridse::runtime {
namespace {

/// splitmix64, same mixer as the fault layer: jitter must be deterministic
/// so retry schedules reproduce under a fixed seed.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

long long parse_integer(const std::string& name, const std::string& raw,
                        const char* expectation) {
  char* end = nullptr;
  const long long value = std::strtoll(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0') {
    throw InvalidInput(name + ": expected " + expectation + ", got \"" + raw +
                       "\"");
  }
  return value;
}

/// Apply one environment override through `parse` when `name` is set and
/// non-empty.
template <typename Out, typename Parse>
void read_env(const char* name, Out& out, Parse&& parse) {
  const std::optional<std::string> raw = env_value(name);
  if (!raw) {
    return;
  }
  out = parse(std::string(name), *raw);
}

}  // namespace

std::optional<std::string> env_value(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return std::nullopt;
  }
  return std::string(raw);
}

std::chrono::milliseconds RetryPolicy::backoff(int attempt,
                                               std::uint64_t salt) const {
  const int shift = std::min(attempt, 20);
  std::chrono::milliseconds delay{backoff_base.count() << shift};
  delay = std::min(delay, backoff_max);
  if (jitter > 0.0 && delay.count() > 0) {
    const std::uint64_t h =
        mix64(seed ^ mix64(salt ^ static_cast<std::uint64_t>(attempt)));
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
    const double scale = 1.0 - jitter * unit;
    delay = std::chrono::milliseconds(
        static_cast<long long>(static_cast<double>(delay.count()) * scale));
  }
  return delay;
}

std::chrono::milliseconds parse_env_ms(const std::string& name,
                                       const std::string& raw) {
  const long long ms =
      parse_integer(name, raw, "a non-negative millisecond count");
  if (ms < 0) {
    throw InvalidInput(name + ": expected a non-negative millisecond count, " +
                       "got \"" + raw + "\"");
  }
  return std::chrono::milliseconds(ms);
}

int parse_env_int(const std::string& name, const std::string& raw,
                  int min_value) {
  const long long value = parse_integer(name, raw, "an integer");
  if (value < min_value || value > std::numeric_limits<int>::max()) {
    throw InvalidInput(name + ": expected an integer >= " +
                       std::to_string(min_value) + ", got \"" + raw + "\"");
  }
  return static_cast<int>(value);
}

bool parse_env_flag(const std::string& name, const std::string& raw) {
  if (raw == "1" || raw == "on" || raw == "true") {
    return true;
  }
  if (raw == "0" || raw == "off" || raw == "false") {
    return false;
  }
  throw InvalidInput(name + ": expected 0/1/on/off/true/false, got \"" + raw +
                     "\"");
}

double parse_env_double(const std::string& name, const std::string& raw,
                        double min_value) {
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0' || !std::isfinite(value) ||
      value < min_value) {
    throw InvalidInput(name + ": expected a finite number >= " +
                       std::to_string(min_value) + ", got \"" + raw + "\"");
  }
  return value;
}

ResilienceConfig with_env_overrides(ResilienceConfig base) {
  read_env("GRIDSE_BARRIER_TIMEOUT_MS", base.barrier_timeout, parse_env_ms);
  read_env("GRIDSE_EXCHANGE_DEADLINE_MS", base.exchange_deadline,
           parse_env_ms);
  read_env("GRIDSE_RECOVERY", base.recovery.enabled, parse_env_flag);
  read_env("GRIDSE_HEARTBEAT_PERIOD_MS", base.recovery.heartbeat_period,
           parse_env_ms);
  read_env("GRIDSE_HEARTBEAT_TIMEOUT_MS", base.recovery.heartbeat_timeout,
           parse_env_ms);
  read_env("GRIDSE_HEARTBEAT_ROUNDS", base.recovery.heartbeat_rounds,
           [](const std::string& name, const std::string& raw) {
             return parse_env_int(name, raw, 1);
           });
  read_env("GRIDSE_REJOIN_EPOCH", base.recovery.rejoin_epoch,
           [](const std::string& name, const std::string& raw) {
             return parse_env_int(name, raw, 1);
           });
  read_env("GRIDSE_CHECKPOINT_DIR", base.recovery.checkpoint_dir,
           [](const std::string&, const std::string& raw) { return raw; });
  return base;
}

TelemetryConfig with_env_overrides(TelemetryConfig base) {
  read_env("GRIDSE_TELEMETRY_DIR", base.dir,
           [](const std::string&, const std::string& raw) { return raw; });
  read_env("GRIDSE_TELEMETRY_SAMPLE_MS", base.sample_period, parse_env_ms);
  read_env("GRIDSE_FLIGHT_RING", base.flight_ring,
           [](const std::string& name, const std::string& raw) {
             return parse_env_int(name, raw, 1);
           });
  read_env("GRIDSE_CYCLE_DEADLINE_MS", base.slo.cycle_deadline, parse_env_ms);
  read_env("GRIDSE_PHASE_BUDGET_STEP1_MS", base.slo.step1_budget,
           parse_env_ms);
  read_env("GRIDSE_PHASE_BUDGET_EXCHANGE_MS", base.slo.exchange_budget,
           parse_env_ms);
  read_env("GRIDSE_PHASE_BUDGET_STEP2_MS", base.slo.step2_budget,
           parse_env_ms);
  read_env("GRIDSE_PHASE_BUDGET_COMBINE_MS", base.slo.combine_budget,
           parse_env_ms);
  return base;
}

TopologyConfig with_env_overrides(TopologyConfig base) {
  read_env("GRIDSE_TOPOLOGY_PLAN", base.plan,
           [](const std::string&, const std::string& raw) { return raw; });
  read_env("GRIDSE_TOPOLOGY_REPARTITION_THRESHOLD",
           base.repartition_threshold,
           [](const std::string& name, const std::string& raw) {
             return parse_env_double(name, raw, 0.0);
           });
  read_env("GRIDSE_TOPOLOGY_K_MIN", base.k_min,
           [](const std::string& name, const std::string& raw) {
             return parse_env_int(name, raw, 0);
           });
  read_env("GRIDSE_TOPOLOGY_K_MAX", base.k_max,
           [](const std::string& name, const std::string& raw) {
             return parse_env_int(name, raw, 0);
           });
  return base;
}

}  // namespace gridse::runtime
