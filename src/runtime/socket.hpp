#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gridse::runtime {

/// Thin RAII wrapper over a loopback TCP socket. The middleware overhead
/// experiments (paper Tables III/IV) run on this real-kernel-socket data
/// path, not on a simulation.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Write exactly `size` bytes; throws CommError on failure.
  void send_all(const void* data, std::size_t size) const;

  /// Read exactly `size` bytes; throws CommError on EOF/failure.
  void recv_all(void* data, std::size_t size) const;

  /// Read up to `size` bytes; returns 0 on orderly EOF.
  [[nodiscard]] std::size_t recv_some(void* data, std::size_t size) const;

  void close();

  /// Create a listening socket on 127.0.0.1 with an ephemeral port; returns
  /// the socket and stores the chosen port in `port`.
  static Socket listen_loopback(std::uint16_t& port, int backlog = 16);

  /// Accept one connection (blocking).
  [[nodiscard]] Socket accept() const;

  /// Connect to 127.0.0.1:`port` (blocking).
  static Socket connect_loopback(std::uint16_t port);

 private:
  int fd_ = -1;
};

}  // namespace gridse::runtime
