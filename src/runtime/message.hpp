#pragma once

#include <cstdint>
#include <vector>

namespace gridse::runtime {

/// Wildcards for Communicator::recv.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// One tagged point-to-point message between ranks.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::uint8_t> payload;
};

}  // namespace gridse::runtime
