#pragma once

#include <cstdint>
#include <vector>

#include "runtime/trace_context.hpp"

/// Matches the fallback in obs/metrics.hpp so a standalone include of this
/// header agrees with the obs layer on whether the trace field exists.
#ifndef GRIDSE_OBS
#define GRIDSE_OBS 1
#endif

namespace gridse::runtime {

/// Wildcards for Communicator::recv.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// One tagged point-to-point message between ranks.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::uint8_t> payload;
#if GRIDSE_OBS
  /// Tracing context the transport attached at send time (all-zero when the
  /// sender had tracing off or the frame predates wire format v2). Compiled
  /// out entirely under GRIDSE_OBS=OFF.
  TraceContext trace{};
#endif
};

}  // namespace gridse::runtime
