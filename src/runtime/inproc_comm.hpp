#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "analysis/debug_sync.hpp"
#include "runtime/communicator.hpp"
#include "runtime/mailbox.hpp"

namespace gridse::runtime {

/// Generation-counted barrier shared by every rank of an InprocWorld. Kept
/// as one struct (rather than loose members) so the guarded fields keep
/// their capability relation to the mutex when handed to per-rank
/// communicators by pointer.
struct InprocBarrier {
  analysis::Mutex mutex{"InprocWorld::barrier_mutex_"};
  analysis::ConditionVariable cv;
  int count GRIDSE_GUARDED_BY(mutex) = 0;
  std::uint64_t generation GRIDSE_GUARDED_BY(mutex) = 0;
};

/// A set of in-process ranks exchanging messages through shared mailboxes.
/// Deterministic, allocation-only data path; the default substrate for the
/// DSE driver and tests. Create the world, then either grab per-rank
/// communicators and drive them from your own threads, or use run() to spawn
/// one thread per rank.
class InprocWorld {
 public:
  explicit InprocWorld(int size);
  ~InprocWorld();

  InprocWorld(const InprocWorld&) = delete;
  InprocWorld& operator=(const InprocWorld&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(mailboxes_.size()); }

  /// Communicator bound to `rank`. The world must outlive it.
  [[nodiscard]] std::unique_ptr<Communicator> communicator(int rank);

  /// Convenience: run `fn(comm)` on one thread per rank and join them all.
  /// The first exception thrown by any rank is rethrown after the join.
  void run(const std::function<void(Communicator&)>& fn);

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  InprocBarrier barrier_;
};

}  // namespace gridse::runtime
