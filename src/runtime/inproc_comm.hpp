#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "analysis/debug_sync.hpp"
#include "runtime/communicator.hpp"
#include "runtime/mailbox.hpp"

namespace gridse::runtime {

/// A set of in-process ranks exchanging messages through shared mailboxes.
/// Deterministic, allocation-only data path; the default substrate for the
/// DSE driver and tests. Create the world, then either grab per-rank
/// communicators and drive them from your own threads, or use run() to spawn
/// one thread per rank.
class InprocWorld {
 public:
  explicit InprocWorld(int size);
  ~InprocWorld();

  InprocWorld(const InprocWorld&) = delete;
  InprocWorld& operator=(const InprocWorld&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(mailboxes_.size()); }

  /// Communicator bound to `rank`. The world must outlive it.
  [[nodiscard]] std::unique_ptr<Communicator> communicator(int rank);

  /// Convenience: run `fn(comm)` on one thread per rank and join them all.
  /// The first exception thrown by any rank is rethrown after the join.
  void run(const std::function<void(Communicator&)>& fn);

 private:
  friend class InprocCommunicator;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // barrier state
  analysis::Mutex barrier_mutex_{"InprocWorld::barrier_mutex_"};
  analysis::ConditionVariable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace gridse::runtime
