#include "runtime/cluster.hpp"

#include "analysis/assert.hpp"
#include "util/error.hpp"

namespace gridse::runtime {

SimulatedCluster::SimulatedCluster(ClusterSpec spec) : spec_(std::move(spec)) {
  GRIDSE_CHECK_MSG(spec_.worker_threads > 0,
                   "cluster needs at least one worker thread");
  GRIDSE_ASSERT(!spec_.name.empty(), "cluster spec needs a site name");
  workers_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(spec_.worker_threads));
}

void SimulatedCluster::shutdown() { workers_->shutdown(); }

std::vector<ClusterSpec> pnnl_testbed_specs(int worker_threads) {
  return {{"Nwiceb", worker_threads},
          {"Catamount", worker_threads},
          {"Chinook", worker_threads}};
}

}  // namespace gridse::runtime
