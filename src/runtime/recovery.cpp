#include "runtime/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/obs.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"

namespace gridse::runtime {
namespace {

using Clock = std::chrono::steady_clock;

std::chrono::milliseconds remaining(Clock::time_point deadline) {
  return std::max(std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - Clock::now()),
                  std::chrono::milliseconds{0});
}

/// Classify one peer from the number of beat rounds observed.
RankState classify(int seen, int rounds) {
  if (seen >= rounds) return RankState::kAlive;
  if (seen == 0) return RankState::kDead;
  return RankState::kSuspect;
}

}  // namespace

const char* to_string(RankState state) {
  switch (state) {
    case RankState::kAlive:
      return "alive";
    case RankState::kSuspect:
      return "suspect";
    case RankState::kDead:
      return "dead";
    case RankState::kRejoining:
      return "rejoining";
  }
  return "unknown";
}

std::vector<int> MembershipView::dead_ranks() const {
  std::vector<int> out;
  for (std::size_t r = 0; r < states.size(); ++r) {
    if (states[r] == RankState::kDead) out.push_back(static_cast<int>(r));
  }
  return out;
}

std::vector<int> MembershipView::suspect_ranks() const {
  std::vector<int> out;
  for (std::size_t r = 0; r < states.size(); ++r) {
    if (states[r] == RankState::kSuspect) out.push_back(static_cast<int>(r));
  }
  return out;
}

int MembershipView::num_alive() const {
  int n = 0;
  for (const RankState s : states) {
    if (s != RankState::kDead) ++n;
  }
  return n;
}

std::vector<std::uint8_t> encode_membership(const MembershipView& view) {
  ByteWriter w(16 + view.states.size());
  std::vector<std::uint8_t> raw(view.states.size());
  for (std::size_t i = 0; i < view.states.size(); ++i) {
    raw[i] = static_cast<std::uint8_t>(view.states[i]);
  }
  w.write_vector(raw);
  return w.take();
}

MembershipView decode_membership(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const auto raw = r.read_vector<std::uint8_t>();
  if (!r.at_end()) {
    throw InvalidInput("decode_membership: trailing bytes in frame");
  }
  MembershipView view;
  view.states.reserve(raw.size());
  for (const std::uint8_t v : raw) {
    if (v > static_cast<std::uint8_t>(RankState::kRejoining)) {
      throw InvalidInput("decode_membership: unknown rank state " +
                         std::to_string(v));
    }
    view.states.push_back(static_cast<RankState>(v));
  }
  return view;
}

MembershipView probe_membership(Communicator& comm,
                                const HeartbeatSettings& settings) {
  OBS_SPAN("recovery.heartbeat");
  const int n = comm.size();
  const int rank = comm.rank();
  MembershipView local;
  local.states.assign(static_cast<std::size_t>(n), RankState::kAlive);
  if (n <= 1) {
    return local;
  }
  const int rounds =
      std::clamp(settings.rounds, 1, kMaxHeartbeatRounds);

  // Beat fan-out: `rounds` one-byte beats to every peer, `period` apart.
  // Sends are asynchronous, so a dead destination never blocks the prober.
  for (int r = 0; r < rounds; ++r) {
    for (int p = 0; p < n; ++p) {
      if (p == rank) continue;
      comm.send(p, heartbeat_tag(r),
                {static_cast<std::uint8_t>(r)});
      OBS_COUNTER_ADD("recovery.heartbeats_sent", 1);
    }
    if (r + 1 < rounds) {
      std::this_thread::sleep_for(settings.period);
    }
  }

  // Collection: count the rounds observed per peer inside one shared
  // budget (floored so slow-but-alive peers mid-fan-out are never misread).
  const auto budget =
      std::max(settings.timeout, settings.period * (rounds + 1));
  const Clock::time_point beats_deadline = Clock::now() + budget;
  for (int p = 0; p < n; ++p) {
    if (p == rank) continue;
    int seen = 0;
    for (int r = 0; r < rounds; ++r) {
      if (comm.recv_for(p, heartbeat_tag(r), remaining(beats_deadline))) {
        ++seen;
      }
    }
    local.states[static_cast<std::size_t>(p)] = classify(seen, rounds);
  }

  // Consensus: rank 0 aggregates every rank's local observation and
  // broadcasts the merged view, so all ranks act on the same membership
  // this cycle. A rank whose report never arrives cannot be coordinated
  // with and is itself marked dead, whatever its beats said.
  MembershipView view = local;
  const Clock::time_point control_deadline = Clock::now() + budget;
  if (rank == 0) {
    std::vector<MembershipView> reports;
    std::vector<bool> reported(static_cast<std::size_t>(n), false);
    reports.push_back(local);
    reported[0] = true;
    for (int p = 1; p < n; ++p) {
      const auto msg =
          comm.recv_for(p, kMembershipReportTag, remaining(control_deadline));
      if (!msg.has_value()) {
        view.states[static_cast<std::size_t>(p)] = RankState::kDead;
        continue;
      }
      try {
        MembershipView peer = decode_membership(msg->payload);
        if (static_cast<int>(peer.states.size()) == n) {
          reports.push_back(std::move(peer));
          reported[static_cast<std::size_t>(p)] = true;
        }
      } catch (const InvalidInput&) {
        view.states[static_cast<std::size_t>(p)] = RankState::kDead;
      }
    }
    for (int q = 0; q < n; ++q) {
      if (view.states[static_cast<std::size_t>(q)] == RankState::kDead) {
        continue;  // no report — already condemned above
      }
      int dead_votes = 0;
      int suspect_votes = 0;
      for (const MembershipView& rep : reports) {
        const RankState s = rep.states[static_cast<std::size_t>(q)];
        if (s == RankState::kDead) ++dead_votes;
        if (s == RankState::kSuspect) ++suspect_votes;
      }
      const int voters = static_cast<int>(reports.size());
      if (2 * dead_votes > voters) {
        view.states[static_cast<std::size_t>(q)] = RankState::kDead;
      } else if (dead_votes + suspect_votes > 0) {
        view.states[static_cast<std::size_t>(q)] = RankState::kSuspect;
      }
    }
    const auto payload = encode_membership(view);
    for (int p = 1; p < n; ++p) {
      comm.send(p, kMembershipViewTag, payload);
    }
#if GRIDSE_OBS
    // Transition telemetry is coordinator-only so counts stay per-probe,
    // not per-rank (all ranks share one in-process metrics registry).
    for (const int d : view.dead_ranks()) {
      OBS_EVENT("recovery.rank_dead", OBS_ATTR("rank", d));
    }
    for (const int s : view.suspect_ranks()) {
      OBS_EVENT("recovery.rank_suspect", OBS_ATTR("rank", s));
    }
    OBS_COUNTER_ADD("recovery.dead_ranks", view.dead_ranks().size());
    OBS_COUNTER_ADD("recovery.suspect_ranks", view.suspect_ranks().size());
    OBS_GAUGE_SET("recovery.alive_ranks", view.num_alive());
#endif
  } else {
    comm.send(0, kMembershipReportTag, encode_membership(local));
    // The coordinator may spend a full beat budget on a silent peer and a
    // full control budget on its missing report before broadcasting; a rank
    // whose own beat collection finished early must wait out both phases —
    // plus scheduling slack, so a loaded machine cannot turn the worst-case
    // broadcast time into a spurious coordinator-loss fallback.
    const Clock::time_point view_deadline =
        Clock::now() + 2 * budget + budget / 2 + settings.period;
    const auto msg =
        comm.recv_for(0, kMembershipViewTag, remaining(view_deadline));
    bool adopted = false;
    if (msg.has_value()) {
      try {
        MembershipView broadcast = decode_membership(msg->payload);
        if (static_cast<int>(broadcast.states.size()) == n) {
          view = std::move(broadcast);
          adopted = true;
        }
      } catch (const InvalidInput&) {
        // fall through to the local view
      }
    }
    if (!adopted) {
      // Coordinator loss: act on local observations (documented fallback)
      // and flag the view so callers can tell the difference.
      view = local;
      view.states[0] = RankState::kDead;
      view.consensus = false;
      OBS_EVENT("recovery.view_fallback", OBS_ATTR("rank", rank));
    }
  }
  return view;
}

}  // namespace gridse::runtime
