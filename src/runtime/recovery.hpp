#pragma once

#include <cstdint>
#include <vector>

#include "runtime/communicator.hpp"
#include "runtime/resilience.hpp"

namespace gridse::runtime {

/// Membership state of one rank/cluster in the failure-detector state
/// machine (docs/RESILIENCE.md "Recovery & remapping"):
///   alive --missed some beats--> suspect --missed all beats--> dead
///   dead --announce_rejoin--> rejoining --next remap epoch--> alive
enum class RankState : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,
  kDead = 2,
  kRejoining = 3,
};

[[nodiscard]] const char* to_string(RankState state);

/// Heartbeat detector settings for one membership probe (derived from
/// RecoveryConfig by the caller).
struct HeartbeatSettings {
  std::chrono::milliseconds period{20};
  std::chrono::milliseconds timeout{1000};
  int rounds = 2;
};

/// The shared cluster-membership view one probe produces: the per-exchange
/// timeout discovery of the degraded path is replaced by this single
/// consensus snapshot taken at the start of the cycle.
struct MembershipView {
  /// One state per comm rank; empty when no probe ran.
  std::vector<RankState> states;
  /// True when the coordinator's consensus broadcast was received; false
  /// when this rank had to fall back to its own local observations.
  bool consensus = true;

  [[nodiscard]] bool alive(int rank) const {
    return rank < 0 || rank >= static_cast<int>(states.size()) ||
           states[static_cast<std::size_t>(rank)] != RankState::kDead;
  }
  [[nodiscard]] std::vector<int> dead_ranks() const;
  [[nodiscard]] std::vector<int> suspect_ranks() const;
  [[nodiscard]] int num_alive() const;
  [[nodiscard]] bool all_alive() const { return dead_ranks().empty(); }
};

/// Recovery tag layout: between the DSE driver's combine tag
/// ((1<<18)+(1<<17)) and the transports' reserved range (> 1<<20).
/// Heartbeat beats occupy [base, base + rounds); control and checkpoint
/// traffic sits above every beat round.
constexpr int kHeartbeatTagBase = 1 << 19;
constexpr int kMaxHeartbeatRounds = 64;
/// Per-rank local observation shipped to the coordinator (rank 0).
constexpr int kMembershipReportTag = kHeartbeatTagBase + 4096;
/// Coordinator's consensus membership broadcast.
constexpr int kMembershipViewTag = kHeartbeatTagBase + 4097;
/// Per-rank end-of-cycle recovery report (checkpoint batch) to rank 0.
constexpr int kRecoveryReportTag = kHeartbeatTagBase + 4098;
/// Checkpoint restore shipments: kCheckpointTagBase + subsystem id.
constexpr int kCheckpointTagBase = kHeartbeatTagBase + 8192;

[[nodiscard]] constexpr int heartbeat_tag(int round) {
  return kHeartbeatTagBase + round;
}
[[nodiscard]] constexpr int checkpoint_tag(int subsystem) {
  return kCheckpointTagBase + subsystem;
}

/// Run one heartbeat round-trip across the world and return the consensus
/// membership view. Collective: every rank must call it at the same point
/// of the cycle (the DSE driver runs it as phase 0).
///
/// Protocol: each rank fans `rounds` one-byte beats out to every peer,
/// `period` apart; then collects peers' beats inside a shared `timeout`
/// budget. A peer observed with all rounds is alive, some rounds suspect,
/// zero rounds dead. Rank 0 aggregates everyone's local observations
/// (a rank whose report never arrives is itself marked dead) into a
/// consensus — majority-dead => dead, any dead/suspect vote => suspect —
/// and broadcasts it; a rank that misses the broadcast falls back to its
/// local view (`consensus = false`). Under seeded drop-based fault plans
/// every observation, and therefore the view, is deterministic.
MembershipView probe_membership(Communicator& comm,
                                const HeartbeatSettings& settings);

/// Encode/decode a membership view (the coordinator broadcast payload).
/// decode throws gridse::InvalidInput on malformed bytes.
std::vector<std::uint8_t> encode_membership(const MembershipView& view);
MembershipView decode_membership(const std::vector<std::uint8_t>& bytes);

}  // namespace gridse::runtime
