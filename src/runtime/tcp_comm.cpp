#include "runtime/tcp_comm.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#if GRIDSE_OBS
#include "obs/trace/trace.hpp"
#endif
#include "runtime/trace_context.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace gridse::runtime {
namespace {

struct FrameHeader {
  std::uint64_t length;
  std::int32_t source;
  std::int32_t tag;
};

constexpr int kBarrierArriveTag = TcpWorld::kMaxUserTag + 1;
constexpr int kBarrierReleaseTag = TcpWorld::kMaxUserTag + 2;

/// Poll slice for barrier waits: short enough that a dead peer is noticed
/// promptly, long enough that an idle barrier costs almost nothing.
constexpr std::chrono::milliseconds kBarrierPollSlice{50};

}  // namespace

class TcpCommunicatorImpl final : public Communicator {
 public:
  TcpCommunicatorImpl(TcpWorld* world, int rank) : world_(world), rank_(rank) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return world_->size(); }

  void send(int dest, int tag, std::vector<std::uint8_t> payload) override {
    send_tagged(dest, tag, payload, /*allow_reserved=*/false);
  }

  Message recv(int source, int tag) override {
    if (tag != kAnyTag && tag > TcpWorld::kMaxUserTag) {
      throw CommError("tcp recv: tag above kMaxUserTag is reserved");
    }
#if GRIDSE_OBS
    Timer wait_timer;
    Message m =
        world_->mailboxes_[static_cast<std::size_t>(rank_)]->take(source, tag);
    obs::trace::on_consume("runtime.tcp.recv", m.trace, wait_timer.seconds());
    return m;
#else
    return world_->mailboxes_[static_cast<std::size_t>(rank_)]->take(source,
                                                                     tag);
#endif
  }

  std::optional<Message> recv_for(int source, int tag,
                                  std::chrono::milliseconds timeout) override {
    if (tag != kAnyTag && tag > TcpWorld::kMaxUserTag) {
      throw CommError("tcp recv: tag above kMaxUserTag is reserved");
    }
#if GRIDSE_OBS
    Timer wait_timer;
    std::optional<Message> m =
        world_->mailboxes_[static_cast<std::size_t>(rank_)]->take_for(
            source, tag, timeout);
    if (m) {
      obs::trace::on_consume("runtime.tcp.recv", m->trace,
                             wait_timer.seconds());
    }
    return m;
#else
    return world_->mailboxes_[static_cast<std::size_t>(rank_)]->take_for(
        source, tag, timeout);
#endif
  }

  void barrier() override {
    OBS_SPAN("runtime.tcp.barrier");
    OBS_EVENT("barrier.enter", OBS_ATTR("rank", rank_),
              OBS_ATTR("transport", "tcp"));
    Mailbox& box = *world_->mailboxes_[static_cast<std::size_t>(rank_)];
    if (rank_ == 0) {
      for (int r = 1; r < size(); ++r) {
        barrier_take(box, kAnySource, kBarrierArriveTag);
      }
      for (int r = 1; r < size(); ++r) {
        send_tagged(r, kBarrierReleaseTag, {}, /*allow_reserved=*/true);
      }
    } else {
      send_tagged(0, kBarrierArriveTag, {}, /*allow_reserved=*/true);
      barrier_take(box, 0, kBarrierReleaseTag);
    }
    OBS_EVENT("barrier.exit", OBS_ATTR("rank", rank_),
              OBS_ATTR("transport", "tcp"));
  }

  [[nodiscard]] std::size_t bytes_sent() const override { return bytes_sent_; }

 private:
  void barrier_take(Mailbox& box, int source, int tag) {
#if GRIDSE_OBS
    Timer wait_timer;
#endif
    // Wait in short slices so a peer that died before arriving fails this
    // barrier within ~2 slices instead of silently burning the full
    // timeout (the silent-hang case: its message will never come). One
    // grace slice after death is observed lets already-delivered messages
    // drain.
    const auto deadline =
        std::chrono::steady_clock::now() + world_->barrier_timeout();
    int polls_after_death = 0;
    std::optional<Message> msg;
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now);
      const auto slice =
          std::min(std::max(remaining, std::chrono::milliseconds{0}),
                   kBarrierPollSlice);
      msg = box.take_for(source, tag, slice);
      if (msg) {
        break;
      }
      if (now >= deadline) {
        throw CommError("tcp barrier: rank " + std::to_string(rank_) +
                        " timed out waiting for a peer (lost rank?)");
      }
      if (world_->any_rank_dead() && ++polls_after_death >= 2) {
        throw CommError("tcp barrier: rank " + std::to_string(rank_) +
                        " aborted: a peer died before the barrier");
      }
    }
#if GRIDSE_OBS
    obs::trace::on_consume("runtime.tcp.barrier", msg->trace,
                           wait_timer.seconds());
#endif
  }

  void send_tagged(int dest, int tag, const std::vector<std::uint8_t>& payload,
                   bool allow_reserved) {
    if (dest < 0 || dest >= size()) {
      throw CommError("tcp send: bad destination rank " + std::to_string(dest));
    }
    if (tag < 0 || (!allow_reserved && tag > TcpWorld::kMaxUserTag)) {
      throw CommError("tcp send: bad tag " + std::to_string(tag));
    }
    if (FAULT_DROP("tcp.send", rank_, tag)) {
      return;  // the message is lost in flight; the sender never knows
    }
    if (dest == rank_) {
      // loopback to self skips the socket (MPI-style self-send)
      Message m{rank_, tag, payload};
#if GRIDSE_OBS
      m.trace = obs::trace::on_send("runtime.tcp.send");
#endif
      world_->mailboxes_[static_cast<std::size_t>(rank_)]->deliver(
          std::move(m));
      bytes_sent_ += payload.size();
      return;
    }
    auto& link = *world_->peer_links_[static_cast<std::size_t>(rank_)]
                                     [static_cast<std::size_t>(dest)];
    FrameHeader header{payload.size(), rank_, tag};
#if GRIDSE_OBS
    // v2 framing: flag bit 63 of the length and splice the trace-context
    // block between header and payload (see medici/wire.hpp).
    const TraceContext ctx = obs::trace::on_send("runtime.tcp.send");
    if (ctx.valid()) {
      header.length |= kTraceLengthFlag;
    }
#endif
    analysis::LockGuard lock(link.write_mutex);
    link.socket.send_all(&header, sizeof header);
#if GRIDSE_OBS
    if (ctx.valid()) {
      link.socket.send_all(&ctx, sizeof ctx);
    }
#endif
    if (!payload.empty()) {
      link.socket.send_all(payload.data(), payload.size());
    }
    bytes_sent_ += payload.size();
  }

  TcpWorld* world_;
  int rank_;
  std::size_t bytes_sent_ = 0;
};

TcpWorld::TcpWorld(int size, ResilienceConfig resilience)
    : size_(size), resilience_(resilience) {
  GRIDSE_CHECK_MSG(size > 0, "world size must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  peer_links_.resize(static_cast<std::size_t>(size));
  for (auto& row : peer_links_) {
    row.resize(static_cast<std::size_t>(size));
  }
  // Full mesh: for i < j, j connects to i's one-shot listener. Both ends are
  // in this process, so setup is sequential and deterministic.
  for (int i = 0; i < size; ++i) {
    for (int j = i + 1; j < size; ++j) {
      std::uint16_t port = 0;
      Socket listener = Socket::listen_loopback(port, 1);
      Socket client = Socket::connect_loopback(port);
      Socket server = listener.accept();
      auto link_i = std::make_shared<Link>();
      link_i->socket = std::move(server);
      auto link_j = std::make_shared<Link>();
      link_j->socket = std::move(client);
      peer_links_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          std::move(link_i);
      peer_links_[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          std::move(link_j);
    }
  }
  // One reader thread per rank demultiplexes its size-1 sockets.
  readers_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    readers_.emplace_back([this, r] {
      std::vector<pollfd> fds;
      std::vector<int> peer_of_fd;
      for (int p = 0; p < size_; ++p) {
        if (p == r) continue;
        fds.push_back({peer_links_[static_cast<std::size_t>(r)]
                                  [static_cast<std::size_t>(p)]
                                      ->socket.fd(),
                       POLLIN, 0});
        peer_of_fd.push_back(p);
      }
      std::size_t open_count = fds.size();
      while (open_count > 0) {
        const int rc = ::poll(fds.data(), fds.size(), -1);
        if (rc < 0) {
          if (errno == EINTR) continue;
          break;
        }
        for (std::size_t k = 0; k < fds.size(); ++k) {
          if (fds[k].fd < 0 || (fds[k].revents & (POLLIN | POLLHUP)) == 0) {
            continue;
          }
          const auto& link = peer_links_[static_cast<std::size_t>(r)]
                                        [static_cast<std::size_t>(peer_of_fd[k])];
          FrameHeader header{};
          // Peek one byte first to distinguish orderly shutdown from a frame.
          std::uint8_t probe = 0;
          const std::size_t got = link->socket.recv_some(&probe, 1);
          if (got == 0) {
            fds[k].fd = -1;
            --open_count;
            continue;
          }
          std::memcpy(&header, &probe, 1);
          link->socket.recv_all(reinterpret_cast<std::uint8_t*>(&header) + 1,
                                sizeof header - 1);
          // v2 framing: consume the trace-context block whenever the flag
          // bit is set, whichever build produced it, so the stream stays in
          // sync (see medici/wire.hpp).
          TraceContext ctx{};
          if ((header.length & kTraceLengthFlag) != 0) {
            link->socket.recv_all(&ctx, sizeof ctx);
          }
          Message m;
          m.source = header.source;
          m.tag = header.tag;
#if GRIDSE_OBS
          m.trace = ctx;
#endif
          m.payload.resize(header.length & kTraceLengthMask);
          if (!m.payload.empty()) {
            link->socket.recv_all(m.payload.data(), m.payload.size());
          }
          mailboxes_[static_cast<std::size_t>(r)]->deliver(std::move(m));
        }
      }
    });
  }
}

TcpWorld::~TcpWorld() {
  // Shut down every socket to wake the reader threads out of poll().
  for (auto& row : peer_links_) {
    for (auto& link : row) {
      if (link && link->socket.valid()) {
        ::shutdown(link->socket.fd(), SHUT_RDWR);
      }
    }
  }
  for (auto& t : readers_) {
    t.join();
  }
}

std::unique_ptr<Communicator> TcpWorld::communicator(int rank) {
  GRIDSE_CHECK_MSG(rank >= 0 && rank < size_, "rank out of range");
  return std::make_unique<TcpCommunicatorImpl>(this, rank);
}

void TcpWorld::run(const std::function<void(Communicator&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  dead_ranks_.store(0, std::memory_order_release);
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      try {
#if GRIDSE_OBS
        obs::trace::set_thread_rank(r);
#endif
        const auto comm = communicator(r);
        fn(*comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Mark the death before any peer can notice the missing messages,
        // so their barrier waits abort promptly.
        dead_ranks_.fetch_add(1, std::memory_order_release);
        OBS_EVENT("rank.died", OBS_ATTR("rank", r),
                  OBS_ATTR("transport", "tcp"));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace gridse::runtime
