#pragma once

#include <chrono>
#include <optional>

#include "runtime/message.hpp"

namespace gridse::runtime {

/// Minimal MPI-flavoured message-passing interface. Each participating
/// "cluster master" holds one Communicator; implementations provide
/// in-process channels (deterministic tests, fast benches) and real TCP
/// sockets (the paper's cross-cluster data path).
///
/// Semantics: send is asynchronous and ordered per (sender, receiver) pair;
/// recv blocks until a matching message arrives. Tags are nonnegative;
/// kAnySource / kAnyTag act as wildcards on the receive side.
class Communicator {
 public:
  virtual ~Communicator() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;

  /// Post a message; never blocks on the receiver. Throws CommError if the
  /// destination is invalid or the transport failed.
  virtual void send(int dest, int tag, std::vector<std::uint8_t> payload) = 0;

  /// Block until a message matching (source, tag) is available and return
  /// it. Matching is FIFO within a (source, tag) stream.
  virtual Message recv(int source, int tag) = 0;

  /// Bounded recv: wait at most `timeout`, returning nullopt if no match
  /// arrived — the DSE step's defence against a lost peer.
  virtual std::optional<Message> recv_for(int source, int tag,
                                          std::chrono::milliseconds timeout) = 0;

  /// Collective barrier across all ranks.
  virtual void barrier() = 0;

  /// Bytes sent so far by this rank (for the communication-cost reports).
  [[nodiscard]] virtual std::size_t bytes_sent() const = 0;
};

}  // namespace gridse::runtime
