#include "runtime/inproc_comm.hpp"

#include <thread>

#include "analysis/assert.hpp"
#include "obs/obs.hpp"
#if GRIDSE_OBS
#include "obs/trace/trace.hpp"
#endif
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gridse::runtime {

namespace {

class InprocCommunicatorImpl final : public Communicator {
 public:
  InprocCommunicatorImpl(InprocWorld* world, int rank,
                         std::vector<Mailbox*> mailboxes,
                         analysis::Mutex* barrier_mutex,
                         analysis::ConditionVariable* barrier_cv,
                         int* barrier_count, std::uint64_t* barrier_generation)
      : world_size_(static_cast<int>(mailboxes.size())),
        rank_(rank),
        mailboxes_(std::move(mailboxes)),
        barrier_mutex_(barrier_mutex),
        barrier_cv_(barrier_cv),
        barrier_count_(barrier_count),
        barrier_generation_(barrier_generation) {
    (void)world;
  }

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return world_size_; }

  void send(int dest, int tag, std::vector<std::uint8_t> payload) override {
    if (dest < 0 || dest >= world_size_) {
      throw CommError("inproc send: bad destination rank " +
                      std::to_string(dest));
    }
    if (tag < 0) {
      throw CommError("inproc send: tags must be nonnegative");
    }
    bytes_sent_ += payload.size();
    Message m{rank_, tag, std::move(payload)};
#if GRIDSE_OBS
    m.trace = obs::trace::on_send("runtime.inproc.send");
#endif
    mailboxes_[static_cast<std::size_t>(dest)]->deliver(std::move(m));
  }

  Message recv(int source, int tag) override {
#if GRIDSE_OBS
    Timer wait_timer;
    Message m = mailboxes_[static_cast<std::size_t>(rank_)]->take(source, tag);
    obs::trace::on_consume("runtime.inproc.recv", m.trace,
                           wait_timer.seconds());
    return m;
#else
    return mailboxes_[static_cast<std::size_t>(rank_)]->take(source, tag);
#endif
  }

  std::optional<Message> recv_for(int source, int tag,
                                  std::chrono::milliseconds timeout) override {
#if GRIDSE_OBS
    Timer wait_timer;
    std::optional<Message> m =
        mailboxes_[static_cast<std::size_t>(rank_)]->take_for(source, tag,
                                                              timeout);
    if (m) {
      obs::trace::on_consume("runtime.inproc.recv", m->trace,
                             wait_timer.seconds());
    }
    return m;
#else
    return mailboxes_[static_cast<std::size_t>(rank_)]->take_for(source, tag,
                                                                 timeout);
#endif
  }

  void barrier() override {
    OBS_EVENT("barrier.enter", OBS_ATTR("rank", rank_),
              OBS_ATTR("transport", "inproc"));
    analysis::UniqueLock lock(*barrier_mutex_);
    GRIDSE_ASSERT(*barrier_count_ < world_size_,
                  "barrier count " << *barrier_count_ << " exceeds world size "
                                   << world_size_);
    const std::uint64_t gen = *barrier_generation_;
    if (++*barrier_count_ == world_size_) {
      *barrier_count_ = 0;
      ++*barrier_generation_;
      barrier_cv_->notify_all();
    } else {
      barrier_cv_->wait(lock, [&] { return *barrier_generation_ != gen; });
    }
    OBS_EVENT("barrier.exit", OBS_ATTR("rank", rank_),
              OBS_ATTR("transport", "inproc"));
  }

  [[nodiscard]] std::size_t bytes_sent() const override { return bytes_sent_; }

 private:
  int world_size_;
  int rank_;
  std::vector<Mailbox*> mailboxes_;
  analysis::Mutex* barrier_mutex_;
  analysis::ConditionVariable* barrier_cv_;
  int* barrier_count_;
  std::uint64_t* barrier_generation_;
  std::size_t bytes_sent_ = 0;
};

}  // namespace

InprocWorld::InprocWorld(int size) {
  GRIDSE_CHECK_MSG(size > 0, "world size must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

InprocWorld::~InprocWorld() = default;

std::unique_ptr<Communicator> InprocWorld::communicator(int rank) {
  GRIDSE_CHECK_MSG(rank >= 0 && rank < size(), "rank out of range");
  std::vector<Mailbox*> boxes;
  boxes.reserve(mailboxes_.size());
  for (const auto& mb : mailboxes_) {
    boxes.push_back(mb.get());
  }
  return std::make_unique<InprocCommunicatorImpl>(
      this, rank, std::move(boxes), &barrier_mutex_, &barrier_cv_,
      &barrier_count_, &barrier_generation_);
}

void InprocWorld::run(const std::function<void(Communicator&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size()));
  threads.reserve(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      try {
#if GRIDSE_OBS
        obs::trace::set_thread_rank(r);
#endif
        const auto comm = communicator(r);
        fn(*comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace gridse::runtime
