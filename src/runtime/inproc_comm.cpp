#include "runtime/inproc_comm.hpp"

#include <thread>

#include "analysis/assert.hpp"
#include "obs/obs.hpp"
#if GRIDSE_OBS
#include "obs/trace/trace.hpp"
#endif
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gridse::runtime {

namespace {

class InprocCommunicatorImpl final : public Communicator {
 public:
  InprocCommunicatorImpl(int rank, std::vector<Mailbox*> mailboxes,
                         InprocBarrier* barrier)
      : world_size_(static_cast<int>(mailboxes.size())),
        rank_(rank),
        mailboxes_(std::move(mailboxes)),
        barrier_(barrier) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int size() const override { return world_size_; }

  void send(int dest, int tag, std::vector<std::uint8_t> payload) override {
    if (dest < 0 || dest >= world_size_) {
      throw CommError("inproc send: bad destination rank " +
                      std::to_string(dest));
    }
    if (tag < 0) {
      throw CommError("inproc send: tags must be nonnegative");
    }
    bytes_sent_ += payload.size();
    Message m{rank_, tag, std::move(payload)};
#if GRIDSE_OBS
    m.trace = obs::trace::on_send("runtime.inproc.send");
#endif
    mailboxes_[static_cast<std::size_t>(dest)]->deliver(std::move(m));
  }

  Message recv(int source, int tag) override {
#if GRIDSE_OBS
    Timer wait_timer;
    Message m = mailboxes_[static_cast<std::size_t>(rank_)]->take(source, tag);
    obs::trace::on_consume("runtime.inproc.recv", m.trace,
                           wait_timer.seconds());
    return m;
#else
    return mailboxes_[static_cast<std::size_t>(rank_)]->take(source, tag);
#endif
  }

  std::optional<Message> recv_for(int source, int tag,
                                  std::chrono::milliseconds timeout) override {
#if GRIDSE_OBS
    Timer wait_timer;
    std::optional<Message> m =
        mailboxes_[static_cast<std::size_t>(rank_)]->take_for(source, tag,
                                                              timeout);
    if (m) {
      obs::trace::on_consume("runtime.inproc.recv", m->trace,
                             wait_timer.seconds());
    }
    return m;
#else
    return mailboxes_[static_cast<std::size_t>(rank_)]->take_for(source, tag,
                                                                 timeout);
#endif
  }

  void barrier() override {
    OBS_EVENT("barrier.enter", OBS_ATTR("rank", rank_),
              OBS_ATTR("transport", "inproc"));
    analysis::UniqueLock lock(barrier_->mutex);
    GRIDSE_ASSERT(barrier_->count < world_size_,
                  "barrier count " << barrier_->count << " exceeds world size "
                                   << world_size_);
    const std::uint64_t gen = barrier_->generation;
    if (++barrier_->count == world_size_) {
      barrier_->count = 0;
      ++barrier_->generation;
      barrier_->cv.notify_all();
    } else {
      barrier_->cv.wait(lock, [&] {
        GRIDSE_ASSERT_HELD(barrier_->mutex);
        return barrier_->generation != gen;
      });
    }
    OBS_EVENT("barrier.exit", OBS_ATTR("rank", rank_),
              OBS_ATTR("transport", "inproc"));
  }

  [[nodiscard]] std::size_t bytes_sent() const override { return bytes_sent_; }

 private:
  int world_size_;
  int rank_;
  std::vector<Mailbox*> mailboxes_;
  InprocBarrier* barrier_;
  std::size_t bytes_sent_ = 0;
};

}  // namespace

InprocWorld::InprocWorld(int size) {
  GRIDSE_CHECK_MSG(size > 0, "world size must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

InprocWorld::~InprocWorld() = default;

std::unique_ptr<Communicator> InprocWorld::communicator(int rank) {
  GRIDSE_CHECK_MSG(rank >= 0 && rank < size(), "rank out of range");
  std::vector<Mailbox*> boxes;
  boxes.reserve(mailboxes_.size());
  for (const auto& mb : mailboxes_) {
    boxes.push_back(mb.get());
  }
  return std::make_unique<InprocCommunicatorImpl>(rank, std::move(boxes),
                                                  &barrier_);
}

void InprocWorld::run(const std::function<void(Communicator&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size()));
  threads.reserve(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      try {
#if GRIDSE_OBS
        obs::trace::set_thread_rank(r);
#endif
        const auto comm = communicator(r);
        fn(*comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace gridse::runtime
