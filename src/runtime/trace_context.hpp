#pragma once

#include <cstdint>

namespace gridse::runtime {

/// Distributed-tracing context carried along with every tagged message so
/// the receiver can causally link its consume back to the sender's span.
/// Lives in the runtime layer (not obs) because the wire and mailbox code
/// must name the type even in GRIDSE_OBS=OFF builds, which ban any
/// reference to the obs namespace in the hot-path archives.
// Kept trivially copyable (no user-declared special members beyond
// defaulted comparison) so framing code may serialize it with memcpy.
struct TraceContext {
  std::uint64_t trace_hi = 0;   ///< 128-bit trace id, high half
  std::uint64_t trace_lo = 0;   ///< 128-bit trace id, low half
  std::uint64_t span_id = 0;    ///< id of the send span (doubles as flow id)
  std::uint64_t parent_id = 0;  ///< sender's innermost active span (0 = root)
  std::uint64_t clock = 0;      ///< Lamport logical clock at send time

  /// An all-zero trace id means "no context attached" (legacy frame or
  /// tracing disabled).
  [[nodiscard]] bool valid() const { return (trace_hi | trace_lo) != 0; }

  bool operator==(const TraceContext&) const = default;
};
static_assert(sizeof(TraceContext) == 40,
              "trace context must be tightly packed for wire serialization");

/// Wire encoding (wire format v2, see medici/wire.hpp): bit 63 of the frame
/// header's length field flags a serialized TraceContext between the header
/// and the payload. v1 senders never set the bit (payloads are far below
/// 2^63 bytes), so legacy frames parse unchanged.
inline constexpr std::uint64_t kTraceLengthFlag = 1ull << 63;
inline constexpr std::uint64_t kTraceLengthMask = kTraceLengthFlag - 1;

}  // namespace gridse::runtime
