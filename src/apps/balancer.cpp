#include "apps/balancer.hpp"

#include "util/byte_buffer.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace gridse::apps {
namespace {

constexpr int kRequestTag = 900001 & 0xFFFFF;  // well inside user tag space
constexpr int kGrantTag = kRequestTag + 1;

std::vector<std::uint8_t> encode_int(std::int32_t v) {
  ByteWriter w(4);
  w.write(v);
  return w.take();
}

std::int32_t decode_int(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  return r.read<std::int32_t>();
}

}  // namespace

BalanceStats run_static(runtime::Communicator& comm, int num_tasks,
                        const TaskFn& fn) {
  GRIDSE_CHECK_MSG(num_tasks >= 0, "task count must be nonnegative");
  BalanceStats stats;
  Timer total;
  Timer busy;
  double busy_acc = 0.0;
  for (int t = comm.rank(); t < num_tasks; t += comm.size()) {
    busy.reset();
    fn(t);
    busy_acc += busy.seconds();
    ++stats.tasks_executed;
  }
  stats.busy_seconds = busy_acc;
  comm.barrier();
  stats.total_seconds = total.seconds();
  return stats;
}

BalanceStats run_dynamic(runtime::Communicator& comm, int num_tasks,
                         const TaskFn& fn) {
  GRIDSE_CHECK_MSG(num_tasks >= 0, "task count must be nonnegative");
  BalanceStats stats;
  Timer total;

  if (comm.size() == 1) {
    Timer busy;
    for (int t = 0; t < num_tasks; ++t) {
      fn(t);
    }
    stats.tasks_executed = num_tasks;
    stats.busy_seconds = busy.seconds();
    comm.barrier();
    stats.total_seconds = total.seconds();
    return stats;
  }

  if (comm.rank() == 0) {
    // Counter process: hand out indices until exhausted, then send one
    // terminator (-1) per worker. Workers identify themselves by message
    // source, so grants go back point-to-point.
    int next = 0;
    int active_workers = comm.size() - 1;
    while (active_workers > 0) {
      const runtime::Message req = comm.recv(runtime::kAnySource, kRequestTag);
      if (next < num_tasks) {
        comm.send(req.source, kGrantTag, encode_int(next++));
      } else {
        comm.send(req.source, kGrantTag, encode_int(-1));
        --active_workers;
      }
    }
  } else {
    Timer busy;
    double busy_acc = 0.0;
    for (;;) {
      comm.send(0, kRequestTag, {});
      const runtime::Message grant = comm.recv(0, kGrantTag);
      const std::int32_t task = decode_int(grant.payload);
      if (task < 0) break;
      busy.reset();
      fn(task);
      busy_acc += busy.seconds();
      ++stats.tasks_executed;
    }
    stats.busy_seconds = busy_acc;
  }
  comm.barrier();
  stats.total_seconds = total.seconds();
  return stats;
}

}  // namespace gridse::apps
