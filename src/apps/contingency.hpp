#pragma once

#include <vector>

#include "grid/dc_powerflow.hpp"
#include "grid/network.hpp"

namespace gridse::apps {

/// Outcome of one N-1 branch-outage case.
struct ContingencyOutcome {
  std::size_t outaged_branch = 0;
  /// The outage splits the network (requires operator attention, no flows).
  bool islanding = false;
  /// Branches whose post-contingency flow exceeds their rating.
  std::vector<std::size_t> overloaded_branches;
  /// Worst post-contingency loading ratio |flow| / rating across branches.
  double worst_loading = 0.0;

  [[nodiscard]] bool secure() const {
    return !islanding && overloaded_branches.empty();
  }
};

/// Aggregate of a screening run.
struct ContingencyReport {
  std::vector<ContingencyOutcome> outcomes;
  int insecure_cases = 0;
  int islanding_cases = 0;

  void add(ContingencyOutcome outcome);
};

/// Evaluate a single branch outage with a DC power flow (paper reference
/// [2]'s workload unit). Ratings of 0 are treated as unlimited.
ContingencyOutcome evaluate_contingency(const grid::Network& network,
                                        std::size_t branch);

/// Screen every branch outage sequentially (the single-node baseline).
ContingencyReport screen_all_branches(const grid::Network& network);

}  // namespace gridse::apps
