#include "apps/contingency.hpp"

#include <cmath>

#include "util/error.hpp"

namespace gridse::apps {

void ContingencyReport::add(ContingencyOutcome outcome) {
  if (outcome.islanding) ++islanding_cases;
  if (!outcome.secure()) ++insecure_cases;
  outcomes.push_back(std::move(outcome));
}

ContingencyOutcome evaluate_contingency(const grid::Network& network,
                                        std::size_t branch) {
  GRIDSE_CHECK_MSG(branch < network.num_branches(),
                   "contingency branch out of range");
  ContingencyOutcome outcome;
  outcome.outaged_branch = branch;
  const auto solution = grid::solve_dc_power_flow(network, {branch});
  if (!solution.has_value()) {
    outcome.islanding = true;
    return outcome;
  }
  for (std::size_t bi = 0; bi < network.num_branches(); ++bi) {
    if (bi == branch) continue;
    const double rating = network.branch(bi).rating;
    if (rating <= 0.0) continue;
    const double loading = std::abs(solution->flows[bi]) / rating;
    outcome.worst_loading = std::max(outcome.worst_loading, loading);
    if (loading > 1.0) {
      outcome.overloaded_branches.push_back(bi);
    }
  }
  return outcome;
}

ContingencyReport screen_all_branches(const grid::Network& network) {
  ContingencyReport report;
  for (std::size_t bi = 0; bi < network.num_branches(); ++bi) {
    report.add(evaluate_contingency(network, bi));
  }
  return report;
}

}  // namespace gridse::apps
