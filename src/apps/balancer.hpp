#pragma once

#include <functional>
#include <vector>

#include "runtime/communicator.hpp"

namespace gridse::apps {

/// Statistics of one distributed task-processing run.
struct BalanceStats {
  /// Tasks executed by this rank.
  int tasks_executed = 0;
  /// Wall time this rank spent executing tasks, seconds.
  double busy_seconds = 0.0;
  /// Wall time from start to the post-run barrier, seconds (includes
  /// waiting for stragglers — the load-imbalance penalty).
  double total_seconds = 0.0;
};

/// A task processor: called with the task index, returns nothing; cost may
/// vary wildly per task (islanding checks are cheap, full solves are not).
using TaskFn = std::function<void(int task)>;

/// Static (pre-partitioned) scheduling baseline: task t runs on rank
/// t % size. No communication, but stragglers bound the makespan.
BalanceStats run_static(runtime::Communicator& comm, int num_tasks,
                        const TaskFn& fn);

/// Counter-based dynamic load balancing (the scheme of the paper's
/// reference [2], Chen/Huang/Chavarría-Miranda): rank 0 owns a shared task
/// counter; workers request the next index when idle, so fast ranks absorb
/// more tasks. With more than one rank, rank 0 dedicates itself to serving
/// the counter (the "counter process"); with a single rank it degenerates
/// to a local loop.
BalanceStats run_dynamic(runtime::Communicator& comm, int num_tasks,
                         const TaskFn& fn);

}  // namespace gridse::apps
