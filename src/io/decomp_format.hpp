#pragma once

#include <span>
#include <string>
#include <vector>

#include "grid/network.hpp"

namespace gridse::io {

/// Text format for a power-system decomposition (bus→subsystem membership):
///
///   # comment
///   decomposition <name>
///   bus <external_bus_id> <subsystem_id>
///   ...
///   end
///
/// Subsystem ids are 0-based and must form a contiguous range; every bus of
/// the network must appear exactly once.
///
/// Parse `text` against `network`; returns membership indexed by internal
/// bus index. Throws InvalidInput with a line number on malformed input.
std::vector<int> parse_decomposition(const std::string& text,
                                     const grid::Network& network);

/// Serialize a membership vector (round-trips through parse_decomposition).
std::string serialize_decomposition(const grid::Network& network,
                                    std::span<const int> subsystem_of_bus,
                                    const std::string& name = "unnamed");

/// File variants.
std::vector<int> load_decomposition_file(const std::string& path,
                                         const grid::Network& network);
void save_decomposition_file(const std::string& path,
                             const grid::Network& network,
                             std::span<const int> subsystem_of_bus,
                             const std::string& name = "unnamed");

}  // namespace gridse::io
