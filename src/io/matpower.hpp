#pragma once

#include <string>

#include "io/case_format.hpp"

namespace gridse::io {

/// Parse a MATPOWER case file (the `case*.m` format that most public test
/// systems are distributed in): reads `mpc.baseMVA` and the `mpc.bus`,
/// `mpc.gen`, `mpc.branch` matrices; ignores MATLAB comments and any other
/// fields (gencost, bus names, …).
///
/// Mapping notes:
///  - bus type 3 → slack, 2 → PV, 1 → PQ (type 4 isolated buses rejected);
///  - PV/slack voltage setpoints come from the generator VG column;
///  - out-of-service branches (BR_STATUS = 0) and generators
///    (GEN_STATUS ≤ 0) are dropped;
///  - TAP = 0 means a plain line; SHIFT is converted degrees → radians;
///  - RATE_A (MVA) becomes the per-unit branch rating (0 = unlimited).
///
/// Throws InvalidInput on malformed input or an electrically invalid case.
Case parse_matpower(const std::string& text);

/// Read and parse a MATPOWER file from disk.
Case load_matpower_file(const std::string& path);

}  // namespace gridse::io
