#pragma once

#include <iosfwd>
#include <string>

#include "grid/network.hpp"

namespace gridse::io {

/// A parsed case: the network plus its metadata.
struct Case {
  std::string name;
  double base_mva = 100.0;
  grid::Network network;
};

/// Parse the GridSE text case format:
///
///   # comment
///   case <name>
///   basemva <MVA>
///   bus <id> <slack|pv|pq> <Pd_MW> <Qd_MVAr> <Gs_MW> <Bs_MVAr> <Vset_pu>
///   gen <bus_id> <Pg_MW> <Qg_MVAr>
///   branch <from_id> <to_id> <r_pu> <x_pu> <b_pu> [tap [shift_deg]]
///   end
///
/// Loads/shunts/generation are given in physical units and converted to
/// per-unit on base_mva. Throws InvalidInput with a line number on errors.
Case parse_case(const std::string& text);

/// Serialize back to the text format (round-trips through parse_case).
std::string serialize_case(const Case& c);

/// Read a case from a file path. Throws InvalidInput when unreadable.
Case load_case_file(const std::string& path);

/// Write a case to a file path.
void save_case_file(const Case& c, const std::string& path);

}  // namespace gridse::io
