#include "io/case14.hpp"

namespace gridse::io {

const char* ieee14_text() {
  // IEEE 14-bus test system, parameters as distributed in MATPOWER case14
  // (bus loads in MW/MVAr on a 100 MVA base; branch impedances in p.u.).
  return R"(# IEEE 14-bus test case
case ieee14
basemva 100
# bus <id> <type> <Pd> <Qd> <Gs> <Bs> <Vset>
bus 1  slack  0.0   0.0   0 0    1.060
bus 2  pv    21.7  12.7   0 0    1.045
bus 3  pv    94.2  19.0   0 0    1.010
bus 4  pq    47.8  -3.9   0 0    1.0
bus 5  pq     7.6   1.6   0 0    1.0
bus 6  pv    11.2   7.5   0 0    1.070
bus 7  pq     0.0   0.0   0 0    1.0
bus 8  pv     0.0   0.0   0 0    1.090
bus 9  pq    29.5  16.6   0 19.0 1.0
bus 10 pq     9.0   5.8   0 0    1.0
bus 11 pq     3.5   1.8   0 0    1.0
bus 12 pq     6.1   1.6   0 0    1.0
bus 13 pq    13.5   5.8   0 0    1.0
bus 14 pq    14.9   5.0   0 0    1.0
# gen <bus> <Pg> <Qg>
gen 1 232.4 0
gen 2  40.0 0
# branch <from> <to> <r> <x> <b> [tap]
branch 1  2  0.01938 0.05917 0.0528
branch 1  5  0.05403 0.22304 0.0492
branch 2  3  0.04699 0.19797 0.0438
branch 2  4  0.05811 0.17632 0.0340
branch 2  5  0.05695 0.17388 0.0346
branch 3  4  0.06701 0.17103 0.0128
branch 4  5  0.01335 0.04211 0.0
branch 4  7  0.0     0.20912 0.0 0.978
branch 4  9  0.0     0.55618 0.0 0.969
branch 5  6  0.0     0.25202 0.0 0.932
branch 6  11 0.09498 0.19890 0.0
branch 6  12 0.12291 0.25581 0.0
branch 6  13 0.06615 0.13027 0.0
branch 7  8  0.0     0.17615 0.0
branch 7  9  0.0     0.11001 0.0
branch 9  10 0.03181 0.08450 0.0
branch 9  14 0.12711 0.27038 0.0
branch 10 11 0.08205 0.19207 0.0
branch 12 13 0.22092 0.19988 0.0
branch 13 14 0.17093 0.34802 0.0
end
)";
}

Case ieee14() { return parse_case(ieee14_text()); }

}  // namespace gridse::io
