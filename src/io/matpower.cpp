#include "io/matpower.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace gridse::io {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Strip MATLAB comments (% to end of line) from the whole text.
std::string strip_comments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool in_comment = false;
  for (const char c : text) {
    if (c == '%') in_comment = true;
    if (c == '\n') in_comment = false;
    if (!in_comment) out.push_back(c);
  }
  return out;
}

/// Find `mpc.<field> = ` and return the text after '=' up to the matching
/// terminator (';' for scalars, ']' for matrices).
std::optional<std::string> field_text(const std::string& text,
                                      const std::string& field,
                                      bool matrix) {
  const std::string needle = "mpc." + field;
  std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos = text.find('=', pos + needle.size());
  if (pos == std::string::npos) return std::nullopt;
  ++pos;
  if (matrix) {
    const std::size_t open = text.find('[', pos);
    const std::size_t close = text.find(']', open);
    if (open == std::string::npos || close == std::string::npos) {
      return std::nullopt;
    }
    return text.substr(open + 1, close - open - 1);
  }
  const std::size_t semi = text.find(';', pos);
  if (semi == std::string::npos) return std::nullopt;
  return text.substr(pos, semi - pos);
}

/// Parse a MATLAB matrix body into rows of doubles. Rows end at ';' or
/// newline; blank rows are skipped.
std::vector<std::vector<double>> parse_matrix(const std::string& body,
                                              const std::string& what) {
  std::vector<std::vector<double>> rows;
  std::string row_text;
  const auto flush = [&rows, &what](std::string& rt) {
    const auto trimmed = trim(rt);
    if (!trimmed.empty()) {
      std::vector<double> row;
      std::istringstream in{std::string(trimmed)};
      double v = 0.0;
      while (in >> v) {
        row.push_back(v);
      }
      if (!in.eof()) {
        throw InvalidInput("matpower: non-numeric token in mpc." + what);
      }
      rows.push_back(std::move(row));
    }
    rt.clear();
  };
  for (const char c : body) {
    if (c == ';' || c == '\n') {
      flush(row_text);
    } else if (c == ',') {
      row_text.push_back(' ');
    } else {
      row_text.push_back(c);
    }
  }
  flush(row_text);
  return rows;
}

double col(const std::vector<double>& row, std::size_t index,
           const std::string& what) {
  if (index >= row.size()) {
    throw InvalidInput("matpower: mpc." + what + " row has only " +
                       std::to_string(row.size()) + " columns (need " +
                       std::to_string(index + 1) + ")");
  }
  return row[index];
}

}  // namespace

Case parse_matpower(const std::string& text) {
  const std::string clean = strip_comments(text);

  Case c;
  c.name = "matpower";
  if (const auto fn = field_text(clean, "baseMVA", /*matrix=*/false)) {
    try {
      c.base_mva = std::stod(std::string(trim(*fn)));
    } catch (const std::exception&) {
      throw InvalidInput("matpower: bad mpc.baseMVA");
    }
  } else {
    throw InvalidInput("matpower: missing mpc.baseMVA");
  }
  if (c.base_mva <= 0.0) {
    throw InvalidInput("matpower: baseMVA must be positive");
  }
  // function name, if present, becomes the case name
  {
    const std::size_t fpos = clean.find("function");
    if (fpos != std::string::npos) {
      const std::size_t eq = clean.find('=', fpos);
      if (eq != std::string::npos) {
        const std::size_t end = clean.find_first_of("\r\n", eq);
        // Bind the substring before trimming: trim() returns a view, and a
        // view into the temporary would dangle past the full expression.
        const std::string raw = clean.substr(eq + 1, end - eq - 1);
        const auto name = trim(raw);
        if (!name.empty()) c.name = std::string(name);
      }
    }
  }

  const auto bus_body = field_text(clean, "bus", /*matrix=*/true);
  const auto gen_body = field_text(clean, "gen", /*matrix=*/true);
  const auto branch_body = field_text(clean, "branch", /*matrix=*/true);
  if (!bus_body || !branch_body) {
    throw InvalidInput("matpower: missing mpc.bus or mpc.branch");
  }

  // --- buses ------------------------------------------------------------
  for (const auto& row : parse_matrix(*bus_body, "bus")) {
    grid::Bus bus;
    bus.external_id = static_cast<int>(col(row, 0, "bus"));
    const int type = static_cast<int>(col(row, 1, "bus"));
    switch (type) {
      case 1:
        bus.type = grid::BusType::kPQ;
        break;
      case 2:
        bus.type = grid::BusType::kPV;
        break;
      case 3:
        bus.type = grid::BusType::kSlack;
        break;
      default:
        throw InvalidInput("matpower: unsupported bus type " +
                           std::to_string(type) + " at bus " +
                           std::to_string(bus.external_id));
    }
    bus.p_load = col(row, 2, "bus") / c.base_mva;
    bus.q_load = col(row, 3, "bus") / c.base_mva;
    bus.gs = col(row, 4, "bus") / c.base_mva;
    bus.bs = col(row, 5, "bus") / c.base_mva;
    bus.v_setpoint = col(row, 7, "bus");  // VM; overridden by gen VG below
    c.network.add_bus(std::move(bus));
  }

  // --- generators ---------------------------------------------------------
  if (gen_body) {
    for (const auto& row : parse_matrix(*gen_body, "gen")) {
      const int status_col = 7;
      if (row.size() > status_col && col(row, status_col, "gen") <= 0.0) {
        continue;  // out of service
      }
      const int bus_id = static_cast<int>(col(row, 0, "gen"));
      const grid::BusIndex idx = c.network.index_of(bus_id);
      c.network.add_generation(idx, col(row, 1, "gen") / c.base_mva,
                               col(row, 2, "gen") / c.base_mva);
      const double vg = col(row, 5, "gen");
      if (vg > 0.0 &&
          c.network.bus(idx).type != grid::BusType::kPQ) {
        c.network.set_bus_type(idx, c.network.bus(idx).type, vg);
      }
    }
  }

  // --- branches -------------------------------------------------------------
  for (const auto& row : parse_matrix(*branch_body, "branch")) {
    if (row.size() > 10 && col(row, 10, "branch") == 0.0) {
      continue;  // BR_STATUS = 0: out of service
    }
    grid::Branch br;
    br.from = c.network.index_of(static_cast<int>(col(row, 0, "branch")));
    br.to = c.network.index_of(static_cast<int>(col(row, 1, "branch")));
    br.r = col(row, 2, "branch");
    br.x = col(row, 3, "branch");
    br.b_charging = col(row, 4, "branch");
    br.rating = row.size() > 5 ? col(row, 5, "branch") / c.base_mva : 0.0;
    const double tap = row.size() > 8 ? col(row, 8, "branch") : 0.0;
    br.tap = tap == 0.0 ? 1.0 : tap;
    br.phase_shift =
        row.size() > 9 ? col(row, 9, "branch") * kPi / 180.0 : 0.0;
    c.network.add_branch(br);
  }

  c.network.validate();
  return c;
}

Case load_matpower_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw InvalidInput("cannot open matpower file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_matpower(buf.str());
}

}  // namespace gridse::io
