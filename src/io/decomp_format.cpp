#include "io/decomp_format.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace gridse::io {

std::vector<int> parse_decomposition(const std::string& text,
                                     const grid::Network& network) {
  std::vector<int> membership(static_cast<std::size_t>(network.num_buses()),
                              -1);
  bool saw_end = false;
  int line_no = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (saw_end) {
      throw InvalidInput("decomposition line " + std::to_string(line_no) +
                         ": content after 'end'");
    }
    const auto tokens = split(trimmed, ' ');
    if (tokens[0] == "decomposition") {
      continue;  // name is informational
    }
    if (tokens[0] == "end") {
      saw_end = true;
      continue;
    }
    if (tokens[0] != "bus" || tokens.size() != 3) {
      throw InvalidInput("decomposition line " + std::to_string(line_no) +
                         ": expected 'bus <id> <subsystem>'");
    }
    int external = 0;
    int subsystem = 0;
    try {
      external = std::stoi(tokens[1]);
      subsystem = std::stoi(tokens[2]);
    } catch (const std::exception&) {
      throw InvalidInput("decomposition line " + std::to_string(line_no) +
                         ": bad number");
    }
    if (subsystem < 0) {
      throw InvalidInput("decomposition line " + std::to_string(line_no) +
                         ": subsystem ids must be nonnegative");
    }
    const grid::BusIndex idx = network.index_of(external);  // throws if unknown
    if (membership[static_cast<std::size_t>(idx)] != -1) {
      throw InvalidInput("decomposition line " + std::to_string(line_no) +
                         ": bus " + tokens[1] + " assigned twice");
    }
    membership[static_cast<std::size_t>(idx)] = subsystem;
  }
  if (!saw_end) {
    throw InvalidInput("decomposition file missing 'end'");
  }
  for (grid::BusIndex b = 0; b < network.num_buses(); ++b) {
    if (membership[static_cast<std::size_t>(b)] < 0) {
      throw InvalidInput("decomposition missing bus " +
                         std::to_string(network.bus(b).external_id));
    }
  }
  return membership;
}

std::string serialize_decomposition(const grid::Network& network,
                                    std::span<const int> subsystem_of_bus,
                                    const std::string& name) {
  GRIDSE_CHECK(static_cast<grid::BusIndex>(subsystem_of_bus.size()) ==
               network.num_buses());
  std::ostringstream out;
  out << "decomposition " << name << "\n";
  for (grid::BusIndex b = 0; b < network.num_buses(); ++b) {
    out << "bus " << network.bus(b).external_id << " "
        << subsystem_of_bus[static_cast<std::size_t>(b)] << "\n";
  }
  out << "end\n";
  return out.str();
}

std::vector<int> load_decomposition_file(const std::string& path,
                                         const grid::Network& network) {
  std::ifstream in(path);
  if (!in) {
    throw InvalidInput("cannot open decomposition file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_decomposition(buf.str(), network);
}

void save_decomposition_file(const std::string& path,
                             const grid::Network& network,
                             std::span<const int> subsystem_of_bus,
                             const std::string& name) {
  std::ofstream out(path);
  if (!out) {
    throw InvalidInput("cannot write decomposition file: " + path);
  }
  out << serialize_decomposition(network, subsystem_of_bus, name);
}

}  // namespace gridse::io
