#pragma once

#include "io/case_format.hpp"

namespace gridse::io {

/// The standard IEEE 14-bus test case (public data, MATPOWER `case14`
/// parameter set). Ground truth for estimator validation: a 14-bus
/// subsystem is also exactly the granularity the paper's weight model was
/// calibrated on (g1 = 3.7579, g2 = 5.2464 "for a 14-bus subsystem").
Case ieee14();

/// The raw case text (exposed so parser tests can exercise a realistic
/// input).
const char* ieee14_text();

}  // namespace gridse::io
