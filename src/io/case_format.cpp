#include "io/case_format.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace gridse::io {
namespace {

constexpr double kPi = 3.14159265358979323846;

double parse_double(const std::string& token, int line_no) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw InvalidInput("case line " + std::to_string(line_no) +
                       ": bad number '" + token + "'");
  }
  if (pos != token.size()) {
    throw InvalidInput("case line " + std::to_string(line_no) +
                       ": bad number '" + token + "'");
  }
  return v;
}

int parse_int(const std::string& token, int line_no) {
  const double v = parse_double(token, line_no);
  if (v != std::floor(v)) {
    throw InvalidInput("case line " + std::to_string(line_no) +
                       ": expected integer, got '" + token + "'");
  }
  return static_cast<int>(v);
}

}  // namespace

Case parse_case(const std::string& text) {
  Case c;
  bool saw_end = false;
  struct PendingBranch {
    int from;
    int to;
    grid::Branch b;
  };
  std::vector<PendingBranch> pending_branches;
  struct PendingGen {
    int bus;
    double pg;
    double qg;
  };
  std::vector<PendingGen> pending_gens;

  int line_no = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (saw_end) {
      throw InvalidInput("case line " + std::to_string(line_no) +
                         ": content after 'end'");
    }
    const auto tokens = split(trimmed, ' ');
    const std::string& kw = tokens[0];
    const auto expect = [&](std::size_t lo, std::size_t hi) {
      if (tokens.size() < lo + 1 || tokens.size() > hi + 1) {
        throw InvalidInput("case line " + std::to_string(line_no) + ": '" +
                           kw + "' expects " + std::to_string(lo) +
                           (hi != lo ? ".." + std::to_string(hi) : "") +
                           " fields");
      }
    };
    if (kw == "case") {
      expect(1, 1);
      c.name = tokens[1];
    } else if (kw == "basemva") {
      expect(1, 1);
      c.base_mva = parse_double(tokens[1], line_no);
      if (c.base_mva <= 0.0) {
        throw InvalidInput("case line " + std::to_string(line_no) +
                           ": basemva must be positive");
      }
    } else if (kw == "bus") {
      expect(7, 7);
      grid::Bus b;
      b.external_id = parse_int(tokens[1], line_no);
      if (tokens[2] == "slack") {
        b.type = grid::BusType::kSlack;
      } else if (tokens[2] == "pv") {
        b.type = grid::BusType::kPV;
      } else if (tokens[2] == "pq") {
        b.type = grid::BusType::kPQ;
      } else {
        throw InvalidInput("case line " + std::to_string(line_no) +
                           ": bus type must be slack|pv|pq");
      }
      b.p_load = parse_double(tokens[3], line_no) / c.base_mva;
      b.q_load = parse_double(tokens[4], line_no) / c.base_mva;
      b.gs = parse_double(tokens[5], line_no) / c.base_mva;
      b.bs = parse_double(tokens[6], line_no) / c.base_mva;
      b.v_setpoint = parse_double(tokens[7], line_no);
      c.network.add_bus(std::move(b));
    } else if (kw == "gen") {
      expect(3, 3);
      pending_gens.push_back({parse_int(tokens[1], line_no),
                              parse_double(tokens[2], line_no) / c.base_mva,
                              parse_double(tokens[3], line_no) / c.base_mva});
    } else if (kw == "branch") {
      expect(5, 7);
      PendingBranch pb{};
      pb.from = parse_int(tokens[1], line_no);
      pb.to = parse_int(tokens[2], line_no);
      pb.b.r = parse_double(tokens[3], line_no);
      pb.b.x = parse_double(tokens[4], line_no);
      pb.b.b_charging = parse_double(tokens[5], line_no);
      pb.b.tap = tokens.size() > 6 ? parse_double(tokens[6], line_no) : 1.0;
      pb.b.phase_shift = tokens.size() > 7
                             ? parse_double(tokens[7], line_no) * kPi / 180.0
                             : 0.0;
      if (pb.b.tap == 0.0) pb.b.tap = 1.0;  // MATPOWER convention: 0 = none
      pending_branches.push_back(pb);
    } else if (kw == "end") {
      expect(0, 0);
      saw_end = true;
    } else {
      throw InvalidInput("case line " + std::to_string(line_no) +
                         ": unknown keyword '" + kw + "'");
    }
  }
  if (!saw_end) {
    throw InvalidInput("case file missing 'end'");
  }

  // Resolve external ids now that all buses exist. Generation accumulates
  // onto the bus record (multiple gen lines per bus allowed).
  for (const auto& g : pending_gens) {
    c.network.add_generation(c.network.index_of(g.bus), g.pg, g.qg);
  }
  for (const auto& pb : pending_branches) {
    grid::Branch b = pb.b;
    b.from = c.network.index_of(pb.from);
    b.to = c.network.index_of(pb.to);
    c.network.add_branch(b);
  }
  c.network.validate();
  return c;
}

std::string serialize_case(const Case& c) {
  std::ostringstream out;
  out << "case " << (c.name.empty() ? "unnamed" : c.name) << "\n";
  out << "basemva " << c.base_mva << "\n";
  for (const grid::Bus& b : c.network.buses()) {
    const char* type = b.type == grid::BusType::kSlack
                           ? "slack"
                           : (b.type == grid::BusType::kPV ? "pv" : "pq");
    out << strfmt("bus %d %s %.6f %.6f %.6f %.6f %.6f\n", b.external_id, type,
                  b.p_load * c.base_mva, b.q_load * c.base_mva,
                  b.gs * c.base_mva, b.bs * c.base_mva, b.v_setpoint);
  }
  for (const grid::Bus& b : c.network.buses()) {
    if (b.p_gen != 0.0 || b.q_gen != 0.0) {
      out << strfmt("gen %d %.6f %.6f\n", b.external_id, b.p_gen * c.base_mva,
                    b.q_gen * c.base_mva);
    }
  }
  for (const grid::Branch& br : c.network.branches()) {
    out << strfmt("branch %d %d %.6f %.6f %.6f %.6f %.6f\n",
                  c.network.bus(br.from).external_id,
                  c.network.bus(br.to).external_id, br.r, br.x, br.b_charging,
                  br.tap, br.phase_shift * 180.0 / kPi);
  }
  out << "end\n";
  return out.str();
}

Case load_case_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw InvalidInput("cannot open case file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_case(buf.str());
}

void save_case_file(const Case& c, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw InvalidInput("cannot write case file: " + path);
  }
  out << serialize_case(c);
}

}  // namespace gridse::io
