#include "io/synthetic.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace gridse::io {

int GeneratedCase::num_subsystems() const {
  int m = 0;
  for (const int s : subsystem_of_bus) {
    m = std::max(m, s + 1);
  }
  return m;
}

namespace {

grid::Branch make_line(grid::BusIndex from, grid::BusIndex to, Rng& rng,
                       bool tie_line) {
  grid::Branch br;
  br.from = from;
  br.to = to;
  // Tie lines model longer corridors: higher reactance, more charging.
  br.x = tie_line ? rng.uniform(0.08, 0.22) : rng.uniform(0.02, 0.09);
  br.r = br.x * rng.uniform(0.15, 0.35);
  br.b_charging = rng.uniform(0.005, tie_line ? 0.06 : 0.04);
  return br;
}

}  // namespace

GeneratedCase generate_synthetic(const SyntheticSpec& spec) {
  const int m = static_cast<int>(spec.subsystem_sizes.size());
  if (m == 0) {
    throw InvalidInput("synthetic spec: no subsystems");
  }
  for (const int s : spec.subsystem_sizes) {
    if (s < 2) {
      throw InvalidInput("synthetic spec: subsystems need at least 2 buses");
    }
  }
  for (const auto& [a, b] : spec.decomposition_edges) {
    if (a < 0 || a >= m || b < 0 || b >= m || a == b) {
      throw InvalidInput("synthetic spec: bad decomposition edge (" +
                         std::to_string(a) + "," + std::to_string(b) + ")");
    }
  }
  if (spec.tie_lines_per_edge < 1) {
    throw InvalidInput("synthetic spec: tie_lines_per_edge must be >= 1");
  }
  if (!spec.tie_lines_by_edge.empty() &&
      spec.tie_lines_by_edge.size() != spec.decomposition_edges.size()) {
    throw InvalidInput(
        "synthetic spec: tie_lines_by_edge must match decomposition_edges");
  }
  for (const int t : spec.tie_lines_by_edge) {
    if (t < 1) {
      throw InvalidInput("synthetic spec: per-edge tie count must be >= 1");
    }
  }

  Rng rng(spec.seed);
  GeneratedCase out;
  out.kase.name = strfmt("synthetic_m%d", m);
  out.kase.base_mva = 100.0;
  out.decomposition_edges = spec.decomposition_edges;
  grid::Network& net = out.kase.network;

  // --- buses ----------------------------------------------------------------
  std::vector<std::vector<grid::BusIndex>> subsystem_buses(
      static_cast<std::size_t>(m));
  int next_external = 1;
  for (int s = 0; s < m; ++s) {
    const int n = spec.subsystem_sizes[static_cast<std::size_t>(s)];
    for (int i = 0; i < n; ++i) {
      grid::Bus bus;
      bus.external_id = next_external++;
      bus.type = grid::BusType::kPQ;
      const double pd = rng.uniform(0.5, 1.5) * spec.load_mean_mw / 100.0;
      bus.p_load = pd;
      bus.q_load = pd * rng.uniform(0.25, 0.40);
      bus.name = strfmt("s%d_b%d", s + 1, i + 1);
      const auto idx = net.add_bus(std::move(bus));
      subsystem_buses[static_cast<std::size_t>(s)].push_back(idx);
      out.subsystem_of_bus.push_back(s);
    }
  }

  // --- generators ------------------------------------------------------------
  // Per subsystem: pick roughly one PV bus per buses_per_generator buses and
  // split ~92% of the subsystem load among them (the slack supplies losses
  // and the remainder, keeping its injection moderate).
  for (int s = 0; s < m; ++s) {
    auto& buses = subsystem_buses[static_cast<std::size_t>(s)];
    double subsystem_load = 0.0;
    for (const auto bi : buses) {
      subsystem_load += net.bus(bi).p_load;
    }
    const int gens = std::max<int>(
        1, static_cast<int>(buses.size()) / std::max(1, spec.buses_per_generator));
    std::vector<grid::BusIndex> shuffled = buses;
    rng.shuffle(shuffled);
    for (int g = 0; g < gens; ++g) {
      const auto bi = shuffled[static_cast<std::size_t>(g)];
      net.set_bus_type(bi, grid::BusType::kPV, rng.uniform(1.01, 1.05));
      // Near-complete local coverage: only losses flow in over the tie
      // lines, which keeps arbitrarily large interconnections power-flow
      // feasible from a flat start.
      net.add_generation(bi, 0.98 * subsystem_load / gens, 0.0);
    }
  }
  // Global slack: first bus of subsystem 0 (re-typed even if PV landed there).
  net.set_bus_type(subsystem_buses[0][0], grid::BusType::kSlack, 1.04);

  // --- intra-subsystem branches ----------------------------------------------
  for (int s = 0; s < m; ++s) {
    const auto& buses = subsystem_buses[static_cast<std::size_t>(s)];
    const int n = static_cast<int>(buses.size());
    // random spanning tree: connect bus i to a random earlier bus
    for (int i = 1; i < n; ++i) {
      const int j = static_cast<int>(rng.uniform_int(0, i - 1));
      net.add_branch(make_line(buses[static_cast<std::size_t>(j)],
                               buses[static_cast<std::size_t>(i)], rng,
                               /*tie_line=*/false));
    }
    // extra meshing edges
    const int extra =
        static_cast<int>(spec.extra_edge_fraction * static_cast<double>(n));
    int attempts = 0;
    int added = 0;
    std::set<std::pair<int, int>> existing;
    while (added < extra && attempts < extra * 20) {
      ++attempts;
      const int a = static_cast<int>(rng.uniform_int(0, n - 1));
      const int b = static_cast<int>(rng.uniform_int(0, n - 1));
      if (a == b) continue;
      const auto key = std::minmax(a, b);
      if (existing.count(key) > 0) continue;
      const auto ba = buses[static_cast<std::size_t>(a)];
      const auto bb = buses[static_cast<std::size_t>(b)];
      bool dup = false;
      for (const auto bri : net.branches_at(ba)) {
        const grid::Branch& br = net.branch(bri);
        if ((br.from == ba && br.to == bb) || (br.from == bb && br.to == ba)) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      existing.insert(key);
      net.add_branch(make_line(ba, bb, rng, /*tie_line=*/false));
      ++added;
    }
  }

  // --- tie lines -------------------------------------------------------------
  for (std::size_t ei = 0; ei < spec.decomposition_edges.size(); ++ei) {
    const auto& [a, b] = spec.decomposition_edges[ei];
    const int ties = spec.tie_lines_by_edge.empty()
                         ? spec.tie_lines_per_edge
                         : spec.tie_lines_by_edge[ei];
    const auto& ba = subsystem_buses[static_cast<std::size_t>(a)];
    const auto& bb = subsystem_buses[static_cast<std::size_t>(b)];
    std::set<std::pair<grid::BusIndex, grid::BusIndex>> used;
    for (int t = 0; t < ties; ++t) {
      for (int attempt = 0; attempt < 50; ++attempt) {
        const auto u = ba[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ba.size()) - 1))];
        const auto v = bb[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(bb.size()) - 1))];
        if (used.count({u, v}) > 0) continue;
        used.insert({u, v});
        net.add_branch(make_line(u, v, rng, /*tie_line=*/true));
        break;
      }
    }
  }

  net.validate();
  return out;
}

GeneratedCase ieee118_dse(std::uint64_t seed) {
  SyntheticSpec spec;
  // Table I of the paper: vertex weights == bus counts per subsystem.
  spec.subsystem_sizes = {14, 13, 13, 13, 13, 12, 14, 13, 13};
  // Figure 3 decomposition edges (1-based in the paper).
  const std::pair<int, int> edges1[] = {{1, 2}, {1, 4}, {1, 5}, {2, 3},
                                        {2, 6}, {3, 6}, {4, 5}, {4, 7},
                                        {5, 6}, {5, 7}, {5, 8}, {7, 9}};
  for (const auto& [a, b] : edges1) {
    spec.decomposition_edges.emplace_back(a - 1, b - 1);
  }
  spec.tie_lines_per_edge = 2;
  spec.seed = seed;
  GeneratedCase out = generate_synthetic(spec);
  out.kase.name = "ieee118_dse";
  return out;
}

GeneratedCase wecc37(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.seed = seed;
  Rng rng(seed ^ 0x37ecc);
  // 37 balancing authorities of uneven size (large coastal utilities,
  // small inland ones).
  for (int s = 0; s < 37; ++s) {
    spec.subsystem_sizes.push_back(static_cast<int>(rng.uniform_int(8, 24)));
  }
  // Irregular backbone: a long north-south "coast" chain with an inland
  // chain, cross-ties between them, plus a few long-range interties.
  for (int s = 0; s + 1 < 19; ++s) {
    spec.decomposition_edges.emplace_back(s, s + 1);  // coast chain 0..18
  }
  for (int s = 19; s + 1 < 37; ++s) {
    spec.decomposition_edges.emplace_back(s, s + 1);  // inland chain 19..36
  }
  for (int s = 0; s < 18; ++s) {
    if (s % 3 == 0) {
      spec.decomposition_edges.emplace_back(s, 19 + s);  // cross ties
    }
  }
  spec.decomposition_edges.emplace_back(0, 36);   // intertie loop closure
  spec.decomposition_edges.emplace_back(9, 28);   // mid intertie
  spec.decomposition_edges.emplace_back(4, 33);
  spec.tie_lines_per_edge = 2;
  GeneratedCase out = generate_synthetic(spec);
  out.kase.name = "wecc37";
  return out;
}

SyntheticSpec make_mesh_spec(int rows, int cols, int buses_per,
                             std::uint64_t seed) {
  if (rows < 1 || cols < 1 || buses_per < 2) {
    throw InvalidInput("make_mesh_spec: bad dimensions");
  }
  SyntheticSpec spec;
  spec.seed = seed;
  spec.subsystem_sizes.assign(static_cast<std::size_t>(rows * cols), buses_per);
  const auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) spec.decomposition_edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) spec.decomposition_edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return spec;
}

SyntheticSpec make_hierarchical_spec(const HierarchicalSpec& h) {
  if (h.regions < 1 || h.areas_per_region < 1 || h.buses_per_area < 4) {
    throw InvalidInput("hierarchical spec: bad dimensions");
  }
  if (h.intra_region_chords < 0 || h.inter_region_edges < 1 ||
      h.tie_lines_intra < 1 || h.tie_lines_inter < 1) {
    throw InvalidInput("hierarchical spec: bad tie/chord counts");
  }
  SyntheticSpec spec;
  spec.seed = h.seed;
  spec.extra_edge_fraction = h.extra_edge_fraction;
  spec.load_mean_mw = h.load_mean_mw;
  spec.buses_per_generator = h.buses_per_generator;
  spec.tie_lines_per_edge = h.tie_lines_intra;

  Rng rng(h.seed ^ 0x41e5a);
  const int m = h.regions * h.areas_per_region;
  const auto area_id = [&h](int region, int a) {
    return region * h.areas_per_region + a;
  };
  // Area sizes: 70-130% of the per-area mean, deterministic per seed.
  for (int s = 0; s < m; ++s) {
    const int lo = std::max(4, (h.buses_per_area * 7) / 10);
    const int hi = std::max(lo, (h.buses_per_area * 13) / 10);
    spec.subsystem_sizes.push_back(static_cast<int>(rng.uniform_int(lo, hi)));
  }

  std::set<std::pair<int, int>> used;
  const auto add_edge = [&spec, &used](int a, int b, int ties) {
    const auto key = std::minmax(a, b);
    if (a == b || used.count(key) > 0) return false;
    used.insert(key);
    spec.decomposition_edges.emplace_back(key.first, key.second);
    spec.tie_lines_by_edge.push_back(ties);
    return true;
  };

  // Intra-region topology: ring of areas plus random chords.
  for (int r = 0; r < h.regions; ++r) {
    if (h.areas_per_region > 1) {
      for (int a = 0; a < h.areas_per_region; ++a) {
        add_edge(area_id(r, a), area_id(r, (a + 1) % h.areas_per_region),
                 h.tie_lines_intra);
        if (h.areas_per_region == 2) break;  // ring of 2 is a single edge
      }
    }
    int added = 0;
    int attempts = 0;
    while (added < h.intra_region_chords &&
           attempts < h.intra_region_chords * 50 && h.areas_per_region > 3) {
      ++attempts;
      const int a =
          static_cast<int>(rng.uniform_int(0, h.areas_per_region - 1));
      const int b =
          static_cast<int>(rng.uniform_int(0, h.areas_per_region - 1));
      if (add_edge(area_id(r, a), area_id(r, b), h.tie_lines_intra)) ++added;
    }
  }

  // Inter-region corridors: ring of regions plus a couple of long-range
  // interties; each region pair is joined by `inter_region_edges` random
  // area pairs carrying the heavier inter-region tie count.
  std::vector<std::pair<int, int>> region_pairs;
  for (int r = 0; r < h.regions && h.regions > 1; ++r) {
    region_pairs.emplace_back(r, (r + 1) % h.regions);
    if (h.regions == 2) break;
  }
  if (h.regions > 4) {
    region_pairs.emplace_back(0, h.regions / 2);  // long-range interties
    region_pairs.emplace_back(1, 1 + h.regions / 2);
  }
  for (const auto& [ra, rb] : region_pairs) {
    int added = 0;
    int attempts = 0;
    while (added < h.inter_region_edges &&
           attempts < h.inter_region_edges * 50) {
      ++attempts;
      const int a =
          static_cast<int>(rng.uniform_int(0, h.areas_per_region - 1));
      const int b =
          static_cast<int>(rng.uniform_int(0, h.areas_per_region - 1));
      if (add_edge(area_id(ra, a), area_id(rb, b), h.tie_lines_inter))
        ++added;
    }
  }
  return spec;
}

GeneratedCase generate_hierarchical(const HierarchicalSpec& h) {
  GeneratedCase out = generate_synthetic(make_hierarchical_spec(h));
  out.kase.name = strfmt("hier_r%d_a%d_n%d", h.regions, h.areas_per_region,
                         out.kase.network.num_buses());
  out.region_of_subsystem.reserve(
      static_cast<std::size_t>(h.regions * h.areas_per_region));
  for (int s = 0; s < h.regions * h.areas_per_region; ++s) {
    out.region_of_subsystem.push_back(s / h.areas_per_region);
  }
  return out;
}

GeneratedCase interconnection10k(std::uint64_t seed) {
  HierarchicalSpec h;
  h.regions = 4;
  h.areas_per_region = 8;
  h.buses_per_area = 312;
  h.seed = seed;
  return generate_hierarchical(h);
}

GeneratedCase interconnection30k(std::uint64_t seed) {
  HierarchicalSpec h;
  h.regions = 6;
  h.areas_per_region = 10;
  h.buses_per_area = 500;
  h.intra_region_chords = 3;
  h.seed = seed;
  return generate_hierarchical(h);
}

GeneratedCase interconnection100k(std::uint64_t seed) {
  HierarchicalSpec h;
  h.regions = 8;
  h.areas_per_region = 25;
  h.buses_per_area = 500;
  h.intra_region_chords = 5;
  h.inter_region_edges = 4;
  h.seed = seed;
  return generate_hierarchical(h);
}

SyntheticSpec make_ring_spec(int m, int buses_per, int chords,
                             std::uint64_t seed) {
  if (m < 3 || buses_per < 2 || chords < 0) {
    throw InvalidInput("make_ring_spec: bad dimensions");
  }
  SyntheticSpec spec;
  spec.seed = seed;
  spec.subsystem_sizes.assign(static_cast<std::size_t>(m), buses_per);
  for (int i = 0; i < m; ++i) {
    spec.decomposition_edges.emplace_back(i, (i + 1) % m);
  }
  Rng rng(seed ^ 0xc0ffee);
  std::set<std::pair<int, int>> used;
  for (int i = 0; i < m; ++i) {
    used.insert(std::minmax(i, (i + 1) % m));
  }
  int added = 0;
  int attempts = 0;
  while (added < chords && attempts < chords * 50) {
    ++attempts;
    const int a = static_cast<int>(rng.uniform_int(0, m - 1));
    const int b = static_cast<int>(rng.uniform_int(0, m - 1));
    if (a == b) continue;
    const auto key = std::minmax(a, b);
    if (used.count(key) > 0) continue;
    used.insert(key);
    spec.decomposition_edges.emplace_back(key.first, key.second);
    ++added;
  }
  return spec;
}

}  // namespace gridse::io
