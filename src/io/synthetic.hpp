#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "io/case_format.hpp"
#include "util/rng.hpp"

namespace gridse::io {

/// Recipe for a synthetic interconnection built as a set of subsystems
/// joined by tie lines — the shape the paper's DSE operates on. Every value
/// is deterministic given `seed`.
struct SyntheticSpec {
  /// Bus count per subsystem; the vector length is the subsystem count m.
  std::vector<int> subsystem_sizes;
  /// Decomposition-graph edges (0-based subsystem indices). Tie lines are
  /// created only between these pairs.
  std::vector<std::pair<int, int>> decomposition_edges;
  /// Physical tie lines materialized per decomposition edge.
  int tie_lines_per_edge = 2;
  /// Optional per-edge override of tie_lines_per_edge; when non-empty it
  /// must have one entry per decomposition edge. The hierarchical builder
  /// uses it to make inter-region corridors heavier than intra-region ties.
  std::vector<int> tie_lines_by_edge;
  /// Extra intra-subsystem branches beyond the spanning tree, as a fraction
  /// of the subsystem bus count (controls meshing).
  double extra_edge_fraction = 0.6;
  /// Mean bus load in MW (Qd follows at a 0.25–0.40 power factor ratio).
  double load_mean_mw = 25.0;
  /// Roughly one PV generator per this many buses in each subsystem.
  int buses_per_generator = 6;
  std::uint64_t seed = 42;
};

/// A generated case plus the ground-truth decomposition used to build it.
struct GeneratedCase {
  Case kase;
  /// subsystem_of_bus[internal bus index] = 0-based subsystem id.
  std::vector<int> subsystem_of_bus;
  /// The spec's decomposition edges (echoed for convenience).
  std::vector<std::pair<int, int>> decomposition_edges;
  /// For hierarchical cases: region_of_subsystem[subsystem] = 0-based
  /// top-tier region id. Empty for flat (single-tier) cases.
  std::vector<int> region_of_subsystem;

  [[nodiscard]] int num_subsystems() const;
};

/// Build a connected, power-flow-feasible network from `spec`. The result
/// validates and converges from a flat start by construction (moderate
/// loading, meshed topology). Throws InvalidInput on malformed specs.
GeneratedCase generate_synthetic(const SyntheticSpec& spec);

/// The paper's IEEE-118 DSE decomposition: 118 buses in 9 subsystems of
/// sizes {14,13,13,13,13,12,14,13,13} (Table I / Figure 3) with tie lines
/// along the 12 decomposition edges (1,2),(1,4),(1,5),(2,3),(2,6),(3,6),
/// (4,5),(4,7),(5,6),(5,7),(5,8),(7,9). Branch parameters are synthetic
/// (see DESIGN.md §2): the paper's experiments depend on this decomposition
/// structure, not on the AEP impedance set.
GeneratedCase ieee118_dse(std::uint64_t seed = 2012);

/// The paper's stated ongoing work (§VI): a WECC-style interconnection with
/// 37 balancing authorities ("This system has 37 balancing authorities.
/// State estimation needs to be run on each of these distributed sites in
/// real time"). 37 subsystems of realistic, uneven sizes (8–24 buses) on an
/// irregular western-interconnect-like topology; deterministic per seed.
GeneratedCase wecc37(std::uint64_t seed = 37);

/// Spec helper for scaling studies: `rows × cols` subsystems arranged in a
/// 2-D mesh (each subsystem tied to its grid neighbours), `buses_per`
/// buses each.
SyntheticSpec make_mesh_spec(int rows, int cols, int buses_per,
                             std::uint64_t seed = 7);

/// Spec helper: m subsystems on a ring with `chords` random long-range
/// decomposition edges.
SyntheticSpec make_ring_spec(int m, int buses_per, int chords,
                             std::uint64_t seed = 7);

/// Per-tier topology knobs for a hierarchical area-of-areas
/// interconnection: `regions` top-tier regions on a ring (plus long-range
/// interties), each containing `areas_per_region` areas (= subsystems) on
/// an intra-region ring with chords. Inter-region corridors run between
/// randomly chosen area pairs of adjacent regions and carry more tie
/// lines than intra-region edges.
struct HierarchicalSpec {
  int regions = 4;
  int areas_per_region = 8;
  /// Mean buses per area; each area is jittered to 70–130% of this.
  int buses_per_area = 300;
  /// Extra area-area decomposition edges inside each region beyond the ring.
  int intra_region_chords = 2;
  /// Area pairs tied per adjacent region pair (the inter-region corridors).
  int inter_region_edges = 3;
  /// Tie lines per intra-region decomposition edge.
  int tie_lines_intra = 2;
  /// Tie lines per inter-region corridor (heavier, EHV-style).
  int tie_lines_inter = 4;
  /// Intra-area meshing, as in SyntheticSpec::extra_edge_fraction.
  double extra_edge_fraction = 0.55;
  double load_mean_mw = 25.0;
  int buses_per_generator = 6;
  std::uint64_t seed = 42;
};

/// Compose a flat SyntheticSpec (with per-edge tie-line counts) from the
/// hierarchical knobs. Exposed so tests can inspect the composed topology.
SyntheticSpec make_hierarchical_spec(const HierarchicalSpec& h);

/// Generate the hierarchical interconnection; fills region_of_subsystem.
GeneratedCase generate_hierarchical(const HierarchicalSpec& h);

/// Scale-tier presets targeting ~10k / ~30k / ~100k buses. The exact
/// counts are deterministic per seed and pinned by the golden generator
/// tests; see docs/ARCHITECTURE.md for the knob values.
GeneratedCase interconnection10k(std::uint64_t seed = 10);
GeneratedCase interconnection30k(std::uint64_t seed = 30);
GeneratedCase interconnection100k(std::uint64_t seed = 100);

}  // namespace gridse::io
