#include "sparse/vector_ops.hpp"

#include <cmath>

#include "util/error.hpp"

namespace gridse::sparse {

double dot(std::span<const double> a, std::span<const double> b) {
  GRIDSE_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm_inf(std::span<const double> a) {
  double m = 0.0;
  for (const double v : a) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  GRIDSE_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) {
    v *= alpha;
  }
}

void copy(std::span<const double> x, std::span<double> y) {
  GRIDSE_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = x[i];
  }
}

void set_zero(std::span<double> x) {
  for (double& v : x) {
    v = 0.0;
  }
}

Vec subtract(std::span<const double> a, std::span<const double> b) {
  GRIDSE_CHECK(a.size() == b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
  }
  return out;
}

}  // namespace gridse::sparse
