#pragma once

#include <span>
#include <vector>

namespace gridse::sparse {

/// Dense vector type used by all solvers.
using Vec = std::vector<double>;

/// Euclidean dot product; sizes must match.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> a);

/// Infinity norm (max |a_i|).
double norm_inf(std::span<const double> a);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha
void scale(double alpha, std::span<double> x);

/// y = x
void copy(std::span<const double> x, std::span<double> y);

/// x = 0
void set_zero(std::span<double> x);

/// Elementwise subtraction: out = a - b.
Vec subtract(std::span<const double> a, std::span<const double> b);

}  // namespace gridse::sparse
