#include "sparse/normal_equations.hpp"

#include "util/error.hpp"

namespace gridse::sparse {

Csr normal_matrix(const Csr& h, std::span<const double> weights) {
  GRIDSE_CHECK(static_cast<Index>(weights.size()) == h.rows());
  // Outer-product accumulation: G = sum_k w_k h_kᵀ h_k over measurement rows.
  // Row sparsity of H is tiny (a handful of incident buses per measurement),
  // so the triplet count stays modest and from_triplets's duplicate folding
  // finishes the job.
  std::vector<Triplet<double>> triplets;
  const auto col = h.col_idx();
  const auto val = h.values();
  for (Index r = 0; r < h.rows(); ++r) {
    const auto [b, e] = h.row_range(r);
    const double w = weights[static_cast<std::size_t>(r)];
    for (Index i = b; i < e; ++i) {
      for (Index j = b; j < e; ++j) {
        triplets.push_back({col[static_cast<std::size_t>(i)],
                            col[static_cast<std::size_t>(j)],
                            w * val[static_cast<std::size_t>(i)] *
                                val[static_cast<std::size_t>(j)]});
      }
    }
  }
  return Csr::from_triplets(h.cols(), h.cols(), std::move(triplets));
}

std::vector<double> normal_rhs(const Csr& h, std::span<const double> weights,
                               std::span<const double> residual) {
  GRIDSE_CHECK(static_cast<Index>(weights.size()) == h.rows());
  GRIDSE_CHECK(static_cast<Index>(residual.size()) == h.rows());
  std::vector<double> weighted(residual.size());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    weighted[i] = weights[i] * residual[i];
  }
  std::vector<double> out(static_cast<std::size_t>(h.cols()));
  h.multiply_transpose(weighted, out);
  return out;
}

NormalAssembler NormalAssembler::analyze(const Csr& h) {
  NormalAssembler out;
  out.fp_ = fingerprint_pattern(h);
  out.dim_ = h.cols();

  // Pattern of G: the union of the outer products plus a full structural
  // diagonal (explicit zeros keep one pattern for regularized and plain
  // assemblies).
  std::vector<Triplet<double>> triplets;
  const auto col = h.col_idx();
  for (Index r = 0; r < h.rows(); ++r) {
    const auto [b, e] = h.row_range(r);
    for (Index i = b; i < e; ++i) {
      for (Index j = b; j < e; ++j) {
        triplets.push_back({col[static_cast<std::size_t>(i)],
                            col[static_cast<std::size_t>(j)], 0.0});
      }
    }
  }
  for (Index i = 0; i < out.dim_; ++i) {
    triplets.push_back({i, i, 0.0});
  }
  const Csr g = Csr::from_triplets(out.dim_, out.dim_, std::move(triplets));
  out.g_ptr_.assign(g.row_ptr().begin(), g.row_ptr().end());
  out.g_col_.assign(g.col_idx().begin(), g.col_idx().end());

  const auto slot_of = [&](Index gr, Index gc) {
    const Index b = out.g_ptr_[static_cast<std::size_t>(gr)];
    const Index e = out.g_ptr_[static_cast<std::size_t>(gr) + 1];
    const auto* first = out.g_col_.data() + b;
    const auto* last = out.g_col_.data() + e;
    const auto* it = std::lower_bound(first, last, gc);
    GRIDSE_CHECK(it != last && *it == gc);
    return static_cast<Index>(b + (it - first));
  };
  for (Index r = 0; r < h.rows(); ++r) {
    const auto [b, e] = h.row_range(r);
    for (Index i = b; i < e; ++i) {
      for (Index j = b; j < e; ++j) {
        out.target_.push_back(slot_of(col[static_cast<std::size_t>(i)],
                                      col[static_cast<std::size_t>(j)]));
      }
    }
  }
  out.diag_pos_.resize(static_cast<std::size_t>(out.dim_));
  for (Index i = 0; i < out.dim_; ++i) {
    out.diag_pos_[static_cast<std::size_t>(i)] = slot_of(i, i);
  }
  return out;
}

Csr NormalAssembler::assemble(const Csr& h, std::span<const double> weights,
                              double alpha) const {
  GRIDSE_CHECK(static_cast<Index>(weights.size()) == h.rows());
  GRIDSE_CHECK_MSG(h.cols() == dim_ &&
                       static_cast<std::uint64_t>(h.nnz()) == fp_.nnz,
                   "NormalAssembler: H does not match the analyzed pattern");
  std::vector<double> gvals(g_col_.size(), 0.0);
  const auto val = h.values();
  std::size_t t = 0;
  for (Index r = 0; r < h.rows(); ++r) {
    const auto [b, e] = h.row_range(r);
    const double w = weights[static_cast<std::size_t>(r)];
    for (Index i = b; i < e; ++i) {
      const double wi = w * val[static_cast<std::size_t>(i)];
      for (Index j = b; j < e; ++j) {
        gvals[static_cast<std::size_t>(target_[t++])] +=
            wi * val[static_cast<std::size_t>(j)];
      }
    }
  }
  if (alpha != 0.0) {
    for (const Index p : diag_pos_) {
      gvals[static_cast<std::size_t>(p)] += alpha;
    }
  }
  return Csr::from_parts(dim_, dim_, g_ptr_, g_col_, std::move(gvals));
}

Csr add_diagonal(const Csr& g, double alpha) {
  GRIDSE_CHECK(g.rows() == g.cols());
  std::vector<Triplet<double>> triplets;
  triplets.reserve(g.nnz() + static_cast<std::size_t>(g.rows()));
  const auto col = g.col_idx();
  const auto val = g.values();
  for (Index r = 0; r < g.rows(); ++r) {
    const auto [b, e] = g.row_range(r);
    for (Index k = b; k < e; ++k) {
      triplets.push_back({r, col[static_cast<std::size_t>(k)],
                          val[static_cast<std::size_t>(k)]});
    }
    triplets.push_back({r, r, alpha});
  }
  return Csr::from_triplets(g.rows(), g.cols(), std::move(triplets));
}

}  // namespace gridse::sparse
