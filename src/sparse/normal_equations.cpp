#include "sparse/normal_equations.hpp"

#include "util/error.hpp"

namespace gridse::sparse {

Csr normal_matrix(const Csr& h, std::span<const double> weights) {
  GRIDSE_CHECK(static_cast<Index>(weights.size()) == h.rows());
  // Outer-product accumulation: G = sum_k w_k h_kᵀ h_k over measurement rows.
  // Row sparsity of H is tiny (a handful of incident buses per measurement),
  // so the triplet count stays modest and from_triplets's duplicate folding
  // finishes the job.
  std::vector<Triplet<double>> triplets;
  const auto col = h.col_idx();
  const auto val = h.values();
  for (Index r = 0; r < h.rows(); ++r) {
    const auto [b, e] = h.row_range(r);
    const double w = weights[static_cast<std::size_t>(r)];
    for (Index i = b; i < e; ++i) {
      for (Index j = b; j < e; ++j) {
        triplets.push_back({col[static_cast<std::size_t>(i)],
                            col[static_cast<std::size_t>(j)],
                            w * val[static_cast<std::size_t>(i)] *
                                val[static_cast<std::size_t>(j)]});
      }
    }
  }
  return Csr::from_triplets(h.cols(), h.cols(), std::move(triplets));
}

std::vector<double> normal_rhs(const Csr& h, std::span<const double> weights,
                               std::span<const double> residual) {
  GRIDSE_CHECK(static_cast<Index>(weights.size()) == h.rows());
  GRIDSE_CHECK(static_cast<Index>(residual.size()) == h.rows());
  std::vector<double> weighted(residual.size());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    weighted[i] = weights[i] * residual[i];
  }
  std::vector<double> out(static_cast<std::size_t>(h.cols()));
  h.multiply_transpose(weighted, out);
  return out;
}

Csr add_diagonal(const Csr& g, double alpha) {
  GRIDSE_CHECK(g.rows() == g.cols());
  std::vector<Triplet<double>> triplets;
  triplets.reserve(g.nnz() + static_cast<std::size_t>(g.rows()));
  const auto col = g.col_idx();
  const auto val = g.values();
  for (Index r = 0; r < g.rows(); ++r) {
    const auto [b, e] = g.row_range(r);
    for (Index k = b; k < e; ++k) {
      triplets.push_back({r, col[static_cast<std::size_t>(k)],
                          val[static_cast<std::size_t>(k)]});
    }
    triplets.push_back({r, r, alpha});
  }
  return Csr::from_triplets(g.rows(), g.cols(), std::move(triplets));
}

}  // namespace gridse::sparse
