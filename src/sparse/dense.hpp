#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gridse::sparse {

/// Small dense row-major matrix. Reference implementation used by tests and
/// for tiny subsystem solves where sparse machinery is overkill.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<const double> data() const { return data_; }

  /// y = A x
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// C = A B
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

  [[nodiscard]] DenseMatrix transpose() const;

  /// In-place Cholesky factorization A = L Lᵀ (lower triangle overwritten).
  /// Throws `ConvergenceFailure` if A is not positive definite.
  void cholesky_in_place();

  /// Solve A x = b for SPD A via Cholesky (A untouched; returns x).
  [[nodiscard]] std::vector<double> solve_spd(std::span<const double> b) const;

  /// Solve A x = b for general square A via partial-pivoting LU.
  [[nodiscard]] std::vector<double> solve_lu(std::span<const double> b) const;

  /// Largest and smallest eigenvalue estimates of an SPD matrix by power
  /// iteration (on A and on A⁻¹ via solve); used to report condition numbers
  /// in the preconditioning ablation.
  [[nodiscard]] double condition_estimate_spd(int iterations = 60) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace gridse::sparse
