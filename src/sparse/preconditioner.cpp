#include "sparse/preconditioner.hpp"

#include <cmath>

#include "sparse/symbolic_plan.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace gridse::sparse {
namespace {

Csr lower_triangle(const Csr& a, bool include_diagonal) {
  GRIDSE_CHECK(a.rows() == a.cols());
  std::vector<Triplet<double>> t;
  const auto col = a.col_idx();
  const auto val = a.values();
  for (Index r = 0; r < a.rows(); ++r) {
    const auto [b, e] = a.row_range(r);
    for (Index k = b; k < e; ++k) {
      const Index c = col[static_cast<std::size_t>(k)];
      if (c < r || (include_diagonal && c == r)) {
        t.push_back({r, c, val[static_cast<std::size_t>(k)]});
      }
    }
  }
  return Csr::from_triplets(a.rows(), a.cols(), std::move(t));
}

}  // namespace

void IdentityPreconditioner::apply(std::span<const double> r,
                                   std::span<double> z) const {
  GRIDSE_CHECK(r.size() == z.size());
  std::copy(r.begin(), r.end(), z.begin());
}

JacobiPreconditioner::JacobiPreconditioner(const Csr& a) {
  GRIDSE_CHECK(a.rows() == a.cols());
  const auto d = a.diagonal();
  inv_diag_.resize(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    GRIDSE_CHECK_MSG(d[i] != 0.0, "Jacobi preconditioner: zero diagonal");
    inv_diag_[i] = 1.0 / d[i];
  }
}

void JacobiPreconditioner::apply(std::span<const double> r,
                                 std::span<double> z) const {
  GRIDSE_CHECK(r.size() == inv_diag_.size() && z.size() == inv_diag_.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    z[i] = r[i] * inv_diag_[i];
  }
}

SsorPreconditioner::SsorPreconditioner(const Csr& a, double omega)
    : lower_(lower_triangle(a, /*include_diagonal=*/false)),
      diag_(a.diagonal()),
      omega_(omega) {
  GRIDSE_CHECK_MSG(omega > 0.0 && omega < 2.0, "SSOR omega must be in (0,2)");
  for (const double d : diag_) {
    GRIDSE_CHECK_MSG(d > 0.0, "SSOR preconditioner: nonpositive diagonal");
  }
}

void SsorPreconditioner::apply(std::span<const double> r,
                               std::span<double> z) const {
  const std::size_t n = diag_.size();
  GRIDSE_CHECK(r.size() == n && z.size() == n);
  const auto col = lower_.col_idx();
  const auto val = lower_.values();
  // forward sweep: (D/ω + L) y = r
  for (std::size_t i = 0; i < n; ++i) {
    double s = r[i];
    const auto [b, e] = lower_.row_range(static_cast<Index>(i));
    for (Index k = b; k < e; ++k) {
      s -= val[static_cast<std::size_t>(k)] *
           z[static_cast<std::size_t>(col[static_cast<std::size_t>(k)])];
    }
    z[i] = s * omega_ / diag_[i];
  }
  // scaling by ((2-ω)/ω) D
  for (std::size_t i = 0; i < n; ++i) {
    z[i] *= diag_[i] * (2.0 - omega_) / omega_;
  }
  // backward sweep: (D/ω + Lᵀ) z = y, column-oriented over rows of L
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    z[i] *= omega_ / diag_[i];
    const auto [b, e] = lower_.row_range(static_cast<Index>(i));
    for (Index k = b; k < e; ++k) {
      z[static_cast<std::size_t>(col[static_cast<std::size_t>(k)])] -=
          val[static_cast<std::size_t>(k)] * z[i];
    }
  }
}

Ic0Preconditioner::Ic0Preconditioner(const Csr& a) {
  GRIDSE_CHECK(a.rows() == a.cols());
  l_ = lower_triangle(a, /*include_diagonal=*/true);
  base_vals_.assign(l_.values().begin(), l_.values().end());
  const auto diag = a.diagonal();
  double max_diag = 0.0;
  for (const double d : diag) max_diag = std::max(max_diag, std::abs(d));
  factorize_with_retries(max_diag);
}

Ic0Preconditioner::Ic0Preconditioner(const Csr& a, const SymbolicPlan& plan) {
  GRIDSE_CHECK(a.rows() == a.cols());
  GRIDSE_CHECK_MSG(a.rows() == plan.dim() &&
                       static_cast<std::uint64_t>(a.nnz()) ==
                           plan.fingerprint().nnz,
                   "IC(0): matrix does not match the symbolic plan");
  const auto lt_ptr = plan.lower_row_ptr();
  const auto lt_col = plan.lower_col_idx();
  const auto lt_map = plan.lower_value_map();
  const auto aval = a.values();
  base_vals_.resize(lt_col.size());
  double max_diag = 0.0;
  for (std::size_t p = 0; p < lt_col.size(); ++p) {
    base_vals_[p] = aval[static_cast<std::size_t>(lt_map[p])];
  }
  for (const double d : a.diagonal()) max_diag = std::max(max_diag, std::abs(d));
  l_ = Csr::from_parts(a.rows(), a.cols(),
                       std::vector<Index>(lt_ptr.begin(), lt_ptr.end()),
                       std::vector<Index>(lt_col.begin(), lt_col.end()),
                       base_vals_);
  factorize_with_retries(max_diag);
}

void Ic0Preconditioner::factorize_with_retries(double max_diag) {
  // Retry with a growing diagonal shift if a pivot breaks down; the shifted
  // factor is still an effective preconditioner.
  double shift = 0.0;
  for (int attempt = 0; attempt < 12; ++attempt) {
    if (try_factorize(shift)) {
      shift_ = shift;
      if (shift > 0.0) {
        GRIDSE_DEBUG << "IC(0): succeeded with diagonal shift " << shift;
      }
      return;
    }
    shift = (shift == 0.0) ? 1e-8 * max_diag : shift * 10.0;
  }
  throw ConvergenceFailure("IC(0) factorization failed even with large shift");
}

bool Ic0Preconditioner::try_factorize(double shift) {
  const auto col = l_.col_idx();
  auto val = l_.mutable_values();
  std::copy(base_vals_.begin(), base_vals_.end(), val.begin());
  const Index n = l_.rows();

  // diag_pos[i] = offset of L(i,i); the lower triangle of an SPD matrix
  // always stores the diagonal as the last entry of its row.
  std::vector<Index> diag_pos(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    const auto [b, e] = l_.row_range(i);
    GRIDSE_CHECK_MSG(e > b && col[static_cast<std::size_t>(e - 1)] == i,
                     "IC(0): missing structural diagonal");
    diag_pos[static_cast<std::size_t>(i)] = e - 1;
    val[static_cast<std::size_t>(e - 1)] += shift;
  }

  for (Index i = 0; i < n; ++i) {
    const auto [bi, ei] = l_.row_range(i);
    for (Index ki = bi; ki < ei; ++ki) {
      const Index j = col[static_cast<std::size_t>(ki)];
      // dot of row i and row j of L restricted to columns < j
      double s = val[static_cast<std::size_t>(ki)];
      const auto [bj, ej] = l_.row_range(j);
      Index pi = bi;
      Index pj = bj;
      while (pi < ki && pj < ej) {
        const Index ci = col[static_cast<std::size_t>(pi)];
        const Index cj = col[static_cast<std::size_t>(pj)];
        if (cj >= j) break;
        if (ci == cj) {
          s -= val[static_cast<std::size_t>(pi)] * val[static_cast<std::size_t>(pj)];
          ++pi;
          ++pj;
        } else if (ci < cj) {
          ++pi;
        } else {
          ++pj;
        }
      }
      if (j == i) {
        if (s <= 0.0) {
          return false;
        }
        val[static_cast<std::size_t>(ki)] = std::sqrt(s);
      } else {
        val[static_cast<std::size_t>(ki)] =
            s / val[static_cast<std::size_t>(diag_pos[static_cast<std::size_t>(j)])];
      }
    }
  }
  return true;
}

void Ic0Preconditioner::apply(std::span<const double> r,
                              std::span<double> z) const {
  const Index n = l_.rows();
  GRIDSE_CHECK(static_cast<Index>(r.size()) == n &&
               static_cast<Index>(z.size()) == n);
  const auto col = l_.col_idx();
  const auto val = l_.values();
  // forward solve L y = r (diagonal is the last entry of each row)
  for (Index i = 0; i < n; ++i) {
    double s = r[static_cast<std::size_t>(i)];
    const auto [b, e] = l_.row_range(i);
    for (Index k = b; k < e - 1; ++k) {
      s -= val[static_cast<std::size_t>(k)] *
           z[static_cast<std::size_t>(col[static_cast<std::size_t>(k)])];
    }
    z[static_cast<std::size_t>(i)] = s / val[static_cast<std::size_t>(e - 1)];
  }
  // backward solve Lᵀ z = y, column-oriented
  for (Index i = n - 1; i >= 0; --i) {
    const auto [b, e] = l_.row_range(i);
    z[static_cast<std::size_t>(i)] /= val[static_cast<std::size_t>(e - 1)];
    const double zi = z[static_cast<std::size_t>(i)];
    for (Index k = b; k < e - 1; ++k) {
      z[static_cast<std::size_t>(col[static_cast<std::size_t>(k)])] -=
          val[static_cast<std::size_t>(k)] * zi;
    }
  }
}

std::unique_ptr<Preconditioner> make_preconditioner(PreconditionerKind kind,
                                                    const Csr& a) {
  switch (kind) {
    case PreconditionerKind::kNone:
      return std::make_unique<IdentityPreconditioner>();
    case PreconditionerKind::kJacobi:
      return std::make_unique<JacobiPreconditioner>(a);
    case PreconditionerKind::kSsor:
      return std::make_unique<SsorPreconditioner>(a);
    case PreconditionerKind::kIc0:
      return std::make_unique<Ic0Preconditioner>(a);
  }
  throw InvalidInput("unknown preconditioner kind");
}

PreconditionerKind parse_preconditioner(const std::string& name) {
  if (name == "none") return PreconditionerKind::kNone;
  if (name == "jacobi") return PreconditionerKind::kJacobi;
  if (name == "ssor") return PreconditionerKind::kSsor;
  if (name == "ic0") return PreconditionerKind::kIc0;
  throw InvalidInput("unknown preconditioner name: " + name);
}

}  // namespace gridse::sparse
