#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace gridse::sparse {

/// Reverse Cuthill–McKee fill-reducing ordering of a symmetric sparsity
/// pattern. Returns perm such that perm[new_index] = old_index. Handles
/// disconnected patterns by restarting BFS per component. Fully
/// deterministic: equal-degree ties (component starts and BFS neighbour
/// order) are broken on the node index, so the permutation — and every
/// SymbolicPlan derived from it — is bit-identical across platforms.
std::vector<Index> reverse_cuthill_mckee(const Csr& a);

/// Symmetric permutation B = P A Pᵀ where perm[new] = old.
Csr permute_symmetric(const Csr& a, std::span<const Index> perm);

/// Inverse of a permutation vector.
std::vector<Index> invert_permutation(std::span<const Index> perm);

}  // namespace gridse::sparse
