#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace gridse::sparse {

/// Reverse Cuthill–McKee fill-reducing ordering of a symmetric sparsity
/// pattern. Returns perm such that perm[new_index] = old_index. Handles
/// disconnected patterns by restarting BFS per component.
std::vector<Index> reverse_cuthill_mckee(const Csr& a);

/// Symmetric permutation B = P A Pᵀ where perm[new] = old.
Csr permute_symmetric(const Csr& a, std::span<const Index> perm);

/// Inverse of a permutation vector.
std::vector<Index> invert_permutation(std::span<const Index> perm);

}  // namespace gridse::sparse
