#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace gridse::sparse {

/// Boundary condensation of a symmetric positive-definite system: with the
/// state positions split into boundary (B) and internal (I) blocks,
///
///   S      = G_BB − G_BI G_II⁻¹ G_IB        (the Schur complement)
///   rhs_S  = rhs_B − G_BI G_II⁻¹ rhs_I
///
/// S carries everything the rest of the interconnection needs to know about
/// this subsystem: solving S x_B = rhs_S yields exactly the boundary block
/// of the full solution, and diag(S⁻¹) is the marginal covariance of the
/// boundary variables. DSE Step 2 ships only this condensed boundary
/// information instead of boundary-plus-sensitive state records (arXiv
/// 2604.23175's boundary condensation; the B/I split is the partitioning of
/// arXiv 2104.04320).
struct SchurSystem {
  /// State positions condensed onto, ascending (copy of the input split).
  std::vector<Index> boundary;
  /// Dense |B|×|B| Schur complement.
  DenseMatrix s;
  /// Condensed right-hand side (empty when condense() got an empty rhs).
  std::vector<double> rhs;
};

/// Condense `g` onto `boundary_positions` (sorted, unique, in range).
/// `regularization` is added to G_II's diagonal before the interior solve so
/// weakly observed interiors stay factorable. `rhs` may be empty.
/// Throws ConvergenceFailure when the interior block cannot be factored.
[[nodiscard]] SchurSystem schur_condense(
    const Csr& g, std::span<const double> rhs,
    std::span<const Index> boundary_positions, double regularization = 0.0);

/// Marginal standard deviations sqrt(diag(S⁻¹)) of the condensed boundary
/// variables — the per-record confidence shipped with condensed pseudo
/// measurements. Throws ConvergenceFailure when S is not positive definite.
[[nodiscard]] std::vector<double> schur_marginal_sigmas(const SchurSystem& s);

}  // namespace gridse::sparse
