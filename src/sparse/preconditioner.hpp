#pragma once

#include <memory>
#include <span>
#include <string>

#include "sparse/csr.hpp"

namespace gridse::sparse {

/// Preconditioner interface for PCG: given a residual r, apply() computes
/// z = M⁻¹ r for the preconditioner matrix M ≈ A. Implementations are built
/// once per gain matrix and applied every iteration (paper §IV-C:
/// "pre-multiplying the inverse of a pre-conditioner matrix P").
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// z = M⁻¹ r. Sizes must equal the matrix dimension.
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;

  /// Human-readable name for reports ("jacobi", "ic0", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// M = I (plain CG).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(std::span<const double> r, std::span<double> z) const override;
  [[nodiscard]] std::string name() const override { return "none"; }
};

/// M = diag(A). Cheap and effective on diagonally dominant gain matrices.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const Csr& a);
  void apply(std::span<const double> r, std::span<double> z) const override;
  [[nodiscard]] std::string name() const override { return "jacobi"; }

 private:
  std::vector<double> inv_diag_;
};

/// Symmetric SOR preconditioner M = (D/ω + L) D⁻¹ (D/ω + L)ᵀ · ω/(2−ω),
/// applied via one forward and one backward triangular sweep.
class SsorPreconditioner final : public Preconditioner {
 public:
  SsorPreconditioner(const Csr& a, double omega = 1.0);
  void apply(std::span<const double> r, std::span<double> z) const override;
  [[nodiscard]] std::string name() const override { return "ssor"; }

 private:
  Csr lower_;  // strictly lower triangle of A, row-major
  std::vector<double> diag_;
  double omega_;
};

class SymbolicPlan;

/// Incomplete Cholesky with zero fill-in, IC(0): L has the sparsity pattern
/// of tril(A). The factorization shifts the diagonal and retries when a
/// pivot breaks down, so it is robust on barely-SPD Step-2 systems.
class Ic0Preconditioner final : public Preconditioner {
 public:
  explicit Ic0Preconditioner(const Csr& a);

  /// Pattern-reuse construction: the lower-triangle structure comes from a
  /// precomputed SymbolicPlan (one gather pass over a.values(), no triplet
  /// rebuild). Numerically identical to the plain constructor; this is the
  /// per-Gauss–Newton-iteration fast path on a fixed topology.
  Ic0Preconditioner(const Csr& a, const SymbolicPlan& plan);

  void apply(std::span<const double> r, std::span<double> z) const override;
  [[nodiscard]] std::string name() const override { return "ic0"; }

  /// Diagonal shift that was required for the factorization to complete
  /// (0 when A factored cleanly).
  [[nodiscard]] double shift() const { return shift_; }

 private:
  void factorize_with_retries(double max_diag);
  bool try_factorize(double shift);

  Csr l_;  // lower triangle including diagonal, row-major
  std::vector<double> base_vals_;  // pristine tril(A) values for retries
  double shift_ = 0.0;
};

enum class PreconditionerKind { kNone, kJacobi, kSsor, kIc0 };

/// Build the requested preconditioner for matrix `a`.
std::unique_ptr<Preconditioner> make_preconditioner(PreconditionerKind kind,
                                                    const Csr& a);

/// Parse "none" | "jacobi" | "ssor" | "ic0"; throws InvalidInput otherwise.
PreconditionerKind parse_preconditioner(const std::string& name);

}  // namespace gridse::sparse
