#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/symbolic_plan.hpp"

namespace gridse::sparse {

/// Batched sparse LDLᵀ over many independent systems ("lanes"): the factor
/// storage of every lane lives in one contiguous arena (indices, values, and
/// pivots each packed back-to-back), a single numeric sweep refactors all
/// lanes, and solves index into the shared arena. The lanes are the
/// per-subsystem normal equations a cluster hosts — heterogeneous patterns,
/// so each lane carries its own SymbolicPlan, but the sweep itself is one
/// tight allocation-free loop instead of one solver object per subsystem
/// (the SIMD-abstraction layout of arXiv 2604.23175 on CPU).
class BatchedLdlt {
 public:
  /// (Re)shape the arenas for these per-lane plans. Plans already installed
  /// at the same slot are kept in place (pointer comparison), so calling
  /// this every Gauss–Newton iteration with cached plans is free after the
  /// first pack.
  void set_lanes(std::vector<std::shared_ptr<const SymbolicPlan>> plans);

  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }
  [[nodiscard]] const SymbolicPlan& plan(std::size_t lane) const {
    return *lanes_[lane].plan;
  }

  /// One numeric sweep: refactor every lane whose entry in `mats` is
  /// non-null (null = lane inactive this sweep, its factor keeps the
  /// previous values). mats[i] must match lane i's plan pattern.
  void factorize(std::span<const Csr* const> mats);

  /// Refactor a single lane.
  void factorize_lane(std::size_t lane, const Csr& a);

  /// Solve lane i's system A x = b with its current factor.
  void solve_lane(std::size_t lane, std::span<const double> b,
                  std::span<double> x) const;

  /// Total factor entries across all lanes (arena size).
  [[nodiscard]] std::size_t factor_nnz() const { return lx_.size(); }

 private:
  struct Lane {
    std::shared_ptr<const SymbolicPlan> plan;
    std::size_t l_off = 0;  // offset into li_/lx_
    std::size_t d_off = 0;  // offset into d_
  };
  std::vector<Lane> lanes_;
  std::vector<Index> li_;
  std::vector<double> lx_;
  std::vector<double> d_;
  detail::LdltScratch scratch_;
  mutable std::vector<double> solve_work_;
};

}  // namespace gridse::sparse
