#pragma once

#include <span>
#include <string>

#include "sparse/csr.hpp"
#include "sparse/preconditioner.hpp"

namespace gridse::sparse {

/// Options for the (preconditioned) conjugate gradient solver.
struct CgOptions {
  /// Relative residual tolerance: stop when ‖b − Ax‖₂ ≤ tol · ‖b‖₂.
  double tolerance = 1e-10;
  /// Hard iteration cap; 0 means "dimension of the system".
  int max_iterations = 0;
};

/// Outcome of an iterative solve.
struct CgReport {
  bool converged = false;
  int iterations = 0;
  double relative_residual = 0.0;
};

/// Preconditioned conjugate gradient for SPD `a`. Solution is accumulated in
/// `x` (its incoming content is the initial guess). This is the solver the
/// paper's HPC state estimation uses for the gain-matrix system (§IV-C).
CgReport pcg(const Csr& a, std::span<const double> b, std::span<double> x,
             const Preconditioner& m, const CgOptions& options = {});

/// Plain CG (identity preconditioner).
CgReport cg(const Csr& a, std::span<const double> b, std::span<double> x,
            const CgOptions& options = {});

}  // namespace gridse::sparse
