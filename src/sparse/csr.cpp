// CsrMatrix is a header-only template; this translation unit forces the two
// instantiations the library uses so template errors surface at library build
// time rather than in every consumer.
#include "sparse/csr.hpp"

namespace gridse::sparse {

template class CsrMatrix<double>;
template class CsrMatrix<std::complex<double>>;

}  // namespace gridse::sparse
