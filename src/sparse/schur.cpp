#include "sparse/schur.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/ldlt.hpp"
#include "util/error.hpp"

namespace gridse::sparse {

SchurSystem schur_condense(const Csr& g, std::span<const double> rhs,
                           std::span<const Index> boundary_positions,
                           double regularization) {
  GRIDSE_CHECK(g.rows() == g.cols());
  const Index n = g.rows();
  GRIDSE_CHECK(rhs.empty() || static_cast<Index>(rhs.size()) == n);

  // block_of[k] = boundary slot, or -1 for internal; internal_of[k] = slot
  // in the internal block.
  std::vector<Index> block_of(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < boundary_positions.size(); ++i) {
    const Index p = boundary_positions[i];
    GRIDSE_CHECK_MSG(p >= 0 && p < n, "schur: boundary position out of range");
    GRIDSE_CHECK_MSG(i == 0 || boundary_positions[i - 1] < p,
                     "schur: boundary positions must be sorted and unique");
    block_of[static_cast<std::size_t>(p)] = static_cast<Index>(i);
  }
  const auto nb = static_cast<Index>(boundary_positions.size());
  std::vector<Index> internal_of(static_cast<std::size_t>(n), -1);
  std::vector<Index> internal_pos;
  for (Index k = 0; k < n; ++k) {
    if (block_of[static_cast<std::size_t>(k)] < 0) {
      internal_of[static_cast<std::size_t>(k)] =
          static_cast<Index>(internal_pos.size());
      internal_pos.push_back(k);
    }
  }
  const auto ni = static_cast<Index>(internal_pos.size());

  SchurSystem out;
  out.boundary.assign(boundary_positions.begin(), boundary_positions.end());
  out.s = DenseMatrix(static_cast<std::size_t>(nb), static_cast<std::size_t>(nb));

  // Split G into G_II (sparse), G_IB (dense columns), G_BB (dense).
  std::vector<Triplet<double>> gii;
  std::vector<std::vector<double>> gib(
      static_cast<std::size_t>(nb),
      std::vector<double>(static_cast<std::size_t>(ni), 0.0));
  const auto col = g.col_idx();
  const auto val = g.values();
  for (Index r = 0; r < n; ++r) {
    const Index rb = block_of[static_cast<std::size_t>(r)];
    const auto [b, e] = g.row_range(r);
    for (Index k = b; k < e; ++k) {
      const Index c = col[static_cast<std::size_t>(k)];
      const Index cb = block_of[static_cast<std::size_t>(c)];
      const double v = val[static_cast<std::size_t>(k)];
      if (rb < 0 && cb < 0) {
        gii.push_back({internal_of[static_cast<std::size_t>(r)],
                       internal_of[static_cast<std::size_t>(c)], v});
      } else if (rb >= 0 && cb >= 0) {
        out.s(static_cast<std::size_t>(rb), static_cast<std::size_t>(cb)) += v;
      } else if (rb >= 0) {  // boundary row, internal column: G_BI
        gib[static_cast<std::size_t>(rb)]
           [static_cast<std::size_t>(internal_of[static_cast<std::size_t>(c)])] =
               v;
      }
      // internal row, boundary column: G_IB = G_BIᵀ by symmetry, covered.
    }
  }
  if (ni == 0) {
    if (!rhs.empty()) {
      out.rhs.resize(static_cast<std::size_t>(nb));
      for (Index i = 0; i < nb; ++i) {
        out.rhs[static_cast<std::size_t>(i)] =
            rhs[static_cast<std::size_t>(out.boundary[static_cast<std::size_t>(i)])];
      }
    }
    return out;  // nothing to condense away
  }
  if (regularization > 0.0) {
    for (Index i = 0; i < ni; ++i) {
      gii.push_back({i, i, regularization});
    }
  }
  SparseLdlt ldlt;
  ldlt.factorize(Csr::from_triplets(ni, ni, std::move(gii)));

  // S -= G_BI G_II⁻¹ G_IB, one interior solve per boundary column; symmetry
  // of S lets each solve fill a full row of the update.
  for (Index j = 0; j < nb; ++j) {
    const std::vector<double> y = ldlt.solve(gib[static_cast<std::size_t>(j)]);
    for (Index i = 0; i < nb; ++i) {
      double dot = 0.0;
      const auto& gi = gib[static_cast<std::size_t>(i)];
      for (Index k = 0; k < ni; ++k) {
        dot += gi[static_cast<std::size_t>(k)] * y[static_cast<std::size_t>(k)];
      }
      out.s(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) -= dot;
    }
  }

  if (!rhs.empty()) {
    std::vector<double> rhs_i(static_cast<std::size_t>(ni));
    for (Index k = 0; k < ni; ++k) {
      rhs_i[static_cast<std::size_t>(k)] =
          rhs[static_cast<std::size_t>(internal_pos[static_cast<std::size_t>(k)])];
    }
    const std::vector<double> y = ldlt.solve(rhs_i);
    out.rhs.resize(static_cast<std::size_t>(nb));
    for (Index i = 0; i < nb; ++i) {
      double dot = 0.0;
      const auto& gi = gib[static_cast<std::size_t>(i)];
      for (Index k = 0; k < ni; ++k) {
        dot += gi[static_cast<std::size_t>(k)] * y[static_cast<std::size_t>(k)];
      }
      out.rhs[static_cast<std::size_t>(i)] =
          rhs[static_cast<std::size_t>(out.boundary[static_cast<std::size_t>(i)])] -
          dot;
    }
  }
  return out;
}

std::vector<double> schur_marginal_sigmas(const SchurSystem& s) {
  const std::size_t nb = s.boundary.size();
  std::vector<double> sigmas(nb, 0.0);
  if (nb == 0) {
    return sigmas;
  }
  // diag(S⁻¹) column by column; nb is small (a subsystem's boundary states),
  // so nb dense Cholesky solves are cheap.
  std::vector<double> e(nb, 0.0);
  for (std::size_t i = 0; i < nb; ++i) {
    e[i] = 1.0;
    const std::vector<double> x = s.s.solve_spd(e);
    e[i] = 0.0;
    sigmas[i] = std::sqrt(std::max(x[i], 0.0));
  }
  return sigmas;
}

}  // namespace gridse::sparse
