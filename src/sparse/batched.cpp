#include "sparse/batched.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace gridse::sparse {

void BatchedLdlt::set_lanes(
    std::vector<std::shared_ptr<const SymbolicPlan>> plans) {
  bool same = plans.size() == lanes_.size();
  for (std::size_t i = 0; same && i < plans.size(); ++i) {
    same = plans[i] == lanes_[i].plan;
  }
  if (same) {
    return;  // cached plans, arenas already packed
  }
  lanes_.clear();
  lanes_.reserve(plans.size());
  std::size_t l_total = 0;
  std::size_t d_total = 0;
  Index max_n = 0;
  for (auto& plan : plans) {
    GRIDSE_CHECK(plan != nullptr);
    Lane lane;
    lane.l_off = l_total;
    lane.d_off = d_total;
    l_total += plan->factor_nnz();
    d_total += static_cast<std::size_t>(plan->dim());
    max_n = std::max(max_n, plan->dim());
    lane.plan = std::move(plan);
    lanes_.push_back(std::move(lane));
  }
  li_.assign(l_total, 0);
  lx_.assign(l_total, 0.0);
  d_.assign(d_total, 0.0);
  solve_work_.assign(static_cast<std::size_t>(max_n), 0.0);
  scratch_.resize(max_n);
}

void BatchedLdlt::factorize(std::span<const Csr* const> mats) {
  GRIDSE_CHECK(mats.size() == lanes_.size());
  for (std::size_t i = 0; i < mats.size(); ++i) {
    if (mats[i] == nullptr) continue;  // lane inactive this sweep
    factorize_lane(i, *mats[i]);
  }
}

void BatchedLdlt::factorize_lane(std::size_t lane, const Csr& a) {
  GRIDSE_CHECK(lane < lanes_.size());
  const Lane& l = lanes_[lane];
  const std::size_t nnz = l.plan->factor_nnz();
  const auto n = static_cast<std::size_t>(l.plan->dim());
  detail::ldlt_numeric(*l.plan, a, std::span<Index>(li_.data() + l.l_off, nnz),
                       std::span<double>(lx_.data() + l.l_off, nnz),
                       std::span<double>(d_.data() + l.d_off, n), scratch_);
}

void BatchedLdlt::solve_lane(std::size_t lane, std::span<const double> b,
                             std::span<double> x) const {
  GRIDSE_CHECK(lane < lanes_.size());
  const Lane& l = lanes_[lane];
  const std::size_t nnz = l.plan->factor_nnz();
  const auto n = static_cast<std::size_t>(l.plan->dim());
  detail::ldlt_solve(
      *l.plan, std::span<const Index>(li_.data() + l.l_off, nnz),
      std::span<const double>(lx_.data() + l.l_off, nnz),
      std::span<const double>(d_.data() + l.d_off, n), b, x,
      std::span<double>(solve_work_.data(), n));
}

}  // namespace gridse::sparse
