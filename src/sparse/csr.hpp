#pragma once

#include <algorithm>
#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace gridse::sparse {

/// Index type used by all sparse structures.
using Index = std::int32_t;

/// One (row, col, value) entry during matrix assembly.
template <typename T>
struct Triplet {
  Index row;
  Index col;
  T value;
};

/// Compressed-sparse-row matrix over `T` (double for real systems,
/// std::complex<double> for the bus admittance matrix). Immutable after
/// construction; assembly goes through `from_triplets` which sorts and sums
/// duplicate entries.
template <typename T>
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from triplets. Duplicates (same row and col) are summed, which is
  /// exactly the accumulation semantics Ybus/Jacobian assembly needs.
  static CsrMatrix from_triplets(Index rows, Index cols,
                                 std::vector<Triplet<T>> triplets) {
    GRIDSE_CHECK(rows >= 0 && cols >= 0);
    for (const auto& t : triplets) {
      GRIDSE_CHECK_MSG(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
                       "triplet index out of range");
    }
    std::sort(triplets.begin(), triplets.end(),
              [](const Triplet<T>& a, const Triplet<T>& b) {
                return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    CsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
    for (std::size_t i = 0; i < triplets.size();) {
      std::size_t j = i;
      T sum{};
      while (j < triplets.size() && triplets[j].row == triplets[i].row &&
             triplets[j].col == triplets[i].col) {
        sum += triplets[j].value;
        ++j;
      }
      m.col_idx_.push_back(triplets[i].col);
      m.values_.push_back(sum);
      ++m.row_ptr_[static_cast<std::size_t>(triplets[i].row) + 1];
      i = j;
    }
    for (Index r = 0; r < rows; ++r) {
      m.row_ptr_[static_cast<std::size_t>(r) + 1] +=
          m.row_ptr_[static_cast<std::size_t>(r)];
    }
    return m;
  }

  /// Adopt prebuilt CSR arrays. Rows must be column-sorted with no duplicate
  /// entries — the invariant from_triplets establishes. Plan-driven assembly
  /// paths (SymbolicPlan gather maps, NormalAssembler) use this to skip the
  /// triplet sort on every numeric refactorization.
  static CsrMatrix from_parts(Index rows, Index cols,
                              std::vector<Index> row_ptr,
                              std::vector<Index> col_idx,
                              std::vector<T> values) {
    GRIDSE_CHECK(rows >= 0 && cols >= 0);
    GRIDSE_CHECK(row_ptr.size() == static_cast<std::size_t>(rows) + 1);
    GRIDSE_CHECK(col_idx.size() == values.size());
    GRIDSE_CHECK(!row_ptr.empty() && row_ptr.front() == 0 &&
                 row_ptr.back() == static_cast<Index>(col_idx.size()));
    CsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.row_ptr_ = std::move(row_ptr);
    m.col_idx_ = std::move(col_idx);
    m.values_ = std::move(values);
    return m;
  }

  /// Identity matrix of size n.
  static CsrMatrix identity(Index n) {
    std::vector<Triplet<T>> t;
    t.reserve(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) {
      t.push_back({i, i, T{1}});
    }
    return from_triplets(n, n, std::move(t));
  }

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  [[nodiscard]] std::span<const Index> row_ptr() const { return row_ptr_; }
  [[nodiscard]] std::span<const Index> col_idx() const { return col_idx_; }
  [[nodiscard]] std::span<const T> values() const { return values_; }
  [[nodiscard]] std::span<T> mutable_values() { return values_; }

  /// Begin/end offsets of row r inside col_idx()/values().
  [[nodiscard]] std::pair<Index, Index> row_range(Index r) const {
    return {row_ptr_[static_cast<std::size_t>(r)],
            row_ptr_[static_cast<std::size_t>(r) + 1]};
  }

  /// Value at (r, c), or T{} when the entry is structurally absent.
  [[nodiscard]] T value_at(Index r, Index c) const {
    const auto [b, e] = row_range(r);
    const auto* first = col_idx_.data() + b;
    const auto* last = col_idx_.data() + e;
    const auto* it = std::lower_bound(first, last, c);
    if (it != last && *it == c) {
      return values_[static_cast<std::size_t>(b + (it - first))];
    }
    return T{};
  }

  /// y = A x
  void multiply(std::span<const T> x, std::span<T> y) const {
    GRIDSE_CHECK(static_cast<Index>(x.size()) == cols_ &&
                 static_cast<Index>(y.size()) == rows_);
    for (Index r = 0; r < rows_; ++r) {
      T acc{};
      const auto [b, e] = row_range(r);
      for (Index k = b; k < e; ++k) {
        acc += values_[static_cast<std::size_t>(k)] *
               x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
      }
      y[static_cast<std::size_t>(r)] = acc;
    }
  }

  /// y = Aᵀ x
  void multiply_transpose(std::span<const T> x, std::span<T> y) const {
    GRIDSE_CHECK(static_cast<Index>(x.size()) == rows_ &&
                 static_cast<Index>(y.size()) == cols_);
    std::fill(y.begin(), y.end(), T{});
    for (Index r = 0; r < rows_; ++r) {
      const auto [b, e] = row_range(r);
      const T xr = x[static_cast<std::size_t>(r)];
      for (Index k = b; k < e; ++k) {
        y[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] +=
            values_[static_cast<std::size_t>(k)] * xr;
      }
    }
  }

  /// Explicit transpose.
  [[nodiscard]] CsrMatrix transpose() const {
    std::vector<Triplet<T>> t;
    t.reserve(nnz());
    for (Index r = 0; r < rows_; ++r) {
      const auto [b, e] = row_range(r);
      for (Index k = b; k < e; ++k) {
        t.push_back({col_idx_[static_cast<std::size_t>(k)], r,
                     values_[static_cast<std::size_t>(k)]});
      }
    }
    return from_triplets(cols_, rows_, std::move(t));
  }

  /// Main diagonal (zero where structurally absent).
  [[nodiscard]] std::vector<T> diagonal() const {
    const Index n = std::min(rows_, cols_);
    std::vector<T> d(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) {
      d[static_cast<std::size_t>(i)] = value_at(i, i);
    }
    return d;
  }

  /// Dense row-major copy; for tests and tiny reference solves only.
  [[nodiscard]] std::vector<T> to_dense() const {
    std::vector<T> d(static_cast<std::size_t>(rows_) *
                     static_cast<std::size_t>(cols_));
    for (Index r = 0; r < rows_; ++r) {
      const auto [b, e] = row_range(r);
      for (Index k = b; k < e; ++k) {
        d[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
          static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] =
            values_[static_cast<std::size_t>(k)];
      }
    }
    return d;
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> row_ptr_{0};
  std::vector<Index> col_idx_;
  std::vector<T> values_;
};

using Csr = CsrMatrix<double>;
using CsrComplex = CsrMatrix<std::complex<double>>;

}  // namespace gridse::sparse
