#pragma once

#include <span>

#include "sparse/csr.hpp"
#include "sparse/symbolic_plan.hpp"

namespace gridse::sparse {

/// Gain-matrix assembly for weighted least squares: G = Hᵀ W H where W is
/// diagonal (measurement weights). G is the symmetric positive-definite
/// matrix the paper's PCG solver targets (§IV-C, "Ax = b where the matrix A
/// is the symmetric positive-definite gain matrix").
Csr normal_matrix(const Csr& h, std::span<const double> weights);

/// Right-hand side of the normal equations: g = Hᵀ W r.
std::vector<double> normal_rhs(const Csr& h, std::span<const double> weights,
                               std::span<const double> residual);

/// G' = G + alpha I. Used to regularize Step-2 re-evaluation systems where
/// pseudo-measurements may leave near-unobservable corners.
Csr add_diagonal(const Csr& g, double alpha);

/// Symbolic reuse for the gain assembly: the pattern of G = Hᵀ W H is fixed
/// by the pattern of H (measurement structure), so the per-entry target
/// offsets of the outer-product accumulation can be computed once and the
/// numeric assembly becomes a single scatter pass — no triplets, no sort.
/// This is the dominant per-iteration cost normal_matrix pays on every
/// Gauss–Newton step of an unchanged topology.
///
/// The assembled G always carries a structural diagonal (explicit zeros
/// where H leaves a column untouched), so `alpha`-regularized and plain
/// assemblies share one pattern.
class NormalAssembler {
 public:
  [[nodiscard]] static NormalAssembler analyze(const Csr& h);

  /// Fingerprint of the H pattern this assembler was analyzed on.
  [[nodiscard]] const PatternFingerprint& fingerprint() const { return fp_; }
  [[nodiscard]] bool matches(const Csr& h) const {
    return fingerprint_pattern(h) == fp_;
  }

  /// G = Hᵀ W H + alpha I. `h` must match the analyzed pattern (cheap
  /// size/nnz checks applied).
  [[nodiscard]] Csr assemble(const Csr& h, std::span<const double> weights,
                             double alpha = 0.0) const;

 private:
  PatternFingerprint fp_;
  Index dim_ = 0;
  std::vector<Index> g_ptr_;
  std::vector<Index> g_col_;
  /// Value slot in G for each (row, i, j) pair of the outer-product loop,
  /// in iteration order.
  std::vector<Index> target_;
  /// Value slot of G(i, i) for each state i (for the alpha term).
  std::vector<Index> diag_pos_;
};

}  // namespace gridse::sparse
