#pragma once

#include <span>

#include "sparse/csr.hpp"

namespace gridse::sparse {

/// Gain-matrix assembly for weighted least squares: G = Hᵀ W H where W is
/// diagonal (measurement weights). G is the symmetric positive-definite
/// matrix the paper's PCG solver targets (§IV-C, "Ax = b where the matrix A
/// is the symmetric positive-definite gain matrix").
Csr normal_matrix(const Csr& h, std::span<const double> weights);

/// Right-hand side of the normal equations: g = Hᵀ W r.
std::vector<double> normal_rhs(const Csr& h, std::span<const double> weights,
                               std::span<const double> residual);

/// G' = G + alpha I. Used to regularize Step-2 re-evaluation systems where
/// pseudo-measurements may leave near-unobservable corners.
Csr add_diagonal(const Csr& g, double alpha);

}  // namespace gridse::sparse
