#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/symbolic_plan.hpp"

namespace gridse::sparse {

/// Sparse simplicial LDLᵀ factorization of a symmetric matrix (up-looking,
/// elimination-tree based). Serves as the direct-solver baseline against the
/// paper's PCG in the solver ablation, and as the robust fallback for small
/// subsystem gain matrices.
class SparseLdlt {
 public:
  /// Factor `a` (must be structurally and numerically symmetric). When
  /// `use_rcm` is set, a reverse Cuthill–McKee permutation is applied first
  /// to reduce fill. Throws `ConvergenceFailure` on a zero pivot.
  void factorize(const Csr& a, bool use_rcm = true);

  /// Numeric-only refactorization over a precomputed SymbolicPlan: ordering,
  /// permutation, and symbolic analysis are skipped entirely, and the factor
  /// buffers are reused across calls. The plan must have been analyzed on a
  /// matrix with `a`'s sparsity pattern (cheap size/nnz checks are applied;
  /// full fingerprint validation is the caller's — typically a
  /// SolverCache's — job). This is the hot path of repeated Gauss–Newton
  /// iterations on a fixed topology.
  void factorize(const Csr& a, std::shared_ptr<const SymbolicPlan> plan);

  /// Solve A x = b with the current factorization.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  [[nodiscard]] bool factored() const { return n_ > 0; }
  [[nodiscard]] std::size_t factor_nnz() const { return lx_.size(); }

 private:
  Index n_ = 0;
  // L in compressed-sparse-column form, unit diagonal implicit.
  std::vector<Index> lp_;
  std::vector<Index> li_;
  std::vector<double> lx_;
  std::vector<double> d_;
  std::vector<Index> perm_;      // perm_[new] = old (identity when RCM off)
  std::vector<Index> perm_inv_;  // perm_inv_[old] = new
  // Plan-driven mode: pattern/permutation live in the shared plan and the
  // members above (except li_/lx_/d_) stay empty.
  std::shared_ptr<const SymbolicPlan> plan_;
  detail::LdltScratch scratch_;
};

}  // namespace gridse::sparse
