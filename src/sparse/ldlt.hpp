#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace gridse::sparse {

/// Sparse simplicial LDLᵀ factorization of a symmetric matrix (up-looking,
/// elimination-tree based). Serves as the direct-solver baseline against the
/// paper's PCG in the solver ablation, and as the robust fallback for small
/// subsystem gain matrices.
class SparseLdlt {
 public:
  /// Factor `a` (must be structurally and numerically symmetric). When
  /// `use_rcm` is set, a reverse Cuthill–McKee permutation is applied first
  /// to reduce fill. Throws `ConvergenceFailure` on a zero pivot.
  void factorize(const Csr& a, bool use_rcm = true);

  /// Solve A x = b with the current factorization.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  [[nodiscard]] bool factored() const { return n_ > 0; }
  [[nodiscard]] std::size_t factor_nnz() const { return lx_.size(); }

 private:
  Index n_ = 0;
  // L in compressed-sparse-column form, unit diagonal implicit.
  std::vector<Index> lp_;
  std::vector<Index> li_;
  std::vector<double> lx_;
  std::vector<double> d_;
  std::vector<Index> perm_;      // perm_[new] = old (identity when RCM off)
  std::vector<Index> perm_inv_;  // perm_inv_[old] = new
};

}  // namespace gridse::sparse
