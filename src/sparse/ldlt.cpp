#include "sparse/ldlt.hpp"

#include <numeric>

#include "sparse/ordering.hpp"
#include "util/error.hpp"

namespace gridse::sparse {

void SparseLdlt::factorize(const Csr& a,
                           std::shared_ptr<const SymbolicPlan> plan) {
  GRIDSE_CHECK(plan != nullptr);
  GRIDSE_CHECK_MSG(a.rows() == plan->dim() &&
                       static_cast<std::uint64_t>(a.nnz()) ==
                           plan->fingerprint().nnz,
                   "SparseLdlt: matrix does not match the symbolic plan");
  n_ = plan->dim();
  plan_ = std::move(plan);
  lp_.clear();
  perm_.clear();
  perm_inv_.clear();
  li_.resize(plan_->factor_nnz());
  lx_.resize(plan_->factor_nnz());
  d_.resize(static_cast<std::size_t>(n_));
  detail::ldlt_numeric(*plan_, a, li_, lx_, d_, scratch_);
}

void SparseLdlt::factorize(const Csr& a_in, bool use_rcm) {
  GRIDSE_CHECK(a_in.rows() == a_in.cols());
  const Index n = a_in.rows();
  n_ = n;
  plan_.reset();

  if (use_rcm) {
    perm_ = reverse_cuthill_mckee(a_in);
  } else {
    perm_.resize(static_cast<std::size_t>(n));
    std::iota(perm_.begin(), perm_.end(), 0);
  }
  perm_inv_ = invert_permutation(perm_);
  const Csr a = use_rcm ? permute_symmetric(a_in, perm_) : a_in;

  const auto col = a.col_idx();
  const auto val = a.values();

  // --- symbolic: elimination tree and per-column counts -------------------
  // For a symmetric matrix, the CSR row k restricted to columns < k is the
  // strict upper part of column k, which is what the up-looking algorithm
  // consumes.
  std::vector<Index> parent(static_cast<std::size_t>(n), -1);
  std::vector<Index> lnz(static_cast<std::size_t>(n), 0);
  std::vector<Index> flag(static_cast<std::size_t>(n), -1);
  for (Index k = 0; k < n; ++k) {
    parent[static_cast<std::size_t>(k)] = -1;
    flag[static_cast<std::size_t>(k)] = k;
    const auto [b, e] = a.row_range(k);
    for (Index p = b; p < e; ++p) {
      Index i = col[static_cast<std::size_t>(p)];
      if (i >= k) break;  // row is column-sorted; rest is diagonal/upper
      for (; flag[static_cast<std::size_t>(i)] != k;
           i = parent[static_cast<std::size_t>(i)]) {
        if (parent[static_cast<std::size_t>(i)] == -1) {
          parent[static_cast<std::size_t>(i)] = k;
        }
        ++lnz[static_cast<std::size_t>(i)];
        flag[static_cast<std::size_t>(i)] = k;
      }
    }
  }

  lp_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (Index k = 0; k < n; ++k) {
    lp_[static_cast<std::size_t>(k) + 1] =
        lp_[static_cast<std::size_t>(k)] + lnz[static_cast<std::size_t>(k)];
  }
  li_.assign(static_cast<std::size_t>(lp_[static_cast<std::size_t>(n)]), 0);
  lx_.assign(li_.size(), 0.0);
  d_.assign(static_cast<std::size_t>(n), 0.0);

  // --- numeric -------------------------------------------------------------
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  std::vector<Index> pattern(static_cast<std::size_t>(n));
  std::vector<Index> next_free(static_cast<std::size_t>(n));
  std::fill(lnz.begin(), lnz.end(), 0);

  for (Index k = 0; k < n; ++k) {
    Index top = n;
    flag[static_cast<std::size_t>(k)] = k;
    const auto [b, e] = a.row_range(k);
    double akk = 0.0;
    for (Index p = b; p < e; ++p) {
      const Index i = col[static_cast<std::size_t>(p)];
      if (i > k) break;
      if (i == k) {
        akk = val[static_cast<std::size_t>(p)];
        continue;
      }
      y[static_cast<std::size_t>(i)] += val[static_cast<std::size_t>(p)];
      Index len = 0;
      Index node = i;
      for (; flag[static_cast<std::size_t>(node)] != k;
           node = parent[static_cast<std::size_t>(node)]) {
        pattern[static_cast<std::size_t>(len++)] = node;
        flag[static_cast<std::size_t>(node)] = k;
      }
      while (len > 0) {
        pattern[static_cast<std::size_t>(--top)] =
            pattern[static_cast<std::size_t>(--len)];
      }
    }
    d_[static_cast<std::size_t>(k)] = akk;
    for (Index t = top; t < n; ++t) {
      const Index i = pattern[static_cast<std::size_t>(t)];
      const double yi = y[static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(i)] = 0.0;
      const Index pb = lp_[static_cast<std::size_t>(i)];
      const Index pe = pb + lnz[static_cast<std::size_t>(i)];
      for (Index p = pb; p < pe; ++p) {
        y[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] -=
            lx_[static_cast<std::size_t>(p)] * yi;
      }
      const double lki = yi / d_[static_cast<std::size_t>(i)];
      d_[static_cast<std::size_t>(k)] -= lki * yi;
      li_[static_cast<std::size_t>(pe)] = k;
      lx_[static_cast<std::size_t>(pe)] = lki;
      ++lnz[static_cast<std::size_t>(i)];
    }
    if (d_[static_cast<std::size_t>(k)] == 0.0) {
      throw ConvergenceFailure("sparse LDLt: zero pivot at column " +
                               std::to_string(k));
    }
    (void)next_free;
  }
}

std::vector<double> SparseLdlt::solve(std::span<const double> b) const {
  GRIDSE_CHECK_MSG(factored(), "SparseLdlt::solve before factorize");
  GRIDSE_CHECK(static_cast<Index>(b.size()) == n_);
  if (plan_ != nullptr) {
    std::vector<double> out(static_cast<std::size_t>(n_));
    std::vector<double> work(static_cast<std::size_t>(n_));
    detail::ldlt_solve(*plan_, li_, lx_, d_, b, out, work);
    return out;
  }
  const auto n = static_cast<std::size_t>(n_);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = b[static_cast<std::size_t>(perm_[i])];
  }
  // forward: L y = Pb
  for (Index j = 0; j < n_; ++j) {
    const double xj = x[static_cast<std::size_t>(j)];
    for (Index p = lp_[static_cast<std::size_t>(j)];
         p < lp_[static_cast<std::size_t>(j) + 1]; ++p) {
      x[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] -=
          lx_[static_cast<std::size_t>(p)] * xj;
    }
  }
  // diagonal
  for (std::size_t i = 0; i < n; ++i) {
    x[i] /= d_[i];
  }
  // backward: Lᵀ z = y
  for (Index j = n_ - 1; j >= 0; --j) {
    double xj = x[static_cast<std::size_t>(j)];
    for (Index p = lp_[static_cast<std::size_t>(j)];
         p < lp_[static_cast<std::size_t>(j) + 1]; ++p) {
      xj -= lx_[static_cast<std::size_t>(p)] *
            x[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])];
    }
    x[static_cast<std::size_t>(j)] = xj;
  }
  // un-permute
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(perm_[i])] = x[i];
  }
  return out;
}

}  // namespace gridse::sparse
