#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace gridse::sparse {

/// Cheap structural identity of a sparse matrix: dimensions, entry count,
/// and an FNV-1a hash over row_ptr/col_idx. Two matrices with equal
/// fingerprints share a sparsity pattern for every practical purpose, so a
/// SymbolicPlan keyed on the fingerprint can be revalidated in O(1) per
/// solve instead of re-walking the pattern.
struct PatternFingerprint {
  Index n = 0;
  Index cols = 0;
  std::uint64_t nnz = 0;
  std::uint64_t hash = 0;

  friend bool operator==(const PatternFingerprint& a,
                         const PatternFingerprint& b) {
    return a.n == b.n && a.cols == b.cols && a.nnz == b.nnz &&
           a.hash == b.hash;
  }
  friend bool operator!=(const PatternFingerprint& a,
                         const PatternFingerprint& b) {
    return !(a == b);
  }
};

template <typename T>
PatternFingerprint fingerprint_pattern(const CsrMatrix<T>& a) {
  constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h = kOffset;
  const auto mix = [&](Index v) {
    auto u = static_cast<std::uint32_t>(v);
    for (int b = 0; b < 4; ++b) {
      h ^= (u >> (8 * b)) & 0xffU;
      h *= kPrime;
    }
  };
  for (const Index v : a.row_ptr()) mix(v);
  for (const Index v : a.col_idx()) mix(v);
  return {a.rows(), a.cols(), static_cast<std::uint64_t>(a.nnz()), h};
}

/// Everything about factoring a fixed sparsity pattern that does not depend
/// on the numeric values: the fill-reducing ordering, the symmetrically
/// permuted pattern with a gather map back into the source value array, the
/// elimination tree and LDLᵀ column pointers, and the (unpermuted) lower
/// triangle pattern IC(0) factors on. Computed once per (subsystem,
/// topology) and reused across Gauss–Newton iterations and DSE cycles; the
/// fingerprint is the invalidation token — a topology change alters the
/// gain pattern, the fingerprint stops matching, and the plan is rebuilt.
class SymbolicPlan {
 public:
  /// Analyze the pattern of symmetric matrix `a`. With `use_ordering` a
  /// reverse Cuthill–McKee permutation is computed first; without it the
  /// permutation is the identity (the IC(0)/PCG path needs no reordering).
  [[nodiscard]] static SymbolicPlan analyze(const Csr& a,
                                            bool use_ordering = true);

  [[nodiscard]] const PatternFingerprint& fingerprint() const { return fp_; }
  [[nodiscard]] bool ordered() const { return ordered_; }
  [[nodiscard]] Index dim() const { return fp_.n; }

  /// True iff `a` has the pattern this plan was analyzed on.
  [[nodiscard]] bool matches(const Csr& a) const {
    return fingerprint_pattern(a) == fp_;
  }

  // --- LDLᵀ facet (permuted pattern) ----------------------------------------
  [[nodiscard]] std::span<const Index> perm() const { return perm_; }
  [[nodiscard]] std::span<const Index> perm_inv() const { return perm_inv_; }
  /// CSR structure of B = P A Pᵀ (rows column-sorted).
  [[nodiscard]] std::span<const Index> permuted_row_ptr() const {
    return ap_ptr_;
  }
  [[nodiscard]] std::span<const Index> permuted_col_idx() const {
    return ap_col_;
  }
  /// value_map()[p] is the offset in a.values() holding B's p-th entry, so a
  /// numeric refactorization gathers values without rebuilding triplets.
  [[nodiscard]] std::span<const Index> value_map() const { return ap_map_; }
  /// Elimination tree over the permuted pattern (-1 = root).
  [[nodiscard]] std::span<const Index> etree() const { return parent_; }
  /// Column pointers of the LDLᵀ factor L (strict lower, CSC).
  [[nodiscard]] std::span<const Index> l_col_ptr() const { return lp_; }
  [[nodiscard]] std::size_t factor_nnz() const {
    return lp_.empty() ? 0 : static_cast<std::size_t>(lp_.back());
  }

  // --- IC(0) facet (unpermuted lower triangle) ------------------------------
  /// CSR structure of tril(A) including the diagonal.
  [[nodiscard]] std::span<const Index> lower_row_ptr() const {
    return lt_ptr_;
  }
  [[nodiscard]] std::span<const Index> lower_col_idx() const {
    return lt_col_;
  }
  /// lower_value_map()[p] is the offset in a.values() of the p-th tril entry.
  [[nodiscard]] std::span<const Index> lower_value_map() const {
    return lt_map_;
  }

 private:
  PatternFingerprint fp_;
  bool ordered_ = true;
  std::vector<Index> perm_;      // perm_[new] = old
  std::vector<Index> perm_inv_;  // perm_inv_[old] = new
  std::vector<Index> ap_ptr_;
  std::vector<Index> ap_col_;
  std::vector<Index> ap_map_;
  std::vector<Index> parent_;
  std::vector<Index> lp_;
  std::vector<Index> lt_ptr_;
  std::vector<Index> lt_col_;
  std::vector<Index> lt_map_;
};

namespace detail {

/// Scratch arrays for the plan-driven numeric LDLᵀ kernel, reusable across
/// factorizations (and shared by all lanes of a BatchedLdlt sweep).
struct LdltScratch {
  std::vector<double> y;
  std::vector<Index> pattern;
  std::vector<Index> flag;
  std::vector<Index> lnz;

  void resize(Index n);
};

/// Numeric up-looking LDLᵀ over a precomputed SymbolicPlan: gathers the
/// permuted values of `a` through the plan's value map and fills `li`, `lx`
/// (sized plan.factor_nnz()) and `d` (sized plan.dim()). No allocation.
/// Throws ConvergenceFailure on a zero pivot.
void ldlt_numeric(const SymbolicPlan& plan, const Csr& a, std::span<Index> li,
                  std::span<double> lx, std::span<double> d,
                  LdltScratch& scratch);

/// Solve A x = b with a factor produced by ldlt_numeric. `work` must have
/// plan.dim() doubles; b and x may not alias work.
void ldlt_solve(const SymbolicPlan& plan, std::span<const Index> li,
                std::span<const double> lx, std::span<const double> d,
                std::span<const double> b, std::span<double> x,
                std::span<double> work);

}  // namespace detail

}  // namespace gridse::sparse
