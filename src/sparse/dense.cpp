#include "sparse/dense.hpp"

#include <cmath>

#include "sparse/vector_ops.hpp"
#include "util/error.hpp"

namespace gridse::sparse {

void DenseMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  GRIDSE_CHECK(x.size() == cols_ && y.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      acc += (*this)(r, c) * x[c];
    }
    y[r] = acc;
  }
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  GRIDSE_CHECK(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

void DenseMatrix::cholesky_in_place() {
  GRIDSE_CHECK(rows_ == cols_);
  const std::size_t n = rows_;
  for (std::size_t j = 0; j < n; ++j) {
    double d = (*this)(j, j);
    for (std::size_t k = 0; k < j; ++k) {
      d -= (*this)(j, k) * (*this)(j, k);
    }
    if (d <= 0.0) {
      throw ConvergenceFailure("dense Cholesky: matrix not positive definite at pivot " +
                               std::to_string(j));
    }
    const double ljj = std::sqrt(d);
    (*this)(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = (*this)(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        s -= (*this)(i, k) * (*this)(j, k);
      }
      (*this)(i, j) = s / ljj;
    }
    for (std::size_t c = j + 1; c < n; ++c) {
      (*this)(j, c) = 0.0;  // zero upper triangle for a clean L
    }
  }
}

std::vector<double> DenseMatrix::solve_spd(std::span<const double> b) const {
  GRIDSE_CHECK(rows_ == cols_ && b.size() == rows_);
  DenseMatrix l = *this;
  l.cholesky_in_place();
  const std::size_t n = rows_;
  std::vector<double> x(b.begin(), b.end());
  // forward: L y = b
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) {
      x[i] -= l(i, k) * x[k];
    }
    x[i] /= l(i, i);
  }
  // backward: Lᵀ x = y
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    for (std::size_t k = i + 1; k < n; ++k) {
      x[i] -= l(k, i) * x[k];
    }
    x[i] /= l(i, i);
  }
  return x;
}

std::vector<double> DenseMatrix::solve_lu(std::span<const double> b) const {
  GRIDSE_CHECK(rows_ == cols_ && b.size() == rows_);
  const std::size_t n = rows_;
  DenseMatrix a = *this;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > best) {
        best = std::abs(a(i, k));
        pivot = i;
      }
    }
    if (best == 0.0) {
      throw ConvergenceFailure("dense LU: singular matrix at column " +
                               std::to_string(k));
    }
    if (pivot != k) {
      std::swap(perm[pivot], perm[k]);
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a(pivot, c), a(k, c));
      }
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      a(i, k) /= a(k, k);
      const double f = a(i, k);
      if (f == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        a(i, c) -= f * a(k, c);
      }
    }
  }

  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm[i]];
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) {
      x[i] -= a(i, k) * x[k];
    }
  }
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    for (std::size_t k = i + 1; k < n; ++k) {
      x[i] -= a(i, k) * x[k];
    }
    x[i] /= a(i, i);
  }
  return x;
}

double DenseMatrix::condition_estimate_spd(int iterations) const {
  GRIDSE_CHECK(rows_ == cols_ && rows_ > 0);
  const std::size_t n = rows_;
  // power iteration for lambda_max
  std::vector<double> v(n, 1.0);
  std::vector<double> w(n);
  double lmax = 0.0;
  for (int it = 0; it < iterations; ++it) {
    multiply(v, w);
    lmax = norm2(w);
    if (lmax == 0.0) return 0.0;
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / lmax;
  }
  // inverse power iteration for lambda_min (reuses one Cholesky)
  DenseMatrix l = *this;
  l.cholesky_in_place();
  auto solve_with_l = [&](std::vector<double>& x) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < i; ++k) x[i] -= l(i, k) * x[k];
      x[i] /= l(i, i);
    }
    for (std::size_t ii = n; ii > 0; --ii) {
      const std::size_t i = ii - 1;
      for (std::size_t k = i + 1; k < n; ++k) x[i] -= l(k, i) * x[k];
      x[i] /= l(i, i);
    }
  };
  std::fill(v.begin(), v.end(), 1.0);
  double inv_norm = 1.0;
  for (int it = 0; it < iterations; ++it) {
    solve_with_l(v);
    inv_norm = norm2(v);
    if (inv_norm == 0.0) break;
    for (double& x : v) x /= inv_norm;
  }
  const double lmin = inv_norm > 0.0 ? 1.0 / inv_norm : 0.0;
  return lmin > 0.0 ? lmax / lmin : 0.0;
}

}  // namespace gridse::sparse
