#include "sparse/symbolic_plan.hpp"

#include <algorithm>
#include <numeric>

#include "sparse/ordering.hpp"
#include "util/error.hpp"

namespace gridse::sparse {

SymbolicPlan SymbolicPlan::analyze(const Csr& a, bool use_ordering) {
  GRIDSE_CHECK(a.rows() == a.cols());
  const Index n = a.rows();
  const auto col = a.col_idx();

  SymbolicPlan plan;
  plan.fp_ = fingerprint_pattern(a);
  plan.ordered_ = use_ordering;

  if (use_ordering) {
    plan.perm_ = reverse_cuthill_mckee(a);
  } else {
    plan.perm_.resize(static_cast<std::size_t>(n));
    std::iota(plan.perm_.begin(), plan.perm_.end(), 0);
  }
  plan.perm_inv_ = invert_permutation(plan.perm_);

  // --- permuted pattern B = P A Pᵀ with a value gather map ------------------
  // B(inv[r], inv[c]) = A(r, c). Counting sort into rows, then sort each row
  // by column carrying the source offset along — done once here so numeric
  // refactorizations never touch triplets again.
  plan.ap_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (Index r = 0; r < n; ++r) {
    const auto [b, e] = a.row_range(r);
    plan.ap_ptr_[static_cast<std::size_t>(
        plan.perm_inv_[static_cast<std::size_t>(r)]) + 1] += e - b;
  }
  for (Index i = 0; i < n; ++i) {
    plan.ap_ptr_[static_cast<std::size_t>(i) + 1] +=
        plan.ap_ptr_[static_cast<std::size_t>(i)];
  }
  plan.ap_col_.resize(a.nnz());
  plan.ap_map_.resize(a.nnz());
  {
    std::vector<Index> next(plan.ap_ptr_.begin(), plan.ap_ptr_.end() - 1);
    for (Index r = 0; r < n; ++r) {
      const Index nr = plan.perm_inv_[static_cast<std::size_t>(r)];
      const auto [b, e] = a.row_range(r);
      for (Index k = b; k < e; ++k) {
        const Index slot = next[static_cast<std::size_t>(nr)]++;
        plan.ap_col_[static_cast<std::size_t>(slot)] =
            plan.perm_inv_[static_cast<std::size_t>(
                col[static_cast<std::size_t>(k)])];
        plan.ap_map_[static_cast<std::size_t>(slot)] = k;
      }
    }
    std::vector<std::pair<Index, Index>> row;
    for (Index i = 0; i < n; ++i) {
      const Index b = plan.ap_ptr_[static_cast<std::size_t>(i)];
      const Index e = plan.ap_ptr_[static_cast<std::size_t>(i) + 1];
      row.clear();
      for (Index k = b; k < e; ++k) {
        row.emplace_back(plan.ap_col_[static_cast<std::size_t>(k)],
                         plan.ap_map_[static_cast<std::size_t>(k)]);
      }
      std::sort(row.begin(), row.end());
      for (Index k = b; k < e; ++k) {
        plan.ap_col_[static_cast<std::size_t>(k)] =
            row[static_cast<std::size_t>(k - b)].first;
        plan.ap_map_[static_cast<std::size_t>(k)] =
            row[static_cast<std::size_t>(k - b)].second;
      }
    }
  }

  // --- elimination tree and per-column factor counts over B -----------------
  plan.parent_.assign(static_cast<std::size_t>(n), -1);
  std::vector<Index> lnz(static_cast<std::size_t>(n), 0);
  std::vector<Index> flag(static_cast<std::size_t>(n), -1);
  for (Index k = 0; k < n; ++k) {
    flag[static_cast<std::size_t>(k)] = k;
    const Index b = plan.ap_ptr_[static_cast<std::size_t>(k)];
    const Index e = plan.ap_ptr_[static_cast<std::size_t>(k) + 1];
    for (Index p = b; p < e; ++p) {
      Index i = plan.ap_col_[static_cast<std::size_t>(p)];
      if (i >= k) break;
      for (; flag[static_cast<std::size_t>(i)] != k;
           i = plan.parent_[static_cast<std::size_t>(i)]) {
        if (plan.parent_[static_cast<std::size_t>(i)] == -1) {
          plan.parent_[static_cast<std::size_t>(i)] = k;
        }
        ++lnz[static_cast<std::size_t>(i)];
        flag[static_cast<std::size_t>(i)] = k;
      }
    }
  }
  plan.lp_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (Index k = 0; k < n; ++k) {
    plan.lp_[static_cast<std::size_t>(k) + 1] =
        plan.lp_[static_cast<std::size_t>(k)] + lnz[static_cast<std::size_t>(k)];
  }

  // --- unpermuted lower-triangle pattern for IC(0) --------------------------
  plan.lt_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (Index r = 0; r < n; ++r) {
    const auto [b, e] = a.row_range(r);
    for (Index k = b; k < e; ++k) {
      const Index c = col[static_cast<std::size_t>(k)];
      if (c > r) break;  // rows are column-sorted
      plan.lt_col_.push_back(c);
      plan.lt_map_.push_back(k);
    }
    plan.lt_ptr_[static_cast<std::size_t>(r) + 1] =
        static_cast<Index>(plan.lt_col_.size());
  }
  return plan;
}

namespace detail {

void LdltScratch::resize(Index n) {
  const auto un = static_cast<std::size_t>(n);
  if (y.size() < un) {
    y.assign(un, 0.0);
    pattern.resize(un);
    flag.resize(un);
    lnz.resize(un);
  }
}

void ldlt_numeric(const SymbolicPlan& plan, const Csr& a, std::span<Index> li,
                  std::span<double> lx, std::span<double> d,
                  LdltScratch& scratch) {
  const Index n = plan.dim();
  GRIDSE_CHECK(a.rows() == n && a.cols() == n);
  GRIDSE_CHECK(static_cast<std::uint64_t>(a.nnz()) == plan.fingerprint().nnz);
  GRIDSE_CHECK(li.size() == plan.factor_nnz() && lx.size() == li.size() &&
               static_cast<Index>(d.size()) == n);
  scratch.resize(n);
  const auto ap = plan.permuted_row_ptr();
  const auto ac = plan.permuted_col_idx();
  const auto amap = plan.value_map();
  const auto parent = plan.etree();
  const auto lp = plan.l_col_ptr();
  const auto aval = a.values();

  std::span<double> y(scratch.y.data(), static_cast<std::size_t>(n));
  std::span<Index> pattern(scratch.pattern.data(), static_cast<std::size_t>(n));
  std::span<Index> flag(scratch.flag.data(), static_cast<std::size_t>(n));
  std::span<Index> lnz(scratch.lnz.data(), static_cast<std::size_t>(n));
  std::fill(flag.begin(), flag.end(), -1);
  std::fill(lnz.begin(), lnz.end(), 0);
  std::fill(y.begin(), y.end(), 0.0);

  for (Index k = 0; k < n; ++k) {
    Index top = n;
    flag[static_cast<std::size_t>(k)] = k;
    const Index b = ap[static_cast<std::size_t>(k)];
    const Index e = ap[static_cast<std::size_t>(k) + 1];
    double akk = 0.0;
    for (Index p = b; p < e; ++p) {
      const Index i = ac[static_cast<std::size_t>(p)];
      if (i > k) break;
      const double v = aval[static_cast<std::size_t>(
          amap[static_cast<std::size_t>(p)])];
      if (i == k) {
        akk = v;
        continue;
      }
      y[static_cast<std::size_t>(i)] += v;
      Index len = 0;
      Index node = i;
      for (; flag[static_cast<std::size_t>(node)] != k;
           node = parent[static_cast<std::size_t>(node)]) {
        pattern[static_cast<std::size_t>(len++)] = node;
        flag[static_cast<std::size_t>(node)] = k;
      }
      while (len > 0) {
        pattern[static_cast<std::size_t>(--top)] =
            pattern[static_cast<std::size_t>(--len)];
      }
    }
    d[static_cast<std::size_t>(k)] = akk;
    for (Index t = top; t < n; ++t) {
      const Index i = pattern[static_cast<std::size_t>(t)];
      const double yi = y[static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(i)] = 0.0;
      const Index pb = lp[static_cast<std::size_t>(i)];
      const Index pe = pb + lnz[static_cast<std::size_t>(i)];
      for (Index p = pb; p < pe; ++p) {
        y[static_cast<std::size_t>(li[static_cast<std::size_t>(p)])] -=
            lx[static_cast<std::size_t>(p)] * yi;
      }
      const double lki = yi / d[static_cast<std::size_t>(i)];
      d[static_cast<std::size_t>(k)] -= lki * yi;
      li[static_cast<std::size_t>(pe)] = k;
      lx[static_cast<std::size_t>(pe)] = lki;
      ++lnz[static_cast<std::size_t>(i)];
    }
    if (d[static_cast<std::size_t>(k)] == 0.0) {
      throw ConvergenceFailure("sparse LDLt: zero pivot at column " +
                               std::to_string(k));
    }
  }
}

void ldlt_solve(const SymbolicPlan& plan, std::span<const Index> li,
                std::span<const double> lx, std::span<const double> d,
                std::span<const double> b, std::span<double> x,
                std::span<double> work) {
  const Index n = plan.dim();
  GRIDSE_CHECK(static_cast<Index>(b.size()) == n &&
               static_cast<Index>(x.size()) == n &&
               static_cast<Index>(work.size()) == n);
  const auto perm = plan.perm();
  const auto lp = plan.l_col_ptr();
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    work[i] = b[static_cast<std::size_t>(perm[i])];
  }
  for (Index j = 0; j < n; ++j) {
    const double wj = work[static_cast<std::size_t>(j)];
    for (Index p = lp[static_cast<std::size_t>(j)];
         p < lp[static_cast<std::size_t>(j) + 1]; ++p) {
      work[static_cast<std::size_t>(li[static_cast<std::size_t>(p)])] -=
          lx[static_cast<std::size_t>(p)] * wj;
    }
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    work[i] /= d[i];
  }
  for (Index j = n - 1; j >= 0; --j) {
    double wj = work[static_cast<std::size_t>(j)];
    for (Index p = lp[static_cast<std::size_t>(j)];
         p < lp[static_cast<std::size_t>(j) + 1]; ++p) {
      wj -= lx[static_cast<std::size_t>(p)] *
            work[static_cast<std::size_t>(li[static_cast<std::size_t>(p)])];
    }
    work[static_cast<std::size_t>(j)] = wj;
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    x[static_cast<std::size_t>(perm[i])] = work[i];
  }
}

}  // namespace detail

}  // namespace gridse::sparse
