#include "sparse/ordering.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace gridse::sparse {

std::vector<Index> reverse_cuthill_mckee(const Csr& a) {
  GRIDSE_CHECK(a.rows() == a.cols());
  const Index n = a.rows();
  const auto col = a.col_idx();

  std::vector<Index> degree(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    const auto [b, e] = a.row_range(i);
    degree[static_cast<std::size_t>(i)] = e - b;
  }

  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<Index> order;
  order.reserve(static_cast<std::size_t>(n));

  while (static_cast<Index>(order.size()) < n) {
    // pick the globally minimum-degree unvisited vertex as a
    // pseudo-peripheral start for the next component
    Index start = -1;
    for (Index i = 0; i < n; ++i) {
      if (visited[static_cast<std::size_t>(i)]) continue;
      if (start < 0 || degree[static_cast<std::size_t>(i)] <
                           degree[static_cast<std::size_t>(start)]) {
        start = i;
      }
    }
    GRIDSE_CHECK(start >= 0);
    std::queue<Index> q;
    q.push(start);
    visited[static_cast<std::size_t>(start)] = true;
    while (!q.empty()) {
      const Index u = q.front();
      q.pop();
      order.push_back(u);
      const auto [b, e] = a.row_range(u);
      std::vector<Index> nbrs;
      for (Index k = b; k < e; ++k) {
        const Index v = col[static_cast<std::size_t>(k)];
        if (v != u && !visited[static_cast<std::size_t>(v)]) {
          visited[static_cast<std::size_t>(v)] = true;
          nbrs.push_back(v);
        }
      }
      // Tie-break equal degrees on the node index: std::sort is not stable,
      // so a degree-only comparator leaves the order of equal-degree
      // neighbours implementation-defined — and cached SymbolicPlans plus
      // the gated bench keys need bit-identical permutations everywhere.
      std::sort(nbrs.begin(), nbrs.end(), [&](Index x, Index y) {
        const Index dx = degree[static_cast<std::size_t>(x)];
        const Index dy = degree[static_cast<std::size_t>(y)];
        return dx != dy ? dx < dy : x < y;
      });
      for (const Index v : nbrs) q.push(v);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

Csr permute_symmetric(const Csr& a, std::span<const Index> perm) {
  GRIDSE_CHECK(a.rows() == a.cols());
  GRIDSE_CHECK(static_cast<Index>(perm.size()) == a.rows());
  const auto inv = invert_permutation(perm);
  std::vector<Triplet<double>> t;
  t.reserve(a.nnz());
  const auto col = a.col_idx();
  const auto val = a.values();
  for (Index r = 0; r < a.rows(); ++r) {
    const auto [b, e] = a.row_range(r);
    for (Index k = b; k < e; ++k) {
      t.push_back({inv[static_cast<std::size_t>(r)],
                   inv[static_cast<std::size_t>(col[static_cast<std::size_t>(k)])],
                   val[static_cast<std::size_t>(k)]});
    }
  }
  return Csr::from_triplets(a.rows(), a.cols(), std::move(t));
}

std::vector<Index> invert_permutation(std::span<const Index> perm) {
  std::vector<Index> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<std::size_t>(perm[i])] = static_cast<Index>(i);
  }
  return inv;
}

}  // namespace gridse::sparse
