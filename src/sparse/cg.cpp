#include "sparse/cg.hpp"

#include <cmath>

#include "sparse/vector_ops.hpp"
#include "util/error.hpp"

namespace gridse::sparse {

CgReport pcg(const Csr& a, std::span<const double> b, std::span<double> x,
             const Preconditioner& m, const CgOptions& options) {
  GRIDSE_CHECK(a.rows() == a.cols());
  const auto n = static_cast<std::size_t>(a.rows());
  GRIDSE_CHECK(b.size() == n && x.size() == n);

  const double b_norm = norm2(b);
  CgReport report;
  if (b_norm == 0.0) {
    set_zero(x);
    report.converged = true;
    return report;
  }

  const int max_iter =
      options.max_iterations > 0 ? options.max_iterations : static_cast<int>(n);

  Vec r(n);
  Vec z(n);
  Vec p(n);
  Vec ap(n);

  // r = b - A x
  a.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - r[i];
  }
  m.apply(r, z);
  copy(z, p);
  double rz = dot(r, z);

  double rel = norm2(r) / b_norm;
  for (int it = 0; it < max_iter && rel > options.tolerance; ++it) {
    a.multiply(p, ap);
    const double p_ap = dot(p, ap);
    GRIDSE_CHECK_MSG(p_ap > 0.0, "PCG: matrix is not positive definite");
    const double alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    m.apply(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = z[i] + beta * p[i];
    }
    rz = rz_new;
    rel = norm2(r) / b_norm;
    report.iterations = it + 1;
  }
  report.relative_residual = rel;
  report.converged = rel <= options.tolerance;
  return report;
}

CgReport cg(const Csr& a, std::span<const double> b, std::span<double> x,
            const CgOptions& options) {
  const IdentityPreconditioner identity;
  return pcg(a, b, x, identity, options);
}

}  // namespace gridse::sparse
