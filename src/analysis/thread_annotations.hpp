#pragma once

/// Clang Thread Safety Analysis attribute macros (-Wthread-safety).
///
/// These annotations move the lock discipline that GRIDSE_ASSERT_HELD checks
/// at runtime — and only on paths the tests happen to execute — to compile
/// time: Clang's capability analysis proves, per translation unit, that every
/// access to a GRIDSE_GUARDED_BY field and every call to a GRIDSE_REQUIRES
/// function happens with the right analysis::Mutex held. Off Clang (GCC, or
/// Clang without the attribute) every macro expands to nothing, so the
/// annotated headers compile identically everywhere; the `werror`, `asan`,
/// and `tsan` presets turn the analysis into a hard error on Clang via
/// GRIDSE_THREAD_SAFETY (see the top-level CMakeLists.txt).
///
/// The vocabulary mirrors the Clang documentation (and abseil's
/// thread_annotations.h) with a GRIDSE_ prefix:
///
///  - GRIDSE_CAPABILITY("mutex")   — on a class: instances are lockable
///    capabilities (analysis::Mutex carries this).
///  - GRIDSE_SCOPED_CAPABILITY     — on RAII guard classes whose constructor
///    acquires and destructor releases (LockGuard, UniqueLock).
///  - GRIDSE_GUARDED_BY(mu)        — on a data member: reads and writes
///    require holding `mu`.
///  - GRIDSE_PT_GUARDED_BY(mu)     — on a pointer member: the pointed-to data
///    requires `mu` (the pointer itself does not).
///  - GRIDSE_REQUIRES(mu)          — on a function: callers must hold `mu`
///    (the annotation for every *_locked() helper).
///  - GRIDSE_ACQUIRE(mu) / GRIDSE_RELEASE(mu) — the function acquires /
///    releases `mu` and it must not / must be held on entry.
///  - GRIDSE_TRY_ACQUIRE(ok, mu)   — acquires `mu` iff the return value
///    equals `ok`.
///  - GRIDSE_EXCLUDES(mu)          — callers must NOT hold `mu` (documents
///    non-reentrancy; catches self-deadlock at compile time).
///  - GRIDSE_ASSERT_CAPABILITY(mu) — the function asserts (at runtime) that
///    `mu` is held; the analysis trusts it from that point on. This is what
///    GRIDSE_ASSERT_HELD expands through, so the runtime checker and the
///    static analysis enforce the same model from the same line.
///  - GRIDSE_RETURN_CAPABILITY(mu) — the function returns a reference to
///    `mu` (accessor functions like fault's state_mutex()).
///  - GRIDSE_NO_THREAD_SAFETY_ANALYSIS — opt a function out. Reserve it for
///    code that manages capability state the analysis cannot model (the
///    condition-variable adopt/release dance) or deliberate lock-free reads,
///    and always pair it with a comment justifying why.
///
/// Annotation guide (REQUIRES vs ASSERT_CAPABILITY, suppression policy):
/// docs/ANALYSIS.md, "Compile-time lock discipline".

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GRIDSE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GRIDSE_THREAD_ANNOTATION
#define GRIDSE_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

#define GRIDSE_CAPABILITY(name) GRIDSE_THREAD_ANNOTATION(capability(name))

#define GRIDSE_SCOPED_CAPABILITY GRIDSE_THREAD_ANNOTATION(scoped_lockable)

#define GRIDSE_GUARDED_BY(mu) GRIDSE_THREAD_ANNOTATION(guarded_by(mu))

#define GRIDSE_PT_GUARDED_BY(mu) GRIDSE_THREAD_ANNOTATION(pt_guarded_by(mu))

#define GRIDSE_REQUIRES(...) \
  GRIDSE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define GRIDSE_ACQUIRE(...) \
  GRIDSE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define GRIDSE_RELEASE(...) \
  GRIDSE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define GRIDSE_TRY_ACQUIRE(...) \
  GRIDSE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define GRIDSE_EXCLUDES(...) \
  GRIDSE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define GRIDSE_ASSERT_CAPABILITY(...) \
  GRIDSE_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

#define GRIDSE_RETURN_CAPABILITY(mu) \
  GRIDSE_THREAD_ANNOTATION(lock_returned(mu))

#define GRIDSE_NO_THREAD_SAFETY_ANALYSIS \
  GRIDSE_THREAD_ANNOTATION(no_thread_safety_analysis)
