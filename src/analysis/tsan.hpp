#pragma once

/// ThreadSanitizer annotation shims. Real annotations when the TU is
/// compiled with -fsanitize=thread (gcc defines __SANITIZE_THREAD__, clang
/// exposes __has_feature(thread_sanitizer)); no-ops otherwise, so callers
/// never need their own #ifdefs.
///
/// Use sparingly: these teach TSan about happens-before edges it cannot see
/// (e.g. ordering established through a file descriptor or a syscall), and
/// a wrong annotation silences real races.

#if defined(__SANITIZE_THREAD__)
#define GRIDSE_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GRIDSE_TSAN_ENABLED 1
#endif
#endif
#ifndef GRIDSE_TSAN_ENABLED
#define GRIDSE_TSAN_ENABLED 0
#endif

#if GRIDSE_TSAN_ENABLED

extern "C" {
void AnnotateHappensBefore(const char* file, int line, const volatile void* p);
void AnnotateHappensAfter(const char* file, int line, const volatile void* p);
void AnnotateIgnoreReadsBegin(const char* file, int line);
void AnnotateIgnoreReadsEnd(const char* file, int line);
void AnnotateIgnoreWritesBegin(const char* file, int line);
void AnnotateIgnoreWritesEnd(const char* file, int line);
}

/// Declare that all memory effects before this call are visible to the
/// thread that later runs GRIDSE_TSAN_HAPPENS_AFTER on the same address.
#define GRIDSE_TSAN_HAPPENS_BEFORE(addr) \
  AnnotateHappensBefore(__FILE__, __LINE__, (const volatile void*)(addr))
#define GRIDSE_TSAN_HAPPENS_AFTER(addr) \
  AnnotateHappensAfter(__FILE__, __LINE__, (const volatile void*)(addr))

/// Bracket deliberately racy diagnostic reads (approximate counters).
#define GRIDSE_TSAN_IGNORE_READS_BEGIN() \
  AnnotateIgnoreReadsBegin(__FILE__, __LINE__)
#define GRIDSE_TSAN_IGNORE_READS_END() AnnotateIgnoreReadsEnd(__FILE__, __LINE__)
#define GRIDSE_TSAN_IGNORE_WRITES_BEGIN() \
  AnnotateIgnoreWritesBegin(__FILE__, __LINE__)
#define GRIDSE_TSAN_IGNORE_WRITES_END() \
  AnnotateIgnoreWritesEnd(__FILE__, __LINE__)

#else

#define GRIDSE_TSAN_HAPPENS_BEFORE(addr) ((void)0)
#define GRIDSE_TSAN_HAPPENS_AFTER(addr) ((void)0)
#define GRIDSE_TSAN_IGNORE_READS_BEGIN() ((void)0)
#define GRIDSE_TSAN_IGNORE_READS_END() ((void)0)
#define GRIDSE_TSAN_IGNORE_WRITES_BEGIN() ((void)0)
#define GRIDSE_TSAN_IGNORE_WRITES_END() ((void)0)

#endif  // GRIDSE_TSAN_ENABLED
