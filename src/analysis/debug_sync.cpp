#include "analysis/debug_sync.hpp"

#if GRIDSE_DEBUG_SYNC

#include "analysis/assert.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

namespace gridse::analysis {
namespace {

struct Held {
  const Mutex* mutex;
  std::source_location site;
  std::chrono::steady_clock::time_point since;
};

/// Acquisition stack of the calling thread, innermost lock last.
std::vector<Held>& held_stack() {
  thread_local std::vector<Held> stack;
  return stack;
}

std::string describe_site(const std::source_location& site) {
  std::ostringstream os;
  os << site.file_name() << ":" << site.line();
  return os.str();
}

/// Render the caller's current stack plus the lock being acquired — used
/// both as the stored witness for new edges and as the "acquire" half of a
/// violation report.
std::string describe_acquisition(const std::string& acquiring,
                                 const std::source_location& site) {
  std::ostringstream os;
  os << "  thread " << std::this_thread::get_id() << " acquiring \""
     << acquiring << "\" at " << describe_site(site) << " while holding:\n";
  const auto& stack = held_stack();
  for (std::size_t i = stack.size(); i-- > 0;) {
    os << "    #" << (stack.size() - 1 - i) << " \""
       << stack[i].mutex->name() << "\" acquired at "
       << describe_site(stack[i].site) << "\n";
  }
  if (stack.empty()) {
    os << "    (no other locks)\n";
  }
  return os.str();
}

/// Directed lock-order graph keyed by mutex name. edges[a][b] holds the
/// formatted acquisition stack recorded the first time b was taken while a
/// was held.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::map<std::string, std::string>> edges;
};

Registry& registry() {
  static auto* r = new Registry;  // leaked: outlives static-destruction races
  return *r;
}

std::atomic<long long> g_max_hold_ms{0};

/// DFS for a path from `from` to `to`; fills `path` with the node sequence
/// (from ... to) when found. Caller holds registry().mu.
bool find_path(const std::map<std::string, std::map<std::string, std::string>>&
                   edges,
               const std::string& from, const std::string& to,
               std::set<std::string>& visited, std::vector<std::string>& path) {
  path.push_back(from);
  if (from == to) {
    return true;
  }
  visited.insert(from);
  const auto it = edges.find(from);
  if (it != edges.end()) {
    for (const auto& edge : it->second) {
      const std::string& next = edge.first;
      if (visited.count(next) != 0) continue;
      if (find_path(edges, next, to, visited, path)) {
        return true;
      }
    }
  }
  path.pop_back();
  return false;
}

[[noreturn]] void report_cycle(const std::string& acquiring,
                               const std::source_location& site,
                               const std::vector<std::string>& path) {
  std::ostringstream os;
  os << "==gridse-debug-sync== POTENTIAL DEADLOCK: lock-order inversion\n";
  os << describe_acquisition(acquiring, site);
  os << "  but the opposite order was previously established:\n";
  const auto& edges = registry().edges;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    os << "  edge \"" << path[i] << "\" -> \"" << path[i + 1]
       << "\" recorded by:\n"
       << edges.at(path[i]).at(path[i + 1]);
  }
  os << "==gridse-debug-sync== aborting\n";
  std::fputs(os.str().c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void report_recursion(const Mutex& mutex,
                                   const std::source_location& site) {
  std::ostringstream os;
  os << "==gridse-debug-sync== SELF-DEADLOCK: recursive acquisition of \""
     << mutex.name() << "\"\n"
     << describe_acquisition(mutex.name(), site)
     << "==gridse-debug-sync== aborting\n";
  std::fputs(os.str().c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

/// Record held->acquiring edges (and run the cycle check) for the calling
/// thread. `check_cycles` is false for try_lock: a failed try backs off, so
/// an inverted order through it cannot deadlock, but the edge still feeds
/// future checks.
void note_acquisition(const Mutex& mutex, const std::source_location& site,
                      bool check_cycles) {
  const auto& stack = held_stack();
  for (const auto& held : stack) {
    if (held.mutex == &mutex) {
      report_recursion(mutex, site);
    }
  }
  if (stack.empty()) {
    return;
  }
  const std::string& acquiring = mutex.name();
  std::lock_guard<std::mutex> lock(registry().mu);
  auto& edges = registry().edges;
  for (const auto& held : stack) {
    const std::string& holder = held.mutex->name();
    if (holder == acquiring) {
      continue;  // same-name instances: not tracked (see header)
    }
    auto& out = edges[holder];
    if (out.count(acquiring) != 0) {
      continue;  // known-good order
    }
    if (check_cycles) {
      std::set<std::string> visited;
      std::vector<std::string> path;
      if (find_path(edges, acquiring, holder, visited, path)) {
        report_cycle(acquiring, site, path);
      }
    }
    out.emplace(acquiring, describe_acquisition(acquiring, site));
  }
}

void check_hold_time(const Held& held) {
  const long long limit = g_max_hold_ms.load(std::memory_order_relaxed);
  if (limit <= 0) {
    return;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - held.since)
                           .count();
  if (elapsed <= limit) {
    return;
  }
  std::ostringstream os;
  os << "==gridse-debug-sync== EXCESSIVE HOLD TIME: \""
     << held.mutex->name() << "\" held for " << elapsed << " ms (limit "
     << limit << " ms), acquired at " << describe_site(held.site)
     << " by thread " << std::this_thread::get_id()
     << "\n==gridse-debug-sync== aborting\n";
  std::fputs(os.str().c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

/// Pop the stack entry for `mutex` (normally the innermost) and run the
/// hold-time check on it.
void note_release(const Mutex& mutex) {
  auto& stack = held_stack();
  for (std::size_t i = stack.size(); i-- > 0;) {
    if (stack[i].mutex == &mutex) {
      check_hold_time(stack[i]);
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  std::fprintf(stderr,
               "==gridse-debug-sync== unlock of \"%s\" not held by this "
               "thread\n==gridse-debug-sync== aborting\n",
               mutex.name().c_str());
  std::fflush(stderr);
  std::abort();
}

void push_held(const Mutex& mutex, const std::source_location& site) {
  held_stack().push_back(
      Held{&mutex, site, std::chrono::steady_clock::now()});
}

}  // namespace

Mutex::Mutex(const char* name) : name_(name) {}

Mutex::~Mutex() {
  if (held_by_current_thread()) {
    std::fprintf(stderr,
                 "==gridse-debug-sync== \"%s\" destroyed while held\n"
                 "==gridse-debug-sync== aborting\n",
                 name_.c_str());
    std::fflush(stderr);
    std::abort();
  }
}

void Mutex::lock(std::source_location site) {
  // Check the order graph *before* blocking so an inversion is reported
  // even on the interleaving that would deadlock.
  note_acquisition(*this, site, /*check_cycles=*/true);
  impl_.lock();
  push_held(*this, site);
}

bool Mutex::try_lock(std::source_location site) {
  if (!impl_.try_lock()) {
    return false;
  }
  note_acquisition(*this, site, /*check_cycles=*/false);
  push_held(*this, site);
  return true;
}

void Mutex::unlock() {
  note_release(*this);
  impl_.unlock();
}

bool Mutex::held_by_current_thread() const {
  for (const auto& held : held_stack()) {
    if (held.mutex == this) {
      return true;
    }
  }
  return false;
}

void Mutex::assert_held(const char* expr, const char* file, int line) const {
  if (!held_by_current_thread()) {
    detail::assert_failed(expr, file, line,
                          "lock \"" + name_ + "\" is not held");
  }
}

void Mutex::prepare_wait() { note_release(*this); }

void Mutex::finish_wait(std::source_location site) { push_held(*this, site); }

void ConditionVariable::wait(UniqueLock& lock, std::source_location site) {
  Mutex& m = lock.mutex();
  m.prepare_wait();
  std::unique_lock<std::mutex> native(m.native(), std::adopt_lock);
  impl_.wait(native);
  native.release();
  m.finish_wait(site);
}

void set_max_hold_time(std::chrono::milliseconds limit) {
  g_max_hold_ms.store(limit.count(), std::memory_order_relaxed);
}

namespace detail {
void reset_lock_graph_for_testing() {
  std::lock_guard<std::mutex> lock(registry().mu);
  registry().edges.clear();
}
}  // namespace detail

}  // namespace gridse::analysis

#endif  // GRIDSE_DEBUG_SYNC
