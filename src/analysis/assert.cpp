#include "analysis/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace gridse::analysis::detail {

void assert_failed(const char* expr, const char* file, int line,
                   const std::string& message) {
  std::fprintf(stderr,
               "==gridse-assert== FAILED: %s\n==gridse-assert==   at %s:%d\n",
               expr, file, line);
  if (!message.empty()) {
    std::fprintf(stderr, "==gridse-assert==   %s\n", message.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace gridse::analysis::detail
