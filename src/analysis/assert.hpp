#pragma once

#include <source_location>
#include <sstream>
#include <string>

#include "analysis/debug_sync.hpp"

namespace gridse::analysis::detail {

/// Print a formatted invariant-violation report and abort. Unlike
/// GRIDSE_CHECK (util/error.hpp), which throws and stays on in release,
/// these assertions are debug-build teeth: aborting keeps the failing stack
/// intact for a debugger or a sanitizer report.
[[noreturn]] void assert_failed(const char* expr, const char* file, int line,
                                const std::string& message);

}  // namespace gridse::analysis::detail

#if GRIDSE_DEBUG_SYNC

/// Debug-build invariant with stream-formatted diagnostics:
///   GRIDSE_ASSERT(count <= cap, "count " << count << " exceeds " << cap);
#define GRIDSE_ASSERT(expr, ...)                                             \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream gridse_assert_os_;                                  \
      gridse_assert_os_ << __VA_ARGS__;                                      \
      ::gridse::analysis::detail::assert_failed(#expr, __FILE__, __LINE__,   \
                                                gridse_assert_os_.str());    \
    }                                                                        \
  } while (false)

/// Assert the calling thread holds `mutex` (an analysis::Mutex). Place at
/// every *_locked helper and data-structure invariant point. Expands to
/// Mutex::assert_held, which carries GRIDSE_ASSERT_CAPABILITY — so the same
/// line that aborts at runtime also teaches Clang's -Wthread-safety analysis
/// that the lock is held from here on (needed inside cv-wait predicates and
/// other lambdas the analysis cannot see through).
#define GRIDSE_ASSERT_HELD(mutex) \
  (mutex).assert_held(#mutex " held by current thread", __FILE__, __LINE__)

#else  // !GRIDSE_DEBUG_SYNC — compiled out; operands stay name-checked only.

#define GRIDSE_ASSERT(expr, ...)     \
  do {                               \
    (void)sizeof(!(expr));           \
  } while (false)

/// Release builds: the runtime check is a no-op member, but the
/// GRIDSE_ASSERT_CAPABILITY annotation on it still informs the analysis.
#define GRIDSE_ASSERT_HELD(mutex) \
  (mutex).assert_held(#mutex " held by current thread", __FILE__, __LINE__)

#endif  // GRIDSE_DEBUG_SYNC
