#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <source_location>
#include <string>

#include "analysis/thread_annotations.hpp"

/// GRIDSE_DEBUG_SYNC selects between the checked synchronization layer
/// (lock-order graph, hold-time limits, held-lock assertions) and thin
/// zero-overhead wrappers around std::mutex. The build system defines it
/// globally (option GRIDSE_DEBUG_SYNC, default ON); the fallback here keeps
/// standalone compiles of a single header sensible.
#ifndef GRIDSE_DEBUG_SYNC
#ifdef NDEBUG
#define GRIDSE_DEBUG_SYNC 0
#else
#define GRIDSE_DEBUG_SYNC 1
#endif
#endif

namespace gridse::analysis {

#if GRIDSE_DEBUG_SYNC

/// Drop-in std::mutex replacement that participates in deadlock detection.
///
/// Every acquisition is recorded on a per-thread stack of held locks, and
/// every (held, acquired) pair adds an edge to a global lock-order graph
/// keyed by mutex *name* — so all instances of, say, "Mailbox::mutex_"
/// share one node and an inversion between any two call sites is caught the
/// first time both orders have been exercised, without needing the actual
/// interleaving that deadlocks. On detecting a cycle the process prints the
/// current acquisition stack plus the recorded witness stack of every edge
/// on the conflicting path, then aborts.
///
/// Known limitation: edges between two *instances* sharing one name (e.g.
/// locking two Mailboxes at once) are not tracked; keep such designs behind
/// an explicit address-order discipline.
class GRIDSE_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = "unnamed");
  ~Mutex();

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(std::source_location site = std::source_location::current())
      GRIDSE_ACQUIRE();
  bool try_lock(std::source_location site = std::source_location::current())
      GRIDSE_TRY_ACQUIRE(true);
  void unlock() GRIDSE_RELEASE();

  /// True iff the calling thread currently holds this mutex. Drives
  /// GRIDSE_ASSERT_HELD; debug builds only.
  [[nodiscard]] bool held_by_current_thread() const;

  /// Runtime + compile-time held-lock assertion: aborts (with the recorded
  /// acquisition state) when the calling thread does not hold this mutex,
  /// and tells Clang's capability analysis the lock is held from here on.
  /// Call through GRIDSE_ASSERT_HELD, which supplies the site.
  void assert_held(const char* expr, const char* file, int line) const
      GRIDSE_ASSERT_CAPABILITY(this);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Underlying mutex, for interop with std APIs (condition variables use
  /// this via the adopt/release dance in ConditionVariable).
  [[nodiscard]] std::mutex& native() { return impl_; }

 private:
  friend class ConditionVariable;

  /// Pop this mutex from the tracking stack without unlocking (the wait is
  /// about to release it); runs the hold-time check.
  void prepare_wait();
  /// Re-push after the wait reacquired the lock.
  void finish_wait(std::source_location site);

  std::mutex impl_;
  std::string name_;
};

/// RAII scoped lock, std::lock_guard shaped.
class GRIDSE_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex,
                     std::source_location site = std::source_location::current())
      GRIDSE_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock(site);
  }
  ~LockGuard() GRIDSE_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Movable-free owning lock, std::unique_lock shaped; pairs with
/// ConditionVariable.
class GRIDSE_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex,
                      std::source_location site = std::source_location::current())
      GRIDSE_ACQUIRE(mutex)
      : mutex_(&mutex) {
    mutex_->lock(site);
    owns_ = true;
  }
  ~UniqueLock() GRIDSE_RELEASE() {
    if (owns_) mutex_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock(std::source_location site = std::source_location::current())
      GRIDSE_ACQUIRE() {
    mutex_->lock(site);
    owns_ = true;
  }
  void unlock() GRIDSE_RELEASE() {
    mutex_->unlock();
    owns_ = false;
  }
  [[nodiscard]] bool owns_lock() const { return owns_; }
  [[nodiscard]] Mutex& mutex() { return *mutex_; }

 private:
  Mutex* mutex_;
  bool owns_ = false;
};

/// Condition variable over analysis::Mutex. Keeps the per-thread lock stack
/// truthful across the unlock/relock inside wait.
class ConditionVariable {
 public:
  void notify_one() { impl_.notify_one(); }
  void notify_all() { impl_.notify_all(); }

  void wait(UniqueLock& lock,
            std::source_location site = std::source_location::current());

  template <typename Predicate>
  void wait(UniqueLock& lock, Predicate pred,
            std::source_location site = std::source_location::current()) {
    while (!pred()) {
      wait(lock, site);
    }
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock, const std::chrono::time_point<Clock, Duration>& deadline,
      std::source_location site = std::source_location::current()) {
    Mutex& m = lock.mutex();
    m.prepare_wait();
    std::unique_lock<std::mutex> native(m.native(), std::adopt_lock);
    const std::cv_status status = impl_.wait_until(native, deadline);
    native.release();
    m.finish_wait(site);
    return status;
  }

  template <typename Clock, typename Duration, typename Predicate>
  bool wait_until(UniqueLock& lock,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Predicate pred,
                  std::source_location site = std::source_location::current()) {
    while (!pred()) {
      if (wait_until(lock, deadline, site) == std::cv_status::timeout) {
        return pred();
      }
    }
    return true;
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(
      UniqueLock& lock, const std::chrono::duration<Rep, Period>& timeout,
      std::source_location site = std::source_location::current()) {
    return wait_until(lock, std::chrono::steady_clock::now() + timeout, site);
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(UniqueLock& lock,
                const std::chrono::duration<Rep, Period>& timeout,
                Predicate pred,
                std::source_location site = std::source_location::current()) {
    return wait_until(lock, std::chrono::steady_clock::now() + timeout,
                      std::move(pred), site);
  }

 private:
  std::condition_variable impl_;
};

/// Abort any thread that holds one analysis::Mutex longer than `limit`
/// (0 disables, the default). A long hold under a contended lock is the
/// latency bug the paper's per-site pipelines cannot absorb.
void set_max_hold_time(std::chrono::milliseconds limit);

namespace detail {
/// Drop all recorded lock-order edges. Test isolation only: death tests
/// deliberately record inverted orders in their (forked) child processes,
/// and unit tests for the checker itself need a clean graph.
void reset_lock_graph_for_testing();
}  // namespace detail

#else  // !GRIDSE_DEBUG_SYNC — plain std::mutex, zero overhead.

class GRIDSE_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* /*name*/ = "unnamed") {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GRIDSE_ACQUIRE() { impl_.lock(); }
  bool try_lock() GRIDSE_TRY_ACQUIRE(true) { return impl_.try_lock(); }
  void unlock() GRIDSE_RELEASE() { impl_.unlock(); }

  /// Release builds keep only the compile-time half of the assertion: the
  /// capability analysis still learns the lock is held, at zero runtime cost.
  void assert_held(const char* /*expr*/, const char* /*file*/,
                   int /*line*/) const GRIDSE_ASSERT_CAPABILITY(this) {}

  [[nodiscard]] std::mutex& native() { return impl_; }

 private:
  std::mutex impl_;
};

class GRIDSE_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) GRIDSE_ACQUIRE(mutex)
      : guard_(mutex.native()) {}
  ~LockGuard() GRIDSE_RELEASE() {}

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  std::lock_guard<std::mutex> guard_;
};

class GRIDSE_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) GRIDSE_ACQUIRE(mutex)
      : mutex_(&mutex), lock_(mutex.native()) {}
  ~UniqueLock() GRIDSE_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() GRIDSE_ACQUIRE() { lock_.lock(); }
  void unlock() GRIDSE_RELEASE() { lock_.unlock(); }
  [[nodiscard]] bool owns_lock() const { return lock_.owns_lock(); }
  [[nodiscard]] Mutex& mutex() { return *mutex_; }
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  Mutex* mutex_;
  std::unique_lock<std::mutex> lock_;
};

class ConditionVariable {
 public:
  void notify_one() { impl_.notify_one(); }
  void notify_all() { impl_.notify_all(); }

  void wait(UniqueLock& lock) { impl_.wait(lock.native()); }

  template <typename Predicate>
  void wait(UniqueLock& lock, Predicate pred) {
    impl_.wait(lock.native(), std::move(pred));
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return impl_.wait_until(lock.native(), deadline);
  }

  template <typename Clock, typename Duration, typename Predicate>
  bool wait_until(UniqueLock& lock,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Predicate pred) {
    return impl_.wait_until(lock.native(), deadline, std::move(pred));
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return impl_.wait_for(lock.native(), timeout);
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(UniqueLock& lock,
                const std::chrono::duration<Rep, Period>& timeout,
                Predicate pred) {
    return impl_.wait_for(lock.native(), timeout, std::move(pred));
  }

 private:
  std::condition_variable impl_;
};

inline void set_max_hold_time(std::chrono::milliseconds /*limit*/) {}

namespace detail {
inline void reset_lock_graph_for_testing() {}
}  // namespace detail

#endif  // GRIDSE_DEBUG_SYNC

}  // namespace gridse::analysis
