#include "fault/topology_replay.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "obs/trace/json_mini.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gridse::fault {
namespace {

grid::TopologyEventKind kind_from_name(const std::string& name) {
  using K = grid::TopologyEventKind;
  if (name == "line_outage") return K::kLineOutage;
  if (name == "line_restore") return K::kLineRestore;
  if (name == "breaker_open") return K::kBreakerOpen;
  if (name == "breaker_close") return K::kBreakerClose;
  if (name == "bus_split") return K::kBusSplit;
  if (name == "bus_merge") return K::kBusMerge;
  throw InvalidInput("topology plan: unknown event kind \"" + name + "\"");
}

bool kind_takes_branch(grid::TopologyEventKind kind) {
  using K = grid::TopologyEventKind;
  return kind == K::kLineOutage || kind == K::kLineRestore ||
         kind == K::kBreakerOpen || kind == K::kBreakerClose;
}

void append_event_json(std::ostringstream& out,
                       const ScheduledTopologyEvent& e) {
  out << "{\"cycle\":" << e.cycle << ",\"kind\":\""
      << grid::topology_event_kind_name(e.event.kind) << "\"";
  if (kind_takes_branch(e.event.kind)) {
    out << ",\"branch\":" << e.event.branch;
  } else {
    out << ",\"bus\":" << e.event.bus;
  }
  out << "}";
}

}  // namespace

TopologyReplayPlan TopologyReplayPlan::parse(std::string_view json) {
  const obs::jsonm::Value doc = obs::jsonm::parse(json);
  if (!doc.is_object()) {
    throw InvalidInput("topology plan: top level must be an object");
  }
  TopologyReplayPlan plan;
  if (const obs::jsonm::Value* seed = doc.find("seed")) {
    if (!seed->is_number()) {
      throw InvalidInput("topology plan: \"seed\" must be a number");
    }
    plan.seed = seed->as_u64();
  }
  const obs::jsonm::Value* events = doc.find("events");
  if (events == nullptr || !events->is_array()) {
    throw InvalidInput("topology plan: missing \"events\" array");
  }
  const auto read_int = [](const obs::jsonm::Value& v, const char* key,
                           std::int64_t fallback) {
    const obs::jsonm::Value* field = v.find(key);
    if (field == nullptr) return fallback;
    if (!field->is_number()) {
      throw InvalidInput(std::string("topology plan: \"") + key +
                         "\" must be a number");
    }
    return static_cast<std::int64_t>(field->number);
  };
  for (const obs::jsonm::Value& entry : events->array) {
    if (!entry.is_object()) {
      throw InvalidInput("topology plan: each event must be an object");
    }
    const obs::jsonm::Value* kind = entry.find("kind");
    if (kind == nullptr || !kind->is_string()) {
      throw InvalidInput("topology plan: event needs a string \"kind\"");
    }
    ScheduledTopologyEvent e;
    e.cycle = read_int(entry, "cycle", 0);
    e.event.kind = kind_from_name(kind->text);
    if (kind_takes_branch(e.event.kind)) {
      const std::int64_t branch = read_int(entry, "branch", -1);
      if (branch < 0) {
        throw InvalidInput("topology plan: branch event needs \"branch\"");
      }
      e.event.branch = static_cast<std::int32_t>(branch);
    } else {
      const std::int64_t bus = read_int(entry, "bus", -1);
      if (bus < 0) {
        throw InvalidInput("topology plan: bus event needs \"bus\"");
      }
      e.event.bus = static_cast<grid::BusIndex>(bus);
    }
    plan.events.push_back(e);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const ScheduledTopologyEvent& a,
                      const ScheduledTopologyEvent& b) {
                     return a.cycle < b.cycle;
                   });
  return plan;
}

std::string TopologyReplayPlan::to_json() const {
  std::ostringstream out;
  out << "{\"seed\":" << seed << ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out << ",";
    append_event_json(out, events[i]);
  }
  out << "]}";
  return out.str();
}

TopologyReplayPlan TopologyReplayPlan::generate(
    const grid::Network& network, std::uint64_t seed,
    const ReplayScenarioOptions& options) {
  GRIDSE_CHECK_MSG(network.num_branches() > 0,
                   "topology replay needs a network with branches");
  GRIDSE_CHECK_MSG(options.num_outages >= 0 && options.event_spacing >= 1 &&
                       options.hold_cycles >= 0,
                   "topology replay: invalid scenario options");
  Rng rng(seed ^ 0x70f0ull);
  TopologyReplayPlan plan;
  plan.seed = seed;
  std::int64_t cycle = options.start_cycle;

  // Opening arc: distinct random line outages, one per spaced cycle.
  std::vector<std::int32_t> outaged;
  const auto num_branches =
      static_cast<std::int64_t>(network.num_branches());
  const int outages = static_cast<int>(
      std::min<std::int64_t>(options.num_outages, num_branches - 1));
  while (static_cast<int>(outaged.size()) < outages) {
    const auto b =
        static_cast<std::int32_t>(rng.uniform_int(0, num_branches - 1));
    if (std::find(outaged.begin(), outaged.end(), b) != outaged.end()) {
      continue;
    }
    outaged.push_back(b);
    plan.events.push_back(
        {cycle, {grid::TopologyEventKind::kLineOutage, b, -1}});
    cycle += options.event_spacing;
  }

  // Islanding: split one random PQ bus — no generation behind it, so the
  // isolated island is guaranteed de-energized and exercises the dead-bus
  // pinning path. Merge closes the arc after the hold.
  grid::BusIndex split = -1;
  if (options.split_bus) {
    std::vector<grid::BusIndex> candidates;
    for (grid::BusIndex i = 0; i < network.num_buses(); ++i) {
      if (network.bus(i).type == grid::BusType::kPQ) candidates.push_back(i);
    }
    if (!candidates.empty()) {
      split = candidates[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(candidates.size()) - 1))];
      plan.events.push_back(
          {cycle, {grid::TopologyEventKind::kBusSplit, -1, split}});
      cycle += options.event_spacing;
    }
  }

  cycle += options.hold_cycles;

  if (split >= 0) {
    plan.events.push_back(
        {cycle, {grid::TopologyEventKind::kBusMerge, -1, split}});
    cycle += options.event_spacing;
  }
  // Restores mirror the outages in reverse order.
  for (auto it = outaged.rbegin(); it != outaged.rend(); ++it) {
    plan.events.push_back(
        {cycle, {grid::TopologyEventKind::kLineRestore, *it, -1}});
    cycle += options.event_spacing;
  }
  return plan;
}

TopologyReplayHarness::TopologyReplayHarness(TopologyReplayPlan plan)
    : plan_(std::move(plan)) {
  GRIDSE_CHECK_MSG(
      std::is_sorted(plan_.events.begin(), plan_.events.end(),
                     [](const ScheduledTopologyEvent& a,
                        const ScheduledTopologyEvent& b) {
                       return a.cycle < b.cycle;
                     }),
      "topology replay plan events must be sorted by cycle");
}

std::vector<std::size_t> TopologyReplayHarness::apply_cycle(
    std::int64_t cycle, grid::LiveTopology& topology) {
  std::vector<std::size_t> changed;
  while (next_ < plan_.events.size() && plan_.events[next_].cycle <= cycle) {
    const ScheduledTopologyEvent& scheduled = plan_.events[next_];
    AppliedTopologyEvent record;
    record.cycle = cycle;
    record.event = scheduled.event;
    // Chaos hook: a dropped event models a lost switching/status update —
    // the plan moves on, the grid does not. source = event index within
    // the plan, tag = scheduled cycle, both deterministic.
    if (FAULT_DROP("topology.apply", static_cast<int>(next_),
                   static_cast<int>(scheduled.cycle))) {
      record.dropped = true;
    } else {
      record.changed_branches = topology.apply(scheduled.event);
      ++applied_;
      OBS_COUNTER_ADD("topology.events_applied", 1);
      OBS_EVENT("topology.event",
                OBS_ATTR("kind",
                         grid::topology_event_kind_name(scheduled.event.kind)),
                OBS_ATTR("changed",
                         std::to_string(record.changed_branches.size())));
      changed.insert(changed.end(), record.changed_branches.begin(),
                     record.changed_branches.end());
    }
    log_.push_back(std::move(record));
    ++next_;
  }
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  return changed;
}

std::string TopologyReplayHarness::log_to_json() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < log_.size(); ++i) {
    const AppliedTopologyEvent& rec = log_[i];
    if (i > 0) out << ",";
    out << "{\"cycle\":" << rec.cycle << ",\"kind\":\""
        << grid::topology_event_kind_name(rec.event.kind) << "\"";
    if (kind_takes_branch(rec.event.kind)) {
      out << ",\"branch\":" << rec.event.branch;
    } else {
      out << ",\"bus\":" << rec.event.bus;
    }
    out << ",\"dropped\":" << (rec.dropped ? "true" : "false")
        << ",\"changed\":[";
    for (std::size_t k = 0; k < rec.changed_branches.size(); ++k) {
      if (k > 0) out << ",";
      out << rec.changed_branches[k];
    }
    out << "]}";
  }
  out << "]";
  return out.str();
}

std::optional<TopologyReplayPlan> load_env_replay_plan() {
  const char* env = std::getenv("GRIDSE_TOPOLOGY_PLAN");
  if (env == nullptr || *env == '\0') {
    return std::nullopt;
  }
  std::string json(env);
  if (json.front() != '{') {
    std::ifstream in(json, std::ios::binary);
    if (!in) {
      throw InvalidInput("GRIDSE_TOPOLOGY_PLAN: cannot read plan file " +
                         json);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    json = buffer.str();
  }
  return TopologyReplayPlan::parse(json);
}

}  // namespace gridse::fault
