#include "fault/fault.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <tuple>
#include <utility>

#include "analysis/debug_sync.hpp"
#include "obs/obs.hpp"
#include "obs/trace/json_mini.hpp"
#include "util/error.hpp"

namespace gridse::fault {
namespace {

/// splitmix64: the decision function. Statistically solid, trivially
/// reproducible, and stateless — the determinism guarantee rests on it.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t decision_hash(std::uint64_t seed, std::size_t rule_index,
                            int source, int tag, std::uint64_t hit) {
  std::uint64_t h = mix64(seed ^ 0xf4017a11ULL);
  h = mix64(h ^ static_cast<std::uint64_t>(rule_index));
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source))
                 << 32 |
                 static_cast<std::uint32_t>(tag)));
  return mix64(h ^ hit);
}

/// Uniform double in [0, 1) from the top 53 bits.
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool site_matches(const std::string& pattern, std::string_view site) {
  if (!pattern.empty() && pattern.back() == '*') {
    return site.substr(0, pattern.size() - 1) ==
           std::string_view(pattern).substr(0, pattern.size() - 1);
  }
  return site == pattern;
}

const char* action_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::kNone: return "none";
    case ActionKind::kDrop: return "drop";
    case ActionKind::kDelay: return "delay";
    case ActionKind::kError: return "error";
    case ActionKind::kTruncate: return "truncate";
    case ActionKind::kBitFlip: return "bitflip";
  }
  return "?";
}

ActionKind action_from_name(const std::string& name) {
  if (name == "drop") return ActionKind::kDrop;
  if (name == "delay") return ActionKind::kDelay;
  if (name == "error") return ActionKind::kError;
  if (name == "truncate") return ActionKind::kTruncate;
  if (name == "bitflip") return ActionKind::kBitFlip;
  throw InvalidInput("fault plan: unknown action \"" + name + "\"");
}

struct RuleState {
  /// Hit index per (source, tag) stream: the position of the next hit.
  std::map<std::pair<int, int>, std::uint64_t> stream_hits;
  /// Injections fired by this rule (for max_injections).
  std::uint64_t injected = 0;
};

struct PlanState {
  FaultPlan plan;
  std::vector<RuleState> rules;
  std::vector<InjectionRecord> log;
};

analysis::Mutex& state_mutex() {
  static analysis::Mutex m{"fault::state_mutex"};
  return m;
}

/// Guarded by state_mutex(); the atomic flag is the hot-path gate so an
/// inactive layer costs one relaxed load per hook hit.
std::unique_ptr<PlanState>& state_locked() GRIDSE_REQUIRES(state_mutex()) {
  static std::unique_ptr<PlanState> state;
  return state;
}

std::atomic<bool> g_active{false};
std::atomic<bool> g_env_checked{false};

void note_injection(const char* site, ActionKind kind) {
#if GRIDSE_OBS
  // Dynamic per-site names resolve through the registry map; an injection
  // is off the fast path by definition.
  auto& registry = obs::MetricsRegistry::global();
  registry.counter(std::string("fault.injected.") + site).add(1);
  registry.counter("fault.injected.total").add(1);
#endif
  OBS_EVENT("fault.injected", OBS_ATTR("site", site),
            OBS_ATTR("action", action_name(kind)));
}

/// The decision core: everything except applying delay/error, which must
/// happen outside the lock.
Action decide(const char* site, int source, int tag,
              std::chrono::milliseconds& delay_out) {
  analysis::LockGuard lock(state_mutex());
  PlanState* state = state_locked().get();
  if (state == nullptr) {
    return {};
  }
  for (std::size_t i = 0; i < state->plan.rules.size(); ++i) {
    const FaultRule& rule = state->plan.rules[i];
    if (!site_matches(rule.site, site)) continue;
    if (rule.source != kAnyValue && rule.source != source) continue;
    if (rule.tag_min != kAnyValue && tag < rule.tag_min) continue;
    if (rule.tag_max != kAnyValue && tag > rule.tag_max) continue;
    RuleState& rs = state->rules[i];
    const std::uint64_t hit = rs.stream_hits[{source, tag}]++;
    if (hit < static_cast<std::uint64_t>(rule.after)) continue;
    if (rule.max_injections >= 0 &&
        rs.injected >= static_cast<std::uint64_t>(rule.max_injections)) {
      continue;
    }
    const std::uint64_t h =
        decision_hash(state->plan.seed, i, source, tag, hit);
    if (to_unit(h) >= rule.probability) continue;
    ++rs.injected;
    state->log.push_back({site, source, tag, hit, rule.action});
    if (rule.action == ActionKind::kDelay) {
      delay_out = rule.delay;
    }
    return {rule.action, h};
  }
  return {};
}

}  // namespace

void install(FaultPlan plan) {
  auto state = std::make_unique<PlanState>();
  state->rules.resize(plan.rules.size());
  state->plan = std::move(plan);
  analysis::LockGuard lock(state_mutex());
  state_locked() = std::move(state);
  g_env_checked.store(true, std::memory_order_relaxed);
  g_active.store(true, std::memory_order_release);
}

void clear() {
  analysis::LockGuard lock(state_mutex());
  g_active.store(false, std::memory_order_release);
  g_env_checked.store(true, std::memory_order_relaxed);
  state_locked().reset();
}

bool active() { return g_active.load(std::memory_order_acquire); }

bool load_env_plan() {
  const char* env = std::getenv("GRIDSE_FAULT_PLAN");
  if (env == nullptr || *env == '\0') {
    return false;
  }
  std::string json(env);
  if (json.front() != '{') {
    std::ifstream in(json, std::ios::binary);
    if (!in) {
      throw InvalidInput("GRIDSE_FAULT_PLAN: cannot read plan file " + json);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    json = buffer.str();
  }
  install(FaultPlan::parse(json));
  return true;
}

std::vector<InjectionRecord> injection_log() {
  std::vector<InjectionRecord> log;
  {
    analysis::LockGuard lock(state_mutex());
    if (const PlanState* state = state_locked().get()) {
      log = state->log;
    }
  }
  // Sorted so same-seed runs compare equal independent of the thread
  // interleaving that appended the records.
  std::sort(log.begin(), log.end(),
            [](const InjectionRecord& a, const InjectionRecord& b) {
              return std::tie(a.site, a.source, a.tag, a.stream_hit) <
                     std::tie(b.site, b.source, b.tag, b.stream_hit);
            });
  return log;
}

std::uint64_t injected_count() {
  analysis::LockGuard lock(state_mutex());
  const PlanState* state = state_locked().get();
  return state != nullptr ? state->log.size() : 0;
}

std::string log_to_json() {
  const std::vector<InjectionRecord> log = injection_log();
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < log.size(); ++i) {
    const InjectionRecord& rec = log[i];
    if (i > 0) out << ",";
    out << "{\"site\":\"" << obs::jsonm::escape(rec.site) << "\""
        << ",\"source\":" << rec.source << ",\"tag\":" << rec.tag
        << ",\"hit\":" << rec.stream_hit << ",\"action\":\""
        << action_name(rec.action) << "\"}";
  }
  out << "]";
  return out.str();
}

Action maybe(const char* site, int source, int tag) {
  if (!g_active.load(std::memory_order_acquire)) {
    if (g_env_checked.load(std::memory_order_relaxed) ||
        g_env_checked.exchange(true)) {
      return {};
    }
    if (!load_env_plan()) {
      return {};
    }
  }
  std::chrono::milliseconds delay{0};
  const Action action = decide(site, source, tag, delay);
  switch (action.kind) {
    case ActionKind::kDelay:
      note_injection(site, action.kind);
      std::this_thread::sleep_for(delay);
      return {};
    case ActionKind::kError:
      note_injection(site, action.kind);
      throw CommError(std::string("fault injected: error at ") + site);
    case ActionKind::kNone:
      return {};
    default:
      note_injection(site, action.kind);
      return action;
  }
}

bool inject_drop(const char* site, int source, int tag) {
  const Action action = maybe(site, source, tag);
  // A truncate/bitflip rule matched against a site that can only drop:
  // dropping is the closest honest interpretation.
  return !action.none();
}

void apply_bitflip(std::uint64_t mutation, std::span<std::uint8_t> data) {
  if (data.empty()) {
    return;
  }
  const std::uint64_t bit = mutation % (data.size() * 8);
  data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

std::size_t truncate_length(std::uint64_t mutation, std::size_t frame_size) {
  GRIDSE_CHECK_MSG(frame_size >= 2, "cannot truncate a frame under 2 bytes");
  return 1 + static_cast<std::size_t>(mutation % (frame_size - 1));
}

FaultPlan FaultPlan::parse(std::string_view json) {
  const obs::jsonm::Value doc = obs::jsonm::parse(json);
  if (!doc.is_object()) {
    throw InvalidInput("fault plan: top level must be an object");
  }
  FaultPlan plan;
  if (const obs::jsonm::Value* seed = doc.find("seed")) {
    if (!seed->is_number()) {
      throw InvalidInput("fault plan: \"seed\" must be a number");
    }
    plan.seed = seed->as_u64();
  }
  const obs::jsonm::Value* rules = doc.find("rules");
  if (rules == nullptr || !rules->is_array()) {
    throw InvalidInput("fault plan: missing \"rules\" array");
  }
  const auto read_int = [](const obs::jsonm::Value& v, const char* key) {
    const obs::jsonm::Value* field = v.find(key);
    if (field == nullptr) return kAnyValue;
    if (!field->is_number()) {
      throw InvalidInput(std::string("fault plan: \"") + key +
                         "\" must be a number");
    }
    return static_cast<int>(field->number);
  };
  for (const obs::jsonm::Value& entry : rules->array) {
    if (!entry.is_object()) {
      throw InvalidInput("fault plan: each rule must be an object");
    }
    FaultRule rule;
    const obs::jsonm::Value* site = entry.find("site");
    if (site == nullptr || !site->is_string() || site->text.empty()) {
      throw InvalidInput("fault plan: rule needs a nonempty \"site\"");
    }
    rule.site = site->text;
    if (const obs::jsonm::Value* action = entry.find("action")) {
      if (!action->is_string()) {
        throw InvalidInput("fault plan: \"action\" must be a string");
      }
      rule.action = action_from_name(action->text);
    }
    if (const obs::jsonm::Value* p = entry.find("probability")) {
      if (!p->is_number() || p->number < 0.0 || p->number > 1.0) {
        throw InvalidInput("fault plan: \"probability\" must be in [0, 1]");
      }
      rule.probability = p->number;
    }
    rule.source = read_int(entry, "source");
    rule.tag_min = read_int(entry, "tag_min");
    rule.tag_max = read_int(entry, "tag_max");
    if (const int tag = read_int(entry, "tag"); tag != kAnyValue) {
      rule.tag_min = rule.tag_max = tag;
    }
    if (const int after = read_int(entry, "after"); after != kAnyValue) {
      if (after < 0) throw InvalidInput("fault plan: \"after\" must be >= 0");
      rule.after = after;
    }
    if (const int max = read_int(entry, "max"); max != kAnyValue) {
      rule.max_injections = max;
    }
    if (const int ms = read_int(entry, "delay_ms"); ms != kAnyValue) {
      if (ms < 0) throw InvalidInput("fault plan: \"delay_ms\" must be >= 0");
      rule.delay = std::chrono::milliseconds(ms);
    }
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

}  // namespace gridse::fault
