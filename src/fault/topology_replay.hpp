#pragma once

// Seeded, deterministic topology-change replay: the switching-event
// counterpart of fault::FaultPlan. A TopologyReplayPlan (JSON, installed
// programmatically or through the GRIDSE_TOPOLOGY_PLAN environment
// variable) schedules grid::TopologyEvents against estimation cycles; the
// harness applies each cycle's batch onto a grid::LiveTopology and records
// an applied-event log that is bit-identical across runs and thread counts
// for a given seed — the replay suite asserts this, mirroring the
// injection-log witness of the transport fault layer.
//
// The apply site carries a FAULT_DROP("topology.apply") hook so chaos
// plans can suppress individual switching events (a lost SCADA status
// update) and compose topology replay with transport faults.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "grid/topology.hpp"

namespace gridse::fault {

/// One scheduled switching event: applied at the start of `cycle`.
struct ScheduledTopologyEvent {
  std::int64_t cycle = 0;
  grid::TopologyEvent event;

  bool operator==(const ScheduledTopologyEvent&) const = default;
};

/// Options for the seeded scenario generator: an outage → islanding →
/// restore arc sized to the target network.
struct ReplayScenarioOptions {
  std::int64_t start_cycle = 1;  ///< cycle of the first event
  int num_outages = 2;           ///< random line outages opening the arc
  int event_spacing = 1;         ///< cycles between consecutive events
  int hold_cycles = 2;           ///< cycles to hold the fully degraded state
  bool split_bus = true;         ///< isolate one PQ bus (guaranteed island)
};

/// A full replay plan: seed plus the schedule sorted by cycle.
struct TopologyReplayPlan {
  std::uint64_t seed = 1;
  std::vector<ScheduledTopologyEvent> events;

  /// Parse from JSON:
  ///   {"seed": 7, "events": [
  ///     {"cycle": 1, "kind": "line_outage", "branch": 17},
  ///     {"cycle": 3, "kind": "bus_split", "bus": 5}]}
  /// Throws gridse::InvalidInput on malformed input. Events are re-sorted
  /// by cycle (stable, so same-cycle order is the file order).
  static TopologyReplayPlan parse(std::string_view json);

  [[nodiscard]] std::string to_json() const;

  /// Seeded outage → islanding → restore scenario over `network`: random
  /// line outages, an optional bus split isolating one load bus, a hold,
  /// then merge/restore events returning to the base topology. Purely a
  /// function of (network, seed, options).
  static TopologyReplayPlan generate(const grid::Network& network,
                                     std::uint64_t seed,
                                     const ReplayScenarioOptions& options = {});

  /// Cycle index just past the last scheduled event (0 for an empty plan).
  [[nodiscard]] std::int64_t last_cycle() const {
    return events.empty() ? 0 : events.back().cycle;
  }
};

/// One applied (or suppressed) event — an entry of the determinism witness.
struct AppliedTopologyEvent {
  std::int64_t cycle = 0;
  grid::TopologyEvent event;
  /// Branch indices whose live status flipped (empty for no-ops).
  std::vector<std::size_t> changed_branches;
  /// True when FAULT_DROP("topology.apply") suppressed the event.
  bool dropped = false;
};

/// Applies a plan cycle by cycle onto a LiveTopology and keeps the log.
class TopologyReplayHarness {
 public:
  explicit TopologyReplayHarness(TopologyReplayPlan plan);

  /// Apply every event scheduled at or before `cycle` that has not run
  /// yet (so a driver that skips cycles still sees each event once).
  /// Returns the sorted, deduplicated union of branches whose status
  /// flipped this batch.
  std::vector<std::size_t> apply_cycle(std::int64_t cycle,
                                       grid::LiveTopology& topology);

  [[nodiscard]] const TopologyReplayPlan& plan() const { return plan_; }
  [[nodiscard]] bool finished() const {
    return next_ >= plan_.events.size();
  }
  /// Events applied (not dropped, including no-ops) so far.
  [[nodiscard]] std::size_t events_applied() const { return applied_; }
  [[nodiscard]] const std::vector<AppliedTopologyEvent>& log() const {
    return log_;
  }
  /// The applied-event log as a JSON array — compare across same-seed
  /// runs for the bit-identical replay guarantee.
  [[nodiscard]] std::string log_to_json() const;

 private:
  TopologyReplayPlan plan_;
  std::size_t next_ = 0;
  std::size_t applied_ = 0;
  std::vector<AppliedTopologyEvent> log_;
};

/// Load the plan named by GRIDSE_TOPOLOGY_PLAN (inline JSON when the value
/// starts with '{', else a file path). nullopt when the variable is unset.
std::optional<TopologyReplayPlan> load_env_replay_plan();

}  // namespace gridse::fault
