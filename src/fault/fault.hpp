#pragma once

// Seeded, deterministic fault injection for the transport stack. A FaultPlan
// (JSON, installed programmatically or through the GRIDSE_FAULT_PLAN
// environment variable) matches injection *sites* — named choke points in
// socket, wire-framing, relay, mailbox, and client code — and decides per
// hit whether to drop, delay, error, truncate, or bit-flip the operation.
//
// Determinism: every decision is a pure hash of (plan seed, rule index,
// source, tag, per-stream hit counter). Because each (source, tag) stream is
// FIFO through the transport, the decision sequence is identical across
// runs regardless of thread interleaving — two runs with the same seed
// produce identical injection logs (the chaos suite asserts this).
//
// Call sites use only the FAULT_* macros below so a GRIDSE_FAULT=OFF build
// compiles the layer out the same way GRIDSE_OBS=OFF compiles out the obs
// macros: the arguments sit in an unevaluated sizeof, costing no code and
// no symbol references (tests/fault/check_off_symbols.sh verifies).

#include <chrono>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#ifndef GRIDSE_FAULT
#define GRIDSE_FAULT 1
#endif

namespace gridse::fault {

/// True when the layer is compiled in; chaos tests skip themselves (not
/// fail) when it is not.
inline constexpr bool kEnabled = GRIDSE_FAULT != 0;

/// Matches any source or tag in a rule (sources and tags are allowed to be
/// negative: the middleware rank is -1).
inline constexpr int kAnyValue = std::numeric_limits<int>::min();

/// What one injection site should do for one hit.
enum class ActionKind : std::uint8_t {
  kNone = 0,
  kDrop,      ///< the operation silently does nothing
  kDelay,     ///< sleep before proceeding (applied inside maybe())
  kError,     ///< throw CommError (applied inside maybe())
  kTruncate,  ///< write a strict prefix, then fail (wire.write only)
  kBitFlip,   ///< flip one deterministic payload bit (wire.write only)
};

/// Decision returned to a hook. kDelay and kError are consumed inside
/// maybe() (it sleeps / throws), so callers only ever see kNone, kDrop,
/// kTruncate, or kBitFlip.
struct Action {
  ActionKind kind = ActionKind::kNone;
  /// Deterministic per-hit value the site maps onto an offset (which bit to
  /// flip, where to cut the frame).
  std::uint64_t mutation = 0;
  [[nodiscard]] bool none() const { return kind == ActionKind::kNone; }
};

/// One rule of a fault plan.
struct FaultRule {
  /// Exact site name, or a prefix ending in '*' ("wire.*").
  std::string site;
  ActionKind action = ActionKind::kDrop;
  /// Injection probability per matching hit.
  double probability = 1.0;
  /// Match only this message source (rank / client id); kAnyValue = any.
  int source = kAnyValue;
  /// Inclusive tag window; kAnyValue on both ends = any tag.
  int tag_min = kAnyValue;
  int tag_max = kAnyValue;
  /// Skip the first `after` matching hits of each (source, tag) stream.
  int after = 0;
  /// Cap on total injections across the rule; -1 = unlimited.
  int max_injections = -1;
  /// Sleep length for kDelay actions.
  std::chrono::milliseconds delay{0};
};

/// A full plan: the decision seed plus an ordered rule list (first matching
/// rule that fires wins).
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  /// Parse from JSON:
  ///   {"seed": 42, "rules": [{"site": "wire.write", "action": "drop",
  ///    "probability": 0.3, "source": 1, "tag_min": 16, "tag_max": 400,
  ///    "after": 0, "max": 10, "delay_ms": 50}]}
  /// Throws gridse::InvalidInput on malformed input.
  static FaultPlan parse(std::string_view json);
};

/// One recorded injection; the log is the determinism witness the chaos
/// suite compares across same-seed runs.
struct InjectionRecord {
  std::string site;
  int source = kAnyValue;
  int tag = kAnyValue;
  /// Index of this hit within its (rule, source, tag) stream.
  std::uint64_t stream_hit = 0;
  ActionKind action = ActionKind::kNone;

  bool operator==(const InjectionRecord&) const = default;
};

/// Install `plan` as the process-wide active plan (replaces any previous
/// plan and clears the injection log). Thread-safe.
void install(FaultPlan plan);

/// Remove the active plan; hooks become near-free (one relaxed atomic load).
void clear();

/// True when a plan is active.
bool active();

/// Load and install the plan named by GRIDSE_FAULT_PLAN (inline JSON when
/// the value starts with '{', else a file path). No-op without the variable;
/// returns whether a plan was installed. Called once automatically on the
/// first hook hit of the process.
bool load_env_plan();

/// Snapshot of the injection log, sorted (site, source, tag, stream_hit) so
/// two same-seed runs compare equal independent of thread interleaving.
std::vector<InjectionRecord> injection_log();

/// Total injections since the last install()/clear().
std::uint64_t injected_count();

/// The sorted injection log as a JSON array (for chaos health reports).
std::string log_to_json();

/// Hook: decide this hit. Applies kDelay (sleeps) and kError (throws
/// gridse::CommError) internally; returns the action for kinds the site
/// must apply itself (kDrop, kTruncate, kBitFlip), else kNone.
Action maybe(const char* site, int source = kAnyValue, int tag = kAnyValue);

/// Convenience for sites that can only drop: applies delay/error like
/// maybe() and returns true when the operation should be dropped.
bool inject_drop(const char* site, int source = kAnyValue,
                 int tag = kAnyValue);

/// Flip one bit of `data`, chosen deterministically from `mutation`.
/// No-op on an empty span.
void apply_bitflip(std::uint64_t mutation, std::span<std::uint8_t> data);

/// Deterministic cut point for a truncated write: in [1, frame_size - 1]
/// so the receiver always sees a strict, nonempty prefix. frame_size must
/// be >= 2 (every frame has a 16-byte header).
std::size_t truncate_length(std::uint64_t mutation, std::size_t frame_size);

}  // namespace gridse::fault

#if GRIDSE_FAULT

/// Query the plan at an injection site; yields a fault::Action.
#define FAULT_POINT(site, source, tag) \
  ::gridse::fault::maybe((site), (source), (tag))

/// Drop-only injection site; yields true when the operation must be
/// dropped.
#define FAULT_DROP(site, source, tag) \
  ::gridse::fault::inject_drop((site), (source), (tag))

#else  // !GRIDSE_FAULT — statements that type-check but never evaluate.

#define FAULT_POINT(site, source, tag)                      \
  ((void)sizeof(site), (void)sizeof(source), (void)sizeof(tag), \
   ::gridse::fault::Action{})

#define FAULT_DROP(site, source, tag)                       \
  ((void)sizeof(site), (void)sizeof(source), (void)sizeof(tag), false)

#endif  // GRIDSE_FAULT
