#include <cmath>

#include "graph/partitioner.hpp"
#include "util/error.hpp"

namespace gridse::graph::detail {
namespace {

struct SearchState {
  const WeightedGraph* g = nullptr;
  PartId k = 0;
  double tolerance_weight = 0.0;  // tol * ideal part weight
  std::vector<PartId> assignment;
  std::vector<double> part_weights;
  double cut = 0.0;

  bool have_best = false;
  bool best_feasible = false;
  double best_cut = 0.0;
  double best_max_weight = 0.0;
  std::vector<PartId> best_assignment;
};

void record_if_better(SearchState& s) {
  double max_w = 0.0;
  for (const double w : s.part_weights) {
    if (w == 0.0) return;  // empty part: not a valid k-way partition
    max_w = std::max(max_w, w);
  }
  const bool feasible = max_w <= s.tolerance_weight + 1e-12;
  bool better = false;
  if (!s.have_best) {
    better = true;
  } else if (feasible != s.best_feasible) {
    better = feasible;
  } else if (feasible) {
    better = s.cut < s.best_cut ||
             (s.cut == s.best_cut && max_w < s.best_max_weight);
  } else {
    better = max_w < s.best_max_weight ||
             (max_w == s.best_max_weight && s.cut < s.best_cut);
  }
  if (better) {
    s.have_best = true;
    s.best_feasible = feasible;
    s.best_cut = s.cut;
    s.best_max_weight = max_w;
    s.best_assignment = s.assignment;
  }
}

void search(SearchState& s, VertexId v) {
  const VertexId n = s.g->num_vertices();
  if (v == n) {
    record_if_better(s);
    return;
  }
  // Prune: cut only grows, so once a feasible incumbent exists any partial
  // with cut >= incumbent cut (or an already-infeasible part weight) is dead.
  if (s.have_best && s.best_feasible && s.cut >= s.best_cut) {
    return;
  }
  // Symmetry breaking on the first vertex: part labels are interchangeable
  // for the objective, so pin vertex 0 to part 0.
  const PartId max_part = (v == 0) ? 1 : s.k;
  for (PartId p = 0; p < max_part; ++p) {
    double delta_cut = 0.0;
    for (const auto& [nbr, w] : s.g->neighbors(v)) {
      if (nbr < v && s.assignment[static_cast<std::size_t>(nbr)] != p) {
        delta_cut += w;
      }
    }
    const double new_weight =
        s.part_weights[static_cast<std::size_t>(p)] + s.g->vertex_weight(v);
    if (s.have_best && s.best_feasible && new_weight > s.tolerance_weight) {
      continue;  // this branch can never become feasible again
    }
    s.assignment[static_cast<std::size_t>(v)] = p;
    s.part_weights[static_cast<std::size_t>(p)] = new_weight;
    s.cut += delta_cut;
    search(s, v + 1);
    s.cut -= delta_cut;
    s.part_weights[static_cast<std::size_t>(p)] =
        new_weight - s.g->vertex_weight(v);
  }
  s.assignment[static_cast<std::size_t>(v)] = -1;
}

}  // namespace

Partition exhaustive_partition(const WeightedGraph& g,
                               const PartitionOptions& options) {
  const VertexId n = g.num_vertices();
  GRIDSE_CHECK_MSG(std::pow(static_cast<double>(options.k),
                            static_cast<double>(n)) <=
                       options.exhaustive_budget * 4.0,
                   "graph too large for exhaustive partitioning");
  SearchState s;
  s.g = &g;
  s.k = options.k;
  s.tolerance_weight = options.imbalance_tolerance * g.total_vertex_weight() /
                       static_cast<double>(options.k);
  s.assignment.assign(static_cast<std::size_t>(n), -1);
  s.part_weights.assign(static_cast<std::size_t>(options.k), 0.0);
  search(s, 0);
  GRIDSE_CHECK_MSG(s.have_best, "no valid partition exists (k > n?)");
  return evaluate_partition(g, std::move(s.best_assignment), options.k);
}

bool better_partition(const Partition& candidate, const Partition& incumbent,
                      double tolerance) {
  const bool cand_ok = candidate.load_imbalance <= tolerance + 1e-12;
  const bool inc_ok = incumbent.load_imbalance <= tolerance + 1e-12;
  if (cand_ok != inc_ok) return cand_ok;
  if (cand_ok) {
    if (candidate.edge_cut != incumbent.edge_cut) {
      return candidate.edge_cut < incumbent.edge_cut;
    }
    return candidate.load_imbalance < incumbent.load_imbalance;
  }
  if (candidate.load_imbalance != incumbent.load_imbalance) {
    return candidate.load_imbalance < incumbent.load_imbalance;
  }
  return candidate.edge_cut < incumbent.edge_cut;
}

bool better_partition(const Partition& candidate, const Partition& incumbent,
                      double tolerance, PartitionObjective objective) {
  if (objective == PartitionObjective::kEdgeCut) {
    return better_partition(candidate, incumbent, tolerance);
  }
  const bool cand_ok = candidate.load_imbalance <= tolerance + 1e-12;
  const bool inc_ok = incumbent.load_imbalance <= tolerance + 1e-12;
  if (cand_ok != inc_ok) return cand_ok;
  if (!cand_ok && candidate.load_imbalance != incumbent.load_imbalance) {
    return candidate.load_imbalance < incumbent.load_imbalance;
  }
  if (candidate.expected_gn_iterations != incumbent.expected_gn_iterations) {
    return candidate.expected_gn_iterations < incumbent.expected_gn_iterations;
  }
  if (candidate.edge_cut != incumbent.edge_cut) {
    return candidate.edge_cut < incumbent.edge_cut;
  }
  return candidate.load_imbalance < incumbent.load_imbalance;
}

}  // namespace gridse::graph::detail
