#include "graph/partition.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace gridse::graph {

Partition evaluate_partition(const WeightedGraph& g,
                             std::vector<PartId> assignment, PartId k) {
  GRIDSE_CHECK(static_cast<VertexId>(assignment.size()) == g.num_vertices());
  GRIDSE_CHECK(k > 0);
  Partition p;
  p.assignment = std::move(assignment);
  p.k = k;
  p.part_weights.assign(static_cast<std::size_t>(k), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartId part = p.assignment[static_cast<std::size_t>(v)];
    GRIDSE_CHECK_MSG(part >= 0 && part < k, "partition id out of range");
    p.part_weights[static_cast<std::size_t>(part)] += g.vertex_weight(v);
  }
  p.edge_cut = 0.0;
  std::vector<double> cut_incident(static_cast<std::size_t>(k), 0.0);
  std::vector<double> total_incident(static_cast<std::size_t>(k), 0.0);
  std::vector<char> on_boundary(static_cast<std::size_t>(g.num_vertices()), 0);
  for (const Edge& e : g.edges()) {
    const PartId pu = p.assignment[static_cast<std::size_t>(e.u)];
    const PartId pv = p.assignment[static_cast<std::size_t>(e.v)];
    total_incident[static_cast<std::size_t>(pu)] += e.weight;
    total_incident[static_cast<std::size_t>(pv)] += e.weight;
    if (pu != pv) {
      p.edge_cut += e.weight;
      cut_incident[static_cast<std::size_t>(pu)] += e.weight;
      cut_incident[static_cast<std::size_t>(pv)] += e.weight;
      on_boundary[static_cast<std::size_t>(e.u)] = 1;
      on_boundary[static_cast<std::size_t>(e.v)] = 1;
    }
  }
  p.boundary_coupling = 0.0;
  for (PartId part = 0; part < k; ++part) {
    const double tot = total_incident[static_cast<std::size_t>(part)];
    if (tot > 0.0) {
      p.boundary_coupling =
          std::max(p.boundary_coupling,
                   cut_incident[static_cast<std::size_t>(part)] / tot);
    }
  }
  p.expected_gn_iterations = expected_gn_iterations(p.boundary_coupling);
  p.boundary_vertices = static_cast<int>(
      std::count(on_boundary.begin(), on_boundary.end(), char{1}));
  const double total = g.total_vertex_weight();
  const double ideal = total / static_cast<double>(k);
  const double max_part =
      *std::max_element(p.part_weights.begin(), p.part_weights.end());
  p.load_imbalance = ideal > 0.0 ? max_part / ideal : 0.0;
  return p;
}

double expected_gn_iterations(double boundary_coupling) {
  // Linear-convergence model: the distributed GN error contracts by the
  // worst area's coupling ratio each exchange round, so reaching a 1e-4
  // relative tolerance takes 1 + ln(eps)/ln(rho) rounds. rho is clamped
  // away from 0 (fully decoupled: one round) and 1 (the model diverges;
  // cap keeps comparisons finite and monotone).
  constexpr double kEps = 1e-4;
  constexpr double kRhoMax = 1.0 - 1e-6;
  if (boundary_coupling <= 0.0) return 1.0;
  const double rho = std::min(boundary_coupling, kRhoMax);
  return 1.0 + std::log(kEps) / std::log(rho);
}

bool is_valid_partition(const WeightedGraph& g,
                        std::span<const PartId> assignment, PartId k) {
  if (static_cast<VertexId>(assignment.size()) != g.num_vertices()) {
    return false;
  }
  std::vector<bool> used(static_cast<std::size_t>(k), false);
  for (const PartId p : assignment) {
    if (p < 0 || p >= k) return false;
    used[static_cast<std::size_t>(p)] = true;
  }
  return std::all_of(used.begin(), used.end(), [](bool b) { return b; });
}

int migration_count(std::span<const PartId> before,
                    std::span<const PartId> after) {
  GRIDSE_CHECK(before.size() == after.size());
  int moved = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) ++moved;
  }
  return moved;
}

}  // namespace gridse::graph
