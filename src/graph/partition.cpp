#include "graph/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace gridse::graph {

Partition evaluate_partition(const WeightedGraph& g,
                             std::vector<PartId> assignment, PartId k) {
  GRIDSE_CHECK(static_cast<VertexId>(assignment.size()) == g.num_vertices());
  GRIDSE_CHECK(k > 0);
  Partition p;
  p.assignment = std::move(assignment);
  p.k = k;
  p.part_weights.assign(static_cast<std::size_t>(k), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartId part = p.assignment[static_cast<std::size_t>(v)];
    GRIDSE_CHECK_MSG(part >= 0 && part < k, "partition id out of range");
    p.part_weights[static_cast<std::size_t>(part)] += g.vertex_weight(v);
  }
  p.edge_cut = 0.0;
  for (const Edge& e : g.edges()) {
    if (p.assignment[static_cast<std::size_t>(e.u)] !=
        p.assignment[static_cast<std::size_t>(e.v)]) {
      p.edge_cut += e.weight;
    }
  }
  const double total = g.total_vertex_weight();
  const double ideal = total / static_cast<double>(k);
  const double max_part =
      *std::max_element(p.part_weights.begin(), p.part_weights.end());
  p.load_imbalance = ideal > 0.0 ? max_part / ideal : 0.0;
  return p;
}

bool is_valid_partition(const WeightedGraph& g,
                        std::span<const PartId> assignment, PartId k) {
  if (static_cast<VertexId>(assignment.size()) != g.num_vertices()) {
    return false;
  }
  std::vector<bool> used(static_cast<std::size_t>(k), false);
  for (const PartId p : assignment) {
    if (p < 0 || p >= k) return false;
    used[static_cast<std::size_t>(p)] = true;
  }
  return std::all_of(used.begin(), used.end(), [](bool b) { return b; });
}

int migration_count(std::span<const PartId> before,
                    std::span<const PartId> after) {
  GRIDSE_CHECK(before.size() == after.size());
  int moved = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) ++moved;
  }
  return moved;
}

}  // namespace gridse::graph
