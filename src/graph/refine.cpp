#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "graph/parallel.hpp"
#include "graph/partitioner.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gridse::graph::detail {
namespace {

/// Count of vertices per part; moves that would empty a part are forbidden.
std::vector<int> part_sizes(std::span<const PartId> assignment, PartId k) {
  std::vector<int> sizes(static_cast<std::size_t>(k), 0);
  for (const PartId p : assignment) {
    ++sizes[static_cast<std::size_t>(p)];
  }
  return sizes;
}

/// A candidate vertex move proposed from a snapshot of the assignment.
/// Candidates are re-validated against the live state before applying.
struct Move {
  double gain = 0.0;
  VertexId v = -1;
  PartId to = -1;
  bool balances = false;
};

/// Strict total order: best gain first, then lower vertex id. Vertex ids
/// are unique, so the sorted sequence is independent of the (shard-count
/// dependent) order proposals were generated in.
bool move_order(const Move& a, const Move& b) {
  if (a.gain != b.gain) return a.gain > b.gain;
  return a.v < b.v;
}

/// Mutable refinement state shared by the cut and coupling passes.
struct RefineState {
  std::vector<PartId> assignment;
  std::vector<double> part_weights;
  std::vector<int> sizes;
  double limit = 0.0;
};

/// True when moving `vw` from `from` to `to` keeps the move admissible:
/// the target stays within the balance limit, or the move strictly
/// shrinks an overweight source (rebalancing move).
bool admissible(const RefineState& s, PartId from, PartId to, double vw) {
  const double new_to = s.part_weights[static_cast<std::size_t>(to)] + vw;
  const double old_from = s.part_weights[static_cast<std::size_t>(from)];
  return new_to <= s.limit || (old_from > s.limit && new_to < old_from);
}

bool improves_balance(const RefineState& s, PartId from, PartId to, double vw) {
  const double new_to = s.part_weights[static_cast<std::size_t>(to)] + vw;
  const double old_from = s.part_weights[static_cast<std::size_t>(from)];
  return std::max(new_to, old_from - vw) <
         std::max(s.part_weights[static_cast<std::size_t>(to)], old_from);
}

void apply_move(RefineState& s, const WeightedGraph& g, VertexId v, PartId to) {
  const auto vs = static_cast<std::size_t>(v);
  const PartId from = s.assignment[vs];
  const double vw = g.vertex_weight(v);
  s.part_weights[static_cast<std::size_t>(from)] -= vw;
  s.part_weights[static_cast<std::size_t>(to)] += vw;
  --s.sizes[static_cast<std::size_t>(from)];
  ++s.sizes[static_cast<std::size_t>(to)];
  s.assignment[vs] = to;
}

/// One edge-cut refinement pass: propose the best move per vertex in
/// parallel from a snapshot, then apply sequentially in (gain, vertex)
/// order, re-deriving each gain against the live assignment. Returns the
/// number of applied moves.
int cut_pass(const WeightedGraph& g, const PartitionOptions& options,
             const Executor& exec, RefineState& s) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const PartId k = options.k;
  std::vector<std::vector<Move>> proposals(
      static_cast<std::size_t>(exec.shards()));
  exec.for_ranges(n, [&](std::size_t begin, std::size_t end, int shard) {
    std::vector<double> ext(static_cast<std::size_t>(k));
    auto& out = proposals[static_cast<std::size_t>(shard)];
    for (std::size_t vs = begin; vs < end; ++vs) {
      const auto v = static_cast<VertexId>(vs);
      const PartId from = s.assignment[vs];
      std::fill(ext.begin(), ext.end(), 0.0);
      bool boundary = false;
      for (const auto& [nbr, w] : g.neighbors(v)) {
        const PartId np = s.assignment[static_cast<std::size_t>(nbr)];
        ext[static_cast<std::size_t>(np)] += w;
        boundary = boundary || np != from;
      }
      if (!boundary) continue;
      const double vw = g.vertex_weight(v);
      const double internal = ext[static_cast<std::size_t>(from)];
      Move best;
      for (PartId to = 0; to < k; ++to) {
        if (to == from) continue;
        if (!admissible(s, from, to, vw)) continue;
        const double gain = ext[static_cast<std::size_t>(to)] - internal;
        const bool balances = improves_balance(s, from, to, vw);
        if (best.to < 0 || gain > best.gain ||
            (gain == best.gain && balances && !best.balances)) {
          best = Move{gain, v, to, balances};
        }
      }
      if (best.to >= 0 && (best.gain > 0.0 || best.balances)) {
        out.push_back(best);
      }
    }
  });
  std::vector<Move> moves;
  for (auto& shard_moves : proposals) {
    moves.insert(moves.end(), shard_moves.begin(), shard_moves.end());
  }
  std::sort(moves.begin(), moves.end(), move_order);

  int applied = 0;
  std::vector<double> ext(static_cast<std::size_t>(k));
  for (const Move& m : moves) {
    const auto vs = static_cast<std::size_t>(m.v);
    const PartId from = s.assignment[vs];
    if (from == m.to) continue;
    if (s.sizes[static_cast<std::size_t>(from)] <= 1) continue;  // never empty
    const double vw = g.vertex_weight(m.v);
    if (!admissible(s, from, m.to, vw)) continue;
    std::fill(ext.begin(), ext.end(), 0.0);
    for (const auto& [nbr, w] : g.neighbors(m.v)) {
      ext[static_cast<std::size_t>(s.assignment[static_cast<std::size_t>(
          nbr)])] += w;
    }
    const double gain = ext[static_cast<std::size_t>(m.to)] -
                        ext[static_cast<std::size_t>(from)];
    // Accept strictly-positive-gain moves, and zero-gain moves that improve
    // balance (classic FM tie-break), re-checked against the live state.
    if (gain > 0.0 || (gain == 0.0 && improves_balance(s, from, m.to, vw))) {
      apply_move(s, g, m.v, m.to);
      ++applied;
    }
  }
  return applied;
}

/// Coupling state for the convergence-aware pass: per-part cut-incident
/// and total-incident edge weight, as in evaluate_partition.
struct Coupling {
  std::vector<double> ext;
  std::vector<double> tot;
};

Coupling compute_coupling(const WeightedGraph& g,
                          std::span<const PartId> assignment, PartId k) {
  Coupling c;
  c.ext.assign(static_cast<std::size_t>(k), 0.0);
  c.tot.assign(static_cast<std::size_t>(k), 0.0);
  for (const Edge& e : g.edges()) {
    const PartId pu = assignment[static_cast<std::size_t>(e.u)];
    const PartId pv = assignment[static_cast<std::size_t>(e.v)];
    c.tot[static_cast<std::size_t>(pu)] += e.weight;
    c.tot[static_cast<std::size_t>(pv)] += e.weight;
    if (pu != pv) {
      c.ext[static_cast<std::size_t>(pu)] += e.weight;
      c.ext[static_cast<std::size_t>(pv)] += e.weight;
    }
  }
  return c;
}

double ratio_sq(const Coupling& c, PartId p) {
  const double tot = c.tot[static_cast<std::size_t>(p)];
  if (tot <= 0.0) return 0.0;
  const double r = c.ext[static_cast<std::size_t>(p)] / tot;
  return r * r;
}

/// Change in the smooth coupling surrogate phi = sum_p (ext_p/tot_p)^2
/// when v moves from A to B. w_a / w_b are v's edge weight into A / B and
/// wv its total incident weight; only A and B change:
///   ext_A += 2*w_a - wv   tot_A -= wv
///   ext_B += wv - 2*w_b   tot_B += wv
double coupling_delta(const Coupling& c, PartId a, PartId b, double w_a,
                      double w_b, double wv) {
  const auto sq = [](double ext, double tot) {
    if (tot <= 0.0) return 0.0;
    const double r = ext / tot;
    return r * r;
  };
  const double before = ratio_sq(c, a) + ratio_sq(c, b);
  const double after =
      sq(c.ext[static_cast<std::size_t>(a)] + 2.0 * w_a - wv,
         c.tot[static_cast<std::size_t>(a)] - wv) +
      sq(c.ext[static_cast<std::size_t>(b)] + wv - 2.0 * w_b,
         c.tot[static_cast<std::size_t>(b)] + wv);
  return after - before;
}

/// One convergence-aware pass: propose boundary moves that reduce the
/// coupling surrogate (possibly increasing edge cut), apply sequentially
/// with live re-validation. Returns the number of applied moves.
int coupling_pass(const WeightedGraph& g, const PartitionOptions& options,
                  const Executor& exec, RefineState& s) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const PartId k = options.k;
  const Coupling snapshot = compute_coupling(g, s.assignment, k);
  std::vector<std::vector<Move>> proposals(
      static_cast<std::size_t>(exec.shards()));
  exec.for_ranges(n, [&](std::size_t begin, std::size_t end, int shard) {
    std::vector<double> ext(static_cast<std::size_t>(k));
    auto& out = proposals[static_cast<std::size_t>(shard)];
    for (std::size_t vs = begin; vs < end; ++vs) {
      const auto v = static_cast<VertexId>(vs);
      const PartId from = s.assignment[vs];
      std::fill(ext.begin(), ext.end(), 0.0);
      double wv = 0.0;
      bool boundary = false;
      for (const auto& [nbr, w] : g.neighbors(v)) {
        const PartId np = s.assignment[static_cast<std::size_t>(nbr)];
        ext[static_cast<std::size_t>(np)] += w;
        wv += w;
        boundary = boundary || np != from;
      }
      if (!boundary) continue;
      const double vw = g.vertex_weight(v);
      Move best;
      for (PartId to = 0; to < k; ++to) {
        if (to == from) continue;
        if (ext[static_cast<std::size_t>(to)] <= 0.0) continue;
        if (!admissible(s, from, to, vw)) continue;
        const double delta = coupling_delta(
            snapshot, from, to, ext[static_cast<std::size_t>(from)],
            ext[static_cast<std::size_t>(to)], wv);
        if (best.to < 0 || -delta > best.gain) {
          best = Move{-delta, v, to, false};
        }
      }
      if (best.to >= 0 && best.gain > 1e-12) out.push_back(best);
    }
  });
  std::vector<Move> moves;
  for (auto& shard_moves : proposals) {
    moves.insert(moves.end(), shard_moves.begin(), shard_moves.end());
  }
  std::sort(moves.begin(), moves.end(), move_order);

  Coupling live = snapshot;
  int applied = 0;
  std::vector<double> ext(static_cast<std::size_t>(k));
  for (const Move& m : moves) {
    const auto vs = static_cast<std::size_t>(m.v);
    const PartId from = s.assignment[vs];
    if (from == m.to) continue;
    if (s.sizes[static_cast<std::size_t>(from)] <= 1) continue;
    const double vw = g.vertex_weight(m.v);
    if (!admissible(s, from, m.to, vw)) continue;
    std::fill(ext.begin(), ext.end(), 0.0);
    double wv = 0.0;
    for (const auto& [nbr, w] : g.neighbors(m.v)) {
      ext[static_cast<std::size_t>(s.assignment[static_cast<std::size_t>(
          nbr)])] += w;
      wv += w;
    }
    const double w_a = ext[static_cast<std::size_t>(from)];
    const double w_b = ext[static_cast<std::size_t>(m.to)];
    const double delta = coupling_delta(live, from, m.to, w_a, w_b, wv);
    if (delta >= -1e-12) continue;
    live.ext[static_cast<std::size_t>(from)] += 2.0 * w_a - wv;
    live.tot[static_cast<std::size_t>(from)] -= wv;
    live.ext[static_cast<std::size_t>(m.to)] += wv - 2.0 * w_b;
    live.tot[static_cast<std::size_t>(m.to)] += wv;
    apply_move(s, g, m.v, m.to);
    ++applied;
  }
  return applied;
}

}  // namespace

Partition fm_refine_with(const WeightedGraph& g,
                         std::vector<PartId> assignment,
                         const PartitionOptions& options,
                         const Executor& exec) {
  const VertexId n = g.num_vertices();
  const PartId k = options.k;
  GRIDSE_CHECK(static_cast<VertexId>(assignment.size()) == n);

  RefineState s;
  s.assignment = std::move(assignment);
  s.part_weights.assign(static_cast<std::size_t>(k), 0.0);
  for (VertexId v = 0; v < n; ++v) {
    s.part_weights[static_cast<std::size_t>(
        s.assignment[static_cast<std::size_t>(v)])] += g.vertex_weight(v);
  }
  s.sizes = part_sizes(s.assignment, k);
  s.limit = options.imbalance_tolerance * g.total_vertex_weight() /
            static_cast<double>(k);

  for (int pass = 0; pass < options.refinement_passes; ++pass) {
    if (cut_pass(g, options, exec, s) == 0) break;
  }
  if (options.objective == PartitionObjective::kConvergenceAware) {
    for (int pass = 0; pass < options.refinement_passes; ++pass) {
      if (coupling_pass(g, options, exec, s) == 0) break;
    }
  }
  return evaluate_partition(g, std::move(s.assignment), k);
}

Partition fm_refine(const WeightedGraph& g, std::vector<PartId> assignment,
                    const PartitionOptions& options) {
  const Executor exec(options.pool, options.threads, assignment.size());
  return fm_refine_with(g, std::move(assignment), options, exec);
}

Partition greedy_partition(const WeightedGraph& g,
                           const PartitionOptions& options) {
  const VertexId n = g.num_vertices();
  const PartId k = options.k;
  GRIDSE_CHECK(k <= n);
  Rng rng(options.seed ^ 0x9e37u);

  // Seed each part with a vertex far from previous seeds (BFS eccentricity
  // heuristic), then grow regions: repeatedly give the lightest part its
  // most-connected unassigned boundary vertex.
  std::vector<PartId> assignment(static_cast<std::size_t>(n), -1);
  std::vector<double> part_weights(static_cast<std::size_t>(k), 0.0);

  std::vector<VertexId> seeds;
  seeds.push_back(static_cast<VertexId>(rng.uniform_int(0, n - 1)));
  while (static_cast<PartId>(seeds.size()) < k) {
    // BFS multi-source distances from current seeds
    std::vector<int> dist(static_cast<std::size_t>(n), -1);
    std::vector<VertexId> queue(seeds.begin(), seeds.end());
    for (const VertexId s : seeds) dist[static_cast<std::size_t>(s)] = 0;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const VertexId u = queue[qi];
      for (const auto& [v, w] : g.neighbors(u)) {
        if (dist[static_cast<std::size_t>(v)] < 0) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
    VertexId far = 0;
    int far_d = -1;
    for (VertexId v = 0; v < n; ++v) {
      if (dist[static_cast<std::size_t>(v)] > far_d &&
          std::find(seeds.begin(), seeds.end(), v) == seeds.end()) {
        far_d = dist[static_cast<std::size_t>(v)];
        far = v;
      }
    }
    seeds.push_back(far);
  }
  for (PartId p = 0; p < k; ++p) {
    assignment[static_cast<std::size_t>(seeds[static_cast<std::size_t>(p)])] = p;
    part_weights[static_cast<std::size_t>(p)] +=
        g.vertex_weight(seeds[static_cast<std::size_t>(p)]);
  }

  VertexId assigned = k;
  while (assigned < n) {
    // lightest part picks next
    PartId p = 0;
    for (PartId q = 1; q < k; ++q) {
      if (part_weights[static_cast<std::size_t>(q)] <
          part_weights[static_cast<std::size_t>(p)]) {
        p = q;
      }
    }
    // best unassigned vertex by connection weight to part p; fall back to
    // any unassigned vertex (disconnected graphs / exhausted frontier)
    VertexId best = -1;
    double best_conn = -1.0;
    for (VertexId v = 0; v < n; ++v) {
      if (assignment[static_cast<std::size_t>(v)] >= 0) continue;
      double conn = 0.0;
      for (const auto& [nbr, w] : g.neighbors(v)) {
        if (assignment[static_cast<std::size_t>(nbr)] == p) conn += w;
      }
      if (conn > best_conn) {
        best_conn = conn;
        best = v;
      }
    }
    if (best_conn <= 0.0) {
      // frontier empty for this part: give it the heaviest unassigned vertex
      // is counterproductive; just take any unassigned vertex
      for (VertexId v = 0; v < n; ++v) {
        if (assignment[static_cast<std::size_t>(v)] < 0) {
          best = v;
          break;
        }
      }
    }
    assignment[static_cast<std::size_t>(best)] = p;
    part_weights[static_cast<std::size_t>(p)] += g.vertex_weight(best);
    ++assigned;
  }
  return fm_refine(g, std::move(assignment), options);
}

}  // namespace gridse::graph::detail
