#include <algorithm>
#include <numeric>

#include "graph/partitioner.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gridse::graph::detail {
namespace {

/// Count of vertices per part; moves that would empty a part are forbidden.
std::vector<int> part_sizes(std::span<const PartId> assignment, PartId k) {
  std::vector<int> sizes(static_cast<std::size_t>(k), 0);
  for (const PartId p : assignment) {
    ++sizes[static_cast<std::size_t>(p)];
  }
  return sizes;
}

}  // namespace

Partition fm_refine(const WeightedGraph& g, std::vector<PartId> assignment,
                    const PartitionOptions& options) {
  const VertexId n = g.num_vertices();
  const PartId k = options.k;
  GRIDSE_CHECK(static_cast<VertexId>(assignment.size()) == n);

  std::vector<double> part_weights(static_cast<std::size_t>(k), 0.0);
  for (VertexId v = 0; v < n; ++v) {
    part_weights[static_cast<std::size_t>(assignment[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  }
  auto sizes = part_sizes(assignment, k);
  const double ideal = g.total_vertex_weight() / static_cast<double>(k);
  const double limit = options.imbalance_tolerance * ideal;

  Rng rng(options.seed ^ 0xf1a6u);
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  std::vector<double> ext(static_cast<std::size_t>(k));
  for (int pass = 0; pass < options.refinement_passes; ++pass) {
    bool moved_any = false;
    rng.shuffle(order);
    for (const VertexId v : order) {
      const auto vs = static_cast<std::size_t>(v);
      const PartId from = assignment[vs];
      if (sizes[static_cast<std::size_t>(from)] <= 1) {
        continue;  // never empty a part
      }
      std::fill(ext.begin(), ext.end(), 0.0);
      bool boundary = false;
      for (const auto& [nbr, w] : g.neighbors(v)) {
        const PartId np = assignment[static_cast<std::size_t>(nbr)];
        ext[static_cast<std::size_t>(np)] += w;
        boundary = boundary || np != from;
      }
      if (!boundary) continue;

      const double vw = g.vertex_weight(v);
      const double internal = ext[static_cast<std::size_t>(from)];
      PartId best_to = -1;
      double best_gain = 0.0;
      bool best_balances = false;
      for (PartId to = 0; to < k; ++to) {
        if (to == from) continue;
        const double gain = ext[static_cast<std::size_t>(to)] - internal;
        const double new_to = part_weights[static_cast<std::size_t>(to)] + vw;
        const double old_from = part_weights[static_cast<std::size_t>(from)];
        // A move is admissible if the target stays within the balance limit,
        // or if it strictly improves the heavier side (rebalancing move).
        const bool within = new_to <= limit;
        const bool rebalances = old_from > limit && new_to < old_from;
        if (!within && !rebalances) continue;
        const bool improves_balance =
            std::max(new_to, old_from - vw) <
            std::max(part_weights[static_cast<std::size_t>(to)], old_from);
        if (gain > best_gain ||
            (gain == best_gain && improves_balance && !best_balances)) {
          best_gain = gain;
          best_to = to;
          best_balances = improves_balance;
        }
      }
      // Accept strictly-positive-gain moves, and zero-gain moves that improve
      // balance (classic FM tie-break).
      if (best_to >= 0 && (best_gain > 0.0 || (best_gain == 0.0 && best_balances))) {
        part_weights[static_cast<std::size_t>(from)] -= vw;
        part_weights[static_cast<std::size_t>(best_to)] += vw;
        --sizes[static_cast<std::size_t>(from)];
        ++sizes[static_cast<std::size_t>(best_to)];
        assignment[vs] = best_to;
        moved_any = true;
      }
    }
    if (!moved_any) break;
  }
  return evaluate_partition(g, std::move(assignment), k);
}

Partition greedy_partition(const WeightedGraph& g,
                           const PartitionOptions& options) {
  const VertexId n = g.num_vertices();
  const PartId k = options.k;
  GRIDSE_CHECK(k <= n);
  Rng rng(options.seed ^ 0x9e37u);

  // Seed each part with a vertex far from previous seeds (BFS eccentricity
  // heuristic), then grow regions: repeatedly give the lightest part its
  // most-connected unassigned boundary vertex.
  std::vector<PartId> assignment(static_cast<std::size_t>(n), -1);
  std::vector<double> part_weights(static_cast<std::size_t>(k), 0.0);

  std::vector<VertexId> seeds;
  seeds.push_back(static_cast<VertexId>(rng.uniform_int(0, n - 1)));
  while (static_cast<PartId>(seeds.size()) < k) {
    // BFS multi-source distances from current seeds
    std::vector<int> dist(static_cast<std::size_t>(n), -1);
    std::vector<VertexId> queue(seeds.begin(), seeds.end());
    for (const VertexId s : seeds) dist[static_cast<std::size_t>(s)] = 0;
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const VertexId u = queue[qi];
      for (const auto& [v, w] : g.neighbors(u)) {
        if (dist[static_cast<std::size_t>(v)] < 0) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + 1;
          queue.push_back(v);
        }
      }
    }
    VertexId far = 0;
    int far_d = -1;
    for (VertexId v = 0; v < n; ++v) {
      if (dist[static_cast<std::size_t>(v)] > far_d &&
          std::find(seeds.begin(), seeds.end(), v) == seeds.end()) {
        far_d = dist[static_cast<std::size_t>(v)];
        far = v;
      }
    }
    seeds.push_back(far);
  }
  for (PartId p = 0; p < k; ++p) {
    assignment[static_cast<std::size_t>(seeds[static_cast<std::size_t>(p)])] = p;
    part_weights[static_cast<std::size_t>(p)] +=
        g.vertex_weight(seeds[static_cast<std::size_t>(p)]);
  }

  VertexId assigned = k;
  while (assigned < n) {
    // lightest part picks next
    PartId p = 0;
    for (PartId q = 1; q < k; ++q) {
      if (part_weights[static_cast<std::size_t>(q)] <
          part_weights[static_cast<std::size_t>(p)]) {
        p = q;
      }
    }
    // best unassigned vertex by connection weight to part p; fall back to
    // any unassigned vertex (disconnected graphs / exhausted frontier)
    VertexId best = -1;
    double best_conn = -1.0;
    for (VertexId v = 0; v < n; ++v) {
      if (assignment[static_cast<std::size_t>(v)] >= 0) continue;
      double conn = 0.0;
      for (const auto& [nbr, w] : g.neighbors(v)) {
        if (assignment[static_cast<std::size_t>(nbr)] == p) conn += w;
      }
      if (conn > best_conn) {
        best_conn = conn;
        best = v;
      }
    }
    if (best_conn <= 0.0) {
      // frontier empty for this part: give it the heaviest unassigned vertex
      // is counterproductive; just take any unassigned vertex
      for (VertexId v = 0; v < n; ++v) {
        if (assignment[static_cast<std::size_t>(v)] < 0) {
          best = v;
          break;
        }
      }
    }
    assignment[static_cast<std::size_t>(best)] = p;
    part_weights[static_cast<std::size_t>(p)] += g.vertex_weight(best);
    ++assigned;
  }
  return fm_refine(g, std::move(assignment), options);
}

}  // namespace gridse::graph::detail
