#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gridse::graph {

using VertexId = std::int32_t;

/// One undirected weighted edge.
struct Edge {
  VertexId u;
  VertexId v;
  double weight;
};

/// Undirected graph with vertex and edge weights — the "power system
/// decomposition graph" of the paper (§IV-B1): vertices are subsystems
/// (weight = predicted computation), edges are tie-line groups (weight =
/// predicted communication).
class WeightedGraph {
 public:
  WeightedGraph() = default;
  explicit WeightedGraph(VertexId num_vertices);

  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(vertex_weights_.size());
  }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  /// Set/get vertex weight (default 1).
  void set_vertex_weight(VertexId v, double w);
  [[nodiscard]] double vertex_weight(VertexId v) const;
  [[nodiscard]] std::span<const double> vertex_weights() const {
    return vertex_weights_;
  }
  [[nodiscard]] double total_vertex_weight() const;

  /// Add an undirected edge; throws InvalidInput on self-loops, duplicate
  /// edges, or out-of-range endpoints.
  void add_edge(VertexId u, VertexId v, double weight);

  /// Update the weight of an existing edge (throws if absent).
  void set_edge_weight(VertexId u, VertexId v, double weight);

  /// Set every edge weight to `weight` (Step-1 mapping uses uniform edges).
  void set_uniform_edge_weights(double weight);

  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

  /// Neighbors of v as (neighbor, edge weight) pairs.
  [[nodiscard]] const std::vector<std::pair<VertexId, double>>& neighbors(
      VertexId v) const;

  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  [[nodiscard]] bool connected() const;

  /// Longest shortest-path length in hops (the "diameter of the power system
  /// decomposition" that bounds DSE iterations, §II). Returns 0 for graphs
  /// with fewer than 2 vertices; throws InvalidInput if disconnected.
  [[nodiscard]] int diameter() const;

 private:
  std::vector<double> vertex_weights_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::pair<VertexId, double>>> adjacency_;
};

}  // namespace gridse::graph
