#include "graph/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace gridse::graph {

namespace detail {
Partition multilevel_partition(const WeightedGraph& g,
                               const PartitionOptions& options);
}  // namespace detail

Partition partition(const WeightedGraph& g, const PartitionOptions& options) {
  if (options.k < 1) {
    throw InvalidInput("partition: k must be at least 1");
  }
  if (options.k > g.num_vertices()) {
    throw InvalidInput("partition: k exceeds number of vertices");
  }
  OBS_SPAN("partition.run");
  if (options.k == 1) {
    return evaluate_partition(
        g, std::vector<PartId>(static_cast<std::size_t>(g.num_vertices()), 0),
        1);
  }
  const double space = std::pow(static_cast<double>(options.k),
                                static_cast<double>(g.num_vertices()));
  Partition result;
  if (space <= options.exhaustive_budget) {
    result = detail::exhaustive_partition(g, options);
    if (options.objective == PartitionObjective::kConvergenceAware) {
      // Exhaustive search is cut-optimal; let the coupling refinement pass
      // trade cut for lower boundary coupling and keep the better of the
      // two under the convergence-aware order.
      Partition refined = detail::fm_refine(g, result.assignment, options);
      if (detail::better_partition(refined, result,
                                   options.imbalance_tolerance,
                                   options.objective)) {
        result = std::move(refined);
      }
    }
  } else {
    result = detail::multilevel_partition(g, options);
  }
  OBS_GAUGE_SET("partition.cut", result.edge_cut);
  OBS_GAUGE_SET("partition.boundary_buses",
                static_cast<double>(result.boundary_vertices));
  GRIDSE_DEBUG << "partition: k=" << options.k << " cut=" << result.edge_cut
               << " imbalance=" << result.load_imbalance
               << " coupling=" << result.boundary_coupling;
  return result;
}

Partition repartition(const WeightedGraph& g, std::span<const PartId> previous,
                      const PartitionOptions& options) {
  if (!is_valid_partition(g, previous, options.k)) {
    throw InvalidInput("repartition: previous assignment is not a valid "
                       "k-way partition of this graph");
  }
  OBS_SPAN("partition.repartition");
  // Refine the previous assignment under the new weights (low-migration,
  // ParMETIS-style adaptive repartitioning)…
  Partition refined = detail::fm_refine(
      g, std::vector<PartId>(previous.begin(), previous.end()), options);
  // …but fall back to partitioning from scratch when refinement cannot reach
  // the balance tolerance (weights drifted too far for local moves).
  if (refined.load_imbalance > options.imbalance_tolerance + 1e-12) {
    Partition fresh = partition(g, options);
    if (detail::better_partition(fresh, refined, options.imbalance_tolerance,
                                 options.objective)) {
      GRIDSE_DEBUG << "repartition: refinement stuck at imbalance "
                   << refined.load_imbalance << ", took fresh partition";
      return fresh;
    }
  }
  return refined;
}

PartsChoice choose_parts(const WeightedGraph& g, PartitionOptions base,
                         PartId k_min, PartId k_max) {
  if (k_min < 1 || k_min > k_max) {
    throw InvalidInput("choose_parts: need 1 <= k_min <= k_max");
  }
  k_max = std::min(k_max, static_cast<PartId>(g.num_vertices()));
  if (k_max < k_min) {
    throw InvalidInput("choose_parts: k_min exceeds the vertex count");
  }
  OBS_SPAN("partition.choose_parts");
  base.objective = PartitionObjective::kConvergenceAware;
  PartsChoice best;
  for (PartId k = k_min; k <= k_max; ++k) {
    base.k = k;
    Partition p = partition(g, base);
    const double max_weight =
        p.part_weights.empty()
            ? 0.0
            : *std::max_element(p.part_weights.begin(), p.part_weights.end());
    const double score = p.expected_gn_iterations * max_weight;
    if (best.k == 0 || score < best.score) {
      best.partition = std::move(p);
      best.k = k;
      best.score = score;
    }
  }
  OBS_GAUGE_SET("partition.chosen_parts", static_cast<double>(best.k));
  GRIDSE_DEBUG << "choose_parts: k=" << best.k << " score=" << best.score
               << " over [" << k_min << "," << k_max << "]";
  return best;
}

}  // namespace gridse::graph
