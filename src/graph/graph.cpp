#include "graph/graph.hpp"

#include <numeric>
#include <queue>

#include "util/error.hpp"

namespace gridse::graph {

WeightedGraph::WeightedGraph(VertexId num_vertices)
    : vertex_weights_(static_cast<std::size_t>(num_vertices), 1.0),
      adjacency_(static_cast<std::size_t>(num_vertices)) {
  GRIDSE_CHECK(num_vertices >= 0);
}

void WeightedGraph::set_vertex_weight(VertexId v, double w) {
  GRIDSE_CHECK(v >= 0 && v < num_vertices());
  GRIDSE_CHECK_MSG(w >= 0.0, "vertex weight must be nonnegative");
  vertex_weights_[static_cast<std::size_t>(v)] = w;
}

double WeightedGraph::vertex_weight(VertexId v) const {
  GRIDSE_CHECK(v >= 0 && v < num_vertices());
  return vertex_weights_[static_cast<std::size_t>(v)];
}

double WeightedGraph::total_vertex_weight() const {
  return std::accumulate(vertex_weights_.begin(), vertex_weights_.end(), 0.0);
}

void WeightedGraph::add_edge(VertexId u, VertexId v, double weight) {
  if (u < 0 || u >= num_vertices() || v < 0 || v >= num_vertices()) {
    throw InvalidInput("add_edge: vertex out of range");
  }
  if (u == v) {
    throw InvalidInput("add_edge: self loops are not allowed");
  }
  if (has_edge(u, v)) {
    throw InvalidInput("add_edge: duplicate edge (" + std::to_string(u) + "," +
                       std::to_string(v) + ")");
  }
  if (weight < 0.0) {
    throw InvalidInput("add_edge: negative edge weight");
  }
  edges_.push_back({u, v, weight});
  adjacency_[static_cast<std::size_t>(u)].emplace_back(v, weight);
  adjacency_[static_cast<std::size_t>(v)].emplace_back(u, weight);
}

void WeightedGraph::set_edge_weight(VertexId u, VertexId v, double weight) {
  bool found = false;
  for (auto& e : edges_) {
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) {
      e.weight = weight;
      found = true;
      break;
    }
  }
  if (!found) {
    throw InvalidInput("set_edge_weight: edge not present");
  }
  for (auto& [nbr, w] : adjacency_[static_cast<std::size_t>(u)]) {
    if (nbr == v) w = weight;
  }
  for (auto& [nbr, w] : adjacency_[static_cast<std::size_t>(v)]) {
    if (nbr == u) w = weight;
  }
}

void WeightedGraph::set_uniform_edge_weights(double weight) {
  for (auto& e : edges_) {
    e.weight = weight;
  }
  for (auto& adj : adjacency_) {
    for (auto& [nbr, w] : adj) {
      w = weight;
    }
  }
}

const std::vector<std::pair<VertexId, double>>& WeightedGraph::neighbors(
    VertexId v) const {
  GRIDSE_CHECK(v >= 0 && v < num_vertices());
  return adjacency_[static_cast<std::size_t>(v)];
}

bool WeightedGraph::has_edge(VertexId u, VertexId v) const {
  if (u < 0 || u >= num_vertices()) return false;
  for (const auto& [nbr, w] : adjacency_[static_cast<std::size_t>(u)]) {
    if (nbr == v) return true;
  }
  return false;
}

bool WeightedGraph::connected() const {
  const VertexId n = num_vertices();
  if (n <= 1) return true;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::queue<VertexId> q;
  q.push(0);
  seen[0] = true;
  VertexId count = 1;
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    for (const auto& [v, w] : neighbors(u)) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++count;
        q.push(v);
      }
    }
  }
  return count == n;
}

int WeightedGraph::diameter() const {
  const VertexId n = num_vertices();
  if (n < 2) return 0;
  if (!connected()) {
    throw InvalidInput("diameter: graph is disconnected");
  }
  int best = 0;
  std::vector<int> dist(static_cast<std::size_t>(n));
  for (VertexId s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<VertexId> q;
    q.push(s);
    dist[static_cast<std::size_t>(s)] = 0;
    while (!q.empty()) {
      const VertexId u = q.front();
      q.pop();
      for (const auto& [v, w] : neighbors(u)) {
        if (dist[static_cast<std::size_t>(v)] < 0) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + 1;
          best = std::max(best, dist[static_cast<std::size_t>(v)]);
          q.push(v);
        }
      }
    }
  }
  return best;
}

}  // namespace gridse::graph
